//! # models — the thesis's GTPN performance models (Chapter 6)
//!
//! Encodes the Generalized Timed Petri Net models the paper uses to compare
//! the four node architectures, built table-by-table from Tables 6.2–6.23:
//!
//! * [`local`] — the single-node conversation models (Figures 6.9 and 6.12):
//!   clients, servers and processor tokens cycle through geometric service
//!   stages approximating the measured activity costs.
//! * [`client`] / [`server`] — the split non-local models (Figures
//!   6.10/6.11/6.13/6.14), with surrogate delays standing in for the remote
//!   half, interrupt-priority gating (`(NetIntr = 0) & !T & !T'`), and the
//!   paper's `IoOut`/`IoIn` network-interface places.
//! * [`nonlocal`] — the §6.6.3 iterative fixed point: the client model's
//!   cycle time yields the server model's inter-arrival delay, whose
//!   Little's-law server delay feeds back, iterating to convergence.
//! * [`contention`] — the §6.6.2 low-level shared-memory contention model
//!   (Figure 6.8, Tables 6.2/6.3) computing "contention" completion times
//!   for overlapping activities.
//! * [`offered`] — Tables 6.24/6.25, offered load vs server time.
//! * [`validation`] — the Figure 6.15 exercise: GTPN model predictions vs
//!   the discrete-event "experimental" measurements from `archsim`.
//!
//! Throughputs are reported in conversations per millisecond, matching the
//! paper's message-throughput figures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod contention;
pub mod local;
pub mod nonlocal;
pub mod offered;
pub mod server;
pub mod validation;

mod stages;

pub use archsim::timings::{Architecture, Locality};
pub use gtpn::{Analysis, AnalysisEngine, BackendKind, BackendSel, DesOptions, EngineConfig};

/// Default state budget for reachability analysis of the chapter-6 nets.
pub const STATE_BUDGET: usize = 2_000_000;

/// Default Gauss–Seidel tolerance.
pub const TOLERANCE: f64 = 1e-11;

/// Default Gauss–Seidel sweep cap.
pub const MAX_SWEEPS: usize = 400_000;

/// Errors from model construction or solution.
#[derive(Debug)]
pub enum ModelError {
    /// The underlying GTPN analysis failed.
    Gtpn(gtpn::GtpnError),
    /// The §6.6.3 iteration did not converge.
    NoFixedPoint {
        /// Iterations performed.
        iterations: usize,
        /// Last relative change in the server delay.
        delta: f64,
    },
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::Gtpn(e) => write!(f, "GTPN analysis failed: {e}"),
            ModelError::NoFixedPoint { iterations, delta } => {
                write!(
                    f,
                    "client/server iteration stalled after {iterations} rounds (Δ={delta:.3e})"
                )
            }
        }
    }
}

impl std::error::Error for ModelError {}

impl From<gtpn::GtpnError> for ModelError {
    fn from(e: gtpn::GtpnError) -> ModelError {
        ModelError::Gtpn(e)
    }
}

/// The process-wide default analysis engine: the chapter-6 budgets
/// ([`TOLERANCE`], [`MAX_SWEEPS`], [`STATE_BUDGET`]) with the backend
/// policy taken from `HSIPC_BACKEND` and the exact-lumping policy from
/// `HSIPC_LUMP`, both at first use ([`BackendSel::from_env`],
/// [`gtpn::LumpSel::from_env`]).
///
/// Every model-level `solve` function without an explicit engine argument
/// analyzes through this engine, so sweeps, experiments and tests share
/// one canonical-net solution cache and one set of hit/miss counters.
pub fn default_engine() -> &'static AnalysisEngine {
    static ENGINE: std::sync::OnceLock<AnalysisEngine> = std::sync::OnceLock::new();
    ENGINE.get_or_init(|| {
        AnalysisEngine::new(EngineConfig {
            backend: BackendSel::from_env(),
            tolerance: TOLERANCE,
            max_sweeps: MAX_SWEEPS,
            state_budget: STATE_BUDGET,
            des: DesOptions::default(),
            par_solve: gtpn::par::par_solve_enabled(),
            warm_start: gtpn::engine::warm_start_enabled(),
            lump: gtpn::LumpSel::from_env(),
        })
    })
}

/// Model throughput (conversations/ms) for one live-sweep grid point:
/// dispatches on locality to the local model ([`local::solve_in`]) or the
/// §6.6.3 non-local fixed point ([`nonlocal::solve_in`]), analyzing
/// through `engine` so concurrent sweep workers share one solution cache.
///
/// # Errors
///
/// [`ModelError`] when the underlying solve fails or the non-local
/// iteration stalls.
pub fn live_throughput_in(
    engine: &AnalysisEngine,
    arch: Architecture,
    locality: Locality,
    n: u32,
    x_us: f64,
) -> Result<f64, ModelError> {
    Ok(match locality {
        Locality::Local => local::solve_in(engine, arch, n, x_us)?.throughput_per_ms,
        Locality::NonLocal => nonlocal::solve_in(engine, arch, n, x_us)?.throughput_per_ms,
    })
}

/// Analyzes a chapter-6 net through `engine`; the single choke point every
/// model solve in this crate funnels through.
pub(crate) fn analyze_in(engine: &AnalysisEngine, net: &gtpn::Net) -> Result<Analysis, ModelError> {
    analyze_warm_in(engine, net, None)
}

/// As [`analyze_in`], threading an explicit warm-start store — used by the
/// §6.6.3 fixed point, whose successive same-shape solves seed each other.
pub(crate) fn analyze_warm_in(
    engine: &AnalysisEngine,
    net: &gtpn::Net,
    warm: Option<&mut gtpn::engine::WarmStart>,
) -> Result<Analysis, ModelError> {
    Ok(engine.analyze_warm(net, warm)?)
}
