//! Local-conversation models (Figures 6.9 and 6.12).
//!
//! * **Architecture I** (Figure 6.9): clients and servers compete for the
//!   single `Host` token through three geometric stages — client send
//!   (actions 1, 7), server receive (actions 2, 6), and the rendezvous
//!   (actions 3, 4 = compute `X`, 5). The resource `lambda` on the
//!   rendezvous exit measures throughput.
//! * **Architectures II–IV** (Figure 6.12): the host stages (syscalls,
//!   restarts, compute) hold the `Host` token while the kernel-processing
//!   stages (process send/receive, match, process reply) hold the `MP`
//!   token, letting computation and communication overlap — the whole point
//!   of the software partition.
//!
//! Stage means use the paper's contention completion times (§6.6.2);
//! processor sharing arises from the unit-step geometric stages re-acquiring
//! the processor token each microsecond (§6.7.1 notes FCFS and processor
//! sharing gave similar results, and processor sharing keeps the model
//! small).

use crate::stages::{clamp_mean, stage_mean};
use crate::ModelError;
use archsim::timings::{ActivityKind as K, Architecture, Locality};
use gtpn::geometric::GeometricStage;
use gtpn::{AnalysisEngine, BackendKind, Net};

/// Result of solving a local model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalSolution {
    /// Conversations completed per millisecond (the paper's Λ).
    pub throughput_per_ms: f64,
    /// Number of tangible states in the embedded chain (0 when the DES
    /// backend estimated the point).
    pub states: usize,
    /// Which engine backend produced the number.
    pub backend: BackendKind,
    /// 95% half-width on the throughput, conversations/ms — `Some` only
    /// for DES estimates.
    pub half_width_per_ms: Option<f64>,
}

/// Builds the local-conversation net for `arch` with `n` simultaneous
/// conversations and server compute time `x_us`.
pub fn build(arch: Architecture, n: u32, x_us: f64) -> Result<Net, ModelError> {
    build_with_hosts(arch, n, x_us, 1)
}

/// Chapter 7 extension: a *shared-memory multiprocessor node* — `hosts`
/// identical host processors served by one message coprocessor. The thesis
/// closes by proposing exactly this organization (Figure 7.1: one MP
/// serving a collection of hosts that share memory); modeling it is a
/// one-token change because processor sharing is expressed by the `Host`
/// place's marking.
pub fn build_with_hosts(
    arch: Architecture,
    n: u32,
    x_us: f64,
    hosts: u32,
) -> Result<Net, ModelError> {
    assert!(hosts >= 1, "a node needs at least one host");
    let loc = Locality::Local;
    let mut net = Net::new(format!("{arch}-local-{n}conv-{hosts}hosts"));
    let clients = net.add_place("Clients", n);
    let servers = net.add_place("Servers", n);
    let host = net.add_place("Host", hosts);

    if !arch.has_mp() {
        // Figure 6.9.
        let send_done = net.add_place("SendDone", 0);
        let recv_done = net.add_place("RecvDone", 0);
        let client_mean = stage_mean(arch, loc, &[K::SyscallSend, K::RestartClient]);
        let server_mean = stage_mean(arch, loc, &[K::SyscallReceive, K::RestartServer]);
        let rendezvous_mean = stage_mean(arch, loc, &[K::Match, K::SyscallReply]) + x_us;
        GeometricStage::new("client", clamp_mean(client_mean))
            .input(clients, 1)
            .held(host)
            .output(send_done, 1)
            .build(&mut net)?;
        GeometricStage::new("server", clamp_mean(server_mean))
            .input(servers, 1)
            .held(host)
            .output(recv_done, 1)
            .build(&mut net)?;
        GeometricStage::new("rendezvous", clamp_mean(rendezvous_mean))
            .input(send_done, 1)
            .input(recv_done, 1)
            .held(host)
            .output(clients, 1)
            .output(servers, 1)
            .resource("lambda")
            .build(&mut net)?;
        return Ok(net);
    }

    // Figure 6.12.
    let mp = net.add_place("MP", 1);
    let sent = net.add_place("SendSubmitted", 0);
    let recvd = net.add_place("RecvSubmitted", 0);
    let send_p = net.add_place("SendProcessed", 0);
    let recv_p = net.add_place("RecvProcessed", 0);
    let matched = net.add_place("Matched", 0);
    let replied = net.add_place("ReplySubmitted", 0);

    let client_mean = stage_mean(arch, loc, &[K::SyscallSend, K::RestartClient]);
    let server_mean = stage_mean(arch, loc, &[K::SyscallReceive, K::RestartServerAfterReply]);
    let run_mean = stage_mean(arch, loc, &[K::RestartServer, K::SyscallReply]) + x_us;

    GeometricStage::new("client_syscall", clamp_mean(client_mean))
        .input(clients, 1)
        .held(host)
        .output(sent, 1)
        .build(&mut net)?;
    GeometricStage::new(
        "process_send",
        clamp_mean(stage_mean(arch, loc, &[K::ProcessSend])),
    )
    .input(sent, 1)
    .held(mp)
    .output(send_p, 1)
    .build(&mut net)?;
    GeometricStage::new("server_syscall", clamp_mean(server_mean))
        .input(servers, 1)
        .held(host)
        .output(recvd, 1)
        .build(&mut net)?;
    GeometricStage::new(
        "process_receive",
        clamp_mean(stage_mean(arch, loc, &[K::ProcessReceive])),
    )
    .input(recvd, 1)
    .held(mp)
    .output(recv_p, 1)
    .build(&mut net)?;
    GeometricStage::new("match", clamp_mean(stage_mean(arch, loc, &[K::Match])))
        .input(send_p, 1)
        .input(recv_p, 1)
        .held(mp)
        .output(matched, 1)
        .build(&mut net)?;
    GeometricStage::new("server_run", clamp_mean(run_mean))
        .input(matched, 1)
        .held(host)
        .output(replied, 1)
        .build(&mut net)?;
    GeometricStage::new(
        "process_reply",
        clamp_mean(stage_mean(arch, loc, &[K::ProcessReply])),
    )
    .input(replied, 1)
    .held(mp)
    .output(clients, 1)
    .output(servers, 1)
    .resource("lambda")
    .build(&mut net)?;
    Ok(net)
}

/// Builds and solves the local model; `x_us` is the server compute time.
pub fn solve(arch: Architecture, n: u32, x_us: f64) -> Result<LocalSolution, ModelError> {
    solve_with_hosts(arch, n, x_us, 1)
}

/// As [`solve`], analyzing through an explicit engine.
pub fn solve_in(
    engine: &AnalysisEngine,
    arch: Architecture,
    n: u32,
    x_us: f64,
) -> Result<LocalSolution, ModelError> {
    solve_with_hosts_in(engine, arch, n, x_us, 1)
}

/// Solves the Chapter 7 multi-host extension (see [`build_with_hosts`]).
pub fn solve_with_hosts(
    arch: Architecture,
    n: u32,
    x_us: f64,
    hosts: u32,
) -> Result<LocalSolution, ModelError> {
    solve_with_hosts_in(crate::default_engine(), arch, n, x_us, hosts)
}

/// As [`solve_with_hosts`], analyzing through an explicit engine.
pub fn solve_with_hosts_in(
    engine: &AnalysisEngine,
    arch: Architecture,
    n: u32,
    x_us: f64,
    hosts: u32,
) -> Result<LocalSolution, ModelError> {
    let net = build_with_hosts(arch, n, x_us, hosts)?;
    let analysis = crate::analyze_in(engine, &net)?;
    // `lambda` sits on delay-1 exit transitions: usage == rate per µs.
    let per_us = analysis.resource_usage("lambda")?;
    Ok(LocalSolution {
        throughput_per_ms: per_us * 1_000.0,
        states: analysis.states(),
        backend: analysis.backend(),
        half_width_per_ms: analysis
            .resource_interval("lambda")
            .map(|ci| ci.half_width * 1_000.0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arch1_throughput_independent_of_conversations() {
        // §6.9.1: "for architecture I, the throughput for local
        // conversations is the same irrespective of the number of
        // conversations" — one host serializes everything.
        let t1 = solve(Architecture::Uniprocessor, 1, 0.0).unwrap();
        let t3 = solve(Architecture::Uniprocessor, 3, 0.0).unwrap();
        let rel = (t3.throughput_per_ms - t1.throughput_per_ms) / t1.throughput_per_ms;
        assert!(
            rel.abs() < 0.02,
            "t1 {} t3 {}",
            t1.throughput_per_ms,
            t3.throughput_per_ms
        );
        // And it matches 1/C with C = 4.97 ms.
        assert!(
            (t1.throughput_per_ms - 1_000.0 / 4_970.0).abs() / (1_000.0 / 4_970.0) < 0.02,
            "{}",
            t1.throughput_per_ms
        );
    }

    #[test]
    fn arch2_one_conversation_loses_little() {
        // §6.9.1: the single-conversation loss from the host–MP handoff is
        // small (≈10%).
        let a1 = solve(Architecture::Uniprocessor, 1, 0.0).unwrap();
        let a2 = solve(Architecture::MessageCoprocessor, 1, 0.0).unwrap();
        assert!(a2.throughput_per_ms < a1.throughput_per_ms);
        let loss = 1.0 - a2.throughput_per_ms / a1.throughput_per_ms;
        assert!(loss < 0.20, "loss {loss}");
    }

    #[test]
    fn arch3_beats_1_and_2_at_max_load() {
        let a1 = solve(Architecture::Uniprocessor, 2, 0.0).unwrap();
        let a2 = solve(Architecture::MessageCoprocessor, 2, 0.0).unwrap();
        let a3 = solve(Architecture::SmartBus, 2, 0.0).unwrap();
        assert!(a3.throughput_per_ms > a1.throughput_per_ms);
        assert!(a3.throughput_per_ms > a2.throughput_per_ms);
    }

    #[test]
    fn arch4_close_to_arch3() {
        // §6.9.3: partitioning the smart bus buys little.
        let a3 = solve(Architecture::SmartBus, 2, 0.0).unwrap();
        let a4 = solve(Architecture::PartitionedSmartBus, 2, 0.0).unwrap();
        let gain = a4.throughput_per_ms / a3.throughput_per_ms - 1.0;
        assert!(gain.abs() < 0.05, "gain {gain}");
    }

    #[test]
    fn chapter7_extra_hosts_help_computation_bound_loads() {
        // Figure 7.1's organization: one MP, several hosts. With heavy
        // server computation the host is the bottleneck, so a second host
        // buys real throughput; the MP eventually caps scaling.
        let x = 5_700.0;
        let one = solve_with_hosts(Architecture::MessageCoprocessor, 4, x, 1).unwrap();
        let two = solve_with_hosts(Architecture::MessageCoprocessor, 4, x, 2).unwrap();
        assert!(
            two.throughput_per_ms > one.throughput_per_ms * 1.3,
            "1 host {} vs 2 hosts {}",
            one.throughput_per_ms,
            two.throughput_per_ms
        );
        // At maximum communication load the MP is the bottleneck and more
        // hosts barely matter.
        let one = solve_with_hosts(Architecture::MessageCoprocessor, 4, 0.0, 1).unwrap();
        let two = solve_with_hosts(Architecture::MessageCoprocessor, 4, 0.0, 2).unwrap();
        let gain = two.throughput_per_ms / one.throughput_per_ms - 1.0;
        assert!(gain < 0.35, "gain {gain}");
    }

    #[test]
    fn partition_pays_off_with_computation() {
        // Figure 6.18's headline: with server computation in the mix and
        // several conversations, architecture II approaches 2x over I.
        let x = 2_850.0;
        let a1 = solve(Architecture::Uniprocessor, 3, x).unwrap();
        let a2 = solve(Architecture::MessageCoprocessor, 3, x).unwrap();
        let speedup = a2.throughput_per_ms / a1.throughput_per_ms;
        assert!(speedup > 1.3, "speedup {speedup}");
        assert!(speedup < 2.05, "speedup {speedup} exceeds the 2x bound");
    }
}
