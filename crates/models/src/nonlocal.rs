//! The §6.6.3 iterative solution of the split non-local models.
//!
//! The combined two-node system is solved by fixed point: the client model
//! is solved with an assumed server delay `S_d`; Little's result turns its
//! throughput into the mean time a client spends on its own node, whose
//! overlap-corrected value `C_d = (T − S_d) − S_c` parameterizes the server
//! model; the server model's Little's-law delay (plus the network
//! read/write times added outside the model, §6.6.4) becomes the next
//! `S_d`. Iteration stops when successive server delays agree within a
//! tolerance.

use crate::client::{self, ClientSolution};
use crate::server;
use crate::stages::stage_mean;
use crate::ModelError;
use archsim::timings::{ActivityKind as K, Architecture, Locality};
use gtpn::AnalysisEngine;

/// Converged solution of the non-local model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NonLocalSolution {
    /// Conversations per millisecond (Λ).
    pub throughput_per_ms: f64,
    /// Converged server delay `S_d`, µs.
    pub s_d_us: f64,
    /// Converged client-side delay `C_d`, µs.
    pub c_d_us: f64,
    /// Fixed-point iterations used.
    pub iterations: usize,
}

/// Relative convergence tolerance on `S_d`.
pub const FIXED_POINT_TOL: f64 = 1e-3;

/// Maximum fixed-point iterations.
pub const MAX_ITERATIONS: usize = 60;

/// Wire transit of one 40-byte packet on the 4 Mb/s ring, µs — a constant
/// added to `S_d` outside the model together with the DMA times (§6.6.4).
pub const WIRE_US: f64 = 112.0;

/// Solves the non-local model for `n` conversations and server compute
/// `x_us`.
///
/// # Errors
///
/// [`ModelError::NoFixedPoint`] if the §6.6.3 iteration stalls;
/// [`ModelError::Gtpn`] if a sub-model fails to solve.
pub fn solve(arch: Architecture, n: u32, x_us: f64) -> Result<NonLocalSolution, ModelError> {
    solve_with_hosts(arch, n, x_us, 1)
}

/// As [`solve`], analyzing through an explicit engine.
pub fn solve_in(
    engine: &AnalysisEngine,
    arch: Architecture,
    n: u32,
    x_us: f64,
) -> Result<NonLocalSolution, ModelError> {
    solve_with_hosts_in(engine, arch, n, x_us, 1)
}

/// As [`solve`] with `hosts` host processors per node — the paper's 925
/// validation configuration ran two hosts per node (§6.8).
pub fn solve_with_hosts(
    arch: Architecture,
    n: u32,
    x_us: f64,
    hosts: u32,
) -> Result<NonLocalSolution, ModelError> {
    solve_with_hosts_in(crate::default_engine(), arch, n, x_us, hosts)
}

/// As [`solve_with_hosts`], analyzing every sub-model through an explicit
/// engine — the §6.6.3 iteration re-solves nearly identical nets each
/// round, so the engine's solution cache pays off across iterations.
pub fn solve_with_hosts_in(
    engine: &AnalysisEngine,
    arch: Architecture,
    n: u32,
    x_us: f64,
    hosts: u32,
) -> Result<NonLocalSolution, ModelError> {
    let loc = Locality::NonLocal;
    // Network read/write constants added outside the model.
    let dma = stage_mean(arch, loc, &[K::DmaIn, K::DmaOut]);
    let outside = dma + 2.0 * WIRE_US;

    // Initial guess: the full communication chain plus the compute time.
    let mut s_d = archsim::timings::round_trip_us(arch, loc, true) + x_us;
    let mut c_d = s_d; // refined on the first pass
    let mut last_client: Option<ClientSolution> = None;
    let mut delta = f64::INFINITY;

    // One warm-start store per model role: along the iteration only the
    // surrogate delays change, so every client (resp. server) solve shares
    // one chain shape and seeds the next from its converged distribution.
    // The stores are function-local and travel with the closures below —
    // never with whichever thread join2 happens to place them on — so the
    // fixed-point trajectory stays bit-identical across core budgets.
    let mut warm_client = gtpn::engine::WarmStart::new();
    let mut warm_server = gtpn::engine::WarmStart::new();

    for it in 1..=MAX_ITERATIONS {
        // The client solve (parameterized by s_d) and the server probe
        // (parameterized by the *previous* c_d) are independent within an
        // iteration — run them concurrently when the engine's core budget
        // has room. join2 returns identical results either way, so the
        // fixed-point trajectory does not depend on thread availability.
        let (cl, sv_probe) = {
            let (wc, wsv) = (&mut warm_client, &mut warm_server);
            gtpn::par::join2(
                engine.budget(),
                move || client::solve_with_hosts_warm_in(engine, arch, n, s_d, hosts, wc),
                move || {
                    server::solve_with_hosts_warm_in(
                        engine,
                        arch,
                        n,
                        x_us,
                        c_d.max(1.0),
                        hosts,
                        wsv,
                    )
                },
            )
        };
        let cl = cl?;
        let sv_probe = sv_probe?;
        let c_d_prime = cl.cycle_us - s_d;
        last_client = Some(cl);

        c_d = (c_d_prime - sv_probe.s_c_us).max(1.0);
        let sv =
            server::solve_with_hosts_warm_in(engine, arch, n, x_us, c_d, hosts, &mut warm_server)?;
        let s_d_new = sv.s_d_us + outside;

        delta = (s_d_new - s_d).abs() / s_d.max(1.0);
        // Damping stabilizes the alternation at high loads.
        s_d = 0.5 * s_d + 0.5 * s_d_new;
        if delta < FIXED_POINT_TOL {
            let cl =
                client::solve_with_hosts_warm_in(engine, arch, n, s_d, hosts, &mut warm_client)?;
            return Ok(NonLocalSolution {
                throughput_per_ms: cl.lambda_per_us * 1_000.0,
                s_d_us: s_d,
                c_d_us: c_d,
                iterations: it,
            });
        }
    }
    if let Some(cl) = last_client {
        // Near-converged result is still useful when delta is small.
        if delta < 10.0 * FIXED_POINT_TOL {
            return Ok(NonLocalSolution {
                throughput_per_ms: cl.lambda_per_us * 1_000.0,
                s_d_us: s_d,
                c_d_us: c_d,
                iterations: MAX_ITERATIONS,
            });
        }
    }
    Err(ModelError::NoFixedPoint {
        iterations: MAX_ITERATIONS,
        delta,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_for_single_conversation() {
        let s = solve(Architecture::MessageCoprocessor, 1, 0.0).unwrap();
        assert!(s.throughput_per_ms > 0.0);
        assert!(s.iterations < MAX_ITERATIONS);
        // One conversation: throughput ≈ 1 / (client chain + S_d).
        assert!(s.s_d_us > 1_000.0, "S_d {}", s.s_d_us);
    }

    #[test]
    fn throughput_grows_with_conversations() {
        let one = solve(Architecture::MessageCoprocessor, 1, 0.0).unwrap();
        let three = solve(Architecture::MessageCoprocessor, 3, 0.0).unwrap();
        assert!(
            three.throughput_per_ms > one.throughput_per_ms * 1.3,
            "1: {} 3: {}",
            one.throughput_per_ms,
            three.throughput_per_ms
        );
    }

    #[test]
    fn arch3_beats_arch1_nonlocal() {
        // Figure 6.17(b): architecture III performs significantly better.
        let a1 = solve(Architecture::Uniprocessor, 2, 0.0).unwrap();
        let a3 = solve(Architecture::SmartBus, 2, 0.0).unwrap();
        assert!(
            a3.throughput_per_ms > a1.throughput_per_ms * 1.2,
            "I: {} III: {}",
            a1.throughput_per_ms,
            a3.throughput_per_ms
        );
    }
}
