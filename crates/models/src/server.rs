//! The non-local *server-node* model (Figures 6.11 / 6.14).
//!
//! All `n` servers run on one node; each conversation token cycles through
//! receive posting → a surrogate *client delay* of mean `C_d` (the time
//! "its" client spends away, §6.6.3) → request arrival → match (the
//! network-interrupt processing, which has priority) → server restart +
//! compute + reply → reply processing → back to receive.
//!
//! The mean number of customers between arrival and reply completion,
//! together with the arrival rate, gives the server delay `S_d` by Little's
//! law — the quantity the paper instruments with its `Queue` place.

use crate::stages::{clamp_mean, stage_mean};
use crate::ModelError;
use archsim::timings::{ActivityKind as K, Architecture, Locality};
use gtpn::geometric::GeometricStage;
use gtpn::{AnalysisEngine, Expr, Net, PlaceId, TransId};

/// Solution of the server model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerSolution {
    /// Client-request arrival rate per µs (λ).
    pub arrival_per_us: f64,
    /// Mean customers in the served system (N).
    pub in_system: f64,
    /// Little's-law server delay `N / λ`, µs.
    pub s_d_us: f64,
    /// Receive-execution time overlapped with the client's absence (the
    /// paper's `S_c`), µs.
    pub s_c_us: f64,
    /// Tangible states in the chain.
    pub states: usize,
}

struct Built {
    net: Net,
    req_pending: PlaceId,
    matched: PlaceId,
    run_done: Option<PlaceId>,
    system_stages: Vec<(TransId, TransId)>,
    s_c_us: f64,
}

fn build(arch: Architecture, n: u32, x_us: f64, c_d: f64, hosts: u32) -> Result<Built, ModelError> {
    assert!(hosts >= 1, "a node needs at least one host");
    let loc = Locality::NonLocal;
    let mut net = Net::new(format!("{arch}-nonlocal-server-{n}conv-{hosts}hosts"));
    let servers = net.add_place("Servers", n);
    let host = net.add_place("Host", hosts);
    let waiting = net.add_place("ClientWait", 0);
    let req_pending = net.add_place("ReqPending", 0);
    let matched = net.add_place("Matched", 0);
    let intr_proc = if arch.has_mp() {
        net.add_place("MP", 1)
    } else {
        host
    };

    // Match (interrupt-priority work) first, for the gate expressions.
    let match_stage = GeometricStage::new("match", clamp_mean(stage_mean(arch, loc, &[K::Match])))
        .input(req_pending, 1)
        .held(intr_proc)
        .output(matched, 1)
        .build(&mut net)?;
    let g = Expr::all([
        Expr::place_empty(req_pending),
        Expr::not_firing(match_stage.0),
        Expr::not_firing(match_stage.1),
    ]);

    // Receive posting: host syscall (+ restart-after-reply on II-IV, the
    // Table 6.13 T13/T14 grouping), then MP processing on II-IV.
    let recv_host_mean = if arch.has_mp() {
        stage_mean(arch, loc, &[K::SyscallReceive, K::RestartServerAfterReply])
    } else {
        stage_mean(arch, loc, &[K::SyscallReceive])
    };
    let after_recv = if arch.has_mp() {
        net.add_place("RecvSubmitted", 0)
    } else {
        waiting
    };
    {
        let mut stage = GeometricStage::new("recv_host", clamp_mean(recv_host_mean))
            .input(servers, 1)
            .held(host)
            .output(after_recv, 1);
        if !arch.has_mp() {
            stage = stage.gate(g.clone()); // Table 6.8's gated T0/T1
        }
        stage.build(&mut net)?;
    }
    let mut s_c_us = recv_host_mean;
    if arch.has_mp() {
        let m = stage_mean(arch, loc, &[K::ProcessReceive]);
        s_c_us += m;
        GeometricStage::new("process_receive", clamp_mean(m))
            .input(after_recv, 1)
            .held(intr_proc)
            .gate(g.clone())
            .output(waiting, 1)
            .build(&mut net)?;
    }

    // Surrogate client delay; its exits are the request arrivals (λ).
    GeometricStage::new("client_delay", clamp_mean(c_d))
        .input(waiting, 1)
        .output(req_pending, 1)
        .resource("arrival")
        .build(&mut net)?;

    // Server restart + compute + reply syscall on the host.
    let run_mean = if arch.has_mp() {
        stage_mean(arch, loc, &[K::RestartServer, K::SyscallReply]) + x_us
    } else {
        stage_mean(arch, loc, &[K::SyscallReply]) + x_us
    };
    let mut system_stages = vec![match_stage];
    if arch.has_mp() {
        let run_done = net.add_place("RunDone", 0);
        let run = GeometricStage::new("server_run", clamp_mean(run_mean))
            .input(matched, 1)
            .held(host)
            .output(run_done, 1)
            .build(&mut net)?;
        let reply = GeometricStage::new(
            "process_reply",
            clamp_mean(stage_mean(arch, loc, &[K::ProcessReply])),
        )
        .input(run_done, 1)
        .held(intr_proc)
        .gate(g)
        .output(servers, 1)
        .resource("served")
        .build(&mut net)?;
        system_stages.push(run);
        system_stages.push(reply);
        Ok(Built {
            net,
            req_pending,
            matched,
            run_done: Some(run_done),
            system_stages,
            s_c_us,
        })
    } else {
        // Architecture I: the reply syscall completes the service.
        let run = GeometricStage::new("server_run", clamp_mean(run_mean))
            .input(matched, 1)
            .held(host)
            .gate(g)
            .output(servers, 1)
            .resource("served")
            .build(&mut net)?;
        system_stages.push(run);
        Ok(Built {
            net,
            req_pending,
            matched,
            run_done: None,
            system_stages,
            s_c_us,
        })
    }
}

/// Builds and solves the server model for compute time `x_us` and surrogate
/// client delay `c_d` µs.
pub fn solve(
    arch: Architecture,
    n: u32,
    x_us: f64,
    c_d: f64,
) -> Result<ServerSolution, ModelError> {
    solve_with_hosts(arch, n, x_us, c_d, 1)
}

/// As [`solve`] with `hosts` host processors on the server node.
pub fn solve_with_hosts(
    arch: Architecture,
    n: u32,
    x_us: f64,
    c_d: f64,
    hosts: u32,
) -> Result<ServerSolution, ModelError> {
    solve_with_hosts_in(crate::default_engine(), arch, n, x_us, c_d, hosts)
}

/// As [`solve_with_hosts`], analyzing through an explicit engine.
pub fn solve_with_hosts_in(
    engine: &AnalysisEngine,
    arch: Architecture,
    n: u32,
    x_us: f64,
    c_d: f64,
    hosts: u32,
) -> Result<ServerSolution, ModelError> {
    solve_inner(engine, arch, n, x_us, c_d, hosts, None)
}

/// As [`solve_with_hosts_in`], threading a warm-start store: the §6.6.3
/// iteration re-solves the server net with a new surrogate delay `c_d`
/// each round, and all those nets share one chain shape.
pub fn solve_with_hosts_warm_in(
    engine: &AnalysisEngine,
    arch: Architecture,
    n: u32,
    x_us: f64,
    c_d: f64,
    hosts: u32,
    warm: &mut gtpn::engine::WarmStart,
) -> Result<ServerSolution, ModelError> {
    solve_inner(engine, arch, n, x_us, c_d, hosts, Some(warm))
}

#[allow(clippy::too_many_arguments)]
fn solve_inner(
    engine: &AnalysisEngine,
    arch: Architecture,
    n: u32,
    x_us: f64,
    c_d: f64,
    hosts: u32,
    warm: Option<&mut gtpn::engine::WarmStart>,
) -> Result<ServerSolution, ModelError> {
    let built = build(arch, n, x_us, c_d, hosts)?;
    let analysis = crate::analyze_warm_in(engine, &built.net, warm)?;
    let lambda = analysis.resource_usage("arrival")?;
    // Customers in system: queued requests + tokens between stages + all
    // in-progress service firings.
    let mut n_sys = analysis.mean_tokens(built.req_pending) + analysis.mean_tokens(built.matched);
    if let Some(p) = built.run_done {
        n_sys += analysis.mean_tokens(p);
    }
    for (exit, looped) in &built.system_stages {
        n_sys += analysis.transition_usage(*exit) + analysis.transition_usage(*looped);
    }
    Ok(ServerSolution {
        arrival_per_us: lambda,
        in_system: n_sys,
        s_d_us: n_sys / lambda,
        s_c_us: built.s_c_us,
        states: analysis.states(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_server_delay_is_service_chain() {
        // One conversation, enormous client delay: no queueing, so S_d is
        // just match + run + reply.
        let s = solve(Architecture::MessageCoprocessor, 1, 0.0, 50_000.0).unwrap();
        let loc = Locality::NonLocal;
        let expect = stage_mean(
            Architecture::MessageCoprocessor,
            loc,
            &[K::Match, K::RestartServer, K::SyscallReply, K::ProcessReply],
        );
        assert!(
            (s.s_d_us - expect).abs() / expect < 0.05,
            "S_d {} vs {}",
            s.s_d_us,
            expect
        );
    }

    #[test]
    fn queueing_grows_delay() {
        // Four conversations hammering the node: S_d inflates well past the
        // raw service chain.
        let light = solve(Architecture::MessageCoprocessor, 1, 0.0, 20_000.0).unwrap();
        let heavy = solve(Architecture::MessageCoprocessor, 4, 0.0, 1_000.0).unwrap();
        assert!(
            heavy.s_d_us > light.s_d_us * 1.2,
            "{} vs {}",
            heavy.s_d_us,
            light.s_d_us
        );
    }

    #[test]
    fn compute_time_extends_delay() {
        let no_x = solve(Architecture::SmartBus, 2, 0.0, 10_000.0).unwrap();
        let with_x = solve(Architecture::SmartBus, 2, 2_000.0, 10_000.0).unwrap();
        assert!(with_x.s_d_us > no_x.s_d_us + 1_000.0);
    }

    #[test]
    fn arch1_server_builds_and_solves() {
        let s = solve(Architecture::Uniprocessor, 2, 500.0, 8_000.0).unwrap();
        assert!(s.arrival_per_us > 0.0);
        assert!(s.in_system > 0.0);
        assert!(s.s_c_us > 0.0);
    }
}
