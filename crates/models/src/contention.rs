//! The low-level shared-memory contention model (§6.6.2, Figure 6.8,
//! Tables 6.2/6.3).
//!
//! Exact modeling of memory-cycle contention inside the big conversation
//! nets would explode their state spaces, so the paper solves a small model
//! once per activity mix: each activity cycles through unit steps, a step
//! being a shared-memory access with probability `m/b` (`m` = memory-access
//! time, `b` = best completion time) and pure processing otherwise; a
//! memory-access step needs the single memory-port token, and a blocked
//! access stalls the activity for the step. The reciprocal of an activity's
//! completion rate is its "contention" completion time — the numbers in the
//! tables' Contention columns.

use crate::ModelError;
use gtpn::{AnalysisEngine, Expr, Net, Transition};

/// One contending activity: a name, its pure completion time (the "Best"
/// column) and its shared-memory access time within that.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContendingActivity {
    /// Name (diagnostics and result labeling).
    pub name: &'static str,
    /// Contention-free completion time, µs.
    pub best_us: f64,
    /// Shared-memory access time within `best_us`, µs.
    pub memory_us: f64,
}

/// Builds the Figure 6.8 net for a set of concurrently-cycling activities.
pub fn build(activities: &[ContendingActivity]) -> Result<Net, ModelError> {
    let mut net = Net::new("contention");
    let port = net.add_place("MemoryPort", 1);
    for a in activities {
        let p = net.add_place(a.name, 1);
        let b = a.best_us.max(1.0);
        let exit_f = 1.0 / b;
        let mem_f = (a.memory_us / b).min(1.0 - exit_f);
        let cpu_f = (1.0 - exit_f - mem_f).max(0.0);
        let port_free = Expr::Not(Box::new(Expr::place_empty(port)));
        // Completion step. A stalled tick makes no progress, so on a
        // port-busy tick the per-tick exit probability scales by the
        // probability the tick is not a (blocked) memory tick — this is
        // what stretches the completion time toward `b / (1 - mu*q)`.
        net.add_transition(
            Transition::new(format!("{}_exit", a.name))
                .delay(1)
                .frequency(Expr::If(
                    Box::new(port_free.clone()),
                    Box::new(Expr::constant(exit_f)),
                    Box::new(Expr::constant(exit_f * (1.0 - mem_f))),
                ))
                .resource(format!("{}_done", a.name))
                .input(p, 1)
                .output(p, 1),
        )?;
        // Pure processing step (the remainder of the tick distribution).
        net.add_transition(
            Transition::new(format!("{}_cpu", a.name))
                .delay(1)
                .frequency(Expr::If(
                    Box::new(port_free),
                    Box::new(Expr::constant(cpu_f)),
                    Box::new(Expr::constant(
                        (1.0 - mem_f - exit_f * (1.0 - mem_f)).max(0.0),
                    )),
                ))
                .input(p, 1)
                .output(p, 1),
        )?;
        // Memory-access step: needs the port.
        net.add_transition(
            Transition::new(format!("{}_mem", a.name))
                .delay(1)
                .frequency(Expr::constant(mem_f))
                .input(p, 1)
                .input(port, 1)
                .output(p, 1)
                .output(port, 1),
        )?;
        // Stalled access: the port is taken; the activity burns the step.
        net.add_transition(
            Transition::new(format!("{}_stall", a.name))
                .delay(1)
                .frequency(Expr::gate(Expr::place_empty(port), Expr::constant(mem_f)))
                .input(p, 1)
                .output(p, 1),
        )?;
    }
    Ok(net)
}

/// Solves the contention model: returns each activity's contention
/// completion time (µs), in input order.
pub fn completion_times(activities: &[ContendingActivity]) -> Result<Vec<f64>, ModelError> {
    completion_times_in(crate::default_engine(), activities)
}

/// As [`completion_times`], analyzing through an explicit engine.
pub fn completion_times_in(
    engine: &AnalysisEngine,
    activities: &[ContendingActivity],
) -> Result<Vec<f64>, ModelError> {
    let net = build(activities)?;
    let analysis = crate::analyze_in(engine, &net)?;
    activities
        .iter()
        .map(|a| {
            let rate = analysis.resource_usage(&format!("{}_done", a.name))?;
            Ok(1.0 / rate)
        })
        .collect()
}

/// The Table 6.2 mix: architecture I non-local client-node activities.
pub const TABLE_6_2: &[ContendingActivity] = &[
    ContendingActivity {
        name: "SendProc",
        best_us: 1290.0,
        memory_us: 150.0,
    },
    ContendingActivity {
        name: "DMAout",
        best_us: 230.0,
        memory_us: 30.0,
    },
    ContendingActivity {
        name: "DMAin",
        best_us: 230.0,
        memory_us: 30.0,
    },
    ContendingActivity {
        name: "NetIntr",
        best_us: 960.0,
        memory_us: 130.0,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contention_inflates_but_stays_close_to_table_6_2() {
        // Published contention times: 1314.9, 235.2, 235.2, 982 — inflation
        // of roughly 2%. Our stall-step model reproduces the direction and
        // magnitude (within 3% of the published values).
        let times = completion_times(TABLE_6_2).unwrap();
        let published = [1314.9, 235.2, 235.2, 982.0];
        for ((a, &got), &want) in TABLE_6_2.iter().zip(&times).zip(&published) {
            assert!(
                got > a.best_us,
                "{}: {got} should exceed best {}",
                a.name,
                a.best_us
            );
            let rel = (got - want).abs() / want;
            assert!(rel < 0.03, "{}: got {got}, published {want}", a.name);
        }
    }

    #[test]
    fn no_contention_for_a_single_activity() {
        let only = [ContendingActivity {
            name: "solo",
            best_us: 500.0,
            memory_us: 100.0,
        }];
        let t = completion_times(&only).unwrap();
        assert!((t[0] - 500.0).abs() / 500.0 < 0.01, "{}", t[0]);
    }

    #[test]
    fn memory_free_activity_never_inflates() {
        let acts = [
            ContendingActivity {
                name: "pure",
                best_us: 400.0,
                memory_us: 0.0,
            },
            ContendingActivity {
                name: "hog",
                best_us: 100.0,
                memory_us: 90.0,
            },
        ];
        let t = completion_times(&acts).unwrap();
        assert!((t[0] - 400.0).abs() / 400.0 < 0.01, "pure: {}", t[0]);
        // The hog contends with nobody (its partner never touches memory),
        // so it runs at its best time too.
        assert!((t[1] - 100.0).abs() / 100.0 < 0.01, "hog: {}", t[1]);
    }
}
