//! Shared helpers for assembling the chapter-6 nets from the timing tables.

use archsim::timings::{activity, Activity, ActivityKind, Architecture, Locality};

/// Mean stage duration (µs) for a set of activity kinds, using the paper's
/// contention completion times (the models' frequency expressions are built
/// from the contention column, §6.6.2).
pub fn stage_mean(arch: Architecture, locality: Locality, kinds: &[ActivityKind]) -> f64 {
    kinds
        .iter()
        .filter_map(|&k| activity(arch, locality, k))
        .map(|a| a.contention_us)
        .sum()
}

/// Contention-free mean (the "Best" column), for comparisons.
#[allow(dead_code)]
pub fn stage_mean_best(arch: Architecture, locality: Locality, kinds: &[ActivityKind]) -> f64 {
    kinds
        .iter()
        .filter_map(|&k| activity(arch, locality, k))
        .map(Activity::best_us)
        .sum()
}

/// Rounds a mean to at least one time unit (geometric stages need mean ≥ 1).
pub fn clamp_mean(mean: f64) -> f64 {
    mean.max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ActivityKind as K;

    #[test]
    fn arch2_local_client_stage_matches_table_6_10() {
        // T0 frequency 1/519.9 ~ contention(1) + contention(9) = 520.3.
        let m = stage_mean(
            Architecture::MessageCoprocessor,
            Locality::Local,
            &[K::SyscallSend, K::RestartClient],
        );
        assert!((m - 520.3).abs() < 1.0, "mean {m}");
    }

    #[test]
    fn missing_activities_contribute_zero() {
        // Architecture I has no ProcessSend.
        let m = stage_mean(
            Architecture::Uniprocessor,
            Locality::Local,
            &[K::ProcessSend],
        );
        assert_eq!(m, 0.0);
        assert_eq!(clamp_mean(m), 1.0);
    }

    #[test]
    fn best_leq_contention() {
        let kinds = [K::SyscallSend, K::Match, K::ProcessReply];
        let b = stage_mean_best(Architecture::SmartBus, Locality::NonLocal, &kinds);
        let c = stage_mean(Architecture::SmartBus, Locality::NonLocal, &kinds);
        assert!(b <= c);
    }
}
