//! The non-local *client-node* model (Figures 6.10 / 6.13).
//!
//! All `n` clients run on one node; the remote server system is a surrogate
//! geometric delay of mean `S_d` (§6.6.3). Network interfaces are the
//! single-token places `IoOut` / `IoIn`; a completed inbound DMA deposits a
//! token in `NetIntr`, and interrupt-priority gating — the tables'
//! `(NetIntr = 0) & !T & !T'` expressions — freezes ordinary kernel
//! processing while an interrupt is pending or being cleaned up. On
//! Architecture I the host fields interrupts; on II–IV the MP does.

use crate::stages::{clamp_mean, stage_mean};
use crate::ModelError;
use archsim::timings::{ActivityKind as K, Architecture, Locality};
use gtpn::geometric::GeometricStage;
use gtpn::{AnalysisEngine, Expr, Net, TransId};

/// Solution of the client model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClientSolution {
    /// Round-trip completion rate per microsecond (Λ).
    pub lambda_per_us: f64,
    /// Mean client cycle time `T = n / Λ`, µs.
    pub cycle_us: f64,
    /// Tangible states in the chain.
    pub states: usize,
}

fn gate(intr: gtpn::PlaceId, cleanup: (TransId, TransId)) -> Expr {
    Expr::all([
        Expr::place_empty(intr),
        Expr::not_firing(cleanup.0),
        Expr::not_firing(cleanup.1),
    ])
}

/// Builds the client-node net for `n` conversations with surrogate server
/// delay `s_d` µs.
pub fn build(arch: Architecture, n: u32, s_d: f64) -> Result<Net, ModelError> {
    build_with_hosts(arch, n, s_d, 1)
}

/// As [`build`] with `hosts` host processors on the node (the 925 test-bed
/// ran two; see also the Chapter 7 extension).
pub fn build_with_hosts(
    arch: Architecture,
    n: u32,
    s_d: f64,
    hosts: u32,
) -> Result<Net, ModelError> {
    assert!(hosts >= 1, "a node needs at least one host");
    let loc = Locality::NonLocal;
    let mut net = Net::new(format!("{arch}-nonlocal-client-{n}conv-{hosts}hosts"));
    let clients = net.add_place("Clients", n);
    let host = net.add_place("Host", hosts);
    let io_out = net.add_place("IoOut", 1);
    let io_in = net.add_place("IoIn", 1);
    let net_intr = net.add_place("NetIntr", 0);
    let ready_dma = net.add_place("ReadyToDma", 0);
    let waiting = net.add_place("Waiting", 0);
    let resp = net.add_place("RespArrived", 0);

    // The interrupt processor: host on I, MP on II-IV.
    let intr_proc = if arch.has_mp() {
        net.add_place("MP", 1)
    } else {
        host
    };

    // Cleanup (reply-packet interrupt processing) built first so the gating
    // expressions can name its transitions. On Architecture I the table's
    // action 7 bundles cleanup and client restart.
    let cleanup_mean = if arch.has_mp() {
        stage_mean(arch, loc, &[K::CleanupClient])
    } else {
        stage_mean(arch, loc, &[K::CleanupClient, K::RestartClient])
    };
    let cleanup = GeometricStage::new("cleanup", clamp_mean(cleanup_mean))
        .input(net_intr, 1)
        .held(intr_proc)
        .output(clients, 1)
        .resource("lambda")
        .build(&mut net)?;
    let g = gate(net_intr, cleanup);

    // Client send: syscall (+ restart on II-IV, bundled as in Table 6.12's
    // T0 grouping of actions 1 and 10).
    let send_mean = if arch.has_mp() {
        stage_mean(arch, loc, &[K::SyscallSend, K::RestartClient])
    } else {
        stage_mean(arch, loc, &[K::SyscallSend])
    };
    let after_send = if arch.has_mp() {
        net.add_place("SendSubmitted", 0)
    } else {
        ready_dma
    };
    {
        let mut stage = GeometricStage::new("send", clamp_mean(send_mean))
            .input(clients, 1)
            .held(host)
            .output(after_send, 1);
        if !arch.has_mp() {
            // The host is the interrupt processor: sends stall during
            // interrupt handling (Table 6.7's gated T1/T2).
            stage = stage.gate(g.clone());
        }
        stage.build(&mut net)?;
    }

    // MP processing of the send (II-IV), gated per Table 6.12's T3/T4.
    if arch.has_mp() {
        GeometricStage::new(
            "process_send",
            clamp_mean(stage_mean(arch, loc, &[K::ProcessSend])),
        )
        .input(after_send, 1)
        .held(intr_proc)
        .gate(g.clone())
        .output(ready_dma, 1)
        .build(&mut net)?;
    }

    // Outgoing DMA (ungated in both table sets).
    GeometricStage::new("dma_out", clamp_mean(stage_mean(arch, loc, &[K::DmaOut])))
        .input(ready_dma, 1)
        .held(io_out)
        .output(waiting, 1)
        .build(&mut net)?;

    // Surrogate server delay (infinite-server: every waiting client ages
    // independently).
    GeometricStage::new("server_delay", clamp_mean(s_d))
        .input(waiting, 1)
        .output(resp, 1)
        .build(&mut net)?;

    // Incoming DMA, gated: the interface does not raise a new interrupt
    // while one is outstanding (Table 6.7 T11/T12, Table 6.12 T13/T14).
    GeometricStage::new("dma_in", clamp_mean(stage_mean(arch, loc, &[K::DmaIn])))
        .input(resp, 1)
        .held(io_in)
        .gate(g)
        .output(net_intr, 1)
        .build(&mut net)?;

    Ok(net)
}

/// Builds and solves the client model.
pub fn solve(arch: Architecture, n: u32, s_d: f64) -> Result<ClientSolution, ModelError> {
    solve_with_hosts(arch, n, s_d, 1)
}

/// As [`solve`] with `hosts` host processors.
pub fn solve_with_hosts(
    arch: Architecture,
    n: u32,
    s_d: f64,
    hosts: u32,
) -> Result<ClientSolution, ModelError> {
    solve_with_hosts_in(crate::default_engine(), arch, n, s_d, hosts)
}

/// As [`solve_with_hosts`], analyzing through an explicit engine.
pub fn solve_with_hosts_in(
    engine: &AnalysisEngine,
    arch: Architecture,
    n: u32,
    s_d: f64,
    hosts: u32,
) -> Result<ClientSolution, ModelError> {
    solve_inner(engine, arch, n, s_d, hosts, None)
}

/// As [`solve_with_hosts_in`], threading a warm-start store: along the
/// §6.6.3 iteration only the surrogate delay `s_d` changes, so every
/// client net shares one chain shape and each solve can start from the
/// previous iteration's converged distribution.
pub fn solve_with_hosts_warm_in(
    engine: &AnalysisEngine,
    arch: Architecture,
    n: u32,
    s_d: f64,
    hosts: u32,
    warm: &mut gtpn::engine::WarmStart,
) -> Result<ClientSolution, ModelError> {
    solve_inner(engine, arch, n, s_d, hosts, Some(warm))
}

fn solve_inner(
    engine: &AnalysisEngine,
    arch: Architecture,
    n: u32,
    s_d: f64,
    hosts: u32,
    warm: Option<&mut gtpn::engine::WarmStart>,
) -> Result<ClientSolution, ModelError> {
    let net = build_with_hosts(arch, n, s_d, hosts)?;
    let analysis = crate::analyze_warm_in(engine, &net, warm)?;
    let lambda = analysis.resource_usage("lambda")?;
    Ok(ClientSolution {
        lambda_per_us: lambda,
        cycle_us: f64::from(n) / lambda,
        states: analysis.states(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_client_cycle_time_is_chain_sum() {
        // One client: T = send + process send + dma out + S_d + dma in +
        // cleanup (no contention with anyone).
        let s_d = 3_000.0;
        let c = solve(Architecture::MessageCoprocessor, 1, s_d).unwrap();
        let loc = Locality::NonLocal;
        let expect = stage_mean(
            Architecture::MessageCoprocessor,
            loc,
            &[
                K::SyscallSend,
                K::RestartClient,
                K::ProcessSend,
                K::DmaOut,
                K::DmaIn,
                K::CleanupClient,
            ],
        ) + s_d;
        assert!(
            (c.cycle_us - expect).abs() / expect < 0.02,
            "cycle {} vs {}",
            c.cycle_us,
            expect
        );
    }

    #[test]
    fn more_clients_more_throughput() {
        let s_d = 5_000.0;
        let one = solve(Architecture::MessageCoprocessor, 1, s_d).unwrap();
        let three = solve(Architecture::MessageCoprocessor, 3, s_d).unwrap();
        assert!(three.lambda_per_us > one.lambda_per_us * 1.5);
    }

    #[test]
    fn arch1_client_builds_and_solves() {
        let c = solve(Architecture::Uniprocessor, 2, 4_000.0).unwrap();
        assert!(c.lambda_per_us > 0.0);
        assert!(c.states > 1);
    }
}
