//! Offered-load tables (6.24 / 6.25).
//!
//! Offered load is `C / (C + S)` — the fraction of a conversation's demand
//! that is communication processing — where `C` is architecture-dependent
//! and `S` is the workload's server time. The paper tabulates thirteen
//! server times from 0 to 45.6 ms.

use archsim::timings::{offered_load, Architecture, Locality};

/// The server times (ms) of Tables 6.24/6.25.
pub const SERVER_TIMES_MS: [f64; 13] = [
    0.0, 0.57, 1.14, 1.71, 2.85, 5.7, 11.4, 17.1, 22.8, 28.5, 34.2, 39.9, 45.6,
];

/// One row of Table 6.24/6.25: server time and the offered load under each
/// architecture.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OfferedLoadRow {
    /// Server computation time, milliseconds.
    pub server_ms: f64,
    /// Offered load per architecture, in I, II, III, IV order.
    pub loads: [f64; 4],
}

/// Computes one row of Table 6.24/6.25 — an independent sweep point.
pub fn row(locality: Locality, server_ms: f64) -> OfferedLoadRow {
    let s_us = server_ms * 1_000.0;
    let loads = [
        offered_load(Architecture::Uniprocessor, locality, s_us),
        offered_load(Architecture::MessageCoprocessor, locality, s_us),
        offered_load(Architecture::SmartBus, locality, s_us),
        offered_load(Architecture::PartitionedSmartBus, locality, s_us),
    ];
    OfferedLoadRow { server_ms, loads }
}

/// Computes the full table for `locality`.
pub fn table(locality: Locality) -> Vec<OfferedLoadRow> {
    SERVER_TIMES_MS
        .iter()
        .map(|&server_ms| row(locality, server_ms))
        .collect()
}

/// Server time (µs) that produces a given offered load under architecture
/// I — used to sweep the figures' x-axes, which plot "offered load computed
/// for architecture I" (§6.9.2).
pub fn server_time_for_load_arch1(locality: Locality, load: f64) -> f64 {
    assert!(load > 0.0 && load <= 1.0, "offered load must be in (0, 1]");
    let c = archsim::timings::round_trip_us(Architecture::Uniprocessor, locality, false);
    c * (1.0 - load) / load
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_server_time_is_unit_load() {
        for row in [table(Locality::Local), table(Locality::NonLocal)] {
            assert_eq!(row[0].server_ms, 0.0);
            for l in row[0].loads {
                assert_eq!(l, 1.0);
            }
        }
    }

    #[test]
    fn loads_decrease_with_server_time() {
        let t = table(Locality::Local);
        for w in t.windows(2) {
            for i in 0..4 {
                assert!(w[1].loads[i] < w[0].loads[i]);
            }
        }
    }

    #[test]
    fn spot_check_table_6_24() {
        // S = 1.14 ms local, architecture I: 0.813.
        let t = table(Locality::Local);
        let row = t
            .iter()
            .find(|r| (r.server_ms - 1.14).abs() < 1e-9)
            .unwrap();
        assert!((row.loads[0] - 0.813).abs() < 0.005, "{}", row.loads[0]);
        // Architecture IV always offers the least load for a given S.
        for r in &t[1..] {
            assert!(r.loads[3] <= r.loads[2] + 1e-12);
            assert!(r.loads[2] < r.loads[0]);
        }
    }

    #[test]
    fn load_inversion_round_trips() {
        for load in [0.9, 0.5, 0.2] {
            let s = server_time_for_load_arch1(Locality::Local, load);
            let back =
                archsim::timings::offered_load(Architecture::Uniprocessor, Locality::Local, s);
            assert!((back - load).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "offered load")]
    fn zero_load_rejected() {
        server_time_for_load_arch1(Locality::Local, 0.0);
    }
}
