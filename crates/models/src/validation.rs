//! Model validation (Figure 6.15).
//!
//! The thesis validates its GTPN models against measurements of the 925
//! implementation (architecture II, non-local, with two hosts per node and
//! an extra network-buffer copy). Our stand-in for the experimental system
//! is the `archsim` discrete-event simulator, which runs the real kernel
//! logic with task binding, FCFS scheduling and explicit packets — the same
//! classes of detail the 925 had and the analytical model abstracts away
//! (geometric delays, processor sharing, load leveling).
//!
//! The paper reports agreement within 3% (one conversation) to 10% at high
//! offered loads, degrading to ~25% at low offered loads where the model's
//! load-leveling makes it optimistic. [`compare`] reproduces that exercise
//! point-by-point.

use crate::{nonlocal, ModelError};
use archsim::timings::{Architecture, Locality};
use archsim::{Simulation, WorkloadSpec};
use gtpn::AnalysisEngine;

/// One validation point: model prediction vs "experimental" measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValidationPoint {
    /// Number of conversations.
    pub conversations: u32,
    /// Server compute time, µs.
    pub server_us: f64,
    /// GTPN model throughput, conversations/ms.
    pub model_per_ms: f64,
    /// Discrete-event "experimental" throughput, conversations/ms.
    pub measured_per_ms: f64,
}

impl ValidationPoint {
    /// Relative deviation of the model from the measurement.
    pub fn deviation(&self) -> f64 {
        (self.model_per_ms - self.measured_per_ms).abs() / self.measured_per_ms
    }
}

/// Runs one validation point: architecture II, non-local conversations.
///
/// # Errors
///
/// Propagates model-solution failures.
pub fn compare(
    conversations: u32,
    server_us: f64,
    seed: u64,
) -> Result<ValidationPoint, ModelError> {
    compare_in(crate::default_engine(), conversations, server_us, seed)
}

/// As [`compare`], analyzing the model half through an explicit engine.
///
/// # Errors
///
/// Propagates model-solution failures.
pub fn compare_in(
    engine: &AnalysisEngine,
    conversations: u32,
    server_us: f64,
    seed: u64,
) -> Result<ValidationPoint, ModelError> {
    let model = nonlocal::solve_in(
        engine,
        Architecture::MessageCoprocessor,
        conversations,
        server_us,
    )?;
    let spec = WorkloadSpec {
        conversations: conversations as usize,
        server_compute_us: server_us,
        locality: Locality::NonLocal,
        horizon_us: 4_000_000.0,
        warmup_us: 400_000.0,
        seed,
    };
    let measured = Simulation::new(Architecture::MessageCoprocessor, &spec).run();
    Ok(ValidationPoint {
        conversations,
        server_us,
        model_per_ms: model.throughput_per_ms,
        measured_per_ms: measured.throughput_per_ms,
    })
}

/// The paper's actual validation configuration (§6.8): *two hosts per
/// node*. Model (two Host tokens) vs two-host discrete-event run.
///
/// # Errors
///
/// Propagates model-solution failures.
pub fn compare_two_hosts(
    conversations: u32,
    server_us: f64,
    seed: u64,
) -> Result<ValidationPoint, ModelError> {
    compare_two_hosts_in(crate::default_engine(), conversations, server_us, seed)
}

/// As [`compare_two_hosts`], analyzing the model half through an explicit
/// engine.
///
/// # Errors
///
/// Propagates model-solution failures.
pub fn compare_two_hosts_in(
    engine: &AnalysisEngine,
    conversations: u32,
    server_us: f64,
    seed: u64,
) -> Result<ValidationPoint, ModelError> {
    let model = nonlocal::solve_with_hosts_in(
        engine,
        Architecture::MessageCoprocessor,
        conversations,
        server_us,
        2,
    )?;
    let spec = WorkloadSpec {
        conversations: conversations as usize,
        server_compute_us: server_us,
        locality: Locality::NonLocal,
        horizon_us: 4_000_000.0,
        warmup_us: 400_000.0,
        seed,
    };
    let measured = Simulation::with_hosts(Architecture::MessageCoprocessor, &spec, 2).run();
    Ok(ValidationPoint {
        conversations,
        server_us,
        model_per_ms: model.throughput_per_ms,
        measured_per_ms: measured.throughput_per_ms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_conversation_agrees_closely() {
        // Figure 6.15(a): within a few percent for one conversation.
        let p = compare(1, 2_850.0, 11).unwrap();
        assert!(
            p.deviation() < 0.10,
            "model {} vs measured {}",
            p.model_per_ms,
            p.measured_per_ms
        );
    }

    #[test]
    fn high_load_agreement_within_band() {
        // Figure 6.15(b/c) at high offered load (small server time).
        let p = compare(3, 570.0, 12).unwrap();
        assert!(
            p.deviation() < 0.15,
            "model {} vs measured {}",
            p.model_per_ms,
            p.measured_per_ms
        );
    }

    #[test]
    fn two_host_configuration_validates() {
        // The paper's own test-bed shape: two hosts per node.
        let p = compare_two_hosts(2, 2_850.0, 31).unwrap();
        assert!(
            p.deviation() < 0.15,
            "model {} vs measured {}",
            p.model_per_ms,
            p.measured_per_ms
        );
    }

    #[test]
    fn model_optimistic_at_low_offered_load() {
        // §6.8: the model load-levels (any server can serve any request)
        // while the experiment binds tasks — at computation-heavy loads the
        // model over-predicts. Allow the paper's ~25% band.
        let p = compare(3, 11_400.0, 13).unwrap();
        assert!(
            p.deviation() < 0.30,
            "model {} vs measured {}",
            p.model_per_ms,
            p.measured_per_ms
        );
        assert!(
            p.model_per_ms > p.measured_per_ms * 0.95,
            "model should not be pessimistic here: {} vs {}",
            p.model_per_ms,
            p.measured_per_ms
        );
    }
}
