//! Pluggable time: the live stack runs on a [`ClockSystem`] that is either
//! the wall clock or a conservative discrete-event virtual clock.
//!
//! # Real mode
//!
//! [`ClockMode::Real`] reproduces the original runtime behavior: occupancy
//! spins (short activities) or sleeps (long ones) for the activity's
//! wall-clock time, timestamps come from [`Instant`], and idle threads park
//! on a condvar-backed [`Bell`] with a timeout. Real occupancy additionally
//! records *sleep overshoot* per activity class — the OS never wakes a
//! sleeper exactly on time, and the requested-vs-actual ledger
//! ([`ClockSystem::overshoot_report`]) puts error bars on every real-time
//! measurement.
//!
//! # Virtual mode
//!
//! [`ClockMode::Virtual`] replaces waiting with bookkeeping. Every thread of
//! the live runtime registers as an *actor* with its own logical clock;
//! occupancy advances that clock by the activity's time instead of burning
//! it. A conservative coordinator owns the global virtual-time frontier:
//!
//! * **Frontier rule.** At most one actor executes at a time — the one with
//!   the minimum `(clock, actor_id)` among runnable actors. An actor may
//!   only act at time `t` once every peer has committed to a clock `>= t`
//!   (peers blocked on a [`Bell`] are exempt: any future wake they receive
//!   carries the ringer's clock, which is `>=` the frontier, so no event in
//!   their past can still be generated).
//! * **Rendezvous.** Ringing a [`Bell`] stamps the ring with the ringer's
//!   clock and makes every actor blocked on that bell runnable *at the ring
//!   time*: a woken waiter's clock jumps forward to the instant the work
//!   arrived. Because the executing actor is always the frontier minimum,
//!   ring timestamps are non-decreasing, so the first ring a blocked actor
//!   receives is also the earliest — it can never miss an earlier event.
//! * **Determinism.** Actors are registered in a fixed order before any
//!   thread starts, ties break on actor id, and queue operations happen
//!   only while holding the execution token, so the entire interleaving —
//!   and therefore every measured number — is a pure function of the
//!   configuration. Same config ⇒ byte-identical output, independent of
//!   machine load, core count, or `HSIPC_SWEEP`-style thread settings.
//! * **Deadlock.** If every live actor is blocked, no ring can ever arrive
//!   (only executing actors ring) and the frontier is stuck. The
//!   coordinator detects this and poisons the clock: every blocked actor
//!   panics with a diagnostic instead of hanging forever. A clock that can
//!   never advance is an error, not a hang.
//!
//! The payoff: `occupy_us(1140.0)` costs nanoseconds instead of 1.14 ms, so
//! the same node/kernel/queue code that sustains ~500 round trips per
//! wall-second in real mode simulates 64+ nodes and 100k+ conversations in
//! seconds.

use archsim::timings::ActivityKind;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::Thread;
use std::time::{Duration, Instant};

/// Which time base drives a live run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClockMode {
    /// Wall-clock occupancy: activities spin/sleep for their measured time.
    #[default]
    Real,
    /// Conservative discrete-event virtual time: activities advance logical
    /// clocks; threads rendezvous on virtual timestamps.
    Virtual,
}

impl ClockMode {
    /// Lower-case label (`real` / `virtual`), as accepted by `--clock`.
    pub fn label(self) -> &'static str {
        match self {
            ClockMode::Real => "real",
            ClockMode::Virtual => "virtual",
        }
    }
}

impl std::str::FromStr for ClockMode {
    type Err = String;

    fn from_str(s: &str) -> Result<ClockMode, String> {
        match s {
            "real" => Ok(ClockMode::Real),
            "virtual" => Ok(ClockMode::Virtual),
            other => Err(format!("unknown clock mode `{other}` (real|virtual)")),
        }
    }
}

impl std::fmt::Display for ClockMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// How the virtual coordinator wakes the actor it grants the execution
/// token to. Both modes make byte-identical scheduling decisions (the
/// minimum-`(clock, id)` frontier rule); they differ only in how many OS
/// threads each token handoff touches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Handoff {
    /// Per-actor parking: a handoff unparks exactly the granted actor's
    /// thread ([`std::thread::unpark`]), and the ready set is an ordered
    /// `(clock, id)` index, so the grant itself is `O(log actors)`.
    #[default]
    Targeted,
    /// One shared condvar for every parked actor: each handoff
    /// `notify_all`s the whole fleet, every parked thread wakes,
    /// re-acquires the coordinator lock, finds it was not granted, and
    /// goes back to sleep. The measured baseline the targeted mode is
    /// benchmarked against — `2 · nodes + 1` wakeups per handoff.
    Broadcast,
}

impl Handoff {
    /// Lower-case label (`targeted` / `broadcast`).
    pub fn label(self) -> &'static str {
        match self {
            Handoff::Targeted => "targeted",
            Handoff::Broadcast => "broadcast",
        }
    }
}

impl std::str::FromStr for Handoff {
    type Err = String;

    fn from_str(s: &str) -> Result<Handoff, String> {
        match s {
            "targeted" => Ok(Handoff::Targeted),
            "broadcast" => Ok(Handoff::Broadcast),
            other => Err(format!(
                "unknown handoff mode `{other}` (targeted|broadcast)"
            )),
        }
    }
}

impl std::fmt::Display for Handoff {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Occupancy classes tracked by the overshoot ledger: the thirteen
/// [`ActivityKind`]s (indices from [`crate::cost`]) plus server compute.
pub(crate) const CLASSES: usize = 14;

/// Class index of the workload's server compute time (the X of §6.3).
pub(crate) const CLASS_COMPUTE: usize = 13;

/// Display labels, indexed like [`crate::cost::kind_index`] with
/// [`CLASS_COMPUTE`] last.
const CLASS_LABELS: [&str; CLASSES] = [
    "SyscallSend",
    "ProcessSend",
    "DmaOut",
    "SyscallReceive",
    "ProcessReceive",
    "DmaIn",
    "Match",
    "RestartServer",
    "SyscallReply",
    "ProcessReply",
    "RestartServerAfterReply",
    "CleanupClient",
    "RestartClient",
    "ServerCompute",
];

/// Overshoot class of an activity kind.
pub(crate) fn class_of(kind: ActivityKind) -> usize {
    crate::cost::kind_index(kind)
}

/// Requested-vs-actual occupancy of one activity class under the real
/// clock (virtual occupancy is exact by construction and records nothing).
#[derive(Debug, Clone, Copy)]
pub struct OvershootRow {
    /// Activity class label (an [`ActivityKind`] name or `ServerCompute`).
    pub class: &'static str,
    /// Occupancy calls in this class.
    pub count: u64,
    /// Total requested occupancy, microseconds.
    pub requested_us: f64,
    /// Total measured occupancy, microseconds.
    pub actual_us: f64,
}

impl OvershootRow {
    /// Mean per-call overshoot (actual − requested), microseconds.
    pub fn mean_overshoot_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            (self.actual_us - self.requested_us) / self.count as f64
        }
    }
}

#[derive(Debug, Default)]
struct OvershootCell {
    count: AtomicU64,
    requested_ns: AtomicU64,
    actual_ns: AtomicU64,
}

/// Ceiling below which real occupancy spins instead of sleeping: OS sleep
/// overshoot (tens of microseconds on a virtualized host) would swamp a
/// short activity, while a sub-30 µs spin steals negligible time from
/// other threads timesharing the core.
const SPIN_CEILING_US: f64 = 30.0;

/// What a virtual actor is doing, as the coordinator sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ActorMode {
    /// Holds the execution token; the only actor running code.
    Executing,
    /// Runnable at its clock; waiting to be the frontier minimum.
    Waiting,
    /// Parked on the bell with this id until rung.
    Blocked(usize),
    /// Retired; no longer constrains the frontier.
    Gone,
}

#[derive(Debug)]
struct ActorSlot {
    clock_ns: u64,
    mode: ActorMode,
    /// The owning OS thread, captured the first time the actor parks —
    /// the unpark target of a targeted handoff.
    thread: Option<Thread>,
}

#[derive(Debug)]
struct VState {
    actors: Vec<ActorSlot>,
    bell_epochs: Vec<u64>,
    /// Actors parked on each bell, in park order — drained by
    /// [`Bell::ring`] without scanning the whole fleet.
    bell_waiters: Vec<Vec<usize>>,
    /// The [`ActorMode::Waiting`] actors ordered by `(clock, id)`: the
    /// grant is a `pop_first`, not a fleet scan.
    ready: BTreeSet<(u64, usize)>,
    /// The actor currently holding the execution token, if any.
    executing: Option<usize>,
    /// High-water mark of granted clocks — the ring timestamp used when an
    /// external (non-actor) thread rings during shutdown.
    frontier_ns: u64,
    /// Set when every live actor is blocked: the frontier can never
    /// advance, so all waits panic instead of hanging.
    poisoned: bool,
    /// How grants wake the chosen actor.
    handoff: Handoff,
    /// Token handoffs that had to wake another thread (the granted actor
    /// was not the caller) — the denominator of the handoff benchmark.
    handoffs: u64,
}

impl VState {
    /// Moves an actor into [`ActorMode::Waiting`] and indexes it for the
    /// next grant.
    fn make_ready(&mut self, id: usize) {
        self.actors[id].mode = ActorMode::Waiting;
        self.ready.insert((self.actors[id].clock_ns, id));
    }

    /// Hands the execution token to the minimum-`(clock, id)` runnable
    /// actor, or poisons the clock when only blocked actors remain.
    /// `from` is the calling actor (if any): granting back to the caller
    /// needs no wakeup at all.
    fn grant(&mut self, from: Option<usize>, broadcast_cv: &Condvar) {
        debug_assert!(self.executing.is_none(), "grant with a live token");
        match self.ready.pop_first() {
            Some((clock_ns, id)) => {
                debug_assert_eq!(self.actors[id].clock_ns, clock_ns, "stale ready entry");
                self.actors[id].mode = ActorMode::Executing;
                self.executing = Some(id);
                self.frontier_ns = self.frontier_ns.max(clock_ns);
                if from == Some(id) {
                    return; // caller keeps the token: no wakeup needed.
                }
                self.handoffs += 1;
                match self.handoff {
                    Handoff::Targeted => {
                        if let Some(thread) = &self.actors[id].thread {
                            thread.unpark();
                        }
                        // No thread handle: the actor has never parked, so
                        // it is either not yet spawned (it will observe
                        // Executing in attach) or between unlock and park
                        // (it re-checks the mode before parking).
                    }
                    Handoff::Broadcast => broadcast_cv.notify_all(),
                }
            }
            None => {
                if self
                    .actors
                    .iter()
                    .any(|a| matches!(a.mode, ActorMode::Blocked(_)))
                {
                    self.poisoned = true;
                    for a in &self.actors {
                        if let Some(thread) = &a.thread {
                            thread.unpark();
                        }
                    }
                    broadcast_cv.notify_all();
                }
            }
        }
    }
}

#[derive(Debug)]
enum Inner {
    Real {
        /// Zero point of [`ClockHandle::now_ns`].
        epoch: Instant,
    },
    Virtual {
        state: Mutex<VState>,
        /// The shared condvar of [`Handoff::Broadcast`]; unused (never
        /// waited on) under [`Handoff::Targeted`].
        broadcast_cv: Condvar,
    },
}

/// One run's time base: construct with [`ClockSystem::new`], register every
/// thread that charges occupancy or waits, then let the handles do the
/// rest. See the module docs for the two modes.
#[derive(Debug)]
pub struct ClockSystem {
    inner: Inner,
    overshoot: [OvershootCell; CLASSES],
}

impl ClockSystem {
    /// A clock system in the requested mode, with the default
    /// ([`Handoff::Targeted`]) grant wakeup.
    pub fn new(mode: ClockMode) -> Arc<ClockSystem> {
        ClockSystem::with_handoff(mode, Handoff::default())
    }

    /// A clock system with an explicit handoff strategy (virtual mode
    /// only; real mode has no coordinator and ignores it).
    pub fn with_handoff(mode: ClockMode, handoff: Handoff) -> Arc<ClockSystem> {
        let inner = match mode {
            ClockMode::Real => Inner::Real {
                epoch: Instant::now(),
            },
            ClockMode::Virtual => Inner::Virtual {
                state: Mutex::new(VState {
                    actors: Vec::new(),
                    bell_epochs: Vec::new(),
                    bell_waiters: Vec::new(),
                    ready: BTreeSet::new(),
                    executing: None,
                    frontier_ns: 0,
                    poisoned: false,
                    handoff,
                    handoffs: 0,
                }),
                broadcast_cv: Condvar::new(),
            },
        };
        Arc::new(ClockSystem {
            inner,
            overshoot: std::array::from_fn(|_| OvershootCell::default()),
        })
    }

    /// The handoff strategy of the virtual coordinator
    /// ([`Handoff::Targeted`] in real mode, where it is meaningless).
    pub fn handoff(&self) -> Handoff {
        match &self.inner {
            Inner::Real { .. } => Handoff::Targeted,
            Inner::Virtual { state, .. } => lock(state).handoff,
        }
    }

    /// Cross-thread token handoffs performed so far (0 in real mode) —
    /// the work count the targeted-vs-broadcast benchmark normalizes by.
    pub fn handoffs(&self) -> u64 {
        match &self.inner {
            Inner::Real { .. } => 0,
            Inner::Virtual { state, .. } => lock(state).handoffs,
        }
    }

    /// The mode this system runs in.
    pub fn mode(&self) -> ClockMode {
        match self.inner {
            Inner::Real { .. } => ClockMode::Real,
            Inner::Virtual { .. } => ClockMode::Virtual,
        }
    }

    /// Registers an actor and returns its handle. **Virtual mode:** all
    /// registrations must happen, in a deterministic order, before any
    /// registered thread starts running — actor ids are the determinism
    /// tie-break. The first registered actor (the coordinator thread
    /// driving the run) starts with the execution token; all others start
    /// runnable at clock 0 and block in [`ClockHandle::attach`] until
    /// granted.
    pub fn register(self: &Arc<Self>) -> ClockHandle {
        let actor = match &self.inner {
            Inner::Real { .. } => 0,
            Inner::Virtual { state, .. } => {
                let mut st = lock(state);
                let id = st.actors.len();
                let first = id == 0;
                st.actors.push(ActorSlot {
                    clock_ns: 0,
                    mode: if first {
                        ActorMode::Executing
                    } else {
                        ActorMode::Waiting
                    },
                    thread: None,
                });
                if first {
                    st.executing = Some(0);
                } else {
                    st.ready.insert((0, id));
                }
                id
            }
        };
        ClockHandle {
            sys: Arc::clone(self),
            actor,
        }
    }

    /// The recorded requested-vs-actual occupancy per activity class
    /// (non-empty classes only; empty in virtual mode, where occupancy is
    /// exact by construction).
    pub fn overshoot_report(&self) -> Vec<OvershootRow> {
        self.overshoot
            .iter()
            .enumerate()
            .filter_map(|(class, cell)| {
                let count = cell.count.load(Ordering::Relaxed);
                (count > 0).then(|| OvershootRow {
                    class: CLASS_LABELS[class],
                    count,
                    requested_us: cell.requested_ns.load(Ordering::Relaxed) as f64 / 1_000.0,
                    actual_us: cell.actual_ns.load(Ordering::Relaxed) as f64 / 1_000.0,
                })
            })
            .collect()
    }
}

/// Poison-tolerant lock: once the virtual clock itself is poisoned every
/// participant is about to panic anyway, and the first panic's message
/// ("virtual clock deadlock…") is the one that should surface.
fn lock(state: &Mutex<VState>) -> MutexGuard<'_, VState> {
    state.lock().unwrap_or_else(|e| e.into_inner())
}

fn deadlock_panic() -> ! {
    panic!(
        "virtual clock deadlock: every live actor is blocked on a bell, \
         so no ring can ever arrive and the frontier can never advance"
    );
}

/// One actor's interface to the clock. Cloning is allowed for a single OS
/// thread that plays several roles (Architecture I's combined loop); two
/// *threads* sharing a handle would break the execution-token invariant.
#[derive(Debug, Clone)]
pub struct ClockHandle {
    sys: Arc<ClockSystem>,
    actor: usize,
}

impl ClockHandle {
    /// The clock mode.
    pub fn mode(&self) -> ClockMode {
        self.sys.mode()
    }

    /// Whether idle loops should spin-poll before waiting (real mode only:
    /// a virtual actor polling without a clock op would hold the execution
    /// token forever).
    pub fn spins(&self) -> bool {
        self.mode() == ClockMode::Real
    }

    /// First call from the owning thread: blocks until the actor holds the
    /// execution token (virtual), so that everything the thread does is
    /// serialized into the deterministic order. No-op in real mode.
    pub fn attach(&self) {
        if let Inner::Virtual { state, .. } = &self.sys.inner {
            let st = lock(state);
            self.wait_for_token(st);
        }
    }

    /// Nanoseconds since the run's zero point: wall time in real mode, the
    /// actor's logical clock in virtual mode.
    pub fn now_ns(&self) -> u64 {
        match &self.sys.inner {
            Inner::Real { epoch } => epoch.elapsed().as_nanos() as u64,
            Inner::Virtual { state, .. } => lock(state).actors[self.actor].clock_ns,
        }
    }

    /// Occupies this actor's processor for `us` microseconds of `class`
    /// work: real mode spins/sleeps (recording overshoot), virtual mode
    /// advances the logical clock and re-enters the frontier ordering.
    pub(crate) fn occupy_us(&self, us: f64, class: usize) {
        if us <= 0.0 {
            return;
        }
        let ns = (us * 1_000.0).round() as u64;
        match &self.sys.inner {
            Inner::Real { .. } => {
                let t0 = Instant::now();
                if us <= SPIN_CEILING_US {
                    crate::cost::spin_us(us);
                } else {
                    std::thread::sleep(Duration::from_nanos(ns));
                }
                let actual = t0.elapsed().as_nanos() as u64;
                let cell = &self.sys.overshoot[class];
                cell.count.fetch_add(1, Ordering::Relaxed);
                cell.requested_ns.fetch_add(ns, Ordering::Relaxed);
                cell.actual_ns.fetch_add(actual, Ordering::Relaxed);
            }
            Inner::Virtual { .. } => self.advance(ns),
        }
    }

    /// The run driver's load-phase sleep: wall sleep in real mode, a plain
    /// clock advance in virtual mode (no overshoot ledger — this is not an
    /// activity).
    pub fn sleep(&self, duration: Duration) {
        match &self.sys.inner {
            Inner::Real { .. } => std::thread::sleep(duration),
            Inner::Virtual { .. } => self.advance(duration.as_nanos() as u64),
        }
    }

    /// Virtual clock advance: bump own clock, then yield the execution
    /// token if another runnable actor now has a smaller `(clock, id)`.
    fn advance(&self, ns: u64) {
        let Inner::Virtual {
            state,
            broadcast_cv,
        } = &self.sys.inner
        else {
            unreachable!("advance is virtual-only");
        };
        let mut st = lock(state);
        debug_assert_eq!(
            st.executing,
            Some(self.actor),
            "occupy by an actor that does not hold the execution token"
        );
        st.actors[self.actor].clock_ns += ns;
        st.executing = None;
        st.make_ready(self.actor);
        st.grant(Some(self.actor), broadcast_cv);
        self.wait_for_token(st);
    }

    /// Waits (on an idle poll that found nothing) until `bell` is rung past
    /// `epoch`. Real mode parks on the bell's condvar for at most `timeout`
    /// — a missed ring costs one timeout period. Virtual mode blocks the
    /// actor with no timeout: it wakes exactly at the next ring, with its
    /// clock advanced to the ring's virtual timestamp, or panics if the
    /// clock is poisoned (all actors blocked — see module docs).
    pub fn wait_past(&self, bell: &Bell, epoch: u64, timeout: Duration) {
        match (&self.sys.inner, &bell.inner) {
            (Inner::Real { .. }, BellInner::Real { seq, cv }) => {
                let guard = seq.lock().expect("bell lock");
                let _ = cv
                    .wait_timeout_while(guard, timeout, |s| *s == epoch)
                    .expect("bell lock");
            }
            (
                Inner::Virtual {
                    state,
                    broadcast_cv,
                },
                BellInner::Virtual { id },
            ) => {
                let mut st = lock(state);
                if st.poisoned {
                    drop(st);
                    deadlock_panic();
                }
                debug_assert_eq!(
                    st.executing,
                    Some(self.actor),
                    "wait by an actor that does not hold the execution token"
                );
                if st.bell_epochs[*id] != epoch {
                    return; // rung since the caller polled: re-poll.
                }
                st.actors[self.actor].mode = ActorMode::Blocked(*id);
                st.bell_waiters[*id].push(self.actor);
                st.executing = None;
                st.grant(Some(self.actor), broadcast_cv);
                self.wait_for_token(st);
            }
            _ => panic!("bell and clock handle belong to different clock systems"),
        }
    }

    /// Parks until this actor is granted the execution token.
    ///
    /// Targeted mode stores the owning OS thread handle (once) and parks on
    /// it: only a grant *to this actor* (or poisoning) unparks it, so a
    /// handoff costs one `unpark` instead of a fleet-wide `notify_all`. A
    /// leftover unpark token from a grant the fast path consumed makes one
    /// `park` return spuriously; the loop re-checks the mode under the
    /// lock, so spurious and stale wakes are harmless.
    fn wait_for_token<'a>(&'a self, mut st: MutexGuard<'a, VState>) {
        if st.actors[self.actor].mode == ActorMode::Executing {
            return; // fast path: still the frontier minimum, no handoff.
        }
        if st.poisoned {
            drop(st);
            deadlock_panic();
        }
        match st.handoff {
            Handoff::Targeted => {
                if st.actors[self.actor].thread.is_none() {
                    st.actors[self.actor].thread = Some(std::thread::current());
                }
                let Inner::Virtual { state, .. } = &self.sys.inner else {
                    unreachable!("wait_for_token is virtual-only");
                };
                loop {
                    drop(st);
                    std::thread::park();
                    st = lock(state);
                    if st.actors[self.actor].mode == ActorMode::Executing {
                        return;
                    }
                    if st.poisoned {
                        drop(st);
                        deadlock_panic();
                    }
                }
            }
            Handoff::Broadcast => {
                let Inner::Virtual { broadcast_cv, .. } = &self.sys.inner else {
                    unreachable!("wait_for_token is virtual-only");
                };
                loop {
                    st = broadcast_cv.wait(st).unwrap_or_else(|e| e.into_inner());
                    if st.actors[self.actor].mode == ActorMode::Executing {
                        return;
                    }
                    if st.poisoned {
                        drop(st);
                        deadlock_panic();
                    }
                }
            }
        }
    }

    /// Retires the actor: it stops constraining the frontier. Call exactly
    /// once, from the owning thread, as its last clock operation.
    pub fn retire(&self) {
        if let Inner::Virtual {
            state,
            broadcast_cv,
        } = &self.sys.inner
        {
            let mut st = lock(state);
            debug_assert_eq!(
                st.executing,
                Some(self.actor),
                "retire by an actor that does not hold the execution token"
            );
            st.actors[self.actor].mode = ActorMode::Gone;
            st.executing = None;
            st.grant(Some(self.actor), broadcast_cv);
        }
    }
}

#[derive(Debug)]
enum BellInner {
    Real { seq: Mutex<u64>, cv: Condvar },
    Virtual { id: usize },
}

/// A wakeup channel between actors: ring after publishing work, wait (via
/// [`ClockHandle::wait_past`]) when a poll finds nothing. Real mode is a
/// plain condvar doorbell; virtual mode is a rendezvous point of the
/// coordinator — rings carry the ringer's virtual clock, and waking a
/// blocked actor advances its clock to the ring time.
#[derive(Debug)]
pub struct Bell {
    sys: Arc<ClockSystem>,
    inner: BellInner,
}

impl Bell {
    /// A bell on the given clock system.
    pub fn new(sys: &Arc<ClockSystem>) -> Bell {
        let inner = match &sys.inner {
            Inner::Real { .. } => BellInner::Real {
                seq: Mutex::new(0),
                cv: Condvar::new(),
            },
            Inner::Virtual { state, .. } => {
                let mut st = lock(state);
                st.bell_epochs.push(0);
                st.bell_waiters.push(Vec::new());
                BellInner::Virtual {
                    id: st.bell_epochs.len() - 1,
                }
            }
        };
        Bell {
            sys: Arc::clone(sys),
            inner,
        }
    }

    /// Current ring count; pass to [`ClockHandle::wait_past`]. Taking the
    /// epoch *before* polling the queues closes the poll-then-sleep race in
    /// real mode (in virtual mode the token serializes poll and publish, so
    /// the race cannot occur, but the protocol is shared).
    pub fn epoch(&self) -> u64 {
        match &self.inner {
            BellInner::Real { seq, .. } => *seq.lock().expect("bell lock"),
            BellInner::Virtual { id } => {
                let Inner::Virtual { state, .. } = &self.sys.inner else {
                    unreachable!();
                };
                lock(state).bell_epochs[*id]
            }
        }
    }

    /// Wakes every waiter. Virtual mode stamps the ring with the executing
    /// actor's clock (the frontier during shutdown, when a retired thread
    /// rings) and makes every actor blocked on this bell runnable at that
    /// time.
    pub fn ring(&self) {
        match &self.inner {
            BellInner::Real { seq, cv } => {
                *seq.lock().expect("bell lock") += 1;
                cv.notify_all();
            }
            BellInner::Virtual { id } => {
                let Inner::Virtual {
                    state,
                    broadcast_cv,
                } = &self.sys.inner
                else {
                    unreachable!();
                };
                let mut st = lock(state);
                st.bell_epochs[*id] += 1;
                let at = match st.executing {
                    Some(actor) => st.actors[actor].clock_ns,
                    None => st.frontier_ns,
                };
                // Only this bell's waiters, in park order — no fleet scan.
                let waiters = std::mem::take(&mut st.bell_waiters[*id]);
                for w in waiters {
                    debug_assert_eq!(st.actors[w].mode, ActorMode::Blocked(*id));
                    st.actors[w].clock_ns = st.actors[w].clock_ns.max(at);
                    st.make_ready(w);
                }
                // An external (non-actor) ring during shutdown may arrive
                // with no token holder; re-grant so the woken waiters run.
                if st.executing.is_none() && !st.poisoned {
                    st.grant(None, broadcast_cv);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_labels_match_activity_kind_names() {
        for kind in [
            ActivityKind::SyscallSend,
            ActivityKind::ProcessSend,
            ActivityKind::DmaOut,
            ActivityKind::SyscallReceive,
            ActivityKind::ProcessReceive,
            ActivityKind::DmaIn,
            ActivityKind::Match,
            ActivityKind::RestartServer,
            ActivityKind::SyscallReply,
            ActivityKind::ProcessReply,
            ActivityKind::RestartServerAfterReply,
            ActivityKind::CleanupClient,
            ActivityKind::RestartClient,
        ] {
            assert_eq!(CLASS_LABELS[class_of(kind)], format!("{kind:?}"));
        }
        assert_eq!(CLASS_LABELS[CLASS_COMPUTE], "ServerCompute");
    }

    #[test]
    fn real_occupancy_records_overshoot() {
        let sys = ClockSystem::new(ClockMode::Real);
        let h = sys.register();
        h.occupy_us(120.0, CLASS_COMPUTE);
        h.occupy_us(80.0, CLASS_COMPUTE);
        let report = sys.overshoot_report();
        assert_eq!(report.len(), 1);
        let row = &report[0];
        assert_eq!(row.class, "ServerCompute");
        assert_eq!(row.count, 2);
        assert!((row.requested_us - 200.0).abs() < 1e-9);
        // The OS may overshoot but never undershoots a sleep.
        assert!(row.actual_us >= row.requested_us);
        assert!(row.mean_overshoot_us() >= 0.0);
    }

    #[test]
    fn real_bell_wakes_a_waiter() {
        let sys = ClockSystem::new(ClockMode::Real);
        let bell = Arc::new(Bell::new(&sys));
        let epoch = bell.epoch();
        let waiter = {
            let (sys, bell) = (Arc::clone(&sys), Arc::clone(&bell));
            std::thread::spawn(move || {
                sys.register()
                    .wait_past(&bell, epoch, Duration::from_secs(10));
            })
        };
        std::thread::sleep(Duration::from_millis(10));
        bell.ring();
        waiter.join().unwrap();
        // A stale epoch returns immediately.
        sys.register()
            .wait_past(&bell, epoch, Duration::from_secs(10));
    }

    #[test]
    fn virtual_occupancy_is_exact_and_free() {
        let sys = ClockSystem::new(ClockMode::Virtual);
        let h = sys.register(); // first actor: holds the token.
        let t0 = Instant::now();
        h.occupy_us(50_000_000.0, CLASS_COMPUTE); // 50 virtual seconds
        assert!(t0.elapsed() < Duration::from_secs(5), "virtual time slept");
        assert_eq!(h.now_ns(), 50_000_000_000);
        assert!(sys.overshoot_report().is_empty());
    }

    #[test]
    fn two_actors_interleave_in_clock_order() {
        // Actor 0 (the driver) sleeps far ahead; actor 1 runs the past and
        // rendezvouses with actor 2 on a bell; ring timestamps carry the
        // ringer's clock.
        let sys = ClockSystem::new(ClockMode::Virtual);
        let driver = sys.register();
        let bell = Arc::new(Bell::new(&sys));
        let a = sys.register();
        let b = sys.register();
        let log: Arc<Mutex<Vec<(&'static str, u64)>>> = Arc::new(Mutex::new(Vec::new()));

        let ta = {
            let (bell, log) = (Arc::clone(&bell), Arc::clone(&log));
            std::thread::spawn(move || {
                a.attach();
                a.occupy_us(300.0, 0);
                log.lock().unwrap().push(("a-ring", a.now_ns()));
                bell.ring();
                a.retire();
            })
        };
        let tb = {
            let (bell, log) = (Arc::clone(&bell), Arc::clone(&log));
            std::thread::spawn(move || {
                b.attach();
                let epoch = bell.epoch();
                b.wait_past(&bell, epoch, Duration::from_secs(9));
                log.lock().unwrap().push(("b-woke", b.now_ns()));
                b.retire();
            })
        };
        driver.sleep(Duration::from_millis(1)); // 1 ms ≫ 300 µs: runs last
        driver.retire();
        ta.join().unwrap();
        tb.join().unwrap();
        let log = log.lock().unwrap();
        // a rang at 300 µs; b woke exactly at the ring's virtual time.
        assert_eq!(log.as_slice(), &[("a-ring", 300_000), ("b-woke", 300_000)]);
    }

    #[test]
    fn broadcast_handoff_matches_targeted_schedule() {
        // Both handoff modes implement the same frontier rule; only the
        // wakeup mechanics differ. The observable schedule — and the
        // handoff count — must be identical.
        let run = |handoff: Handoff| {
            let sys = ClockSystem::with_handoff(ClockMode::Virtual, handoff);
            let driver = sys.register();
            let order: Arc<Mutex<Vec<(usize, u64)>>> = Arc::new(Mutex::new(Vec::new()));
            let handles: Vec<_> = (0..4)
                .map(|i| {
                    let h = sys.register();
                    let order = Arc::clone(&order);
                    std::thread::spawn(move || {
                        h.attach();
                        for _ in 0..50 {
                            h.occupy_us(((i * 7) % 5 + 1) as f64, 0);
                            order.lock().unwrap().push((i, h.now_ns()));
                        }
                        h.retire();
                    })
                })
                .collect();
            driver.sleep(Duration::from_millis(10));
            driver.retire();
            for h in handles {
                h.join().unwrap();
            }
            let order = order.lock().unwrap().clone();
            (order, sys.handoffs())
        };
        let (targeted, targeted_handoffs) = run(Handoff::Targeted);
        let (broadcast, broadcast_handoffs) = run(Handoff::Broadcast);
        assert_eq!(targeted, broadcast);
        assert_eq!(targeted_handoffs, broadcast_handoffs);
        assert!(targeted_handoffs > 0);
    }

    #[test]
    fn deterministic_schedule_across_runs() {
        let run = || {
            let sys = ClockSystem::new(ClockMode::Virtual);
            let driver = sys.register();
            let order: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
            let handles: Vec<_> = (0..4)
                .map(|i| {
                    let h = sys.register();
                    let order = Arc::clone(&order);
                    std::thread::spawn(move || {
                        h.attach();
                        for _ in 0..50 {
                            // Unequal steps force constant reordering.
                            h.occupy_us(((i * 7) % 5 + 1) as f64, 0);
                            order.lock().unwrap().push(i);
                        }
                        h.retire();
                    })
                })
                .collect();
            driver.sleep(Duration::from_millis(10));
            driver.retire();
            for h in handles {
                h.join().unwrap();
            }
            let order = order.lock().unwrap().clone();
            order
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn all_blocked_actors_poison_instead_of_hang() {
        let sys = ClockSystem::new(ClockMode::Virtual);
        let driver = sys.register();
        let bell = Arc::new(Bell::new(&sys));
        let h = sys.register();
        let waiter = {
            let bell = Arc::clone(&bell);
            std::thread::spawn(move || {
                h.attach();
                let epoch = bell.epoch();
                // Nobody will ever ring: once the driver retires, the
                // coordinator must poison the clock, not hang.
                h.wait_past(&bell, epoch, Duration::from_secs(600));
            })
        };
        driver.retire();
        let err = waiter.join().expect_err("deadlocked waiter must panic");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(msg.contains("virtual clock deadlock"), "panic: {msg}");
    }
}
