//! # runtime — live execution of the four node architectures
//!
//! Everywhere else in this repository the paper's architectures are
//! *modeled*: the GTPN solver computes equilibria, `archsim` replays a
//! discrete-event schedule. This crate *runs* them. Each node gets real OS
//! threads — a host thread, plus a dedicated message-coprocessor thread on
//! Architectures II–IV — driving the **same** `msgkernel` task / service /
//! rendezvous logic through a shared-memory image whose task-control-block
//! and kernel-buffer queues are genuine concurrent queues implementing the
//! §5.1 enqueue / first / dequeue transactions:
//!
//! * Architectures I–II — [`smartmem::shared::LockedModule`]: the real
//!   linked-list micro-routines under a module-wide lock (conventional
//!   memory, kernel-software critical sections);
//! * Architectures III–IV — [`smartmem::shared::LockFreeModule`]: each
//!   transaction one atomic operation (smart memory), with IV splitting
//!   TCB and kernel-buffer traffic across two modules.
//!
//! Cross-node traffic travels over real channels
//! ([`netsim::live::LiveRing`]) standing in for the 4 Mb/s token ring. A
//! load generator spawns fleets of client–server conversations — blocking
//! remote invocations with reply semantics, kernel-buffer backpressure
//! (§3.2.3), graceful shutdown — while every activity occupies its thread
//! for its measured Table 6.4–6.23 time ([`cost`]). Throughput and latency
//! come out of a lock-free histogram ([`hist`]); the `repro live`
//! subcommand prints them and `tests/live_runtime.rs` cross-validates the
//! measured architecture ordering against the GTPN model's predictions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod cost;
pub mod env;
pub mod hist;
mod node;
pub mod shm;

pub use archsim::timings::{Architecture, Locality};
pub use clock::{ClockMode, Handoff, OvershootRow};
pub use env::{EnvError, LiveEnv};
pub use hist::Histogram;

use clock::{Bell, ClockSystem};
use msgkernel::{Kernel, KernelStats, NodeId, Packet, PriorityList, ServiceAddr, Syscall};
use netsim::RingNodeId;
use node::{HostCtx, MpCtx, NodeShared, Role};
use shm::{NodeShm, TcbSlot};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Stack size of every actor thread the runtime spawns. The node loops
/// run a fixed, shallow call graph (kernel transactions, queue ops, the
/// clock coordinator); 512 KiB is an order of magnitude of headroom while
/// keeping a 64-node fleet (129 threads) at ~65 MB of reserved stack
/// instead of the ~1 GB the platform default would claim.
const ACTOR_STACK: usize = 512 * 1024;

/// Parameters of one live run.
#[derive(Debug, Clone)]
pub struct Config {
    /// Node architecture to execute.
    pub architecture: Architecture,
    /// Number of nodes (each with its own kernel, shared memory and
    /// threads). Non-local traffic needs at least two.
    pub nodes: u32,
    /// Client–server conversations per node.
    pub conversations: u32,
    /// Server compute time per request (the workload's X), *unscaled*
    /// microseconds. §6.3's workload is 1140 µs.
    pub server_compute_us: f64,
    /// How long the load generator runs before draining.
    pub duration: Duration,
    /// Local (client and server on one node) or non-local (each node's
    /// clients invoke the next node's servers) conversations.
    pub locality: Locality,
    /// Factor applied to every paper-measured activity time before it is
    /// replayed as wall-clock occupancy. Ratios — and therefore the
    /// architecture ordering — are scale-invariant, but scales far below 1
    /// push activities under the OS sleep/wake granularity.
    pub scale: f64,
    /// Kernel message buffers per node; fewer buffers than conversations
    /// exercises the §3.2.3 blocking-on-shortage path.
    pub buffers: u16,
    /// How long the drain may take before shutdown is declared unclean.
    pub grace: Duration,
    /// Time base: wall clock ([`ClockMode::Real`]) or conservative
    /// discrete-event virtual time ([`ClockMode::Virtual`], deterministic
    /// and orders of magnitude faster — see [`clock`]).
    pub clock: ClockMode,
    /// How the virtual coordinator wakes the actor it grants the execution
    /// token to ([`Handoff::Targeted`] by default; [`Handoff::Broadcast`]
    /// is the measured baseline). Ignored under [`ClockMode::Real`].
    pub handoff: Handoff,
}

impl Config {
    /// The default workload: 64 local conversations on one node at the
    /// §6.3 server compute time, full-scale activity times.
    pub fn new(architecture: Architecture) -> Config {
        Config {
            architecture,
            nodes: 1,
            conversations: 64,
            server_compute_us: 1_140.0,
            duration: Duration::from_millis(400),
            locality: Locality::Local,
            scale: 1.0,
            buffers: 32,
            grace: Duration::from_secs(10),
            clock: ClockMode::Real,
            handoff: Handoff::Targeted,
        }
    }

    /// As [`Config::new`], then applies the validated `HSIPC_LIVE_*`
    /// environment knobs (see [`LiveEnv`]).
    ///
    /// # Errors
    ///
    /// [`EnvError`] when a set variable is malformed or an unknown
    /// `HSIPC_LIVE_*` variable (a likely typo) is present.
    pub fn from_env(architecture: Architecture) -> Result<Config, EnvError> {
        let mut config = Config::new(architecture);
        LiveEnv::from_env()?.apply(&mut config);
        Ok(config)
    }
}

/// Latency quantiles of the completed round trips, microseconds.
#[derive(Debug, Clone, Copy, Default)]
pub struct LatencySummary {
    /// Mean.
    pub mean_us: f64,
    /// Median.
    pub p50_us: f64,
    /// 95th percentile.
    pub p95_us: f64,
    /// 99th percentile.
    pub p99_us: f64,
    /// Worst observed.
    pub max_us: f64,
}

/// Everything one live run measured.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Architecture executed.
    pub architecture: Architecture,
    /// Nodes run.
    pub nodes: u32,
    /// Conversations per node.
    pub conversations: u32,
    /// Traffic locality.
    pub locality: Locality,
    /// Time base the run executed under.
    pub clock: ClockMode,
    /// Completed client round trips across all nodes.
    pub round_trips: u64,
    /// Run time from load start to drain completion, *in the run's time
    /// base*: wall clock under [`ClockMode::Real`], virtual time under
    /// [`ClockMode::Virtual`]. Throughput and latency are measured against
    /// this clock.
    pub elapsed: Duration,
    /// Wall clock the run actually took, whatever the time base — the
    /// virtual-time speedup is `elapsed / wall`.
    pub wall: Duration,
    /// Round trips per millisecond (the paper's Λ), aggregated over nodes.
    pub throughput_per_ms: f64,
    /// Round-trip latency distribution.
    pub latency: LatencySummary,
    /// Sends that blocked on kernel-buffer shortage (§3.2.3).
    pub buffer_stalls: u64,
    /// Frames the ring carried (2 × remote round trips: one send packet,
    /// one reply packet, §4.6).
    pub ring_frames: u64,
    /// Whether every client drained within the grace period.
    pub clean_shutdown: bool,
    /// Cross-thread execution-token handoffs the virtual coordinator
    /// performed (0 under [`ClockMode::Real`]) — the work count the
    /// targeted-vs-broadcast handoff benchmark normalizes by.
    pub handoffs: u64,
    /// High-water mark of any single node's inbound ring queue — how far
    /// the slowest receiver fell behind at the worst moment (0 for local
    /// traffic, which never touches the ring).
    pub peak_ring_queue: u64,
    /// Requested-vs-actual occupancy per activity class — the error bars
    /// of a real-time run (empty under [`ClockMode::Virtual`], where
    /// occupancy is exact by construction).
    pub overshoot: Vec<OvershootRow>,
}

/// Runs one live workload to completion and reports what was measured.
///
/// # Panics
///
/// On nonsensical configurations (zero nodes or conversations, non-local
/// traffic on one node, task/buffer counts that overflow the 16-bit
/// control-block address space) and on internal runtime invariant
/// violations.
pub fn run(config: &Config) -> RunReport {
    assert!(config.nodes >= 1, "at least one node");
    assert!(config.conversations >= 1, "at least one conversation");
    assert!(config.scale > 0.0, "scale must be positive");
    if config.locality == Locality::NonLocal {
        assert!(config.nodes >= 2, "non-local traffic needs two nodes");
    }
    let n = config.conversations as usize;
    let tasks = u16::try_from(2 * n).expect("2 × conversations fits the 16-bit TCB space");

    // Bit rate 0: the ring's wire time is not modeled because §4.6 assumes
    // the network is not a bottleneck — interface costs (DmaIn/DmaOut) are
    // charged on the MP instead.
    let (ring, ports) = netsim::live::live_ring::<Packet>(config.nodes, 0);
    let mut ports = ports.into_iter();

    let clock_sys = ClockSystem::with_handoff(config.clock, config.handoff);
    // Actor 0: this thread — the load generator and drain driver. In
    // virtual mode it starts out holding the execution token, so the node
    // actors registered below all park in attach() until the load-phase
    // sleep yields it.
    let main_clock = clock_sys.register();

    // One histogram per node, merged into fleet-wide quantiles at report
    // time: recording never contends across nodes, the bucket grids are
    // lazily allocated, and the merge is exactly equivalent to one shared
    // histogram (see [`Histogram::merge`]).
    let mut hists: Vec<Arc<Histogram>> = Vec::with_capacity(config.nodes as usize);
    let round_trips = Arc::new(AtomicU64::new(0));
    let active = Arc::new(AtomicUsize::new(config.nodes as usize * n));
    let stopping = Arc::new(AtomicBool::new(false));
    let halt = Arc::new(AtomicBool::new(false));
    let cost = Arc::new(cost::CostModel::new(
        config.architecture,
        config.locality,
        config.scale,
    ));

    let mut shareds: Vec<Arc<NodeShared>> = Vec::with_capacity(config.nodes as usize);
    // Phase 1: build every node's contexts and register its clock actors
    // in node order, before any thread exists — actor ids are the virtual
    // scheduler's determinism tie-break, so registration must not race.
    let mut bodies: Vec<(HostCtx, MpCtx)> = Vec::with_capacity(config.nodes as usize);

    let started = Instant::now();
    for node in 0..config.nodes {
        let (shm, buffer_queue) = NodeShm::for_arch(config.architecture, tasks, config.buffers);
        let mut kernel = Kernel::with_queues(
            NodeId(node),
            Box::new(buffer_queue),
            Box::new(PriorityList::default()),
            Box::new(PriorityList::default()),
        );

        let mut services = Vec::with_capacity(n);
        for i in 0..n {
            services.push(kernel.create_service(format!("svc{node}.{i}")));
        }
        let mut clients = Vec::with_capacity(n);
        let mut servers = Vec::with_capacity(n);
        let mut roles = vec![Role::Client(0); 2 * n];
        for i in 0..n {
            let client = kernel.create_task(format!("client{node}.{i}"), 1, 64);
            roles[client.0 as usize] = Role::Client(i);
            clients.push(client);
        }
        for (i, &service) in services.iter().enumerate() {
            let server = kernel.create_task(format!("server{node}.{i}"), 1, 64);
            roles[server.0 as usize] = Role::Server(i);
            // The offer rides the kernel's internal communication list; the
            // MP drains it on its first pass.
            kernel
                .submit(server, Syscall::Offer { service })
                .expect("initial offer");
            servers.push(server);
        }

        // `create_task` queues newborn tasks on the kernel's internal
        // computation list; if the MP's first flush published them, every
        // client would get a spurious wake (and double-send while its real
        // send is parked on a buffer shortage). The live host drives clients
        // from kickoff() and servers from the Offer-completion wake, so the
        // creation-time entries are discarded here.
        while kernel.next_computation().is_some() {}

        let target_node = match config.locality {
            Locality::Local => node,
            Locality::NonLocal => (node + 1) % config.nodes,
        };
        // Nodes are built identically, so conversation i's service has the
        // same id everywhere — a remote client can address it by index.
        let targets: Vec<ServiceAddr> = services
            .iter()
            .map(|&service| ServiceAddr {
                node: NodeId(target_node),
                service,
            })
            .collect();

        let shared = Arc::new(NodeShared {
            shm,
            slots: (0..2 * n).map(|_| TcbSlot::default()).collect(),
            host_bell: Bell::new(&clock_sys),
            mp_bell: Bell::new(&clock_sys),
        });
        shareds.push(Arc::clone(&shared));

        // Remote arrivals ring the bell the receiving loop waits on: the
        // MP's on II–IV, the combined loop's host bell on I. In virtual
        // mode this is what wakes a blocked node at the sender's virtual
        // timestamp; in real mode it saves the IDLE_PARK timeout.
        {
            let shared = Arc::clone(&shared);
            let has_mp = config.architecture.has_mp();
            ring.set_arrival_notifier(RingNodeId(node), move || {
                if has_mp {
                    shared.mp_bell.ring();
                } else {
                    shared.host_bell.ring();
                }
            });
        }

        // One actor per processor: host, plus the MP on II–IV. On I the
        // combined loop is one thread, hence one actor for both contexts.
        let host_clock = clock_sys.register();
        let mp_clock = if config.architecture.has_mp() {
            clock_sys.register()
        } else {
            host_clock.clone()
        };

        let node_hist = Arc::new(Histogram::default());
        hists.push(Arc::clone(&node_hist));

        let host = HostCtx::new(
            Arc::clone(&shared),
            Arc::clone(&cost),
            host_clock,
            roles,
            clients,
            targets,
            servers,
            config.server_compute_us * config.scale,
            node_hist,
            Arc::clone(&round_trips),
            Arc::clone(&active),
            Arc::clone(&stopping),
            Arc::clone(&halt),
        );
        let mp = MpCtx {
            shared,
            cost: Arc::clone(&cost),
            clock: mp_clock,
            kernel,
            port: ports.next().expect("one port per node"),
            ring: ring.clone(),
            halt: Arc::clone(&halt),
        };
        bodies.push((host, mp));
    }

    // Phase 2: spawn. Each thread's first statement is attach(), so no
    // node code runs before the deterministic registration above is
    // complete and the thread holds the execution token. Actor threads get
    // small explicit stacks (the node loops are shallow; the default 8 MB
    // would reserve gigabytes of address space across a sweep running
    // eight 32-node fleets at once).
    let mut host_handles = Vec::new();
    let mut kernel_handles: Vec<std::thread::JoinHandle<KernelStats>> = Vec::new();
    for (node, (host, mp)) in bodies.into_iter().enumerate() {
        if config.architecture.has_mp() {
            host_handles.push(
                std::thread::Builder::new()
                    .name(format!("hsipc-host{node}"))
                    .stack_size(ACTOR_STACK)
                    .spawn(move || host.run())
                    .expect("spawn host thread"),
            );
            kernel_handles.push(
                std::thread::Builder::new()
                    .name(format!("hsipc-mp{node}"))
                    .stack_size(ACTOR_STACK)
                    .spawn(move || mp.run())
                    .expect("spawn MP thread"),
            );
        } else {
            kernel_handles.push(
                std::thread::Builder::new()
                    .name(format!("hsipc-node{node}"))
                    .stack_size(ACTOR_STACK)
                    .spawn(move || node::combined_run(host, mp))
                    .expect("spawn node thread"),
            );
        }
    }

    // Load phase. Real: wall sleep. Virtual: the driver's clock jumps to
    // `duration` and yields the token; the conservative frontier hands it
    // back only once every node actor's clock has passed `duration`.
    main_clock.sleep(config.duration);

    // Drain: clients finish their outstanding round trip and stop.
    stopping.store(true, Ordering::SeqCst);
    for shared in &shareds {
        shared.host_bell.ring();
    }
    let deadline_ns = main_clock.now_ns() + config.grace.as_nanos() as u64;
    while active.load(Ordering::Acquire) > 0 && main_clock.now_ns() < deadline_ns {
        main_clock.sleep(Duration::from_millis(1));
    }
    let clean_shutdown = active.load(Ordering::Acquire) == 0;
    let elapsed = Duration::from_nanos(main_clock.now_ns());

    // Halt and join. The whole halt sequence runs while this thread holds
    // the virtual execution token, so every worker observes halt + rung
    // bells atomically; the driver then retires *before* joining — it
    // must release the token or the workers could never run their exit
    // path.
    halt.store(true, Ordering::SeqCst);
    for shared in &shareds {
        shared.host_bell.ring();
        shared.mp_bell.ring();
    }
    main_clock.retire();
    for handle in host_handles {
        handle.join().expect("host thread exits cleanly");
    }
    let mut buffer_stalls = 0;
    for handle in kernel_handles {
        buffer_stalls += handle
            .join()
            .expect("kernel thread exits cleanly")
            .buffer_stalls;
    }

    let round_trips = round_trips.load(Ordering::Relaxed);
    let elapsed_ms = elapsed.as_secs_f64() * 1_000.0;
    let hist = Histogram::default();
    for node_hist in &hists {
        hist.merge(node_hist);
    }
    RunReport {
        architecture: config.architecture,
        nodes: config.nodes,
        conversations: config.conversations,
        locality: config.locality,
        clock: config.clock,
        round_trips,
        elapsed,
        wall: started.elapsed(),
        throughput_per_ms: if elapsed_ms > 0.0 {
            round_trips as f64 / elapsed_ms
        } else {
            0.0
        },
        latency: LatencySummary {
            mean_us: hist.mean_us(),
            p50_us: hist.quantile_us(0.50),
            p95_us: hist.quantile_us(0.95),
            p99_us: hist.quantile_us(0.99),
            max_us: hist.max_us(),
        },
        buffer_stalls,
        ring_frames: ring.stats().frames,
        clean_shutdown,
        handoffs: clock_sys.handoffs(),
        peak_ring_queue: ring.peak_queued(),
        overshoot: clock_sys.overshoot_report(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny end-to-end run per architecture: a handful of conversations,
    /// short duration. Heavyweight load and ordering assertions live in
    /// `tests/live_runtime.rs`; this is the crate's own smoke check.
    #[test]
    fn all_architectures_complete_round_trips_and_drain() {
        for arch in Architecture::ALL {
            let mut config = Config::new(arch);
            config.conversations = 8;
            config.buffers = 4; // force §3.2.3 backpressure
            config.duration = Duration::from_millis(60);
            let report = run(&config);
            assert!(report.round_trips > 0, "{arch}: no round trips completed");
            assert!(report.clean_shutdown, "{arch}: drain did not complete");
            assert!(report.throughput_per_ms > 0.0, "{arch}: zero throughput");
            assert!(
                report.latency.p50_us > 0.0 && report.latency.max_us >= report.latency.p50_us,
                "{arch}: latency distribution is empty or inconsistent"
            );
        }
    }

    #[test]
    fn remote_conversations_exchange_two_packets_per_round_trip() {
        let mut config = Config::new(Architecture::MessageCoprocessor);
        config.nodes = 2;
        config.conversations = 4;
        config.locality = Locality::NonLocal;
        config.duration = Duration::from_millis(60);
        let report = run(&config);
        assert!(report.round_trips > 0, "no remote round trips");
        assert!(report.clean_shutdown, "remote drain did not complete");
        // One send packet + one reply packet per round trip (§4.6); frames
        // may exceed 2×round-trips only by conversations still in flight
        // when the clock stopped.
        assert!(
            report.ring_frames >= 2 * report.round_trips,
            "frames {} < 2 × round trips {}",
            report.ring_frames,
            report.round_trips
        );
    }
}
