//! Per-activity processing costs replayed as processor occupancy.
//!
//! The live runtime does not re-measure 1987 hardware; it *replays* the
//! paper's measured per-activity times (Tables 6.4–6.23, via
//! [`archsim::timings::activity_table`]) on whichever thread performs the
//! activity — syscall entry on the host, send/receive/reply processing on
//! the MP, DMA and interrupt handling on the MP's network side. While a
//! thread is occupied it processes nothing else, so queueing behavior is
//! faithful. *How* the occupancy elapses is the clock's business
//! ([`crate::clock::ClockHandle`]): the real clock spins or sleeps the
//! activity's wall time (sleeping so that two busy processors overlap even
//! when the machine has fewer cores than the node has processors), the
//! virtual clock advances a logical timestamp. The throughput ordering of
//! the four architectures then emerges from the paper's own numbers plus
//! genuinely concurrent execution, which is exactly what the
//! cross-validation harness checks against the GTPN model's predictions.

use crate::clock::ClockHandle;
use archsim::timings::{activity_table, ActivityKind, Architecture, Locality};
use std::time::{Duration, Instant};

/// Number of [`ActivityKind`] variants.
const KINDS: usize = 13;

pub(crate) fn kind_index(kind: ActivityKind) -> usize {
    match kind {
        ActivityKind::SyscallSend => 0,
        ActivityKind::ProcessSend => 1,
        ActivityKind::DmaOut => 2,
        ActivityKind::SyscallReceive => 3,
        ActivityKind::ProcessReceive => 4,
        ActivityKind::DmaIn => 5,
        ActivityKind::Match => 6,
        ActivityKind::RestartServer => 7,
        ActivityKind::SyscallReply => 8,
        ActivityKind::ProcessReply => 9,
        ActivityKind::RestartServerAfterReply => 10,
        ActivityKind::CleanupClient => 11,
        ActivityKind::RestartClient => 12,
    }
}

/// Busy-spins the calling thread for `us` microseconds (no-op for `<= 0`).
pub fn spin_us(us: f64) {
    if us <= 0.0 {
        return;
    }
    let deadline = Instant::now() + Duration::from_nanos((us * 1_000.0) as u64);
    while Instant::now() < deadline {
        std::hint::spin_loop();
    }
}

/// Pre-scaled per-kind activity costs for one architecture and locality.
#[derive(Debug, Clone)]
pub struct CostModel {
    us: [f64; KINDS],
}

impl CostModel {
    /// Sums the `best_us` of every table row per [`ActivityKind`] and
    /// applies `scale`. Kinds absent from the table (e.g. MP processing on
    /// Architecture I, DMA on local conversations) cost zero.
    pub fn new(arch: Architecture, locality: Locality, scale: f64) -> CostModel {
        let mut us = [0.0; KINDS];
        for activity in activity_table(arch, locality) {
            us[kind_index(activity.kind)] += activity.best_us() * scale;
        }
        CostModel { us }
    }

    /// The scaled cost of one activity kind, microseconds.
    pub fn us(&self, kind: ActivityKind) -> f64 {
        self.us[kind_index(kind)]
    }

    /// Occupies the calling thread's clock for the activity's time.
    pub fn charge(&self, kind: ActivityKind, clock: &ClockHandle) {
        clock.occupy_us(self.us(kind), crate::clock::class_of(kind));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arch1_charges_syscalls_but_no_mp_processing() {
        let c = CostModel::new(Architecture::Uniprocessor, Locality::Local, 1.0);
        assert!(c.us(ActivityKind::SyscallSend) > 0.0);
        assert_eq!(c.us(ActivityKind::ProcessSend), 0.0);
    }

    #[test]
    fn arch2_splits_work_between_host_and_mp() {
        let c = CostModel::new(Architecture::MessageCoprocessor, Locality::Local, 1.0);
        assert!(c.us(ActivityKind::SyscallSend) > 0.0);
        assert!(c.us(ActivityKind::ProcessSend) > 0.0);
        // The host-side syscall entry is cheaper than Architecture I's
        // all-inclusive send — that offload is the whole design.
        let a1 = CostModel::new(Architecture::Uniprocessor, Locality::Local, 1.0);
        assert!(c.us(ActivityKind::SyscallSend) < a1.us(ActivityKind::SyscallSend));
    }

    #[test]
    fn scale_is_linear() {
        let full = CostModel::new(Architecture::SmartBus, Locality::NonLocal, 1.0);
        let half = CostModel::new(Architecture::SmartBus, Locality::NonLocal, 0.5);
        let kind = ActivityKind::ProcessSend;
        assert!((half.us(kind) - full.us(kind) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn spin_burns_at_least_the_requested_time() {
        let t0 = Instant::now();
        spin_us(200.0);
        assert!(t0.elapsed() >= Duration::from_micros(200));
        spin_us(0.0); // no-op
        spin_us(-3.0); // no-op
    }
}
