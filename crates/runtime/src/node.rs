//! The per-node execution loops: the host thread multiplexing task state
//! machines (Figure 4.4) and the message-coprocessor thread running the
//! kernel's communication side (Figure 4.5).
//!
//! The division of labor follows §4.4 exactly:
//!
//! * the **host** pops runnable tasks off the shared *computation list*,
//!   runs them (client bookkeeping, server compute), and when a task issues
//!   a kernel call it writes the arguments into the task's control-block
//!   slot and enqueues the TCB on the shared *communication list*;
//! * the **MP** pops the communication list, injects the request into the
//!   kernel ([`Kernel::place_request`] + [`Kernel::process`]), services the
//!   network interface, and makes tasks runnable again by enqueueing them
//!   on the computation list — strictly *after* depositing any delivered
//!   message in the TCB inbox, so the host can never pop a runnable server
//!   whose message has not arrived.
//!
//! Architecture I has no MP thread: one thread alternates both sides, which
//! is precisely why its host saturates first under load.

use crate::clock::{Bell, ClockHandle, CLASS_COMPUTE};
use crate::cost::CostModel;
use crate::hist::Histogram;
use crate::shm::{NodeShm, TcbSlot};
use archsim::timings::ActivityKind;
use msgkernel::{
    Kernel, KernelEvent, KernelStats, Message, Packet, SendMode, ServiceAddr, Syscall, TaskId,
};
use netsim::live::{LiveRing, Port};
use netsim::RingNodeId;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How long an idle loop parks on its doorbell before re-polling. A missed
/// ring costs at most this much extra latency.
const IDLE_PARK: Duration = Duration::from_micros(200);

/// Empty polls a worker absorbs by spinning before it parks on its
/// doorbell: enough to catch a peer that is about to publish work without
/// paying a condvar wake, short enough not to steal the core from threads
/// sleeping out an activity's occupancy on a small machine.
const SPIN_POLLS: u32 = 256;

/// What a popped computation-list element means to the host.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Role {
    /// Client state machine `i`.
    Client(usize),
    /// Server state machine `i`.
    Server(usize),
}

/// One node's shared-memory image as both threads see it.
#[derive(Debug)]
pub(crate) struct NodeShared {
    pub shm: NodeShm,
    pub slots: Vec<TcbSlot>,
    pub host_bell: Bell,
    pub mp_bell: Bell,
}

#[derive(Debug, Default)]
struct ClientSm {
    /// Send timestamp of the outstanding round trip, clock nanoseconds.
    sent_at: Option<u64>,
    done: bool,
}

/// The server task's position in its offer → receive → reply cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ServerPhase {
    /// Woken once the `Offer` completed; must post the first `Receive`.
    Offered,
    /// `Receive` posted; the next wake carries a delivered message.
    AwaitDelivery,
    /// Woken after the `Reply` completed; must post the next `Receive`.
    Replied,
}

/// The host side of one node: client/server state machines multiplexed on
/// one OS thread.
pub(crate) struct HostCtx {
    pub shared: Arc<NodeShared>,
    pub cost: Arc<CostModel>,
    /// This thread's time base (host processor).
    pub clock: ClockHandle,
    /// Role of each task id.
    pub roles: Vec<Role>,
    pub clients: Vec<TaskId>,
    /// Destination service per client index.
    pub targets: Vec<ServiceAddr>,
    pub servers: Vec<TaskId>,
    /// Scaled server compute time (the workload's X), microseconds.
    pub compute_us: f64,
    pub hist: Arc<Histogram>,
    pub round_trips: Arc<AtomicU64>,
    /// Clients still running, across all nodes.
    pub active: Arc<AtomicUsize>,
    pub stopping: Arc<AtomicBool>,
    pub halt: Arc<AtomicBool>,
    client_sm: Vec<ClientSm>,
    server_phase: Vec<ServerPhase>,
}

impl HostCtx {
    #[allow(clippy::too_many_arguments)] // plain assembly of the run() wiring
    pub(crate) fn new(
        shared: Arc<NodeShared>,
        cost: Arc<CostModel>,
        clock: ClockHandle,
        roles: Vec<Role>,
        clients: Vec<TaskId>,
        targets: Vec<ServiceAddr>,
        servers: Vec<TaskId>,
        compute_us: f64,
        hist: Arc<Histogram>,
        round_trips: Arc<AtomicU64>,
        active: Arc<AtomicUsize>,
        stopping: Arc<AtomicBool>,
        halt: Arc<AtomicBool>,
    ) -> HostCtx {
        let n_clients = clients.len();
        let n_servers = servers.len();
        HostCtx {
            shared,
            cost,
            clock,
            roles,
            clients,
            targets,
            servers,
            compute_us,
            hist,
            round_trips,
            active,
            stopping,
            halt,
            client_sm: (0..n_clients).map(|_| ClientSm::default()).collect(),
            server_phase: vec![ServerPhase::Offered; n_servers],
        }
    }

    /// Issues a kernel call: burn the syscall-entry cost, write the request
    /// into the TCB, enqueue the TCB on the communication list, ring the MP.
    fn issue(&self, task: TaskId, kind: ActivityKind, request: Syscall) {
        self.cost.charge(kind, &self.clock);
        *self.shared.slots[task.0 as usize]
            .request
            .lock()
            .expect("request slot") = Some(request);
        self.shared.shm.push_communication(task);
        self.shared.mp_bell.ring();
    }

    fn issue_send(&mut self, client: usize) {
        let task = self.clients[client];
        self.client_sm[client].sent_at = Some(self.clock.now_ns());
        self.issue(
            task,
            ActivityKind::SyscallSend,
            Syscall::Send {
                to: self.targets[client],
                message: Message::from_bytes(b"request"),
                mode: SendMode::invocation(),
            },
        );
    }

    /// Starts every client's first round trip.
    pub(crate) fn kickoff(&mut self) {
        for client in 0..self.clients.len() {
            self.issue_send(client);
        }
    }

    /// Pops and dispatches one computation-list entry; false when idle.
    pub(crate) fn step(&mut self) -> bool {
        let Some(task) = self.shared.shm.pop_computation() else {
            return false;
        };
        match self.roles[task.0 as usize] {
            Role::Client(i) => self.wake_client(i),
            Role::Server(i) => self.wake_server(i),
        }
        true
    }

    /// A client wake means its reply arrived: close the round trip and
    /// (unless draining) immediately start the next one.
    fn wake_client(&mut self, client: usize) {
        if self.client_sm[client].done {
            return;
        }
        let Some(sent_at) = self.client_sm[client].sent_at.take() else {
            return;
        };
        self.hist
            .record_ns(self.clock.now_ns().saturating_sub(sent_at));
        self.round_trips.fetch_add(1, Ordering::Relaxed);
        if self.stopping.load(Ordering::Relaxed) {
            self.client_sm[client].done = true;
            self.active.fetch_sub(1, Ordering::AcqRel);
        } else {
            self.issue_send(client);
        }
    }

    fn wake_server(&mut self, server: usize) {
        let task = self.servers[server];
        match self.server_phase[server] {
            ServerPhase::Offered | ServerPhase::Replied => {
                self.server_phase[server] = ServerPhase::AwaitDelivery;
                self.issue(task, ActivityKind::SyscallReceive, Syscall::Receive);
            }
            ServerPhase::AwaitDelivery => {
                let message = self.shared.slots[task.0 as usize]
                    .inbox
                    .lock()
                    .expect("inbox slot")
                    .take();
                debug_assert!(
                    message.is_some(),
                    "server woken for delivery with an empty inbox"
                );
                // The conversation's server compute (the workload's X).
                self.clock.occupy_us(self.compute_us, CLASS_COMPUTE);
                self.server_phase[server] = ServerPhase::Replied;
                self.issue(
                    task,
                    ActivityKind::SyscallReply,
                    Syscall::Reply {
                        message: Message::from_bytes(b"reply"),
                    },
                );
            }
        }
    }

    /// The host thread body (Architectures II–IV).
    pub(crate) fn run(mut self) {
        self.clock.attach();
        self.kickoff();
        let mut empty_polls: u32 = 0;
        while !self.halt.load(Ordering::Relaxed) {
            if self.step() {
                empty_polls = 0;
                continue;
            }
            empty_polls += 1;
            if self.clock.spins() && empty_polls < SPIN_POLLS {
                std::hint::spin_loop();
                continue;
            }
            let epoch = self.shared.host_bell.epoch();
            if !self.step() {
                self.clock
                    .wait_past(&self.shared.host_bell, epoch, IDLE_PARK);
            }
        }
        self.clock.retire();
    }
}

/// The message-coprocessor side of one node: the kernel plus the network
/// interface.
pub(crate) struct MpCtx {
    pub shared: Arc<NodeShared>,
    pub cost: Arc<CostModel>,
    /// This thread's time base (MP processor; on Architecture I a clone of
    /// the host's handle, since one thread plays both roles).
    pub clock: ClockHandle,
    pub kernel: Kernel,
    pub port: Port<Packet>,
    pub ring: LiveRing<Packet>,
    pub halt: Arc<AtomicBool>,
}

impl MpCtx {
    /// MP-side processing cost of an injected request.
    fn charge_for(&self, request: &Syscall) {
        match request {
            Syscall::Send { .. } => self.cost.charge(ActivityKind::ProcessSend, &self.clock),
            Syscall::Receive => self.cost.charge(ActivityKind::ProcessReceive, &self.clock),
            Syscall::Reply { .. } => {
                self.cost.charge(ActivityKind::ProcessReply, &self.clock);
                self.cost
                    .charge(ActivityKind::RestartServerAfterReply, &self.clock);
            }
            _ => {}
        }
    }

    fn handle(&mut self, events: Vec<KernelEvent>) {
        for event in events {
            match event {
                KernelEvent::PacketOut(packet) => {
                    self.cost.charge(ActivityKind::DmaOut, &self.clock);
                    let (from, to) = (RingNodeId(packet.from.0), RingNodeId(packet.to.0));
                    self.ring
                        .transmit(from, to, msgkernel::MESSAGE_SIZE as u32, packet)
                        .expect("destination node attached to the ring");
                }
                KernelEvent::Delivered { server } => {
                    self.cost.charge(ActivityKind::Match, &self.clock);
                    self.cost.charge(ActivityKind::RestartServer, &self.clock);
                    let message = self
                        .kernel
                        .task(server)
                        .expect("delivered server exists")
                        .delivered;
                    *self.shared.slots[server.0 as usize]
                        .inbox
                        .lock()
                        .expect("inbox slot") = message;
                }
                KernelEvent::ReplyDelivered { client } => {
                    self.cost.charge(ActivityKind::CleanupClient, &self.clock);
                    self.cost.charge(ActivityKind::RestartClient, &self.clock);
                    if let Ok(task) = self.kernel.task(client) {
                        let message = task.delivered;
                        *self.shared.slots[client.0 as usize]
                            .inbox
                            .lock()
                            .expect("inbox slot") = message;
                    }
                }
                _ => {}
            }
        }
    }

    /// Services the kernel's *internal* communication list: initial offers
    /// queued at construction and buffer-shortage retries, which the kernel
    /// re-queues itself (§3.2.3).
    fn drain_internal(&mut self) -> bool {
        let mut did = false;
        while let Some(task) = self.kernel.next_communication() {
            did = true;
            let events = self.kernel.process(task).expect("internal request");
            self.handle(events);
        }
        did
    }

    /// Flushes newly runnable TCBs to the shared computation list. Runs
    /// after event handling, so inboxes are populated before the host can
    /// observe the task as runnable.
    fn flush(&mut self) -> bool {
        let mut any = false;
        while let Some(task) = self.kernel.next_computation() {
            self.shared.shm.push_computation(task);
            any = true;
        }
        if any {
            self.shared.host_bell.ring();
        }
        any
    }

    /// One scheduling pass: internal work, host requests, network arrivals,
    /// then the runnable flush. Returns whether anything happened.
    pub(crate) fn pump(&mut self) -> bool {
        let mut did = self.drain_internal();
        while let Some(task) = self.shared.shm.pop_communication() {
            did = true;
            let request = self.shared.slots[task.0 as usize]
                .request
                .lock()
                .expect("request slot")
                .take()
                .expect("host writes the request before enqueueing the TCB");
            self.charge_for(&request);
            self.kernel
                .place_request(task, request)
                .expect("live request is valid");
            let events = self.kernel.process(task).expect("live syscall succeeds");
            self.handle(events);
            self.drain_internal();
            // Publish eagerly: the host resumes restarted tasks while this
            // loop keeps processing, instead of waiting for the backlog to
            // drain (which would serialize the two processors in batches).
            self.flush();
        }
        while let Some(frame) = self.port.try_recv() {
            did = true;
            self.cost.charge(ActivityKind::DmaIn, &self.clock);
            let events = self
                .kernel
                .handle_packet(frame.payload)
                .expect("live packet is well-formed");
            self.handle(events);
            self.drain_internal();
            self.flush();
        }
        if self.flush() {
            did = true;
        }
        did
    }

    /// The MP thread body (Architectures II–IV). Returns the kernel's
    /// cumulative statistics.
    pub(crate) fn run(mut self) -> KernelStats {
        self.clock.attach();
        let mut empty_polls: u32 = 0;
        while !self.halt.load(Ordering::Relaxed) {
            if self.pump() {
                empty_polls = 0;
                continue;
            }
            empty_polls += 1;
            if self.clock.spins() && empty_polls < SPIN_POLLS {
                std::hint::spin_loop();
                continue;
            }
            let epoch = self.shared.mp_bell.epoch();
            if !self.pump() {
                self.clock.wait_past(&self.shared.mp_bell, epoch, IDLE_PARK);
            }
        }
        self.clock.retire();
        self.kernel.stats()
    }
}

/// Architecture I: one thread alternates host and kernel duties — the
/// uniprocessor cannot overlap server compute with communication
/// processing, which is exactly the bottleneck the MP removes. The two
/// contexts share one clock handle (one processor, one actor).
pub(crate) fn combined_run(mut host: HostCtx, mut mp: MpCtx) -> KernelStats {
    host.clock.attach();
    host.kickoff();
    loop {
        let did_mp = mp.pump();
        let did_host = host.step();
        if mp.halt.load(Ordering::Relaxed) {
            break;
        }
        if !did_mp && !did_host {
            let epoch = host.shared.host_bell.epoch();
            host.clock
                .wait_past(&host.shared.host_bell, epoch, IDLE_PARK);
        }
    }
    host.clock.retire();
    mp.kernel.stats()
}
