//! Per-node shared memory: the TCB scheduling queues and the kernel-buffer
//! free list, backed by `smartmem`'s concurrent queue transactions.
//!
//! The mapping mirrors §5.1 and the architectural split of Chapter 6:
//!
//! * Architectures I and II keep every list in one *conventional* module
//!   ([`LockedModule`]) — each transaction runs the linked-list
//!   micro-routines under a module-wide lock, the serialization a
//!   conventional bus imposes on kernel software.
//! * Architecture III keeps every list in one *smart* module
//!   ([`LockFreeModule`]) — each transaction is a single atomic operation.
//! * Architecture IV partitions the smart memory: the TCB lists live in one
//!   module, the kernel-buffer free list in another, so host/MP scheduling
//!   traffic and buffer traffic never contend with each other.
//!
//! Element numbering within a module: task control blocks occupy elements
//! `0..tasks`, kernel buffers `tasks..tasks + buffers` (a module has one
//! link word per element, so the two families must not collide when they
//! share a module).

use archsim::timings::Architecture;
use msgkernel::{BufferId, BufferQueue, TaskId};
use smartmem::shared::{ListId, LockFreeModule, LockedModule, SharedQueue};
use std::sync::{Arc, Mutex};

const COMPUTATION: ListId = ListId(0);
const COMMUNICATION: ListId = ListId(1);

/// One node's shared-memory image: the computation and communication lists
/// (and, on I–III, the buffer free list) as concurrent queue transactions.
#[derive(Debug, Clone)]
pub struct NodeShm {
    tcb: Arc<dyn SharedQueue>,
}

impl NodeShm {
    /// Builds the shared memory for `arch` with `tasks` control blocks and
    /// `buffers` kernel buffers, returning the TCB image and the buffer
    /// free list (already full) for [`msgkernel::Kernel::with_queues`].
    pub fn for_arch(arch: Architecture, tasks: u16, buffers: u16) -> (NodeShm, SharedBufferQueue) {
        let elements = tasks
            .checked_add(buffers)
            .expect("tasks + buffers fit a u16");
        match arch {
            Architecture::Uniprocessor | Architecture::MessageCoprocessor => {
                let m: Arc<dyn SharedQueue> = Arc::new(LockedModule::new(3, elements));
                let bq = SharedBufferQueue::new(Arc::clone(&m), ListId(2), tasks, buffers);
                (NodeShm { tcb: m }, bq)
            }
            Architecture::SmartBus => {
                let m: Arc<dyn SharedQueue> = Arc::new(LockFreeModule::new(3, elements));
                let bq = SharedBufferQueue::new(Arc::clone(&m), ListId(2), tasks, buffers);
                (NodeShm { tcb: m }, bq)
            }
            Architecture::PartitionedSmartBus => {
                let tcb: Arc<dyn SharedQueue> = Arc::new(LockFreeModule::new(2, tasks));
                let kb: Arc<dyn SharedQueue> = Arc::new(LockFreeModule::new(1, buffers));
                let bq = SharedBufferQueue::new(kb, ListId(0), 0, buffers);
                (NodeShm { tcb }, bq)
            }
        }
    }

    /// Host side: pop the next runnable task (the §5.1 `First` transaction
    /// on the computation list).
    pub fn pop_computation(&self) -> Option<TaskId> {
        self.tcb.first(COMPUTATION).map(|e| TaskId(u32::from(e)))
    }

    /// MP side: make a task runnable on the host.
    pub fn push_computation(&self, task: TaskId) {
        self.tcb.enqueue(COMPUTATION, task.0 as u16);
    }

    /// MP side: pop the next communication request.
    pub fn pop_communication(&self) -> Option<TaskId> {
        self.tcb.first(COMMUNICATION).map(|e| TaskId(u32::from(e)))
    }

    /// Host side: submit a task's communication request to the MP.
    pub fn push_communication(&self, task: TaskId) {
        self.tcb.enqueue(COMMUNICATION, task.0 as u16);
    }
}

/// The kernel-buffer free list as shared-queue transactions, plugged into
/// the kernel through [`msgkernel::BufferQueue`]. Only the processor
/// running the kernel proper (the MP) acquires and releases, but the list
/// itself lives in the shared module so every acquisition is a real
/// `First` transaction — on Architecture IV against the kernel-buffer
/// partition.
#[derive(Debug)]
pub struct SharedBufferQueue {
    module: Arc<dyn SharedQueue>,
    list: ListId,
    /// Element index of buffer 0 within the module.
    base: u16,
    capacity: usize,
    available: usize,
}

impl SharedBufferQueue {
    fn new(module: Arc<dyn SharedQueue>, list: ListId, base: u16, buffers: u16) -> Self {
        for b in 0..buffers {
            module.enqueue(list, base + b);
        }
        SharedBufferQueue {
            module,
            list,
            base,
            capacity: buffers as usize,
            available: buffers as usize,
        }
    }
}

impl BufferQueue for SharedBufferQueue {
    fn capacity(&self) -> usize {
        self.capacity
    }

    fn available(&self) -> usize {
        self.available
    }

    fn acquire(&mut self) -> Option<BufferId> {
        let e = self.module.first(self.list)?;
        self.available -= 1;
        Some(BufferId(u32::from(e - self.base)))
    }

    fn release(&mut self, buffer: BufferId) {
        self.module.enqueue(self.list, self.base + buffer.0 as u16);
        self.available += 1;
    }
}

/// A task control block's host↔MP mailboxes. The request slot carries the
/// syscall arguments the host wrote before enqueueing the TCB on the
/// communication list (Figure 4.4); the inbox carries the message the MP
/// deposited before making the task runnable (Figure 4.5).
#[derive(Debug, Default)]
pub struct TcbSlot {
    /// Host → MP: the pending syscall.
    pub request: Mutex<Option<msgkernel::Syscall>>,
    /// MP → host: the delivered message.
    pub inbox: Mutex<Option<msgkernel::Message>>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_queue_cycles_through_the_shared_list() {
        for arch in Architecture::ALL {
            let (_shm, mut bq) = NodeShm::for_arch(arch, 4, 2);
            assert_eq!(bq.capacity(), 2);
            assert_eq!(bq.available(), 2);
            let a = bq.acquire().unwrap();
            let b = bq.acquire().unwrap();
            assert_ne!(a, b);
            assert!(a.0 < 2 && b.0 < 2, "buffer ids are zero-based: {a:?} {b:?}");
            assert!(bq.acquire().is_none());
            assert_eq!(bq.available(), 0);
            bq.release(a);
            assert_eq!(bq.acquire(), Some(a));
        }
    }

    #[test]
    fn scheduling_lists_are_independent_of_buffers() {
        for arch in Architecture::ALL {
            let (shm, mut bq) = NodeShm::for_arch(arch, 4, 2);
            shm.push_computation(TaskId(3));
            shm.push_communication(TaskId(1));
            let _held = bq.acquire().unwrap();
            assert_eq!(shm.pop_computation(), Some(TaskId(3)));
            assert_eq!(shm.pop_communication(), Some(TaskId(1)));
            assert_eq!(shm.pop_computation(), None);
        }
    }
}
