//! Validated `HSIPC_LIVE_*` environment configuration.
//!
//! One struct owns every live-runtime environment knob. Parsing is strict
//! where it used to be forgiving: a malformed value or an unrecognized
//! `HSIPC_LIVE_*` variable (almost always a typo) is an [`EnvError`] with
//! the variable name and what was wrong — not a silent fall-back to the
//! default that makes a sweep quietly measure the wrong workload.

use crate::clock::{ClockMode, Handoff};
use crate::Config;
use archsim::timings::Architecture;
use std::time::Duration;

/// The variables [`LiveEnv`] understands.
const KNOWN: [&str; 12] = [
    "HSIPC_LIVE_ARCH",
    "HSIPC_LIVE_NODES",
    "HSIPC_LIVE_CONVERSATIONS",
    "HSIPC_LIVE_DURATION_MS",
    "HSIPC_LIVE_SCALE",
    "HSIPC_LIVE_SERVER_COMPUTE_US",
    "HSIPC_LIVE_BUFFERS",
    "HSIPC_LIVE_CLOCK",
    "HSIPC_LIVE_HANDOFF",
    "HSIPC_LIVE_SWEEP_X_LIST",
    "HSIPC_LIVE_SWEEP_CONVERSATIONS",
    "HSIPC_LIVE_SWEEP_BUFFERS",
];

/// A rejected environment variable: which one, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvError {
    /// The offending variable name.
    pub var: String,
    /// What was wrong with it.
    pub message: String,
}

impl std::fmt::Display for EnvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.var, self.message)
    }
}

impl std::error::Error for EnvError {}

fn err(var: &str, message: impl Into<String>) -> EnvError {
    EnvError {
        var: var.to_string(),
        message: message.into(),
    }
}

/// Every live-runtime environment knob, parsed and validated. `None`
/// fields were not set; [`LiveEnv::apply`] leaves the corresponding
/// [`Config`] field at its default.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LiveEnv {
    /// `HSIPC_LIVE_ARCH`: which architectures `repro live` runs.
    pub archs: Option<Vec<Architecture>>,
    /// `HSIPC_LIVE_NODES`: node count (≥ 1).
    pub nodes: Option<u32>,
    /// `HSIPC_LIVE_CONVERSATIONS`: conversations per node (≥ 1).
    pub conversations: Option<u32>,
    /// `HSIPC_LIVE_DURATION_MS`: load-phase length, milliseconds.
    pub duration_ms: Option<u64>,
    /// `HSIPC_LIVE_SCALE`: activity-time scale factor (> 0).
    pub scale: Option<f64>,
    /// `HSIPC_LIVE_SERVER_COMPUTE_US`: per-request server compute X,
    /// microseconds (≥ 0; 0 is the paper's maximum-communication load).
    pub server_compute_us: Option<f64>,
    /// `HSIPC_LIVE_BUFFERS`: kernel buffers per node (≥ 1).
    pub buffers: Option<u16>,
    /// `HSIPC_LIVE_CLOCK`: `real` or `virtual`.
    pub clock: Option<ClockMode>,
    /// `HSIPC_LIVE_HANDOFF`: `targeted` or `broadcast` — how the virtual
    /// coordinator wakes the granted actor.
    pub handoff: Option<Handoff>,
    /// `HSIPC_LIVE_SWEEP_X_LIST`: comma-separated offered-load points
    /// (server compute X, microseconds) for `repro live-sweep`.
    pub sweep_x_us: Option<Vec<f64>>,
    /// `HSIPC_LIVE_SWEEP_CONVERSATIONS`: comma-separated per-node
    /// conversation counts for `repro live-sweep`.
    pub sweep_conversations: Option<Vec<u32>>,
    /// `HSIPC_LIVE_SWEEP_BUFFERS`: comma-separated kernel-buffer counts
    /// for `repro live-sweep`.
    pub sweep_buffers: Option<Vec<u16>>,
}

impl LiveEnv {
    /// Reads and validates the process environment.
    ///
    /// # Errors
    ///
    /// [`EnvError`] on the first malformed value or unknown `HSIPC_LIVE_*`
    /// variable.
    pub fn from_env() -> Result<LiveEnv, EnvError> {
        LiveEnv::from_vars(std::env::vars())
    }

    /// As [`LiveEnv::from_env`], over an explicit variable list (the
    /// testable core: no process-global state).
    ///
    /// # Errors
    ///
    /// [`EnvError`] on the first malformed value or unknown `HSIPC_LIVE_*`
    /// variable, in the order of [`KNOWN`] (unknown names last).
    pub fn from_vars(
        vars: impl IntoIterator<Item = (String, String)>,
    ) -> Result<LiveEnv, EnvError> {
        let live: Vec<(String, String)> = vars
            .into_iter()
            .filter(|(k, _)| k.starts_with("HSIPC_LIVE_"))
            .collect();
        let get = |name: &str| {
            live.iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v.trim().to_string())
        };

        let mut env = LiveEnv::default();
        if let Some(v) = get("HSIPC_LIVE_ARCH") {
            env.archs = Some(parse_archs(&v).map_err(|m| err("HSIPC_LIVE_ARCH", m))?);
        }
        if let Some(v) = get("HSIPC_LIVE_NODES") {
            env.nodes = Some(parse_min("HSIPC_LIVE_NODES", &v, 1)?);
        }
        if let Some(v) = get("HSIPC_LIVE_CONVERSATIONS") {
            env.conversations = Some(parse_min("HSIPC_LIVE_CONVERSATIONS", &v, 1)?);
        }
        if let Some(v) = get("HSIPC_LIVE_DURATION_MS") {
            env.duration_ms = Some(parse_min("HSIPC_LIVE_DURATION_MS", &v, 0)?);
        }
        if let Some(v) = get("HSIPC_LIVE_SCALE") {
            let scale: f64 = v
                .parse()
                .map_err(|_| err("HSIPC_LIVE_SCALE", format!("not a number: `{v}`")))?;
            if !(scale > 0.0 && scale.is_finite()) {
                return Err(err(
                    "HSIPC_LIVE_SCALE",
                    format!("must be a positive finite number, got `{v}`"),
                ));
            }
            env.scale = Some(scale);
        }
        if let Some(v) = get("HSIPC_LIVE_SERVER_COMPUTE_US") {
            let x: f64 = v.parse().map_err(|_| {
                err(
                    "HSIPC_LIVE_SERVER_COMPUTE_US",
                    format!("not a number: `{v}`"),
                )
            })?;
            if !(x >= 0.0 && x.is_finite()) {
                return Err(err(
                    "HSIPC_LIVE_SERVER_COMPUTE_US",
                    format!("must be a non-negative finite number, got `{v}`"),
                ));
            }
            env.server_compute_us = Some(x);
        }
        if let Some(v) = get("HSIPC_LIVE_BUFFERS") {
            env.buffers = Some(parse_min("HSIPC_LIVE_BUFFERS", &v, 1)?);
        }
        if let Some(v) = get("HSIPC_LIVE_CLOCK") {
            env.clock = Some(v.parse().map_err(|m| err("HSIPC_LIVE_CLOCK", m))?);
        }
        if let Some(v) = get("HSIPC_LIVE_HANDOFF") {
            env.handoff = Some(v.parse().map_err(|m| err("HSIPC_LIVE_HANDOFF", m))?);
        }
        if let Some(v) = get("HSIPC_LIVE_SWEEP_X_LIST") {
            let xs = parse_list("HSIPC_LIVE_SWEEP_X_LIST", &v, |var, item| {
                let x: f64 = item
                    .parse()
                    .map_err(|_| err(var, format!("not a number: `{item}`")))?;
                if !(x >= 0.0 && x.is_finite()) {
                    return Err(err(
                        var,
                        format!("must be a non-negative finite number, got `{item}`"),
                    ));
                }
                Ok(x)
            })?;
            env.sweep_x_us = Some(xs);
        }
        if let Some(v) = get("HSIPC_LIVE_SWEEP_CONVERSATIONS") {
            env.sweep_conversations = Some(parse_list(
                "HSIPC_LIVE_SWEEP_CONVERSATIONS",
                &v,
                |var, item| parse_min(var, item, 1),
            )?);
        }
        if let Some(v) = get("HSIPC_LIVE_SWEEP_BUFFERS") {
            env.sweep_buffers = Some(parse_list("HSIPC_LIVE_SWEEP_BUFFERS", &v, |var, item| {
                parse_min(var, item, 1)
            })?);
        }

        if let Some((k, _)) = live.iter().find(|(k, _)| !KNOWN.contains(&k.as_str())) {
            return Err(err(
                k,
                format!("unknown variable (known: {})", KNOWN.join(", ")),
            ));
        }
        Ok(env)
    }

    /// Overwrites the set fields of `config` (the architecture list is
    /// `repro live`'s business and is not part of [`Config`]).
    pub fn apply(&self, config: &mut Config) {
        if let Some(v) = self.nodes {
            config.nodes = v;
        }
        if let Some(v) = self.conversations {
            config.conversations = v;
        }
        if let Some(v) = self.duration_ms {
            config.duration = Duration::from_millis(v);
        }
        if let Some(v) = self.scale {
            config.scale = v;
        }
        if let Some(v) = self.server_compute_us {
            config.server_compute_us = v;
        }
        if let Some(v) = self.buffers {
            config.buffers = v;
        }
        if let Some(v) = self.clock {
            config.clock = v;
        }
        if let Some(v) = self.handoff {
            config.handoff = v;
        }
    }
}

/// Parses a non-empty comma-separated list, trimming items; `parse_item`
/// validates each element.
fn parse_list<T>(
    var: &str,
    v: &str,
    parse_item: impl Fn(&str, &str) -> Result<T, EnvError>,
) -> Result<Vec<T>, EnvError> {
    let items: Vec<&str> = v.split(',').map(str::trim).collect();
    if items.iter().any(|item| item.is_empty()) {
        return Err(err(
            var,
            format!("empty item in comma-separated list: `{v}`"),
        ));
    }
    items.iter().map(|item| parse_item(var, item)).collect()
}

fn parse_min<T>(var: &str, v: &str, min: T) -> Result<T, EnvError>
where
    T: std::str::FromStr + PartialOrd + std::fmt::Display + Copy,
{
    let parsed: T = v
        .parse()
        .map_err(|_| err(var, format!("not a non-negative integer: `{v}`")))?;
    if parsed < min {
        return Err(err(var, format!("must be at least {min}, got `{v}`")));
    }
    Ok(parsed)
}

/// Parses an architecture selection: `I`–`IV` (or `1`–`4`), or `all`.
///
/// # Errors
///
/// A human-readable message naming the bad value.
pub fn parse_archs(s: &str) -> Result<Vec<Architecture>, String> {
    use Architecture::*;
    Ok(match s {
        "all" | "ALL" => Architecture::ALL.to_vec(),
        "I" | "1" => vec![Uniprocessor],
        "II" | "2" => vec![MessageCoprocessor],
        "III" | "3" => vec![SmartBus],
        "IV" | "4" => vec![PartitionedSmartBus],
        other => return Err(format!("unknown architecture `{other}` (I|II|III|IV|all)")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vars(pairs: &[(&str, &str)]) -> Vec<(String, String)> {
        pairs
            .iter()
            .map(|&(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn empty_environment_sets_nothing() {
        let env = LiveEnv::from_vars(vars(&[("PATH", "/bin")])).unwrap();
        assert_eq!(env, LiveEnv::default());
        let mut config = Config::new(Architecture::Uniprocessor);
        let before = format!("{config:?}");
        env.apply(&mut config);
        assert_eq!(format!("{config:?}"), before);
    }

    #[test]
    fn well_formed_values_apply() {
        let env = LiveEnv::from_vars(vars(&[
            ("HSIPC_LIVE_NODES", "4"),
            ("HSIPC_LIVE_CONVERSATIONS", " 128 "),
            ("HSIPC_LIVE_DURATION_MS", "250"),
            ("HSIPC_LIVE_SCALE", "0.5"),
            ("HSIPC_LIVE_SERVER_COMPUTE_US", "5700"),
            ("HSIPC_LIVE_BUFFERS", "16"),
            ("HSIPC_LIVE_CLOCK", "virtual"),
            ("HSIPC_LIVE_ARCH", "II"),
        ]))
        .unwrap();
        assert_eq!(env.archs, Some(vec![Architecture::MessageCoprocessor]));
        let mut config = Config::new(Architecture::Uniprocessor);
        env.apply(&mut config);
        assert_eq!(config.nodes, 4);
        assert_eq!(config.conversations, 128);
        assert_eq!(config.duration, Duration::from_millis(250));
        assert_eq!(config.scale, 0.5);
        assert_eq!(config.server_compute_us, 5_700.0);
        assert_eq!(config.buffers, 16);
        assert_eq!(config.clock, ClockMode::Virtual);
    }

    #[test]
    fn malformed_values_error_instead_of_defaulting() {
        for (var, value, needle) in [
            ("HSIPC_LIVE_NODES", "three", "not a non-negative integer"),
            ("HSIPC_LIVE_NODES", "0", "at least 1"),
            (
                "HSIPC_LIVE_CONVERSATIONS",
                "-5",
                "not a non-negative integer",
            ),
            ("HSIPC_LIVE_SCALE", "fast", "not a number"),
            ("HSIPC_LIVE_SCALE", "0", "positive"),
            ("HSIPC_LIVE_SCALE", "-1.5", "positive"),
            ("HSIPC_LIVE_SERVER_COMPUTE_US", "slow", "not a number"),
            ("HSIPC_LIVE_SERVER_COMPUTE_US", "-10", "non-negative"),
            ("HSIPC_LIVE_SERVER_COMPUTE_US", "inf", "non-negative"),
            ("HSIPC_LIVE_BUFFERS", "70000", "not a non-negative integer"),
            ("HSIPC_LIVE_CLOCK", "wall", "unknown clock mode"),
            ("HSIPC_LIVE_ARCH", "V", "unknown architecture"),
        ] {
            let e = LiveEnv::from_vars(vars(&[(var, value)])).unwrap_err();
            assert_eq!(e.var, var, "{var}={value}");
            assert!(
                e.message.contains(needle),
                "{var}={value}: message `{}` lacks `{needle}`",
                e.message
            );
        }
    }

    #[test]
    fn sweep_lists_and_handoff_parse() {
        let env = LiveEnv::from_vars(vars(&[
            ("HSIPC_LIVE_HANDOFF", "broadcast"),
            ("HSIPC_LIVE_SWEEP_X_LIST", "0, 570,1140, 2850"),
            ("HSIPC_LIVE_SWEEP_CONVERSATIONS", "4,64"),
            ("HSIPC_LIVE_SWEEP_BUFFERS", " 1, 32 "),
        ]))
        .unwrap();
        assert_eq!(env.handoff, Some(Handoff::Broadcast));
        assert_eq!(env.sweep_x_us, Some(vec![0.0, 570.0, 1_140.0, 2_850.0]));
        assert_eq!(env.sweep_conversations, Some(vec![4, 64]));
        assert_eq!(env.sweep_buffers, Some(vec![1, 32]));
        let mut config = Config::new(Architecture::Uniprocessor);
        env.apply(&mut config);
        assert_eq!(config.handoff, Handoff::Broadcast);
    }

    #[test]
    fn malformed_sweep_lists_error() {
        for (var, value, needle) in [
            ("HSIPC_LIVE_HANDOFF", "notify", "unknown handoff mode"),
            ("HSIPC_LIVE_SWEEP_X_LIST", "570,,1140", "empty item"),
            ("HSIPC_LIVE_SWEEP_X_LIST", "570,slow", "not a number"),
            ("HSIPC_LIVE_SWEEP_X_LIST", "-1", "non-negative"),
            ("HSIPC_LIVE_SWEEP_CONVERSATIONS", "4,0", "at least 1"),
            (
                "HSIPC_LIVE_SWEEP_BUFFERS",
                "32,many",
                "not a non-negative integer",
            ),
        ] {
            let e = LiveEnv::from_vars(vars(&[(var, value)])).unwrap_err();
            assert_eq!(e.var, var, "{var}={value}");
            assert!(
                e.message.contains(needle),
                "{var}={value}: message `{}` lacks `{needle}`",
                e.message
            );
        }
    }

    #[test]
    fn zero_server_compute_is_the_max_load_point() {
        let env = LiveEnv::from_vars(vars(&[("HSIPC_LIVE_SERVER_COMPUTE_US", "0")])).unwrap();
        assert_eq!(env.server_compute_us, Some(0.0));
    }

    #[test]
    fn unknown_live_variable_is_a_typo_error() {
        let e = LiveEnv::from_vars(vars(&[("HSIPC_LIVE_CONVERSATION", "64")])).unwrap_err();
        assert_eq!(e.var, "HSIPC_LIVE_CONVERSATION");
        assert!(e.message.contains("unknown variable"), "{}", e.message);
        // Non-HSIPC_LIVE variables are never inspected.
        assert!(LiveEnv::from_vars(vars(&[("HSIPC_SWEEP", "8")])).is_ok());
    }

    #[test]
    fn arch_selections_parse() {
        assert_eq!(parse_archs("all").unwrap().len(), 4);
        assert_eq!(parse_archs("3").unwrap(), vec![Architecture::SmartBus],);
        assert!(parse_archs("V").is_err());
    }
}
