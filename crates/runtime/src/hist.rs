//! A concurrent log-linear latency histogram.
//!
//! Round-trip latencies span three decades (tens of microseconds uncontended
//! to tens of milliseconds under a 64-conversation backlog), so the bucket
//! grid must be logarithmic — but pure powers of two are too coarse at the
//! top: a 64-conversation run puts *every* sample inside one `[33.5 ms,
//! 67.1 ms)` bucket, and p50, p95 and p99 all collapse to the same bucket
//! midpoint. Each power of two is therefore split into 16 linear
//! sub-buckets (the HDR-histogram layout at 4 significant bits): relative
//! bucket width is bounded by 1/16 everywhere, so quantiles resolve to
//! ~6% at any magnitude, and [`Histogram::quantile_us`] interpolates
//! linearly inside the landing bucket on top of that. Recording stays a
//! couple of shifts plus a relaxed fetch-add per sample — cheap enough for
//! the client hot path of every host thread.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

/// Sub-bucket resolution: each power of two splits into `2^SUB_BITS`
/// linear sub-buckets.
const SUB_BITS: u32 = 4;

/// Sub-buckets per power of two.
const SUBS: usize = 1 << SUB_BITS;

/// Total buckets: one unit-wide bucket per value below [`SUBS`], then 16
/// sub-buckets for each exponent `SUB_BITS..64`.
const BUCKETS: usize = SUBS + (64 - SUB_BITS as usize) * SUBS;

/// Bucket index of a sample of `ns` nanoseconds.
fn bucket_index(ns: u64) -> usize {
    if ns < SUBS as u64 {
        ns as usize
    } else {
        let exp = 63 - ns.leading_zeros() as usize;
        let shift = exp - SUB_BITS as usize;
        let sub = ((ns >> shift) as usize) & (SUBS - 1);
        SUBS + shift * SUBS + sub
    }
}

/// Lower bound and width of bucket `index`, in nanoseconds. The bucket
/// covers `[low, low + width)`.
fn bucket_bounds(index: usize) -> (f64, f64) {
    if index < SUBS {
        (index as f64, 1.0)
    } else {
        let shift = (index - SUBS) / SUBS;
        let sub = (index - SUBS) % SUBS;
        let width = (1u64 << shift) as f64;
        ((SUBS + sub) as f64 * width, width)
    }
}

/// A lock-free histogram of durations.
///
/// The ~8 KB bucket array is allocated lazily on the first sample: a sweep
/// spawning hundreds of per-node histograms pays for the grid only on nodes
/// that actually record (and an empty histogram is a few words).
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: OnceLock<Box<[AtomicU64; BUCKETS]>>,
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Histogram {
    /// The bucket grid, allocated on first use.
    fn grid(&self) -> &[AtomicU64; BUCKETS] {
        self.buckets
            .get_or_init(|| Box::new(std::array::from_fn(|_| AtomicU64::new(0))))
    }

    /// Records one sample.
    pub fn record(&self, sample: Duration) {
        self.record_ns(sample.as_nanos() as u64);
    }

    /// Records one sample given directly in nanoseconds — the form clock
    /// timestamps arrive in ([`crate::clock::ClockHandle::now_ns`]), real
    /// or virtual.
    pub fn record_ns(&self, ns: u64) {
        let ns = ns.max(1);
        self.grid()[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Adds every sample of `other` into `self`, bucket by bucket.
    ///
    /// Because samples are bucketed individually at record time, merging
    /// per-node histograms and *then* taking quantiles is exactly
    /// equivalent to having recorded every sample into one shared
    /// histogram — fleet-wide quantiles carry no rank-interpolation bias
    /// from the split (unlike averaging per-node quantiles, which is
    /// biased whenever node distributions differ). Bucket sums commute,
    /// so any merge order produces identical counts.
    pub fn merge(&self, other: &Histogram) {
        let Some(theirs) = other.buckets.get() else {
            return; // `other` never recorded: nothing to add.
        };
        let mine = self.grid();
        for (mine, theirs) in mine.iter().zip(theirs.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum_ns
            .fetch_add(other.sum_ns.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max_ns
            .fetch_max(other.max_ns.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency in microseconds (0 with no samples).
    pub fn mean_us(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        self.sum_ns.load(Ordering::Relaxed) as f64 / n as f64 / 1_000.0
    }

    /// Largest recorded sample, microseconds.
    pub fn max_us(&self) -> f64 {
        self.max_ns.load(Ordering::Relaxed) as f64 / 1_000.0
    }

    /// Approximate `q`-quantile in microseconds: linear interpolation by
    /// rank inside the bucket holding the `q`-th sample (0 with no
    /// samples). Distinct ranks landing in one bucket still get distinct,
    /// ordered estimates — the property the coarse power-of-two histogram
    /// lost for tightly clustered tails. The bucket's upper edge is capped
    /// at the observed maximum (no sample lies beyond it, and the cap
    /// keeps tail estimates both below `max` and strictly ordered instead
    /// of collapsing onto a clamp).
    pub fn quantile_us(&self, q: f64) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        let Some(buckets) = self.buckets.get() else {
            return 0.0;
        };
        let target = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let max_ns = self.max_ns.load(Ordering::Relaxed) as f64;
        let mut seen = 0u64;
        for (index, slot) in buckets.iter().enumerate() {
            let c = slot.load(Ordering::Relaxed);
            if c == 0 {
                continue;
            }
            if seen + c >= target {
                let (low, width) = bucket_bounds(index);
                let high = (low + width).min(max_ns);
                let frac = (target - seen) as f64 / c as f64;
                return (low + (high - low) * frac) / 1_000.0;
            }
            seen += c;
        }
        self.max_us()
    }

    /// The per-bucket counts with their lower bounds in microseconds, for
    /// printing (only non-empty buckets).
    pub fn nonzero_buckets(&self) -> Vec<(f64, u64)> {
        let Some(buckets) = self.buckets.get() else {
            return Vec::new();
        };
        buckets
            .iter()
            .enumerate()
            .filter_map(|(index, slot)| {
                let n = slot.load(Ordering::Relaxed);
                (n > 0).then(|| (bucket_bounds(index).0 / 1_000.0, n))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_line() {
        // Every bucket's upper edge is the next bucket's lower edge, and
        // boundary values land in the bucket that owns them.
        for index in 0..BUCKETS - 1 {
            let (low, width) = bucket_bounds(index);
            let (next_low, _) = bucket_bounds(index + 1);
            assert_eq!(low + width, next_low, "gap after bucket {index}");
        }
        for ns in [1u64, 15, 16, 17, 255, 256, 1 << 20, (1 << 20) + 12345] {
            let (low, width) = bucket_bounds(bucket_index(ns));
            assert!(
                low <= ns as f64 && (ns as f64) < low + width,
                "ns={ns} misfiled into [{low}, {})",
                low + width
            );
        }
    }

    #[test]
    fn quantiles_bracket_the_samples() {
        let h = Histogram::default();
        for us in [10u64, 20, 40, 80, 160, 320, 640, 1_280, 2_560, 5_120] {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 10);
        let p50 = h.quantile_us(0.50);
        assert!((50.0..200.0).contains(&p50), "p50 {p50}");
        let p99 = h.quantile_us(0.99);
        assert!(p99 >= 2_560.0, "p99 {p99}");
        assert!((h.max_us() - 5_120.0).abs() < 1.0);
        assert!(h.mean_us() > 900.0 && h.mean_us() < 1_100.0);
    }

    #[test]
    fn clustered_tail_quantiles_stay_ordered() {
        // The regression that motivated the sub-buckets: a contended run
        // puts all samples between 34 ms and 64 ms — one power-of-two
        // bucket. The log-linear grid plus interpolation must still
        // separate the quantiles, strictly and in order.
        let h = Histogram::default();
        for i in 0..100u64 {
            h.record(Duration::from_micros(34_000 + i * 300));
        }
        let (p50, p95, p99) = (
            h.quantile_us(0.50),
            h.quantile_us(0.95),
            h.quantile_us(0.99),
        );
        assert!(p50 < p95, "p50 {p50} !< p95 {p95}");
        assert!(p95 < p99, "p95 {p95} !< p99 {p99}");
        assert!((30_000.0..70_000.0).contains(&p50), "p50 {p50}");
        // Each estimate is within one sub-bucket (~6%) of the true rank
        // statistic.
        assert!((p50 - 49_000.0).abs() < 49_000.0 * 0.07, "p50 {p50}");
        assert!((p95 - 62_500.0).abs() < 62_500.0 * 0.07, "p95 {p95}");
        assert!(p99 <= h.max_us());
    }

    #[test]
    fn merge_equals_recording_into_one_histogram() {
        // Fleet-wide quantiles: two per-node histograms with *different*
        // latency regimes (the case where averaging per-node quantiles is
        // biased), merged, must agree exactly — bucket for bucket and
        // quantile for quantile — with one histogram that saw everything.
        let node_a = Histogram::default();
        let node_b = Histogram::default();
        let reference = Histogram::default();
        for i in 0..200u64 {
            let fast = 10_000 + i * 37; // ~10 µs regime on node A
            let slow = 34_000_000 + i * 300_000; // ~34 ms regime on node B
            node_a.record_ns(fast);
            node_b.record_ns(slow);
            reference.record_ns(fast);
            reference.record_ns(slow);
        }
        let fleet = Histogram::default();
        fleet.merge(&node_a);
        fleet.merge(&node_b);
        assert_eq!(fleet.count(), reference.count());
        assert_eq!(fleet.nonzero_buckets(), reference.nonzero_buckets());
        for q in [0.05, 0.25, 0.50, 0.75, 0.95, 0.99, 1.0] {
            assert_eq!(fleet.quantile_us(q), reference.quantile_us(q), "q={q}");
        }
        assert_eq!(fleet.mean_us(), reference.mean_us());
        assert_eq!(fleet.max_us(), reference.max_us());
        // Strict ordering survives the merge: the quantile ladder of the
        // bimodal fleet distribution is strictly increasing.
        let (p50, p95, p99) = (
            fleet.quantile_us(0.50),
            fleet.quantile_us(0.95),
            fleet.quantile_us(0.99),
        );
        assert!(p50 < p95 && p95 < p99, "p50 {p50}, p95 {p95}, p99 {p99}");
        // Merge order does not matter (bucket sums commute).
        let swapped = Histogram::default();
        swapped.merge(&node_b);
        swapped.merge(&node_a);
        assert_eq!(swapped.nonzero_buckets(), fleet.nonzero_buckets());
    }

    #[test]
    fn merging_an_empty_histogram_allocates_nothing() {
        let empty = Histogram::default();
        let target = Histogram::default();
        target.merge(&empty);
        assert_eq!(target.count(), 0);
        // Neither side allocated its bucket grid.
        assert!(target.buckets.get().is_none());
        assert!(empty.buckets.get().is_none());
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile_us(0.5), 0.0);
        assert_eq!(h.mean_us(), 0.0);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(Histogram::default());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 1..=1_000u64 {
                        h.record(Duration::from_nanos(i));
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(h.count(), 4_000);
    }
}
