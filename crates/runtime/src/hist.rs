//! A concurrent log-linear latency histogram.
//!
//! Round-trip latencies span three decades (tens of microseconds uncontended
//! to tens of milliseconds under a 64-conversation backlog), so the bucket
//! grid must be logarithmic — but pure powers of two are too coarse at the
//! top: a 64-conversation run puts *every* sample inside one `[33.5 ms,
//! 67.1 ms)` bucket, and p50, p95 and p99 all collapse to the same bucket
//! midpoint. Each power of two is therefore split into 16 linear
//! sub-buckets (the HDR-histogram layout at 4 significant bits): relative
//! bucket width is bounded by 1/16 everywhere, so quantiles resolve to
//! ~6% at any magnitude, and [`Histogram::quantile_us`] interpolates
//! linearly inside the landing bucket on top of that. Recording stays a
//! couple of shifts plus a relaxed fetch-add per sample — cheap enough for
//! the client hot path of every host thread.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Sub-bucket resolution: each power of two splits into `2^SUB_BITS`
/// linear sub-buckets.
const SUB_BITS: u32 = 4;

/// Sub-buckets per power of two.
const SUBS: usize = 1 << SUB_BITS;

/// Total buckets: one unit-wide bucket per value below [`SUBS`], then 16
/// sub-buckets for each exponent `SUB_BITS..64`.
const BUCKETS: usize = SUBS + (64 - SUB_BITS as usize) * SUBS;

/// Bucket index of a sample of `ns` nanoseconds.
fn bucket_index(ns: u64) -> usize {
    if ns < SUBS as u64 {
        ns as usize
    } else {
        let exp = 63 - ns.leading_zeros() as usize;
        let shift = exp - SUB_BITS as usize;
        let sub = ((ns >> shift) as usize) & (SUBS - 1);
        SUBS + shift * SUBS + sub
    }
}

/// Lower bound and width of bucket `index`, in nanoseconds. The bucket
/// covers `[low, low + width)`.
fn bucket_bounds(index: usize) -> (f64, f64) {
    if index < SUBS {
        (index as f64, 1.0)
    } else {
        let shift = (index - SUBS) / SUBS;
        let sub = (index - SUBS) % SUBS;
        let width = (1u64 << shift) as f64;
        ((SUBS + sub) as f64 * width, width)
    }
}

/// A lock-free histogram of durations.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one sample.
    pub fn record(&self, sample: Duration) {
        self.record_ns(sample.as_nanos() as u64);
    }

    /// Records one sample given directly in nanoseconds — the form clock
    /// timestamps arrive in ([`crate::clock::ClockHandle::now_ns`]), real
    /// or virtual.
    pub fn record_ns(&self, ns: u64) {
        let ns = ns.max(1);
        self.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency in microseconds (0 with no samples).
    pub fn mean_us(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        self.sum_ns.load(Ordering::Relaxed) as f64 / n as f64 / 1_000.0
    }

    /// Largest recorded sample, microseconds.
    pub fn max_us(&self) -> f64 {
        self.max_ns.load(Ordering::Relaxed) as f64 / 1_000.0
    }

    /// Approximate `q`-quantile in microseconds: linear interpolation by
    /// rank inside the bucket holding the `q`-th sample (0 with no
    /// samples). Distinct ranks landing in one bucket still get distinct,
    /// ordered estimates — the property the coarse power-of-two histogram
    /// lost for tightly clustered tails. The bucket's upper edge is capped
    /// at the observed maximum (no sample lies beyond it, and the cap
    /// keeps tail estimates both below `max` and strictly ordered instead
    /// of collapsing onto a clamp).
    pub fn quantile_us(&self, q: f64) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        let target = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let max_ns = self.max_ns.load(Ordering::Relaxed) as f64;
        let mut seen = 0u64;
        for (index, slot) in self.buckets.iter().enumerate() {
            let c = slot.load(Ordering::Relaxed);
            if c == 0 {
                continue;
            }
            if seen + c >= target {
                let (low, width) = bucket_bounds(index);
                let high = (low + width).min(max_ns);
                let frac = (target - seen) as f64 / c as f64;
                return (low + (high - low) * frac) / 1_000.0;
            }
            seen += c;
        }
        self.max_us()
    }

    /// The per-bucket counts with their lower bounds in microseconds, for
    /// printing (only non-empty buckets).
    pub fn nonzero_buckets(&self) -> Vec<(f64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(index, slot)| {
                let n = slot.load(Ordering::Relaxed);
                (n > 0).then(|| (bucket_bounds(index).0 / 1_000.0, n))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_line() {
        // Every bucket's upper edge is the next bucket's lower edge, and
        // boundary values land in the bucket that owns them.
        for index in 0..BUCKETS - 1 {
            let (low, width) = bucket_bounds(index);
            let (next_low, _) = bucket_bounds(index + 1);
            assert_eq!(low + width, next_low, "gap after bucket {index}");
        }
        for ns in [1u64, 15, 16, 17, 255, 256, 1 << 20, (1 << 20) + 12345] {
            let (low, width) = bucket_bounds(bucket_index(ns));
            assert!(
                low <= ns as f64 && (ns as f64) < low + width,
                "ns={ns} misfiled into [{low}, {})",
                low + width
            );
        }
    }

    #[test]
    fn quantiles_bracket_the_samples() {
        let h = Histogram::default();
        for us in [10u64, 20, 40, 80, 160, 320, 640, 1_280, 2_560, 5_120] {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 10);
        let p50 = h.quantile_us(0.50);
        assert!((50.0..200.0).contains(&p50), "p50 {p50}");
        let p99 = h.quantile_us(0.99);
        assert!(p99 >= 2_560.0, "p99 {p99}");
        assert!((h.max_us() - 5_120.0).abs() < 1.0);
        assert!(h.mean_us() > 900.0 && h.mean_us() < 1_100.0);
    }

    #[test]
    fn clustered_tail_quantiles_stay_ordered() {
        // The regression that motivated the sub-buckets: a contended run
        // puts all samples between 34 ms and 64 ms — one power-of-two
        // bucket. The log-linear grid plus interpolation must still
        // separate the quantiles, strictly and in order.
        let h = Histogram::default();
        for i in 0..100u64 {
            h.record(Duration::from_micros(34_000 + i * 300));
        }
        let (p50, p95, p99) = (
            h.quantile_us(0.50),
            h.quantile_us(0.95),
            h.quantile_us(0.99),
        );
        assert!(p50 < p95, "p50 {p50} !< p95 {p95}");
        assert!(p95 < p99, "p95 {p95} !< p99 {p99}");
        assert!((30_000.0..70_000.0).contains(&p50), "p50 {p50}");
        // Each estimate is within one sub-bucket (~6%) of the true rank
        // statistic.
        assert!((p50 - 49_000.0).abs() < 49_000.0 * 0.07, "p50 {p50}");
        assert!((p95 - 62_500.0).abs() < 62_500.0 * 0.07, "p95 {p95}");
        assert!(p99 <= h.max_us());
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile_us(0.5), 0.0);
        assert_eq!(h.mean_us(), 0.0);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(Histogram::default());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 1..=1_000u64 {
                        h.record(Duration::from_nanos(i));
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(h.count(), 4_000);
    }
}
