//! A concurrent log-bucketed latency histogram.
//!
//! Round-trip latencies span three decades (tens of microseconds uncontended
//! to tens of milliseconds under a 64-conversation backlog), so buckets are
//! powers of two of nanoseconds: `bucket = floor(log2(ns))`. Recording is a
//! single relaxed fetch-add per sample — cheap enough to sit on the client
//! hot path of every host thread.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

const BUCKETS: usize = 64;

/// A lock-free histogram of durations.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one sample.
    pub fn record(&self, sample: Duration) {
        let ns = (sample.as_nanos() as u64).max(1);
        let bucket = 63 - ns.leading_zeros() as usize;
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency in microseconds (0 with no samples).
    pub fn mean_us(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        self.sum_ns.load(Ordering::Relaxed) as f64 / n as f64 / 1_000.0
    }

    /// Largest recorded sample, microseconds.
    pub fn max_us(&self) -> f64 {
        self.max_ns.load(Ordering::Relaxed) as f64 / 1_000.0
    }

    /// Approximate `q`-quantile in microseconds: the geometric midpoint of
    /// the bucket containing the `q`-th sample, clamped to the observed
    /// maximum so an estimate never exceeds a real sample (0 with no
    /// samples).
    pub fn quantile_us(&self, q: f64) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        let target = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (bucket, slot) in self.buckets.iter().enumerate() {
            seen += slot.load(Ordering::Relaxed);
            if seen >= target {
                // Bucket spans [2^b, 2^(b+1)) ns; report sqrt(2)·2^b.
                let mid = (1u128 << bucket) as f64 * std::f64::consts::SQRT_2 / 1_000.0;
                return mid.min(self.max_us());
            }
        }
        self.max_us()
    }

    /// The per-bucket counts with their lower bounds in microseconds, for
    /// printing (only non-empty buckets).
    pub fn nonzero_buckets(&self) -> Vec<(f64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(b, slot)| {
                let n = slot.load(Ordering::Relaxed);
                (n > 0).then(|| ((1u128 << b) as f64 / 1_000.0, n))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_bracket_the_samples() {
        let h = Histogram::default();
        for us in [10u64, 20, 40, 80, 160, 320, 640, 1_280, 2_560, 5_120] {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 10);
        let p50 = h.quantile_us(0.50);
        assert!((50.0..200.0).contains(&p50), "p50 {p50}");
        let p99 = h.quantile_us(0.99);
        assert!(p99 >= 2_560.0, "p99 {p99}");
        assert!((h.max_us() - 5_120.0).abs() < 1.0);
        assert!(h.mean_us() > 900.0 && h.mean_us() < 1_100.0);
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile_us(0.5), 0.0);
        assert_eq!(h.mean_us(), 0.0);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(Histogram::default());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 1..=1_000u64 {
                        h.record(Duration::from_nanos(i));
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(h.count(), 4_000);
    }
}
