//! Property-based tests of the smart bus: arbitration correctness and
//! protocol timing laws.

use proptest::prelude::*;
use smartbus::{Arbiter, RequestNumber};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Taub's wired-or circuit always selects the highest request number,
    /// for any set of distinct contenders in any order.
    #[test]
    fn arbitration_selects_maximum(mut numbers in proptest::collection::btree_set(0u8..8, 1..8)) {
        let mut contenders: Vec<RequestNumber> =
            numbers.iter().map(|&n| RequestNumber::new(n)).collect();
        // Shuffle deterministically by rotating.
        let rot = contenders.len() / 2;
        contenders.rotate_left(rot);
        let winner = Arbiter::new().resolve(&contenders).unwrap();
        let max = numbers.iter().max().copied().unwrap();
        prop_assert_eq!(contenders[winner].value(), max);
        let _ = numbers.pop_first();
    }
}

mod engine_timing {
    use super::*;
    use smartbus::{BlockDirection, BusEngine, BusSlave, Response, SlaveError, Tag, Transaction};
    use smartmem::SmartMemory;

    #[derive(Debug, Clone)]
    enum Op {
        Read(u16),
        Write(u16, u16),
        Enqueue(u8),
        First,
        Block(Vec<u16>),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        // Reads/writes land in 0x400..0x800 so they cannot corrupt the
        // queue anchor (0x10), the control blocks (0x40..) or the block
        // region (0x800..).
        prop_oneof![
            (0u16..512).prop_map(|a| Op::Read(0x400 + a * 2)),
            ((0u16..512), any::<u16>()).prop_map(|(a, v)| Op::Write(0x400 + a * 2, v)),
            (0u8..16).prop_map(Op::Enqueue),
            Just(Op::First),
            proptest::collection::vec(any::<u16>(), 1..12).prop_map(Op::Block),
        ]
    }

    /// Expected bus edges for an operation (per the Chapter 5 timing
    /// diagrams; blocks stream in pairs of words, odd tails cost one pair).
    fn expected_edges(op: &Op) -> u64 {
        match op {
            Op::Read(_) => 8,
            Op::Write(..) => 4,
            Op::Enqueue(_) => 4,
            Op::First => 8,
            Op::Block(words) => 4 + 2 * words.len() as u64,
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// With a single master, total bus time is exactly the sum of the
        /// per-transaction handshake costs — the protocol never loses or
        /// invents edges.
        #[test]
        fn single_master_time_is_sum_of_handshakes(
            ops in proptest::collection::vec(op_strategy(), 1..25),
        ) {
            let mut bus = BusEngine::new(SmartMemory::new(16 * 1024), RequestNumber::new(7));
            let unit = bus.add_unit("u", RequestNumber::new(1)).unwrap();
            let mut expected_ns = 0u64;
            let mut enqueued: u64 = 0;
            for op in &ops {
                let t = match op {
                    Op::Read(a) => Transaction::SimpleRead { addr: *a },
                    Op::Write(a, v) => Transaction::WriteWord { addr: *a, value: *v },
                    Op::Enqueue(i) => {
                        enqueued += 1;
                        Transaction::Enqueue { list: 0x10, element: 0x40 + u16::from(*i) * 2 }
                    }
                    Op::First => Transaction::First { list: 0x10 },
                    Op::Block(words) => Transaction::BlockTransfer {
                        addr: 0x1000,
                        count: (words.len() * 2) as u16,
                        direction: BlockDirection::Write,
                        data: words.clone(),
                    },
                };
                // Enqueue of an element already on the list corrupts a
                // circular list (control blocks live on one list at most) —
                // skip duplicates like the kernel does.
                if let Transaction::Enqueue { element, .. } = &t {
                    let mem = bus.slave_mut().memory_mut();
                    if smartmem::queue::elements(mem, 0x10).unwrap().contains(element) {
                        enqueued -= 1;
                        continue;
                    }
                }
                expected_ns += expected_edges(op) * 250;
                bus.submit(unit, t).unwrap();
                let done = bus.run_until_idle().unwrap();
                prop_assert_eq!(done.len(), 1);
            }
            prop_assert_eq!(bus.time_ns(), expected_ns);
            let _ = enqueued;
        }

        /// Writes then reads round-trip through the bus for any addresses.
        #[test]
        fn write_read_roundtrip(writes in proptest::collection::vec((0u16..1000, any::<u16>()), 1..20)) {
            let mut bus = BusEngine::new(SmartMemory::new(4 * 1024), RequestNumber::new(7));
            let unit = bus.add_unit("u", RequestNumber::new(2)).unwrap();
            // Use distinct word-aligned addresses.
            let mut seen = std::collections::HashSet::new();
            for &(a, v) in &writes {
                let addr = (a % 1000) * 2;
                if !seen.insert(addr) {
                    continue;
                }
                bus.submit(unit, Transaction::WriteWord { addr, value: v }).unwrap();
                bus.run_until_idle().unwrap();
                bus.submit(unit, Transaction::SimpleRead { addr }).unwrap();
                let done = bus.run_until_idle().unwrap();
                prop_assert_eq!(&done[0].response, &Response::Data(v));
            }
        }
    }

    /// A slave returning errors propagates them; the engine does not hang.
    #[test]
    fn slave_errors_surface() {
        #[derive(Debug)]
        struct FailingSlave;
        impl BusSlave for FailingSlave {
            fn simple_read(&mut self, addr: u16) -> Result<u16, SlaveError> {
                Err(SlaveError::AddressOutOfRange {
                    addr: u32::from(addr),
                })
            }
            fn write_word(&mut self, _: u16, _: u16) -> Result<(), SlaveError> {
                Ok(())
            }
            fn write_byte(&mut self, _: u16, _: u8) -> Result<(), SlaveError> {
                Ok(())
            }
            fn block_transfer(
                &mut self,
                _: u16,
                _: u16,
                _: BlockDirection,
                _: u8,
            ) -> Result<Tag, SlaveError> {
                Err(SlaveError::BlockTableFull)
            }
            fn pending_read(&self) -> Option<Tag> {
                None
            }
            fn stream_out(&mut self, tag: Tag, _: usize) -> Result<(Vec<u16>, bool), SlaveError> {
                Err(SlaveError::UnknownTag(tag))
            }
            fn stream_in(&mut self, tag: Tag, _: &[u16]) -> Result<bool, SlaveError> {
                Err(SlaveError::UnknownTag(tag))
            }
            fn enqueue(&mut self, list: u16, _: u16) -> Result<(), SlaveError> {
                Err(SlaveError::CorruptList { list })
            }
            fn dequeue(&mut self, _: u16, _: u16) -> Result<(), SlaveError> {
                Ok(())
            }
            fn first(&mut self, _: u16) -> Result<Option<u16>, SlaveError> {
                Ok(None)
            }
        }

        let mut bus = BusEngine::new(FailingSlave, RequestNumber::new(7));
        let unit = bus.add_unit("u", RequestNumber::new(1)).unwrap();
        bus.submit(unit, Transaction::SimpleRead { addr: 4 })
            .unwrap();
        assert!(bus.run_until_idle().is_err());
    }
}
