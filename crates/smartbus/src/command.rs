//! Command encodings on the `CM0–CM3` lines (Table 5.2).

use std::fmt;

/// A smart bus command, with the encoding of Table 5.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Command {
    /// Simple (two-byte) read.
    SimpleRead = 0b0000,
    /// Block transfer request: address + count, answered with a tag.
    BlockTransfer = 0b0001,
    /// Tagged streaming data from memory to a processor.
    BlockReadData = 0b0010,
    /// Tagged streaming data from a processor to memory.
    BlockWriteData = 0b0011,
    /// Atomic enqueue of a control block on a circular list.
    EnqueueControlBlock = 0b0100,
    /// Atomic dequeue of a named control block from a circular list.
    DequeueControlBlock = 0b0101,
    /// Atomic dequeue of the first control block of a circular list.
    FirstControlBlock = 0b0110,
    /// Write two bytes.
    WriteTwoBytes = 0b1000,
    /// Write one byte.
    WriteByte = 0b1001,
}

impl Command {
    /// All commands in Table 5.2 order.
    pub const ALL: [Command; 9] = [
        Command::SimpleRead,
        Command::BlockTransfer,
        Command::BlockReadData,
        Command::BlockWriteData,
        Command::EnqueueControlBlock,
        Command::DequeueControlBlock,
        Command::FirstControlBlock,
        Command::WriteTwoBytes,
        Command::WriteByte,
    ];

    /// The 4-bit encoding placed on `CM0–CM3`.
    pub fn encoding(self) -> u8 {
        self as u8
    }

    /// Decodes a 4-bit command value.
    pub fn from_encoding(bits: u8) -> Option<Command> {
        Command::ALL.into_iter().find(|c| c.encoding() == bits)
    }

    /// Handshake edges for the *request* part of the transaction, per the
    /// timing diagrams of §5.3:
    ///
    /// * block transfer, enqueue, dequeue, write: four edges (Figs 5.4, 5.10,
    ///   5.16);
    /// * first control block and simple read: eight edges (Figs 5.12, 5.14);
    /// * streaming data commands: two edges per word once streaming
    ///   ([`Command::is_streaming`]).
    pub fn handshake_edges(self) -> u32 {
        match self {
            Command::SimpleRead | Command::FirstControlBlock => 8,
            Command::BlockTransfer
            | Command::EnqueueControlBlock
            | Command::DequeueControlBlock
            | Command::WriteTwoBytes
            | Command::WriteByte => 4,
            // Streaming commands have no fixed request cost; each word costs
            // two edges (Figures 5.6, 5.8).
            Command::BlockReadData | Command::BlockWriteData => 0,
        }
    }

    /// True for the tagged streaming data-movement commands.
    pub fn is_streaming(self) -> bool {
        matches!(self, Command::BlockReadData | Command::BlockWriteData)
    }

    /// Name as printed in Table 5.2.
    pub fn name(self) -> &'static str {
        match self {
            Command::SimpleRead => "Simple Read",
            Command::BlockTransfer => "Block transfer",
            Command::BlockReadData => "Block read data",
            Command::BlockWriteData => "Block write data",
            Command::EnqueueControlBlock => "Enqueue control block",
            Command::DequeueControlBlock => "Dequeue control block",
            Command::FirstControlBlock => "First control block",
            Command::WriteTwoBytes => "Write two bytes",
            Command::WriteByte => "Write byte",
        }
    }
}

impl fmt::Display for Command {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_5_2_encodings() {
        assert_eq!(Command::SimpleRead.encoding(), 0b0000);
        assert_eq!(Command::BlockTransfer.encoding(), 0b0001);
        assert_eq!(Command::BlockReadData.encoding(), 0b0010);
        assert_eq!(Command::BlockWriteData.encoding(), 0b0011);
        assert_eq!(Command::EnqueueControlBlock.encoding(), 0b0100);
        assert_eq!(Command::DequeueControlBlock.encoding(), 0b0101);
        assert_eq!(Command::FirstControlBlock.encoding(), 0b0110);
        assert_eq!(Command::WriteTwoBytes.encoding(), 0b1000);
        assert_eq!(Command::WriteByte.encoding(), 0b1001);
    }

    #[test]
    fn encoding_round_trip() {
        for c in Command::ALL {
            assert_eq!(Command::from_encoding(c.encoding()), Some(c));
        }
        // 0b0111 and 0b1111 are unassigned.
        assert_eq!(Command::from_encoding(0b0111), None);
        assert_eq!(Command::from_encoding(0b1111), None);
    }

    #[test]
    fn handshake_edge_counts_match_figures() {
        // Figure 5.4: block transfer completes in four clock edges.
        assert_eq!(Command::BlockTransfer.handshake_edges(), 4);
        // Figure 5.12: first control block is an eight-edge handshake.
        assert_eq!(Command::FirstControlBlock.handshake_edges(), 8);
        // Figure 5.10: enqueue/dequeue take four clock edges.
        assert_eq!(Command::EnqueueControlBlock.handshake_edges(), 4);
        assert_eq!(Command::DequeueControlBlock.handshake_edges(), 4);
        // §5.3.3: read timing like first-control-block, write like enqueue.
        assert_eq!(Command::SimpleRead.handshake_edges(), 8);
        assert_eq!(Command::WriteTwoBytes.handshake_edges(), 4);
    }

    #[test]
    fn streaming_commands_flagged() {
        for c in Command::ALL {
            assert_eq!(
                c.is_streaming(),
                matches!(c, Command::BlockReadData | Command::BlockWriteData)
            );
        }
    }
}
