//! Bus timing calibration (§6.4).
//!
//! The paper's experimental numbers come from an 8 MHz Motorola 68000 on a
//! 16-bit Versabus whose memory cycle averages one microsecond. The models
//! conservatively equate a four-edge smart bus handshake with one Versabus
//! memory cycle and a two-edge streaming transfer with half of one.

/// Duration of a single handshake edge, in nanoseconds (250 ns, so that a
/// four-edge handshake equals the 1 µs Versabus memory cycle).
pub const EDGE_NS: u64 = 250;

/// A four-edge handshake: 1 µs (one Versabus memory cycle).
pub const FOUR_EDGE_NS: u64 = 4 * EDGE_NS;

/// A two-edge streaming transfer: 0.5 µs.
pub const TWO_EDGE_NS: u64 = 2 * EDGE_NS;

/// Converts a number of handshake edges to nanoseconds.
pub fn edges_to_ns(edges: u32) -> u64 {
    u64::from(edges) * EDGE_NS
}

/// Mean Versabus memory cycle time, nanoseconds.
pub const VERSABUS_CYCLE_NS: u64 = 1_000;

/// Host/MP instruction execution time at 8 MHz / ~0.3 MIPS: 3 µs (§6.4).
pub const INSTRUCTION_NS: u64 = 3_000;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_edges_equal_versabus_cycle() {
        assert_eq!(edges_to_ns(4), VERSABUS_CYCLE_NS);
        assert_eq!(FOUR_EDGE_NS, VERSABUS_CYCLE_NS);
        assert_eq!(TWO_EDGE_NS * 2, FOUR_EDGE_NS);
    }

    #[test]
    fn forty_byte_block_matches_table_6_1() {
        // Table 6.1, architecture III: one four-edge request followed by
        // twenty two-edge transfers = 11 µs spent in memory cycles.
        let words = 40 / 2;
        let total = FOUR_EDGE_NS + words * TWO_EDGE_NS;
        assert_eq!(total, 11_000);
    }
}
