//! Transactions, responses, and the slave-side interface of the smart bus.

use crate::command::Command;
use std::fmt;

/// Direction of a block transfer, specified on the command bus with the
/// `block transfer` request (§5.3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockDirection {
    /// Memory → processor (the memory will issue `block read data`).
    Read,
    /// Processor → memory (the processor will issue `block write data`).
    Write,
}

/// A tag uniquely identifying an outstanding block transfer (four `TG`
/// lines: at most sixteen outstanding transactions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tag(pub u8);

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tag{}", self.0)
    }
}

/// A master-initiated smart bus transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Transaction {
    /// Simple two-byte read.
    SimpleRead {
        /// Byte address.
        addr: u16,
    },
    /// Write two bytes.
    WriteWord {
        /// Byte address (even).
        addr: u16,
        /// Value to store.
        value: u16,
    },
    /// Write one byte.
    WriteByte {
        /// Byte address.
        addr: u16,
        /// Value to store.
        value: u8,
    },
    /// Block transfer request: intent to move `count` contiguous bytes
    /// starting at `addr`. For writes, `data` carries the words the master
    /// will subsequently stream with `block write data`.
    BlockTransfer {
        /// Starting byte address.
        addr: u16,
        /// Number of contiguous bytes.
        count: u16,
        /// Direction of the subsequent streaming.
        direction: BlockDirection,
        /// Words to stream on a write (empty for reads).
        data: Vec<u16>,
    },
    /// Atomic enqueue of `element` on the list anchored at `list`.
    Enqueue {
        /// Address of the list-tail pointer cell.
        list: u16,
        /// Address of the element to enqueue.
        element: u16,
    },
    /// Atomic dequeue of `element` from the list anchored at `list`.
    Dequeue {
        /// Address of the list-tail pointer cell.
        list: u16,
        /// Address of the element to dequeue.
        element: u16,
    },
    /// Atomic dequeue of the first element of the list anchored at `list`.
    First {
        /// Address of the list-tail pointer cell.
        list: u16,
    },
}

impl Transaction {
    /// The command encoding this transaction places on `CM0–CM3`.
    pub fn command(&self) -> Command {
        match self {
            Transaction::SimpleRead { .. } => Command::SimpleRead,
            Transaction::WriteWord { .. } => Command::WriteTwoBytes,
            Transaction::WriteByte { .. } => Command::WriteByte,
            Transaction::BlockTransfer { .. } => Command::BlockTransfer,
            Transaction::Enqueue { .. } => Command::EnqueueControlBlock,
            Transaction::Dequeue { .. } => Command::DequeueControlBlock,
            Transaction::First { .. } => Command::FirstControlBlock,
        }
    }
}

/// Slave response completing a transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Acknowledge with no data (writes, enqueue, dequeue).
    Ack,
    /// Data word (simple read).
    Data(u16),
    /// Pointer to the dequeued first element; `None` is the distinguished
    /// NULL value for an empty list.
    Element(Option<u16>),
    /// Block data read from memory (assembled from the streamed words).
    Block(Vec<u16>),
    /// Block write completed.
    BlockWritten,
}

/// Errors raised by the shared-memory slave (§A.5 error conditions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SlaveError {
    /// The internal block-request table is full (more outstanding block
    /// transfers than tags).
    BlockTableFull,
    /// A streaming command carried a tag with no table entry.
    UnknownTag(Tag),
    /// Address/count runs past the end of the memory module.
    AddressOutOfRange {
        /// Offending byte address.
        addr: u32,
    },
    /// A queue operation addressed a malformed list (e.g. a cycle that does
    /// not return to the tail within the memory bound).
    CorruptList {
        /// Address of the list-tail pointer cell.
        list: u16,
    },
}

impl fmt::Display for SlaveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SlaveError::BlockTableFull => write!(f, "block request table full"),
            SlaveError::UnknownTag(t) => write!(f, "no block table entry for {t}"),
            SlaveError::AddressOutOfRange { addr } => {
                write!(f, "address {addr:#x} out of range")
            }
            SlaveError::CorruptList { list } => {
                write!(f, "corrupt circular list anchored at {list:#x}")
            }
        }
    }
}

impl std::error::Error for SlaveError {}

/// The slave side of the bus: implemented by the smart shared memory
/// controller (`smartmem` crate) and by test doubles.
///
/// Block transfers are split exactly as on the real bus: the request
/// ([`BusSlave::block_transfer`]) registers intent and returns a tag; data
/// then moves in word pairs via [`BusSlave::stream_out`] /
/// [`BusSlave::stream_in`], with the slave's internal table tracking
/// progress so preempted transfers resume where they stopped.
pub trait BusSlave {
    /// Simple two-byte read.
    ///
    /// # Errors
    ///
    /// Returns [`SlaveError::AddressOutOfRange`] for a bad address.
    fn simple_read(&mut self, addr: u16) -> Result<u16, SlaveError>;

    /// Write two bytes.
    ///
    /// # Errors
    ///
    /// Returns [`SlaveError::AddressOutOfRange`] for a bad address.
    fn write_word(&mut self, addr: u16, value: u16) -> Result<(), SlaveError>;

    /// Write one byte.
    ///
    /// # Errors
    ///
    /// Returns [`SlaveError::AddressOutOfRange`] for a bad address.
    fn write_byte(&mut self, addr: u16, value: u8) -> Result<(), SlaveError>;

    /// Registers a block transfer; returns the identifying tag.
    ///
    /// `priority` is the requesting unit's arbitration number — the memory
    /// services outbound streams highest-priority-first (§2.6.6 / §5.2).
    ///
    /// # Errors
    ///
    /// [`SlaveError::BlockTableFull`] or [`SlaveError::AddressOutOfRange`].
    fn block_transfer(
        &mut self,
        addr: u16,
        count: u16,
        direction: BlockDirection,
        priority: u8,
    ) -> Result<Tag, SlaveError>;

    /// The highest-priority pending outbound (read) stream, if any — the
    /// memory masters the bus to send it.
    fn pending_read(&self) -> Option<Tag>;

    /// Streams up to `max_words` words out of the block identified by `tag`.
    /// Returns the words and whether the block is now complete.
    ///
    /// # Errors
    ///
    /// [`SlaveError::UnknownTag`] for a stale tag.
    fn stream_out(&mut self, tag: Tag, max_words: usize) -> Result<(Vec<u16>, bool), SlaveError>;

    /// Streams words into the block identified by `tag`. Returns `true`
    /// when the block is complete.
    ///
    /// # Errors
    ///
    /// [`SlaveError::UnknownTag`] for a stale tag.
    fn stream_in(&mut self, tag: Tag, words: &[u16]) -> Result<bool, SlaveError>;

    /// Atomic enqueue (§5.1 primitive 1).
    ///
    /// # Errors
    ///
    /// [`SlaveError::AddressOutOfRange`] or [`SlaveError::CorruptList`].
    fn enqueue(&mut self, list: u16, element: u16) -> Result<(), SlaveError>;

    /// Atomic dequeue of a named element (§5.1 primitive 3). A missing
    /// element is a no-operation, as specified.
    ///
    /// # Errors
    ///
    /// [`SlaveError::AddressOutOfRange`] or [`SlaveError::CorruptList`].
    fn dequeue(&mut self, list: u16, element: u16) -> Result<(), SlaveError>;

    /// Atomic dequeue of the first element (§5.1 primitive 2); `None` when
    /// the list is empty.
    ///
    /// # Errors
    ///
    /// [`SlaveError::AddressOutOfRange`] or [`SlaveError::CorruptList`].
    fn first(&mut self, list: u16) -> Result<Option<u16>, SlaveError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transaction_commands() {
        assert_eq!(
            Transaction::SimpleRead { addr: 0 }.command(),
            Command::SimpleRead
        );
        assert_eq!(
            Transaction::WriteWord { addr: 0, value: 1 }.command(),
            Command::WriteTwoBytes
        );
        assert_eq!(
            Transaction::First { list: 0 }.command(),
            Command::FirstControlBlock
        );
        assert_eq!(
            Transaction::BlockTransfer {
                addr: 0,
                count: 4,
                direction: BlockDirection::Read,
                data: Vec::new()
            }
            .command(),
            Command::BlockTransfer
        );
    }

    #[test]
    fn slave_error_display() {
        let e = SlaveError::UnknownTag(Tag(3));
        assert!(e.to_string().contains("tag3"));
        let e = SlaveError::AddressOutOfRange { addr: 0x1_0000 };
        assert!(e.to_string().contains("0x10000"));
    }
}
