//! The bus engine: masters, arbitration, tenures and edge-accurate timing.
//!
//! Each *tenure* of the bus is one request handshake or one pair of
//! streaming word transfers (the bus is granted two transfers at a time,
//! §5.3.1). Arbitration for the next tenure overlaps the current one, so it
//! adds no bus time; a master that keeps winning keeps streaming without
//! releasing the bus (Figure 5.19), and a higher-priority request preempts a
//! block transfer between word pairs — the memory's internal table lets the
//! preempted block resume later (§5.2).

use crate::arbitration::{Arbiter, RequestNumber};
use crate::command::Command;
use crate::timing::edges_to_ns;
use crate::transaction::{BlockDirection, BusSlave, Response, SlaveError, Tag, Transaction};
use std::collections::HashMap;
use std::fmt;

/// Identifier of a bus unit (host, MP, network interface).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct UnitId(usize);

/// Errors from the bus engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// Each unit may have exactly one outstanding request (§5.2).
    UnitBusy(String),
    /// Error reported by the shared-memory slave.
    Slave(SlaveError),
    /// Two units were registered with the same arbitration number.
    DuplicateRequestNumber(u8),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnitBusy(name) => {
                write!(f, "unit `{name}` already has an outstanding request")
            }
            EngineError::Slave(e) => write!(f, "slave error: {e}"),
            EngineError::DuplicateRequestNumber(n) => {
                write!(f, "duplicate bus request number {n}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<SlaveError> for EngineError {
    fn from(e: SlaveError) -> EngineError {
        EngineError::Slave(e)
    }
}

/// One entry of the bus activity trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BusEvent {
    /// Start of the tenure, nanoseconds.
    pub at_ns: u64,
    /// Master of the tenure (`None` = the shared memory itself).
    pub master: Option<UnitId>,
    /// Command on the `CM` lines.
    pub command: Command,
    /// Handshake edges consumed.
    pub edges: u32,
    /// Human-readable detail.
    pub detail: String,
}

/// A completed transaction with its timing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompletedTransaction {
    /// The requesting unit.
    pub unit: UnitId,
    /// The original transaction.
    pub transaction: Transaction,
    /// The slave's response.
    pub response: Response,
    /// Submission time.
    pub submit_ns: u64,
    /// Completion time.
    pub complete_ns: u64,
}

#[derive(Debug)]
enum PendingState {
    /// Waiting to win the bus for the request handshake.
    Queued,
    /// Write block: request accepted, streaming words to memory.
    StreamingWrite {
        tag: Tag,
        data: Vec<u16>,
        cursor: usize,
    },
    /// Read block: request accepted, memory will stream words back.
    AwaitingRead { collected: Vec<u16> },
}

#[derive(Debug)]
struct PendingRequest {
    transaction: Transaction,
    submit_ns: u64,
    state: PendingState,
}

#[derive(Debug)]
struct Unit {
    name: String,
    br: RequestNumber,
    pending: Option<PendingRequest>,
}

/// The smart bus engine, parameterized by the shared-memory slave.
#[derive(Debug)]
pub struct BusEngine<S> {
    slave: S,
    units: Vec<Unit>,
    memory_br: RequestNumber,
    arbiter: Arbiter,
    time_ns: u64,
    trace: Vec<BusEvent>,
    trace_enabled: bool,
    completed: Vec<CompletedTransaction>,
    tag_owner: HashMap<Tag, UnitId>,
}

impl<S: BusSlave> BusEngine<S> {
    /// Creates an engine around `slave`; `memory_br` is the arbitration
    /// number the memory uses to master the bus for `block read data`.
    pub fn new(slave: S, memory_br: RequestNumber) -> BusEngine<S> {
        BusEngine {
            slave,
            units: Vec::new(),
            memory_br,
            arbiter: Arbiter::new(),
            time_ns: 0,
            trace: Vec::new(),
            trace_enabled: false,
            completed: Vec::new(),
            tag_owner: HashMap::new(),
        }
    }

    /// Registers a unit with a unique arbitration number.
    ///
    /// # Errors
    ///
    /// [`EngineError::DuplicateRequestNumber`] if the number is taken
    /// (including by the memory).
    pub fn add_unit(
        &mut self,
        name: impl Into<String>,
        br: RequestNumber,
    ) -> Result<UnitId, EngineError> {
        if br == self.memory_br || self.units.iter().any(|u| u.br == br) {
            return Err(EngineError::DuplicateRequestNumber(br.value()));
        }
        self.units.push(Unit {
            name: name.into(),
            br,
            pending: None,
        });
        Ok(UnitId(self.units.len() - 1))
    }

    /// Enables collection of the [`BusEvent`] trace.
    pub fn enable_trace(&mut self) {
        self.trace_enabled = true;
    }

    /// The bus activity trace (empty unless [`BusEngine::enable_trace`]).
    pub fn trace(&self) -> &[BusEvent] {
        &self.trace
    }

    /// Current simulated time in nanoseconds.
    pub fn time_ns(&self) -> u64 {
        self.time_ns
    }

    /// Access to the slave (e.g. to inspect memory contents in tests).
    pub fn slave(&self) -> &S {
        &self.slave
    }

    /// Mutable access to the slave.
    pub fn slave_mut(&mut self) -> &mut S {
        &mut self.slave
    }

    /// Submits a transaction for `unit`.
    ///
    /// # Errors
    ///
    /// [`EngineError::UnitBusy`] — each unit has exactly one outstanding
    /// request on this bus (§5.2).
    pub fn submit(&mut self, unit: UnitId, transaction: Transaction) -> Result<(), EngineError> {
        let u = &mut self.units[unit.0];
        if u.pending.is_some() {
            return Err(EngineError::UnitBusy(u.name.clone()));
        }
        u.pending = Some(PendingRequest {
            transaction,
            submit_ns: self.time_ns,
            state: PendingState::Queued,
        });
        Ok(())
    }

    /// Performs one bus tenure: arbitrate among the current contenders and
    /// let the winner run one request handshake or one streaming word pair.
    /// Returns `false` when the bus is idle (no contenders).
    ///
    /// # Errors
    ///
    /// Propagates slave errors ([`EngineError::Slave`]).
    pub fn step(&mut self) -> Result<bool, EngineError> {
        enum Master {
            Unit(usize),
            Memory(Tag),
        }
        let mut contenders: Vec<(Master, RequestNumber)> = Vec::new();
        for (i, u) in self.units.iter().enumerate() {
            if let Some(p) = &u.pending {
                match p.state {
                    PendingState::Queued | PendingState::StreamingWrite { .. } => {
                        contenders.push((Master::Unit(i), u.br));
                    }
                    // A unit awaiting a read stream is passive.
                    PendingState::AwaitingRead { .. } => {}
                }
            }
        }
        if let Some(tag) = self.slave.pending_read() {
            contenders.push((Master::Memory(tag), self.memory_br));
        }
        if contenders.is_empty() {
            return Ok(false);
        }
        let numbers: Vec<RequestNumber> = contenders.iter().map(|&(_, n)| n).collect();
        let winner = self
            .arbiter
            .resolve(&numbers)
            .expect("non-empty contention resolves");
        match contenders.swap_remove(winner).0 {
            Master::Unit(ui) => self.unit_tenure(ui)?,
            Master::Memory(tag) => self.memory_tenure(tag)?,
        }
        Ok(true)
    }

    /// Runs bus tenures until no unit has an outstanding request and the
    /// memory has no pending outbound stream. Returns the transactions that
    /// completed during this call, in completion order.
    ///
    /// # Errors
    ///
    /// Propagates slave errors ([`EngineError::Slave`]).
    pub fn run_until_idle(&mut self) -> Result<Vec<CompletedTransaction>, EngineError> {
        let start = self.completed.len();
        while self.step()? {}
        Ok(self.completed[start..].to_vec())
    }

    /// All transactions completed so far.
    pub fn completed(&self) -> &[CompletedTransaction] {
        &self.completed
    }

    fn record(&mut self, master: Option<UnitId>, command: Command, edges: u32, detail: String) {
        if self.trace_enabled {
            self.trace.push(BusEvent {
                at_ns: self.time_ns,
                master,
                command,
                edges,
                detail,
            });
        }
        self.time_ns += edges_to_ns(edges);
    }

    fn complete(&mut self, unit: usize, response: Response) {
        let pending = self.units[unit].pending.take().expect("pending request");
        self.completed.push(CompletedTransaction {
            unit: UnitId(unit),
            transaction: pending.transaction,
            response,
            submit_ns: pending.submit_ns,
            complete_ns: self.time_ns,
        });
    }

    fn unit_tenure(&mut self, ui: usize) -> Result<(), EngineError> {
        let state = {
            let p = self.units[ui]
                .pending
                .as_ref()
                .expect("contender has pending");
            match &p.state {
                PendingState::Queued => None,
                PendingState::StreamingWrite { tag, data, cursor } => {
                    Some((*tag, data.clone(), *cursor))
                }
                PendingState::AwaitingRead { .. } => unreachable!("passive unit won the bus"),
            }
        };

        match state {
            None => self.unit_request_tenure(ui),
            Some((tag, data, cursor)) => {
                // Stream the next (up to) two words: two edges each.
                let end = (cursor + 2).min(data.len());
                let chunk = &data[cursor..end];
                let words = chunk.len().max(1) as u32;
                self.record(
                    Some(UnitId(ui)),
                    Command::BlockWriteData,
                    2 * words,
                    format!("{tag} words {cursor}..{end}"),
                );
                let done = self.slave.stream_in(tag, chunk)?;
                if done || end >= data.len() {
                    self.tag_owner.remove(&tag);
                    self.complete(ui, Response::BlockWritten);
                } else if let Some(p) = self.units[ui].pending.as_mut() {
                    p.state = PendingState::StreamingWrite {
                        tag,
                        data,
                        cursor: end,
                    };
                }
                Ok(())
            }
        }
    }

    fn unit_request_tenure(&mut self, ui: usize) -> Result<(), EngineError> {
        let transaction = self.units[ui]
            .pending
            .as_ref()
            .expect("pending request")
            .transaction
            .clone();
        let command = transaction.command();
        let edges = command.handshake_edges();
        let priority = self.units[ui].br.value();
        match transaction {
            Transaction::SimpleRead { addr } => {
                self.record(Some(UnitId(ui)), command, edges, format!("read {addr:#x}"));
                let v = self.slave.simple_read(addr)?;
                self.complete(ui, Response::Data(v));
            }
            Transaction::WriteWord { addr, value } => {
                self.record(Some(UnitId(ui)), command, edges, format!("write {addr:#x}"));
                self.slave.write_word(addr, value)?;
                self.complete(ui, Response::Ack);
            }
            Transaction::WriteByte { addr, value } => {
                self.record(
                    Some(UnitId(ui)),
                    command,
                    edges,
                    format!("writeb {addr:#x}"),
                );
                self.slave.write_byte(addr, value)?;
                self.complete(ui, Response::Ack);
            }
            Transaction::Enqueue { list, element } => {
                self.record(
                    Some(UnitId(ui)),
                    command,
                    edges,
                    format!("enqueue {element:#x} on {list:#x}"),
                );
                self.slave.enqueue(list, element)?;
                self.complete(ui, Response::Ack);
            }
            Transaction::Dequeue { list, element } => {
                self.record(
                    Some(UnitId(ui)),
                    command,
                    edges,
                    format!("dequeue {element:#x} from {list:#x}"),
                );
                self.slave.dequeue(list, element)?;
                self.complete(ui, Response::Ack);
            }
            Transaction::First { list } => {
                self.record(
                    Some(UnitId(ui)),
                    command,
                    edges,
                    format!("first of {list:#x}"),
                );
                let e = self.slave.first(list)?;
                self.complete(ui, Response::Element(e));
            }
            Transaction::BlockTransfer {
                addr,
                count,
                direction,
                data,
            } => {
                self.record(
                    Some(UnitId(ui)),
                    command,
                    edges,
                    format!("block {direction:?} {addr:#x}+{count}"),
                );
                let tag = self
                    .slave
                    .block_transfer(addr, count, direction, priority)?;
                self.tag_owner.insert(tag, UnitId(ui));
                let p = self.units[ui].pending.as_mut().expect("pending request");
                p.state = match direction {
                    BlockDirection::Write => PendingState::StreamingWrite {
                        tag,
                        data,
                        cursor: 0,
                    },
                    BlockDirection::Read => PendingState::AwaitingRead {
                        collected: Vec::new(),
                    },
                };
            }
        }
        Ok(())
    }

    fn memory_tenure(&mut self, tag: Tag) -> Result<(), EngineError> {
        let (words, done) = self.slave.stream_out(tag, 2)?;
        let n = words.len().max(1) as u32;
        self.record(
            None,
            Command::BlockReadData,
            2 * n,
            format!("{tag} streams {} words", words.len()),
        );
        let owner = self.tag_owner.get(&tag).copied();
        if let Some(UnitId(ui)) = owner {
            let mut finished = false;
            if let Some(p) = self.units[ui].pending.as_mut() {
                if let PendingState::AwaitingRead { collected, .. } = &mut p.state {
                    collected.extend_from_slice(&words);
                    finished = done;
                }
            }
            if finished {
                self.tag_owner.remove(&tag);
                let collected = match self.units[ui].pending.as_mut().map(|p| &mut p.state) {
                    Some(PendingState::AwaitingRead { collected, .. }) => std::mem::take(collected),
                    _ => Vec::new(),
                };
                self.complete(ui, Response::Block(collected));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::FOUR_EDGE_NS;

    /// A minimal in-crate slave for engine tests: flat memory, FIFO block
    /// table, no queue support beyond a trivial stack.
    #[derive(Debug, Default)]
    struct TestSlave {
        mem: Vec<u8>,
        blocks: Vec<(Tag, u16, u16, BlockDirection, u16, u8)>, // tag, addr, count, dir, cursor(bytes), prio
        next_tag: u8,
    }

    impl TestSlave {
        fn new(size: usize) -> TestSlave {
            TestSlave {
                mem: vec![0; size],
                blocks: Vec::new(),
                next_tag: 0,
            }
        }
    }

    impl BusSlave for TestSlave {
        fn simple_read(&mut self, addr: u16) -> Result<u16, SlaveError> {
            let a = addr as usize;
            Ok(u16::from(self.mem[a]) | (u16::from(self.mem[a + 1]) << 8))
        }
        fn write_word(&mut self, addr: u16, value: u16) -> Result<(), SlaveError> {
            let a = addr as usize;
            self.mem[a] = value as u8;
            self.mem[a + 1] = (value >> 8) as u8;
            Ok(())
        }
        fn write_byte(&mut self, addr: u16, value: u8) -> Result<(), SlaveError> {
            self.mem[addr as usize] = value;
            Ok(())
        }
        fn block_transfer(
            &mut self,
            addr: u16,
            count: u16,
            direction: BlockDirection,
            priority: u8,
        ) -> Result<Tag, SlaveError> {
            let tag = Tag(self.next_tag);
            self.next_tag += 1;
            self.blocks.push((tag, addr, count, direction, 0, priority));
            Ok(tag)
        }
        fn pending_read(&self) -> Option<Tag> {
            self.blocks
                .iter()
                .filter(|b| matches!(b.3, BlockDirection::Read))
                .max_by_key(|b| b.5)
                .map(|b| b.0)
        }
        fn stream_out(
            &mut self,
            tag: Tag,
            max_words: usize,
        ) -> Result<(Vec<u16>, bool), SlaveError> {
            let b = self
                .blocks
                .iter_mut()
                .find(|b| b.0 == tag)
                .ok_or(SlaveError::UnknownTag(tag))?;
            let mut words = Vec::new();
            for _ in 0..max_words {
                if b.4 >= b.2 {
                    break;
                }
                let a = (b.1 + b.4) as usize;
                words.push(u16::from(self.mem[a]) | (u16::from(self.mem[a + 1]) << 8));
                b.4 += 2;
            }
            let done = b.4 >= b.2;
            if done {
                let t = b.0;
                self.blocks.retain(|b| b.0 != t);
            }
            Ok((words, done))
        }
        fn stream_in(&mut self, tag: Tag, words: &[u16]) -> Result<bool, SlaveError> {
            let b = self
                .blocks
                .iter_mut()
                .find(|b| b.0 == tag)
                .ok_or(SlaveError::UnknownTag(tag))?;
            for &w in words {
                let a = (b.1 + b.4) as usize;
                self.mem[a] = w as u8;
                self.mem[a + 1] = (w >> 8) as u8;
                b.4 += 2;
            }
            let done = b.4 >= b.2;
            if done {
                self.blocks.retain(|x| x.0 != tag);
            }
            Ok(done)
        }
        fn enqueue(&mut self, _list: u16, _element: u16) -> Result<(), SlaveError> {
            Ok(())
        }
        fn dequeue(&mut self, _list: u16, _element: u16) -> Result<(), SlaveError> {
            Ok(())
        }
        fn first(&mut self, _list: u16) -> Result<Option<u16>, SlaveError> {
            Ok(None)
        }
    }

    fn engine() -> BusEngine<TestSlave> {
        BusEngine::new(TestSlave::new(1024), RequestNumber::new(7))
    }

    #[test]
    fn simple_write_then_read() {
        let mut bus = engine();
        let host = bus.add_unit("host", RequestNumber::new(1)).unwrap();
        bus.submit(
            host,
            Transaction::WriteWord {
                addr: 16,
                value: 0xBEEF,
            },
        )
        .unwrap();
        bus.run_until_idle().unwrap();
        bus.submit(host, Transaction::SimpleRead { addr: 16 })
            .unwrap();
        let done = bus.run_until_idle().unwrap();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].response, Response::Data(0xBEEF));
        // Write = 4 edges (1 us), read = 8 edges (2 us).
        assert_eq!(bus.time_ns(), 3 * FOUR_EDGE_NS);
    }

    #[test]
    fn forty_byte_block_write_takes_11_us() {
        // Table 6.1: one four-edge request + twenty two-edge transfers.
        let mut bus = engine();
        let mp = bus.add_unit("mp", RequestNumber::new(2)).unwrap();
        let data: Vec<u16> = (0..20).collect();
        bus.submit(
            mp,
            Transaction::BlockTransfer {
                addr: 0,
                count: 40,
                direction: BlockDirection::Write,
                data,
            },
        )
        .unwrap();
        let done = bus.run_until_idle().unwrap();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].response, Response::BlockWritten);
        assert_eq!(bus.time_ns(), 11_000);
    }

    #[test]
    fn forty_byte_block_read_takes_11_us() {
        let mut bus = engine();
        let mp = bus.add_unit("mp", RequestNumber::new(2)).unwrap();
        for i in 0..40u16 {
            bus.slave_mut().mem[i as usize] = i as u8;
        }
        bus.submit(
            mp,
            Transaction::BlockTransfer {
                addr: 0,
                count: 40,
                direction: BlockDirection::Read,
                data: Vec::new(),
            },
        )
        .unwrap();
        let done = bus.run_until_idle().unwrap();
        assert_eq!(done.len(), 1);
        match &done[0].response {
            Response::Block(words) => {
                assert_eq!(words.len(), 20);
                assert_eq!(words[1], 0x0302);
            }
            other => panic!("unexpected response {other:?}"),
        }
        assert_eq!(bus.time_ns(), 11_000);
    }

    #[test]
    fn one_outstanding_request_per_unit() {
        let mut bus = engine();
        let host = bus.add_unit("host", RequestNumber::new(1)).unwrap();
        bus.submit(host, Transaction::SimpleRead { addr: 0 })
            .unwrap();
        let err = bus
            .submit(host, Transaction::SimpleRead { addr: 2 })
            .unwrap_err();
        assert!(matches!(err, EngineError::UnitBusy(_)));
    }

    #[test]
    fn duplicate_request_numbers_rejected() {
        let mut bus = engine();
        bus.add_unit("a", RequestNumber::new(1)).unwrap();
        let err = bus.add_unit("b", RequestNumber::new(1)).unwrap_err();
        assert!(matches!(err, EngineError::DuplicateRequestNumber(1)));
        // The memory's own number is also reserved.
        let err = bus.add_unit("c", RequestNumber::new(7)).unwrap_err();
        assert!(matches!(err, EngineError::DuplicateRequestNumber(7)));
    }

    #[test]
    fn higher_priority_queue_op_preempts_block_stream() {
        // A long low-priority write stream is in progress; a high-priority
        // enqueue slips in between word pairs rather than waiting for the
        // whole block.
        let mut bus = BusEngine::new(TestSlave::new(4096), RequestNumber::new(0));
        let nic = bus.add_unit("nic", RequestNumber::new(2)).unwrap();
        let host = bus.add_unit("host", RequestNumber::new(5)).unwrap();
        bus.enable_trace();
        let data: Vec<u16> = (0..50).collect();
        bus.submit(
            nic,
            Transaction::BlockTransfer {
                addr: 0,
                count: 100,
                direction: BlockDirection::Write,
                data,
            },
        )
        .unwrap();
        bus.submit(
            host,
            Transaction::Enqueue {
                list: 512,
                element: 600,
            },
        )
        .unwrap();
        let done = bus.run_until_idle().unwrap();
        // The enqueue completes first even though the block was submitted
        // first.
        assert_eq!(done[0].unit, host);
        assert_eq!(done[1].unit, nic);
        // And the trace shows the enqueue happening before the first
        // streaming pair (the block's request handshake may still precede
        // submission order is same-time; the key property is the enqueue is
        // not last).
        let enq_pos = bus
            .trace()
            .iter()
            .position(|e| e.command == Command::EnqueueControlBlock)
            .unwrap();
        let last_stream = bus
            .trace()
            .iter()
            .rposition(|e| e.command == Command::BlockWriteData)
            .unwrap();
        assert!(enq_pos < last_stream);
    }

    #[test]
    fn memory_streams_higher_priority_read_first() {
        let mut bus = BusEngine::new(TestSlave::new(4096), RequestNumber::new(7));
        let lo = bus.add_unit("lo", RequestNumber::new(1)).unwrap();
        let hi = bus.add_unit("hi", RequestNumber::new(3)).unwrap();
        bus.submit(
            lo,
            Transaction::BlockTransfer {
                addr: 0,
                count: 40,
                direction: BlockDirection::Read,
                data: Vec::new(),
            },
        )
        .unwrap();
        bus.submit(
            hi,
            Transaction::BlockTransfer {
                addr: 100,
                count: 40,
                direction: BlockDirection::Read,
                data: Vec::new(),
            },
        )
        .unwrap();
        let done = bus.run_until_idle().unwrap();
        // The high-priority unit's block is streamed first.
        assert_eq!(done[0].unit, hi);
        assert_eq!(done[1].unit, lo);
    }

    #[test]
    fn trace_disabled_by_default() {
        let mut bus = engine();
        let host = bus.add_unit("host", RequestNumber::new(1)).unwrap();
        bus.submit(host, Transaction::SimpleRead { addr: 0 })
            .unwrap();
        bus.run_until_idle().unwrap();
        assert!(bus.trace().is_empty());
    }
}
