//! # smartbus — the paper's smart bus (Chapter 5)
//!
//! An edge-accurate simulation of the *smart bus* proposed in Ramachandran's
//! *Hardware Support for Interprocess Communication*: a bus connecting the
//! host, the message coprocessor (MP) and the network interfaces to a smart
//! shared memory, supporting three transaction families:
//!
//! * **Block requests** — `block transfer` (intent: address + count, answered
//!   with a tag), `block read data` / `block write data` (tagged streaming
//!   data movement, two handshake edges per 16-bit word). The shared memory
//!   caches request state in an internal table so a lower-priority block can
//!   be *preempted and restarted* after a higher-priority one — the bus is
//!   never locked for arbitrary time (§5.2).
//! * **Atomic queue manipulation** — `enqueue control block`,
//!   `first control block`, `dequeue control block` on singly-linked
//!   circular lists maintained inside the memory (§5.3.2).
//! * **Simple read/write** at byte granularity (§5.3.3).
//!
//! Arbitration is the distributed scheme of §5.4 (after Taub): contenders
//! place 3-bit request numbers on wired-or lines `BR0–BR2`; the recurrence
//!
//! ```text
//! OK_0 = 1,  OK_i = (!BR_{i-1} | br_{i-1}) & OK_{i-1},  BR_i = OK_i & br_i
//! ```
//!
//! settles so the highest number wins. Arbitration overlaps the current
//! information cycle, so it costs no bus time; the bus is granted for two
//! streaming transfers at a time, and the current master keeps streaming
//! without releasing `BBSY` while it keeps winning (§5.3.1, Figure 5.19).
//!
//! Timing follows the paper's §6.4 calibration: a four-edge handshake equals
//! one Versabus memory cycle (1 µs); a two-edge streaming transfer takes
//! half that.
//!
//! The actual memory behaviour is pluggable through the [`BusSlave`] trait —
//! the `smartmem` crate provides the paper's microprogrammed controller.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitration;
pub mod command;
pub mod engine;
pub mod signal;
pub mod timing;
pub mod transaction;
pub mod waveform;

pub use arbitration::{Arbiter, RequestNumber};
pub use command::Command;
pub use engine::{BusEngine, BusEvent, CompletedTransaction, EngineError, UnitId};
pub use timing::{edges_to_ns, EDGE_NS, FOUR_EDGE_NS, TWO_EDGE_NS};
pub use transaction::{BlockDirection, BusSlave, Response, SlaveError, Tag, Transaction};
