//! Bus signals (Table 5.1) and line state.

use std::fmt;

/// One of the smart bus signal groups, per Table 5.1 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Signal {
    /// `A/D` — 16 multiplexed address/data lines.
    AddressData,
    /// `TG` — 4 tag lines identifying block-transfer transactions.
    Tag,
    /// `CM` — 4 command lines (see [`crate::Command`]).
    Command,
    /// `IS` — information strobe (asserted by the master).
    InformationStrobe,
    /// `IK` — information acknowledge (asserted by the slave).
    InformationAck,
    /// `BBSY` — bus busy: the current master holds the bus.
    BusBusy,
    /// `BR0–BR2` — 3 wired-or bus-request (arbitration) lines.
    BusRequest,
    /// `AR` — arbitration start.
    ArbitrationStart,
    /// `ANC` — arbitration not complete (wired-or).
    ArbitrationNotComplete,
    /// `CLR` — system reset.
    SystemReset,
}

impl Signal {
    /// All signals in Table 5.1 order.
    pub const ALL: [Signal; 10] = [
        Signal::AddressData,
        Signal::Tag,
        Signal::Command,
        Signal::InformationStrobe,
        Signal::InformationAck,
        Signal::BusBusy,
        Signal::BusRequest,
        Signal::ArbitrationStart,
        Signal::ArbitrationNotComplete,
        Signal::SystemReset,
    ];

    /// Short mnemonic used in the paper ("A/D", "TG", …).
    pub fn mnemonic(self) -> &'static str {
        match self {
            Signal::AddressData => "A/D",
            Signal::Tag => "TG",
            Signal::Command => "CM",
            Signal::InformationStrobe => "IS",
            Signal::InformationAck => "IK",
            Signal::BusBusy => "BBSY",
            Signal::BusRequest => "BR",
            Signal::ArbitrationStart => "AR",
            Signal::ArbitrationNotComplete => "ANC",
            Signal::SystemReset => "CLR",
        }
    }

    /// Number of physical lines in the group (Table 5.1).
    pub fn line_count(self) -> u8 {
        match self {
            Signal::AddressData => 16,
            Signal::Tag | Signal::Command => 4,
            Signal::BusRequest => 3,
            _ => 1,
        }
    }

    /// Functional description (Table 5.1).
    pub fn description(self) -> &'static str {
        match self {
            Signal::AddressData => "Multiplexed address/data",
            Signal::Tag => "Tag",
            Signal::Command => "Command",
            Signal::InformationStrobe => "Information strobe",
            Signal::InformationAck => "Information acknowledge",
            Signal::BusBusy => "Bus busy",
            Signal::BusRequest => "Bus request",
            Signal::ArbitrationStart => "Arbitration start",
            Signal::ArbitrationNotComplete => "Arbitration not complete",
            Signal::SystemReset => "System Reset",
        }
    }
}

impl fmt::Display for Signal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Instantaneous state of the bus lines — used by trace/visualization code.
///
/// Protocol lines are *asserted* on a one-to-zero transition and *released*
/// on zero-to-one (§5.2); here `true` simply means asserted.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BusLines {
    /// Multiplexed address/data value.
    pub ad: u16,
    /// Tag value.
    pub tg: u8,
    /// Command encoding (see [`crate::Command`]).
    pub cm: u8,
    /// Information strobe.
    pub is: bool,
    /// Information acknowledge.
    pub ik: bool,
    /// Bus busy.
    pub bbsy: bool,
    /// Bus-request lines (3 bits).
    pub br: u8,
    /// Arbitration start.
    pub ar: bool,
    /// Arbitration not complete.
    pub anc: bool,
}

impl BusLines {
    /// All protocol lines released (the idle state between transactions).
    pub fn released() -> BusLines {
        BusLines::default()
    }

    /// True when all protocol handshake lines are in the released state, as
    /// required at the end of every transaction (§5.2).
    pub fn is_quiescent(&self) -> bool {
        !self.is && !self.ik && !self.bbsy && !self.ar && !self.anc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_5_1_line_counts() {
        // Sixteen A/D, four TG, four CM, three BR, singletons elsewhere.
        let total: u32 = Signal::ALL.iter().map(|s| u32::from(s.line_count())).sum();
        assert_eq!(total, 16 + 4 + 4 + 1 + 1 + 1 + 3 + 1 + 1 + 1);
    }

    #[test]
    fn mnemonics_unique() {
        let mut seen = std::collections::HashSet::new();
        for s in Signal::ALL {
            assert!(seen.insert(s.mnemonic()), "duplicate mnemonic {}", s);
        }
    }

    #[test]
    fn idle_bus_quiescent() {
        assert!(BusLines::released().is_quiescent());
        let busy = BusLines {
            bbsy: true,
            ..BusLines::released()
        };
        assert!(!busy.is_quiescent());
    }
}
