//! Timing-diagram rendering (Figures 5.4–5.16).
//!
//! The paper documents each smart bus transaction with a timing diagram of
//! the protocol lines — `BBSY`, `IS`, `IK` and the multiplexed `A/D` bus.
//! This module generates those diagrams from the same edge sequences the
//! protocol engine executes, as ASCII waveforms:
//!
//! ```text
//! BBSY ‾\__________________/‾
//! IS   ‾‾‾\_______/‾‾‾‾‾‾‾‾‾‾
//! IK   ‾‾‾‾‾\________/‾‾‾‾‾‾‾
//! A/D  --<ADDR ><COUNT >-----
//! ```
//!
//! Lines are active-low per §5.2: a one-to-zero transition *asserts*, a
//! zero-to-one transition *releases*, and every protocol line returns to
//! the released state at the end of a transaction.

use crate::command::Command;

/// One step of a protocol line's life: level plus an optional bus label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Level {
    Released,
    Asserted,
}

/// A named value on the A/D (or TG) bus during a span of edges.
#[derive(Debug, Clone)]
struct BusSpan {
    start: usize,
    end: usize,
    label: &'static str,
}

/// A renderable timing diagram.
#[derive(Debug, Clone)]
pub struct TimingDiagram {
    title: String,
    edges: usize,
    bbsy: Vec<(usize, Level)>,
    is: Vec<(usize, Level)>,
    ik: Vec<(usize, Level)>,
    ad: Vec<BusSpan>,
}

impl TimingDiagram {
    /// The timing diagram of a transaction's request handshake, per the
    /// §5.3 figures. For the streaming data commands, `words` word
    /// transfers are drawn (two edges each).
    pub fn for_command(command: Command, words: usize) -> TimingDiagram {
        match command {
            Command::BlockTransfer
            | Command::EnqueueControlBlock
            | Command::DequeueControlBlock
            | Command::WriteTwoBytes
            | Command::WriteByte => four_edge(command),
            Command::FirstControlBlock | Command::SimpleRead => eight_edge(command),
            Command::BlockReadData | Command::BlockWriteData => streaming(command, words.max(1)),
        }
    }

    /// Renders the diagram as ASCII art.
    pub fn render(&self) -> String {
        let width_per_edge = 4;
        let total = self.edges * width_per_edge + 4;
        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');

        let render_line = |events: &[(usize, Level)]| -> String {
            let mut s = String::with_capacity(total);
            let mut level = Level::Released;
            let mut iter = events.iter().peekable();
            for col in 0..total {
                let edge_here = iter.peek().map(|&&(e, _)| e * width_per_edge + 1 == col);
                if edge_here == Some(true) {
                    let (_, new) = *iter.next().expect("peeked");
                    s.push(if new == Level::Asserted { '\\' } else { '/' });
                    level = new;
                } else {
                    s.push(match level {
                        Level::Released => '‾',
                        Level::Asserted => '_',
                    });
                }
            }
            s
        };

        out.push_str(&format!("BBSY {}\n", render_line(&self.bbsy)));
        out.push_str(&format!("IS   {}\n", render_line(&self.is)));
        out.push_str(&format!("IK   {}\n", render_line(&self.ik)));

        // A/D bus: labeled value spans.
        let mut ad = vec!['-'; total];
        for span in &self.ad {
            let s = span.start * width_per_edge + 1;
            let e = (span.end * width_per_edge + 1).min(total - 1);
            if s + 1 >= e {
                continue;
            }
            ad[s] = '<';
            ad[e] = '>';
            let mut label: Vec<char> = span.label.chars().collect();
            label.truncate(e - s - 1);
            for (i, c) in label.into_iter().enumerate() {
                ad[s + 1 + i] = c;
            }
        }
        out.push_str(&format!("A/D  {}\n", ad.into_iter().collect::<String>()));
        // Edge ruler.
        let mut ruler = vec![' '; total];
        for e in 0..=self.edges {
            let col = e * width_per_edge + 1;
            if col < total {
                ruler[col] = '|';
            }
        }
        out.push_str(&format!("edge {}\n", ruler.into_iter().collect::<String>()));
        out
    }
}

/// Four-edge handshake (Figures 5.4, 5.10, 5.16): two values cross A/D.
fn four_edge(command: Command) -> TimingDiagram {
    let (a, b) = match command {
        Command::BlockTransfer => ("ADDRESS", "COUNT"),
        Command::EnqueueControlBlock | Command::DequeueControlBlock => ("LIST", "ELEMENT"),
        _ => ("ADDRESS", "DATA"),
    };
    TimingDiagram {
        title: format!("{command} — four-edge handshake"),
        edges: 4,
        bbsy: vec![(0, Level::Asserted), (4, Level::Released)],
        is: vec![(1, Level::Asserted), (3, Level::Released)],
        ik: vec![(2, Level::Asserted), (4, Level::Released)],
        ad: vec![
            BusSpan {
                start: 0,
                end: 2,
                label: a,
            },
            BusSpan {
                start: 2,
                end: 4,
                label: b,
            },
        ],
    }
}

/// Eight-edge handshake (Figures 5.12, 5.14): request out, response back.
fn eight_edge(command: Command) -> TimingDiagram {
    let (req, rsp) = match command {
        Command::FirstControlBlock => ("LIST", "FIRST"),
        _ => ("ADDRESS", "DATA"),
    };
    TimingDiagram {
        title: format!("{command} — eight-edge handshake"),
        edges: 8,
        bbsy: vec![(0, Level::Asserted), (8, Level::Released)],
        is: vec![
            (1, Level::Asserted),
            (3, Level::Released),
            (6, Level::Asserted),
            (8, Level::Released),
        ],
        ik: vec![
            (2, Level::Asserted),
            (4, Level::Released),
            (5, Level::Asserted),
            (7, Level::Released),
        ],
        ad: vec![
            BusSpan {
                start: 0,
                end: 3,
                label: req,
            },
            BusSpan {
                start: 5,
                end: 8,
                label: rsp,
            },
        ],
    }
}

/// Streaming mode (Figures 5.6, 5.8): back-to-back word transfers, one per
/// two edges, alternating strobe/acknowledge transitions.
fn streaming(command: Command, words: usize) -> TimingDiagram {
    let edges = words * 2;
    let mut is = Vec::new();
    let mut ik = Vec::new();
    let mut ad = Vec::new();
    // The driver of data alternates edges on its strobe line each word.
    for w in 0..words {
        let e = w * 2;
        let (line, other): (&mut Vec<_>, &mut Vec<_>) = if command == Command::BlockReadData {
            (&mut ik, &mut is)
        } else {
            (&mut is, &mut ik)
        };
        line.push((
            e,
            if w % 2 == 0 {
                Level::Asserted
            } else {
                Level::Released
            },
        ));
        other.push((
            e + 1,
            if w % 2 == 0 {
                Level::Asserted
            } else {
                Level::Released
            },
        ));
        ad.push(BusSpan {
            start: e,
            end: e + 2,
            label: "DATA",
        });
    }
    // Lines return released after an even number of transfers (§5.3.1 —
    // which is why the bus grants two transfers at a time).
    if words % 2 == 1 {
        is.push((edges, Level::Released));
        ik.push((edges, Level::Released));
    }
    TimingDiagram {
        title: format!("{command} — streaming, {words} words"),
        edges,
        bbsy: vec![(0, Level::Asserted), (edges, Level::Released)],
        is,
        ik,
        ad,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_edge_diagram_shape() {
        let d = TimingDiagram::for_command(Command::BlockTransfer, 0);
        let art = d.render();
        assert!(art.contains("four-edge"));
        assert!(art.contains("ADDRESS"));
        assert!(art.contains("COUNT"));
        // Assert/release pairs present on every protocol line.
        for line in ["BBSY", "IS", "IK"] {
            let row = art.lines().find(|l| l.starts_with(line)).unwrap();
            assert!(row.contains('\\'), "{line} never asserted: {row}");
            assert!(row.contains('/'), "{line} never released: {row}");
        }
    }

    #[test]
    fn eight_edge_diagram_has_request_and_response() {
        let art = TimingDiagram::for_command(Command::FirstControlBlock, 0).render();
        assert!(art.contains("LIST"));
        assert!(art.contains("FIRST"));
    }

    #[test]
    fn streaming_diagram_scales_with_words() {
        let two = TimingDiagram::for_command(Command::BlockReadData, 2).render();
        let six = TimingDiagram::for_command(Command::BlockReadData, 6).render();
        assert!(six.lines().nth(1).unwrap().len() > two.lines().nth(1).unwrap().len());
        assert!(six.matches("DATA").count() > two.matches("DATA").count());
    }

    #[test]
    fn lines_end_released() {
        // §5.2: at the end of each transaction the protocol lines return to
        // the released state — the waveform's last column is high.
        for c in Command::ALL {
            let art = TimingDiagram::for_command(c, 4).render();
            for name in ["BBSY", "IS  ", "IK  "] {
                let row = art
                    .lines()
                    .find(|l| l.starts_with(name.trim_end()))
                    .unwrap();
                let last = row.chars().last().unwrap();
                assert_eq!(last, '‾', "{c}: {name} ends {last} in\n{art}");
            }
        }
    }

    #[test]
    fn every_command_renders() {
        for c in Command::ALL {
            let art = TimingDiagram::for_command(c, 3).render();
            assert!(art.lines().count() >= 5, "{c}");
        }
    }
}
