//! Distributed bus arbitration (§5.4, after Taub).
//!
//! Each unit owns a unique three-bit *bus request number* `br0–br2` (`br0`
//! most significant). To contend, a unit drives the wired-or lines `BR0–BR2`
//! according to the recurrence
//!
//! ```text
//! OK_0 = 1
//! OK_i = (!BR_{i-1} | br_{i-1}) & OK_{i-1}     (i ≠ 0)
//! BR_i = OK_i & br_i
//! ```
//!
//! (Figure 5.17). A unit drops its lower-order bits as soon as it sees a
//! higher-order line asserted that it cannot match; after the lines settle,
//! the unit whose number equals the value on the bus has won. This module
//! simulates the asynchronous settling of the circuit gate-by-gate and also
//! implements the §5.4 protocol rules (arbitration overlapped with the
//! information cycle, master-retains-bus, master re-arbitrates when idle).

use std::fmt;

/// A three-bit bus request number; higher values have higher priority.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestNumber(u8);

impl RequestNumber {
    /// Creates a request number.
    ///
    /// # Panics
    ///
    /// Panics if `value > 7` — the bus has three request lines.
    pub fn new(value: u8) -> RequestNumber {
        assert!(value <= 7, "bus request numbers are three bits (0-7)");
        RequestNumber(value)
    }

    /// The raw 3-bit value.
    pub fn value(self) -> u8 {
        self.0
    }

    /// Bit `i` with `br0` the most significant (paper convention).
    pub fn bit(self, i: usize) -> bool {
        debug_assert!(i < 3);
        (self.0 >> (2 - i)) & 1 == 1
    }
}

impl fmt::Display for RequestNumber {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "br{:03b}", self.0)
    }
}

/// The distributed arbitration circuit.
#[derive(Debug, Clone, Default)]
pub struct Arbiter;

impl Arbiter {
    /// Creates an arbiter.
    pub fn new() -> Arbiter {
        Arbiter
    }

    /// Resolves one arbitration cycle among `contenders`, simulating the
    /// wired-or settling of Taub's circuit. Returns the index (into
    /// `contenders`) of the winner, or `None` when nobody contends.
    ///
    /// The circuit is evaluated to a fixed point: each pass recomputes every
    /// contender's `OK`/`BR` outputs from the current wired-or line state,
    /// exactly as the asynchronous hardware settles. Three passes suffice
    /// for three bit positions; we iterate until stable for clarity.
    pub fn resolve(&self, contenders: &[RequestNumber]) -> Option<usize> {
        if contenders.is_empty() {
            return None;
        }
        // Wired-or lines BR0-BR2: true = asserted.
        let mut lines = [false; 3];
        loop {
            let mut next = [false; 3];
            for &c in contenders {
                let mut ok = true; // OK_0 = 1
                for i in 0..3 {
                    if i > 0 {
                        // OK_i = (!BR_{i-1} | br_{i-1}) & OK_{i-1}
                        ok = (!lines[i - 1] || c.bit(i - 1)) && ok;
                    }
                    // BR_i = OK_i & br_i, wired-or across contenders.
                    if ok && c.bit(i) {
                        next[i] = true;
                    }
                }
            }
            if next == lines {
                break;
            }
            lines = next;
        }
        let settled = (u8::from(lines[0]) << 2) | (u8::from(lines[1]) << 1) | u8::from(lines[2]);
        contenders.iter().position(|c| c.value() == settled)
    }
}

/// Outcome of the end-of-cycle arbitration decision (§5.4 rules 1–4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Grant {
    /// A new master takes the bus after `BBSY` is released (rule 2).
    NewMaster(usize),
    /// The current master won again and continues without releasing `BBSY`
    /// (rule 3, Figure 5.19).
    Retained,
    /// Nobody requested; the current master stays responsible for starting
    /// the next arbitration cycle (rule 4, Figure 5.20).
    Idle,
}

/// Applies the protocol rules given the current master's number (if it wants
/// to continue) and the other contenders. `contenders[i]` maps to
/// `Grant::NewMaster(i)`.
pub fn grant(current: Option<RequestNumber>, contenders: &[RequestNumber]) -> Grant {
    let arbiter = Arbiter::new();
    let mut all: Vec<RequestNumber> = contenders.to_vec();
    if let Some(c) = current {
        all.push(c);
    }
    match arbiter.resolve(&all) {
        None => Grant::Idle,
        Some(winner) => {
            if current.is_some() && winner == all.len() - 1 {
                Grant::Retained
            } else {
                Grant::NewMaster(winner)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn highest_number_wins() {
        let arb = Arbiter::new();
        let cs = [
            RequestNumber::new(3),
            RequestNumber::new(6),
            RequestNumber::new(5),
        ];
        assert_eq!(arb.resolve(&cs), Some(1));
    }

    #[test]
    fn single_contender_wins() {
        let arb = Arbiter::new();
        assert_eq!(arb.resolve(&[RequestNumber::new(0)]), Some(0));
    }

    #[test]
    fn empty_contention_is_none() {
        assert_eq!(Arbiter::new().resolve(&[]), None);
    }

    #[test]
    fn all_pairs_resolve_to_max() {
        let arb = Arbiter::new();
        for a in 0..8u8 {
            for b in 0..8u8 {
                if a == b {
                    continue;
                }
                let cs = [RequestNumber::new(a), RequestNumber::new(b)];
                let winner = arb.resolve(&cs).unwrap();
                assert_eq!(cs[winner].value(), a.max(b), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn retained_when_current_master_highest() {
        let g = grant(
            Some(RequestNumber::new(7)),
            &[RequestNumber::new(2), RequestNumber::new(5)],
        );
        assert_eq!(g, Grant::Retained);
    }

    #[test]
    fn preempted_by_higher_priority() {
        let g = grant(Some(RequestNumber::new(2)), &[RequestNumber::new(6)]);
        assert_eq!(g, Grant::NewMaster(0));
    }

    #[test]
    fn idle_when_no_requests() {
        assert_eq!(grant(None, &[]), Grant::Idle);
    }

    #[test]
    fn bit_order_msb_first() {
        let n = RequestNumber::new(0b100);
        assert!(n.bit(0));
        assert!(!n.bit(1));
        assert!(!n.bit(2));
    }

    #[test]
    #[should_panic(expected = "three bits")]
    fn rejects_wide_numbers() {
        RequestNumber::new(8);
    }
}
