//! Property-based tests of the GTPN engine.

use gtpn::geometric::GeometricStage;
use gtpn::sim::{simulate, SimOptions};
use gtpn::{
    canonical, invariant, AnalysisEngine, BackendSel, EngineConfig, LumpSel, Net, PlaceId, TransId,
    Transition,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a ring of geometric stages with the given means; a single token
/// cycles through all of them.
fn stage_ring(means: &[f64]) -> Net {
    let mut net = Net::new("ring");
    let places: Vec<_> = (0..means.len())
        .map(|i| net.add_place(format!("P{i}"), u32::from(i == 0)))
        .collect();
    for (i, &m) in means.iter().enumerate() {
        let next = places[(i + 1) % places.len()];
        let mut stage = GeometricStage::new(format!("S{i}"), m)
            .input(places[i], 1)
            .output(next, 1);
        if i == 0 {
            stage = stage.resource("lambda");
        }
        stage.build(&mut net).unwrap();
    }
    net
}

/// Pinned regression from `properties.proptest-regressions`: a ring where
/// one stage has mean exactly 1.0. That stage's geometric loop transition
/// gets frequency `1 - 1/mean = 0` — a legal zero-frequency transition the
/// reachability expansion must treat as never selected, not as a
/// `BadFrequency` or a spurious conflict branch.
#[test]
fn tandem_cycle_rate_mean_one_stage() {
    let means = [20.581752334812006, 1.0];
    let net = stage_ring(&means);
    let sol = net
        .reachability(200_000)
        .unwrap()
        .solve(1e-12, 300_000)
        .unwrap();
    let total: f64 = means.iter().sum();
    let usage = sol.resource_usage("lambda").unwrap();
    let expect = 1.0 / total;
    assert!(
        (usage - expect).abs() < 1e-6 * expect.max(1e-3),
        "means {means:?}: usage {usage} vs {expect}"
    );
}

/// As [`stage_ring`], but adding places and stages in caller-chosen orders
/// — the same model under a permuted build sequence.
fn stage_ring_ordered(means: &[f64], place_order: &[usize], stage_order: &[usize]) -> Net {
    let mut net = Net::new("ring");
    let mut ids = vec![PlaceId(0); means.len()];
    for &i in place_order {
        ids[i] = net.add_place(format!("P{i}"), u32::from(i == 0));
    }
    for &i in stage_order {
        let next = ids[(i + 1) % means.len()];
        let mut stage = GeometricStage::new(format!("S{i}"), means[i])
            .input(ids[i], 1)
            .output(next, 1);
        if i == 0 {
            stage = stage.resource("lambda");
        }
        stage.build(&mut net).unwrap();
    }
    net
}

/// `n` exchangeable clients cycling think → serve through a single shared
/// server token — the shape whose permutation symmetry the exact lumping
/// pre-pass collapses. Both stages build to unit-delay transitions, so the
/// net always qualifies for lumping.
fn symmetric_station(n: u32, think_m: f64, serve_m: f64) -> Net {
    let mut net = Net::new("sym-station");
    let think = net.add_place("Think", n);
    let queue = net.add_place("Queue", 0);
    let server = net.add_place("Server", 1);
    GeometricStage::new("Think", think_m)
        .input(think, 1)
        .output(queue, 1)
        .build(&mut net)
        .unwrap();
    GeometricStage::new("Serve", serve_m)
        .input(queue, 1)
        .output(think, 1)
        .held(server)
        .resource("lambda")
        .build(&mut net)
        .unwrap();
    net
}

/// A fresh Exact engine with the given lumping policy and no shared cache.
fn lump_engine(lump: LumpSel) -> AnalysisEngine {
    AnalysisEngine::new(EngineConfig {
        backend: BackendSel::Exact,
        tolerance: 1e-13,
        max_sweeps: 300_000,
        state_budget: 200_000,
        lump,
        ..EngineConfig::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Canonicalization is invariant under random place/transition build
    /// permutations: the permuted net has the same canonical fingerprint,
    /// and analyzing it through the engine yields the same `Solution`
    /// numbers — bitwise, because the permuted build is a cache hit on the
    /// original's entry.
    #[test]
    fn canonicalization_is_permutation_invariant(
        means in proptest::collection::vec(1.0f64..40.0, 2..5),
        seed in 0u64..10_000,
    ) {
        // Fisher–Yates (the vendored rand has no `seq` module).
        fn shuffle(v: &mut [usize], rng: &mut StdRng) {
            for i in (1..v.len()).rev() {
                let j = rng.gen_range(0..=i);
                v.swap(i, j);
            }
        }
        let natural: Vec<usize> = (0..means.len()).collect();
        let mut place_order = natural.clone();
        let mut stage_order = natural.clone();
        let mut rng = StdRng::seed_from_u64(seed);
        shuffle(&mut place_order, &mut rng);
        shuffle(&mut stage_order, &mut rng);

        let a = stage_ring_ordered(&means, &natural, &natural);
        let b = stage_ring_ordered(&means, &place_order, &stage_order);
        prop_assert_eq!(canonical::fingerprint(&a), canonical::fingerprint(&b),
            "permuted build must share the canonical fingerprint");

        let engine = AnalysisEngine::new(EngineConfig {
            backend: BackendSel::Exact,
            tolerance: 1e-12,
            max_sweeps: 300_000,
            state_budget: 200_000,
            ..EngineConfig::default()
        });
        let sa = engine.analyze(&a).unwrap();
        let sb = engine.analyze(&b).unwrap();
        prop_assert_eq!(
            sa.resource_usage("lambda").unwrap().to_bits(),
            sb.resource_usage("lambda").unwrap().to_bits(),
            "permuted build must reuse the cached solution"
        );
        // And the shared number is the analytically known cycle rate.
        let expect = 1.0 / means.iter().sum::<f64>();
        let usage = sa.resource_usage("lambda").unwrap();
        prop_assert!((usage - expect).abs() < 1e-6 * expect.max(1e-3),
            "means {:?}: usage {} vs {}", means, usage, expect);
        // Per-id queries on the permuted net resolve by that net's own
        // ids: stage 0's exit transition carries the `lambda` usage
        // wherever it was inserted.
        let ta = a.transition_by_name("S0_exit").unwrap();
        let tb = b.transition_by_name("S0_exit").unwrap();
        prop_assert_eq!(
            sa.transition_usage(ta).to_bits(),
            sb.transition_usage(tb).to_bits(),
            "remapped transition query must match"
        );
        prop_assert!(sb.transition_usage(tb) > 0.0);
    }

    /// The cycle rate of a tandem of geometric stages is 1/Σmeans, for any
    /// stage means — the exact solver must get this analytically-known
    /// answer right. The `lambda` resource sits on stage 0's delay-1 exit
    /// transition, so its usage equals the cycle rate.
    #[test]
    fn tandem_cycle_rate_exact(means in proptest::collection::vec(1.0f64..60.0, 2..5)) {
        let net = stage_ring(&means);
        let sol = net.reachability(200_000).unwrap().solve(1e-12, 300_000).unwrap();
        let total: f64 = means.iter().sum();
        let usage = sol.resource_usage("lambda").unwrap();
        let expect = 1.0 / total;
        prop_assert!((usage - expect).abs() < 1e-6 * expect.max(1e-3),
            "means {:?}: usage {} vs {}", means, usage, expect);
    }

    /// Every reachable tangible state has a stochastic out-distribution.
    #[test]
    fn out_edges_stochastic(means in proptest::collection::vec(1.0f64..20.0, 2..4),
                            tokens in 1u32..3) {
        // Multiple tokens: build the ring with `tokens` on P0.
        let net = {
            let mut n2 = Net::new("ring-multi");
            let places: Vec<_> = (0..means.len())
                .map(|i| n2.add_place(format!("P{i}"), if i == 0 { tokens } else { 0 }))
                .collect();
            for (i, &m) in means.iter().enumerate() {
                let next = places[(i + 1) % places.len()];
                GeometricStage::new(format!("S{i}"), m)
                    .input(places[i], 1)
                    .output(next, 1)
                    .build(&mut n2)
                    .unwrap();
            }
            n2
        };
        let g = net.reachability(500_000).unwrap();
        for i in 0..g.state_count() {
            let p: f64 = g.out_edges(i).iter().map(|&(_, p)| p).sum();
            prop_assert!((p - 1.0).abs() < 1e-9, "state {i}: mass {p}");
        }
    }

    /// Monte-Carlo simulation of the same net agrees with the exact solver.
    #[test]
    fn simulation_tracks_solver(means in proptest::collection::vec(2.0f64..30.0, 2..4),
                                seed in 0u64..1000) {
        let net = stage_ring(&means);
        let exact = net
            .reachability(200_000).unwrap()
            .solve(1e-12, 300_000).unwrap()
            .resource_usage("lambda").unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let mc = simulate(&net, &SimOptions { horizon: 300_000, warmup: 30_000 }, &mut rng)
            .unwrap()
            .resource_usage("lambda")
            .unwrap();
        prop_assert!((exact - mc).abs() < 0.05 * exact.max(0.02),
            "exact {exact} vs MC {mc} (means {:?})", means);
    }

    /// P-invariant analysis: a pure cycle of single-token transitions is
    /// conservative with the all-ones weighting, whatever its length.
    #[test]
    fn cycles_are_conservative(len in 2usize..8) {
        let mut net = Net::new("cycle");
        let places: Vec<_> = (0..len).map(|i| net.add_place(format!("P{i}"), 1)).collect();
        for i in 0..len {
            net.add_transition(
                Transition::new(format!("T{i}"))
                    .delay(1)
                    .input(places[i], 1)
                    .output(places[(i + 1) % len], 1),
            )
            .unwrap();
        }
        let ones = vec![1i64; len];
        prop_assert!(invariant::is_invariant(&net, &ones));
        let basis = invariant::p_invariants(&net);
        prop_assert!(!basis.is_empty());
        for y in &basis {
            prop_assert!(invariant::is_invariant(&net, y));
        }
    }

    /// The frontier-parallel reachability build is byte-identical to the
    /// serial one: same state numbering, sojourns, successor lists, and
    /// bit-for-bit edge probabilities, for random products of independent
    /// stage rings (independent rings multiply the state space, widening
    /// the BFS frontier enough to exercise the parallel expansion path).
    #[test]
    fn parallel_reachability_is_byte_identical(
        rings in proptest::collection::vec(
            proptest::collection::vec(1.0f64..30.0, 1..4), 1..4),
    ) {
        let mut net = Net::new("rings");
        for (r, means) in rings.iter().enumerate() {
            let places: Vec<_> = (0..means.len())
                .map(|i| net.add_place(format!("P{r}_{i}"), u32::from(i == 0)))
                .collect();
            for (i, &m) in means.iter().enumerate() {
                let next = places[(i + 1) % places.len()];
                let mut stage = GeometricStage::new(format!("S{r}_{i}"), m)
                    .input(places[i], 1)
                    .output(next, 1);
                if i == 0 {
                    stage = stage.resource(format!("lambda{r}"));
                }
                stage.build(&mut net).unwrap();
            }
        }

        let serial = net.reachability(200_000).unwrap();
        let budget = gtpn::ParallelBudget::new(8);
        let par = net.reachability_budgeted(200_000, &budget).unwrap();

        prop_assert_eq!(par.state_count(), serial.state_count());
        prop_assert_eq!(par.states(), serial.states(),
            "state numbering must match the serial FIFO order");
        prop_assert_eq!(par.sojourns(), serial.sojourns());
        for i in 0..serial.state_count() {
            let (se, pe) = (serial.out_edges(i), par.out_edges(i));
            prop_assert_eq!(pe.len(), se.len(), "out-degree of state {}", i);
            for (a, b) in se.iter().zip(pe) {
                prop_assert_eq!(a.0, b.0, "successor from state {}", i);
                prop_assert_eq!(a.1.to_bits(), b.1.to_bits(),
                    "edge probability from state {}", i);
            }
        }
        prop_assert_eq!(budget.available(), 7, "expansion must release its leases");

        // Identical graphs solve to bit-identical stationary vectors.
        let ss = serial.solve(1e-12, 300_000).unwrap();
        let ps = par.solve(1e-12, 300_000).unwrap();
        for (a, b) in ss.state_probabilities().iter().zip(ps.state_probabilities()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// Exact lumping is exact: on random symmetric client–server stations
    /// the lumped engine reproduces the raw chain's numbers — resource
    /// usage, per-place mean tokens, and per-transition usage — within
    /// 1e-10, while never enlarging the chain.
    #[test]
    fn lumped_solution_matches_raw(
        n in 2u32..=4,
        think_m in 1.0f64..30.0,
        serve_m in 1.0f64..30.0,
    ) {
        let net = symmetric_station(n, think_m, serve_m);
        prop_assert!(gtpn::lump::lumpable(&net), "unit-delay net must qualify");
        let raw = lump_engine(LumpSel::Off).analyze(&net).unwrap();
        let lumped = lump_engine(LumpSel::On).analyze(&net).unwrap();
        prop_assert!(lumped.lumped() && !raw.lumped());
        prop_assert!(lumped.states() <= raw.states(),
            "quotient {} vs raw {}", lumped.states(), raw.states());
        let (a, b) = (
            raw.resource_usage("lambda").unwrap(),
            lumped.resource_usage("lambda").unwrap(),
        );
        prop_assert!((a - b).abs() < 1e-10,
            "n={} think={} serve={}: raw usage {} vs lumped {}",
            n, think_m, serve_m, a, b);
        for p in 0..net.place_count() {
            let (a, b) = (raw.mean_tokens(PlaceId(p)), lumped.mean_tokens(PlaceId(p)));
            prop_assert!((a - b).abs() < 1e-10, "place {}: {} vs {}", p, a, b);
        }
        for t in 0..net.transition_count() {
            let (a, b) = (raw.transition_usage(TransId(t)), lumped.transition_usage(TransId(t)));
            prop_assert!((a - b).abs() < 1e-10, "transition {}: {} vs {}", t, a, b);
        }
    }

    /// Delay heterogeneity disqualifies lumping, for any slow-phase length:
    /// the engine declines the pre-pass and falls back to the raw chain,
    /// so an Auto-lump engine matches a lump-off engine to the bit.
    #[test]
    fn heterogeneous_delays_decline_lumping(d in 2u64..6) {
        let mut net = Net::new("hetero");
        let a = net.add_place("A", 1);
        let b = net.add_place("B", 0);
        net.add_transition(
            Transition::new("slow").delay(d).resource("lambda").input(a, 1).output(b, 1),
        )
        .unwrap();
        net.add_transition(Transition::new("back").delay(1).input(b, 1).output(a, 1))
            .unwrap();
        prop_assert!(!gtpn::lump::lumpable(&net), "delay {} must disqualify", d);
        let auto = lump_engine(LumpSel::Auto).analyze(&net).unwrap();
        let off = lump_engine(LumpSel::Off).analyze(&net).unwrap();
        prop_assert!(!auto.lumped());
        prop_assert_eq!(
            auto.resource_usage("lambda").unwrap().to_bits(),
            off.resource_usage("lambda").unwrap().to_bits(),
            "declined lumping must leave the raw path untouched"
        );
    }

    /// Weighted production/consumption: T consuming a of A and producing b
    /// of B is conserved exactly by the weighting (b, a).
    #[test]
    fn weighted_conservation(a in 1u32..5, b in 1u32..5) {
        let mut net = Net::new("w");
        let pa = net.add_place("A", a * 4);
        let pb = net.add_place("B", 0);
        net.add_transition(Transition::new("fwd").delay(1).input(pa, a).output(pb, b)).unwrap();
        net.add_transition(Transition::new("rev").delay(1).input(pb, b).output(pa, a)).unwrap();
        prop_assert!(invariant::is_invariant(&net, &[i64::from(b), i64::from(a)]));
        prop_assert!(!invariant::is_invariant(&net, &[i64::from(b) + 1, i64::from(a)])
            || a == 0);
    }
}
