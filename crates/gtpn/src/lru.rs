//! Intrusive, partition-aware LRU bookkeeping for the bounded caches.
//!
//! The reachability cache (`cache`) and the engine solution cache
//! (`engine`) both bound their memory by resident bytes and entry count.
//! This module owns the eviction order: a slab of slots threaded onto two
//! doubly-linked lists — one global recency list and one per partition
//! (experiment id) — so picking a victim is O(1) instead of the old
//! O(entries) full-map scan, and eviction can prefer victims from the
//! partition that is inserting. A sweep that overflows the cache then eats
//! its own tail instead of wiping out another figure's still-hot entries.

use std::collections::HashMap;

/// Null link.
pub(crate) const NIL: usize = usize::MAX;

#[derive(Debug)]
struct Slot<T> {
    value: Option<T>,
    bytes: usize,
    partition: u32,
    /// Global recency list (head = most recent).
    prev: usize,
    next: usize,
    /// Per-partition recency list (head = most recent).
    part_prev: usize,
    part_next: usize,
}

/// A slab of cache entries threaded onto intrusive recency lists.
///
/// The caller owns the key → slot-index mapping; this structure owns
/// recency order, byte accounting and victim selection.
#[derive(Debug)]
pub(crate) struct BoundedLru<T> {
    slots: Vec<Slot<T>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    /// partition → (head, tail) of that partition's recency list.
    parts: HashMap<u32, (usize, usize)>,
    count: usize,
    bytes: usize,
}

impl<T> BoundedLru<T> {
    pub(crate) fn new() -> BoundedLru<T> {
        BoundedLru {
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            parts: HashMap::new(),
            count: 0,
            bytes: 0,
        }
    }

    /// Live entries.
    pub(crate) fn len(&self) -> usize {
        self.count
    }

    /// Estimated resident bytes of all live entries.
    pub(crate) fn bytes(&self) -> usize {
        self.bytes
    }

    /// Borrow a live slot's value.
    pub(crate) fn get(&self, idx: usize) -> &T {
        self.slots[idx].value.as_ref().expect("live LRU slot")
    }

    /// Insert a value at the front (most recent) of both lists.
    pub(crate) fn insert(&mut self, value: T, bytes: usize, partition: u32) -> usize {
        let slot = Slot {
            value: Some(value),
            bytes,
            partition,
            prev: NIL,
            next: NIL,
            part_prev: NIL,
            part_next: NIL,
        };
        let idx = match self.free.pop() {
            Some(idx) => {
                self.slots[idx] = slot;
                idx
            }
            None => {
                self.slots.push(slot);
                self.slots.len() - 1
            }
        };
        self.push_front_global(idx);
        self.push_front_part(idx);
        self.count += 1;
        self.bytes += bytes;
        idx
    }

    /// Mark a slot most recently used.
    pub(crate) fn touch(&mut self, idx: usize) {
        self.unlink_global(idx);
        self.push_front_global(idx);
        self.unlink_part(idx);
        self.push_front_part(idx);
    }

    /// Unlink a slot and return its value.
    pub(crate) fn remove(&mut self, idx: usize) -> T {
        self.unlink_global(idx);
        self.unlink_part(idx);
        let slot = &mut self.slots[idx];
        let bytes = std::mem::take(&mut slot.bytes);
        let value = slot.value.take().expect("live LRU slot");
        self.count -= 1;
        self.bytes -= bytes;
        self.free.push(idx);
        value
    }

    /// The slot to evict next: the least-recent entry of `prefer`'s own
    /// partition when it has any, otherwise the globally least-recent.
    pub(crate) fn victim(&self, prefer: u32) -> Option<usize> {
        if let Some(&(_, tail)) = self.parts.get(&prefer) {
            if tail != NIL {
                return Some(tail);
            }
        }
        (self.tail != NIL).then_some(self.tail)
    }

    fn push_front_global(&mut self, idx: usize) {
        self.slots[idx].prev = NIL;
        self.slots[idx].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn unlink_global(&mut self, idx: usize) {
        let (prev, next) = (self.slots[idx].prev, self.slots[idx].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.slots[idx].prev = NIL;
        self.slots[idx].next = NIL;
    }

    fn push_front_part(&mut self, idx: usize) {
        let part = self.slots[idx].partition;
        let entry = self.parts.entry(part).or_insert((NIL, NIL));
        let (head, _) = *entry;
        self.slots[idx].part_prev = NIL;
        self.slots[idx].part_next = head;
        if head != NIL {
            self.slots[head].part_prev = idx;
        }
        entry.0 = idx;
        if entry.1 == NIL {
            entry.1 = idx;
        }
    }

    fn unlink_part(&mut self, idx: usize) {
        let part = self.slots[idx].partition;
        let (prev, next) = (self.slots[idx].part_prev, self.slots[idx].part_next);
        let entry = self.parts.get_mut(&part).expect("linked partition");
        if prev != NIL {
            self.slots[prev].part_next = next;
        } else {
            entry.0 = next;
        }
        if next != NIL {
            self.slots[next].part_prev = prev;
        } else {
            entry.1 = prev;
        }
        if self.parts[&part] == (NIL, NIL) {
            self.parts.remove(&part);
        }
        self.slots[idx].part_prev = NIL;
        self.slots[idx].part_next = NIL;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_order_is_least_recent_first() {
        let mut lru = BoundedLru::new();
        let a = lru.insert("a", 10, 0);
        let b = lru.insert("b", 10, 0);
        let c = lru.insert("c", 10, 0);
        assert_eq!(lru.len(), 3);
        assert_eq!(lru.bytes(), 30);
        // a is oldest …
        assert_eq!(lru.victim(0), Some(a));
        // … unless touched back to the front.
        lru.touch(a);
        assert_eq!(lru.victim(0), Some(b));
        assert_eq!(lru.remove(b), "b");
        assert_eq!(lru.victim(0), Some(c));
        assert_eq!(lru.bytes(), 20);
    }

    #[test]
    fn victim_prefers_the_inserting_partition() {
        let mut lru = BoundedLru::new();
        let a = lru.insert("p1-old", 1, 1);
        let _b = lru.insert("p2-old", 1, 2);
        let c = lru.insert("p1-new", 1, 1);
        // Partition 1 evicts its own oldest entry, not partition 2's.
        assert_eq!(lru.victim(1), Some(a));
        lru.remove(a);
        assert_eq!(lru.victim(1), Some(c));
        lru.remove(c);
        // Partition 1 drained: fall back to the global tail.
        assert_eq!(lru.victim(1), Some(_b));
    }

    #[test]
    fn slots_are_reused_after_removal() {
        let mut lru = BoundedLru::new();
        let a = lru.insert(1u32, 4, 0);
        lru.remove(a);
        let b = lru.insert(2u32, 4, 0);
        assert_eq!(a, b, "freed slot should be reused");
        assert_eq!(*lru.get(b), 2);
        assert_eq!(lru.len(), 1);
    }

    #[test]
    fn empty_partition_entries_are_dropped() {
        let mut lru = BoundedLru::new();
        let a = lru.insert("x", 1, 7);
        lru.remove(a);
        assert!(lru.victim(7).is_none());
        assert_eq!(lru.len(), 0);
        assert_eq!(lru.bytes(), 0);
    }
}
