//! State-dependent expression language for frequency attributes.
//!
//! The paper's models gate transitions on the current marking and on whether
//! other transitions are in progress, e.g. Table 6.7:
//!
//! ```text
//! (NetIntr = 0) & !T4 & !T5  ->  1/1314.9, 0
//! ```
//!
//! meaning "frequency 1/1314.9 when the place `NetIntr` is empty and
//! transitions T4, T5 are not firing; 0 otherwise". [`Expr`] encodes exactly
//! this class of expressions; boolean results are represented as 1.0 / 0.0.

use crate::net::{PlaceId, TransId};
use std::fmt;

/// Evaluation context for an [`Expr`]: a marking plus the multiset of
/// in-progress firings (including transitions selected earlier in the same
/// instantaneous firing round, matching the paper's "host is busy" gating).
#[derive(Debug, Clone, Copy)]
pub struct EvalContext<'a> {
    /// Tokens per place.
    pub marking: &'a [u32],
    /// Number of in-progress firing instances per transition.
    pub firing: &'a [u32],
}

impl<'a> EvalContext<'a> {
    /// Creates a context from marking and firing-count slices.
    pub fn new(marking: &'a [u32], firing: &'a [u32]) -> Self {
        EvalContext { marking, firing }
    }
}

/// A state-dependent real-valued expression.
///
/// Comparison and boolean operators yield `1.0` (true) or `0.0` (false).
/// Expressions are evaluated against an [`EvalContext`].
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A constant value.
    Const(f64),
    /// Number of tokens in a place.
    Tokens(PlaceId),
    /// Number of in-progress firing instances of a transition.
    Firing(TransId),
    /// Sum of two sub-expressions.
    Add(Box<Expr>, Box<Expr>),
    /// Difference of two sub-expressions.
    Sub(Box<Expr>, Box<Expr>),
    /// Product of two sub-expressions.
    Mul(Box<Expr>, Box<Expr>),
    /// Quotient of two sub-expressions (`0/0` evaluates to 0).
    Div(Box<Expr>, Box<Expr>),
    /// Equality test (`1.0` if equal within 1e-9).
    Eq(Box<Expr>, Box<Expr>),
    /// Less-than test.
    Lt(Box<Expr>, Box<Expr>),
    /// Less-or-equal test.
    Le(Box<Expr>, Box<Expr>),
    /// Logical conjunction of two boolean-valued sub-expressions.
    And(Box<Expr>, Box<Expr>),
    /// Logical disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Logical negation (`1.0` if operand is zero).
    Not(Box<Expr>),
    /// `If(c, a, b)`: `a` when `c` is non-zero, else `b` — the paper's
    /// `expr -> a, b` notation.
    If(Box<Expr>, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// A constant expression.
    pub fn constant(v: f64) -> Expr {
        Expr::Const(v)
    }

    /// The number of tokens in `place`.
    pub fn tokens(place: PlaceId) -> Expr {
        Expr::Tokens(place)
    }

    /// The number of in-progress firings of `transition`.
    pub fn firing(transition: TransId) -> Expr {
        Expr::Firing(transition)
    }

    /// `1.0` when `place` is empty — the paper's `(P = 0)` gate.
    pub fn place_empty(place: PlaceId) -> Expr {
        Expr::Eq(Box::new(Expr::Tokens(place)), Box::new(Expr::Const(0.0)))
    }

    /// `1.0` when `transition` is not firing — the paper's `!T` gate.
    pub fn not_firing(transition: TransId) -> Expr {
        Expr::Not(Box::new(Expr::Firing(transition)))
    }

    /// The paper's `cond -> value, 0` notation.
    pub fn gate(cond: Expr, value: Expr) -> Expr {
        Expr::If(Box::new(cond), Box::new(value), Box::new(Expr::Const(0.0)))
    }

    /// Conjunction of an arbitrary number of conditions.
    ///
    /// An empty slice yields the always-true constant `1.0`.
    pub fn all<I: IntoIterator<Item = Expr>>(conds: I) -> Expr {
        let mut iter = conds.into_iter();
        let first = match iter.next() {
            Some(e) => e,
            None => return Expr::Const(1.0),
        };
        iter.fold(first, |acc, e| Expr::And(Box::new(acc), Box::new(e)))
    }

    /// Builds `a.and(b)`.
    pub fn and(self, other: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(other))
    }

    /// Builds `a.or(b)`.
    pub fn or(self, other: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(other))
    }

    /// Evaluates the expression in `ctx`.
    pub fn eval(&self, ctx: EvalContext<'_>) -> f64 {
        match self {
            Expr::Const(v) => *v,
            Expr::Tokens(p) => f64::from(ctx.marking.get(p.0).copied().unwrap_or(0)),
            Expr::Firing(t) => f64::from(ctx.firing.get(t.0).copied().unwrap_or(0)),
            Expr::Add(a, b) => a.eval(ctx) + b.eval(ctx),
            Expr::Sub(a, b) => a.eval(ctx) - b.eval(ctx),
            Expr::Mul(a, b) => a.eval(ctx) * b.eval(ctx),
            Expr::Div(a, b) => {
                let d = b.eval(ctx);
                if d == 0.0 {
                    0.0
                } else {
                    a.eval(ctx) / d
                }
            }
            Expr::Eq(a, b) => bool_val((a.eval(ctx) - b.eval(ctx)).abs() < 1e-9),
            Expr::Lt(a, b) => bool_val(a.eval(ctx) < b.eval(ctx)),
            Expr::Le(a, b) => bool_val(a.eval(ctx) <= b.eval(ctx)),
            Expr::And(a, b) => bool_val(a.eval(ctx) != 0.0 && b.eval(ctx) != 0.0),
            Expr::Or(a, b) => bool_val(a.eval(ctx) != 0.0 || b.eval(ctx) != 0.0),
            Expr::Not(a) => bool_val(a.eval(ctx) == 0.0),
            Expr::If(c, a, b) => {
                if c.eval(ctx) != 0.0 {
                    a.eval(ctx)
                } else {
                    b.eval(ctx)
                }
            }
        }
    }

    /// True when the expression cannot depend on the state (no `Tokens` /
    /// `Firing` leaves), so its value can be cached.
    pub fn is_constant(&self) -> bool {
        match self {
            Expr::Const(_) => true,
            Expr::Tokens(_) | Expr::Firing(_) => false,
            Expr::Add(a, b)
            | Expr::Sub(a, b)
            | Expr::Mul(a, b)
            | Expr::Div(a, b)
            | Expr::Eq(a, b)
            | Expr::Lt(a, b)
            | Expr::Le(a, b)
            | Expr::And(a, b)
            | Expr::Or(a, b) => a.is_constant() && b.is_constant(),
            Expr::Not(a) => a.is_constant(),
            Expr::If(c, a, b) => c.is_constant() && a.is_constant() && b.is_constant(),
        }
    }
}

impl From<f64> for Expr {
    fn from(v: f64) -> Expr {
        Expr::Const(v)
    }
}

fn bool_val(b: bool) -> f64 {
    if b {
        1.0
    } else {
        0.0
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(v) => write!(f, "{v}"),
            Expr::Tokens(p) => write!(f, "#P{}", p.0),
            Expr::Firing(t) => write!(f, "T{}", t.0),
            Expr::Add(a, b) => write!(f, "({a} + {b})"),
            Expr::Sub(a, b) => write!(f, "({a} - {b})"),
            Expr::Mul(a, b) => write!(f, "({a} * {b})"),
            Expr::Div(a, b) => write!(f, "({a} / {b})"),
            Expr::Eq(a, b) => write!(f, "({a} = {b})"),
            Expr::Lt(a, b) => write!(f, "({a} < {b})"),
            Expr::Le(a, b) => write!(f, "({a} <= {b})"),
            Expr::And(a, b) => write!(f, "({a} & {b})"),
            Expr::Or(a, b) => write!(f, "({a} | {b})"),
            Expr::Not(a) => write!(f, "!{a}"),
            Expr::If(c, a, b) => write!(f, "({c} -> {a}, {b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx<'a>(marking: &'a [u32], firing: &'a [u32]) -> EvalContext<'a> {
        EvalContext::new(marking, firing)
    }

    #[test]
    fn constants_and_arithmetic() {
        let e = Expr::Add(Box::new(Expr::constant(2.0)), Box::new(Expr::constant(3.0)));
        assert_eq!(e.eval(ctx(&[], &[])), 5.0);
        assert!(e.is_constant());
    }

    #[test]
    fn marking_and_firing_lookups() {
        let e = Expr::tokens(PlaceId(1));
        assert_eq!(e.eval(ctx(&[4, 7], &[])), 7.0);
        let e = Expr::firing(TransId(0));
        assert_eq!(e.eval(ctx(&[], &[2])), 2.0);
        assert!(!e.is_constant());
    }

    #[test]
    fn paper_style_gate() {
        // (NetIntr = 0) & !T4 & !T5 -> 1/1314.9, 0
        let net_intr = PlaceId(0);
        let t4 = TransId(4);
        let t5 = TransId(5);
        let gate = Expr::gate(
            Expr::all([
                Expr::place_empty(net_intr),
                Expr::not_firing(t4),
                Expr::not_firing(t5),
            ]),
            Expr::constant(1.0 / 1314.9),
        );
        let mut firing = vec![0u32; 6];
        assert!((gate.eval(ctx(&[0], &firing)) - 1.0 / 1314.9).abs() < 1e-15);
        // Pending interrupt blocks the transition.
        assert_eq!(gate.eval(ctx(&[1], &firing)), 0.0);
        // Interrupt processing in progress blocks the transition.
        firing[4] = 1;
        assert_eq!(gate.eval(ctx(&[0], &firing)), 0.0);
    }

    #[test]
    fn division_by_zero_is_zero() {
        let e = Expr::Div(Box::new(Expr::constant(1.0)), Box::new(Expr::constant(0.0)));
        assert_eq!(e.eval(ctx(&[], &[])), 0.0);
    }

    #[test]
    fn out_of_range_lookups_are_zero() {
        assert_eq!(Expr::tokens(PlaceId(9)).eval(ctx(&[1], &[])), 0.0);
        assert_eq!(Expr::firing(TransId(9)).eval(ctx(&[], &[1])), 0.0);
    }

    #[test]
    fn display_round_trips_structure() {
        let e = Expr::gate(Expr::place_empty(PlaceId(0)), Expr::constant(0.5));
        let rendered = format!("{e}");
        assert!(rendered.contains("#P0"), "{rendered}");
        assert!(rendered.contains("-> 0.5, 0"), "{rendered}");
    }

    #[test]
    fn all_of_empty_is_true() {
        assert_eq!(Expr::all([]).eval(ctx(&[], &[])), 1.0);
    }
}
