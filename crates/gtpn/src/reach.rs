//! Reachability-graph construction: the embedded Markov chain of the GTPN.
//!
//! Execution alternates two phases, following Holliday & Vernon's semantics:
//!
//! 1. **Instantaneous firing phase.** While any transition is enabled, one is
//!    selected with probability proportional to its (state-dependent)
//!    frequency; its enabling tokens are removed. A zero-delay transition
//!    completes immediately (its outputs are deposited and may enable further
//!    transitions); a timed transition becomes *in progress* for its delay.
//!    The phase ends when no transition is enabled, yielding a distribution
//!    over *tangible* states. Zero-delay (vanishing) activity is thereby
//!    eliminated inline and never appears as a Markov state.
//! 2. **Time advance.** The tangible state holds for `dt = min` remaining
//!    firing time; completing transitions deposit their outputs and phase 1
//!    runs again.
//!
//! Frequency expressions are evaluated against the *current residual*
//! marking and the firing multiset including transitions already selected in
//! the same round — so the paper's gates such as "the host is not busy
//! processing an interrupt (`!T4 & !T5`)" behave as intended even within a
//! single selection round.

use crate::error::GtpnError;
use crate::expr::EvalContext;
use crate::net::{Net, TransId};
use crate::par::ParallelBudget;
use crate::solve::Solution;
use crate::state::{Marking, State};
use std::collections::{BTreeMap, HashMap};
use std::sync::Mutex;

/// Maximum number of sequential selection rounds inside one instantaneous
/// phase before we declare a zero-delay divergence.
const MAX_PHASE_ROUNDS: usize = 10_000;

/// Probability mass below which a branch is dropped (guards against floating
/// point dust; exact zero frequencies never reach this point).
const PROB_FLOOR: f64 = 1e-300;

/// Frontier width below which a level is always expanded serially — the
/// per-state work (~tens of µs) cannot amortize worker dispatch on a
/// narrow level.
const PAR_MIN_FRONTIER: usize = 64;

/// Target states per self-scheduled work chunk in a parallel level.
const PAR_CHUNK: usize = 16;

/// The embedded Markov chain over tangible states of a [`Net`].
#[derive(Debug, Clone)]
pub struct ReachabilityGraph {
    pub(crate) net: Net,
    pub(crate) states: Vec<State>,
    /// `edges[i]` = out-edges of state `i` as `(successor, probability)`.
    pub(crate) edges: Vec<Vec<(usize, f64)>>,
    /// Holding time of each tangible state.
    pub(crate) sojourn: Vec<u64>,
    /// Whether each transition was ever selected to fire during expansion
    /// (covers zero-delay transitions, which never appear in states).
    pub(crate) fired: Vec<bool>,
}

impl Net {
    /// Builds the reachability graph (embedded Markov chain) of this net.
    ///
    /// # Errors
    ///
    /// * [`GtpnError::StateSpaceExceeded`] if more than `max_states` tangible
    ///   states are reachable.
    /// * [`GtpnError::Deadlock`] if a reachable state has no in-progress
    ///   firing and no enabled transition.
    /// * [`GtpnError::ZeroDelayDivergence`] if zero-delay transitions cycle
    ///   forever.
    /// * [`GtpnError::BadFrequency`] if a frequency expression evaluates to
    ///   a negative or non-finite value.
    pub fn reachability(&self, max_states: usize) -> Result<ReachabilityGraph, GtpnError> {
        self.reachability_budgeted(max_states, &ParallelBudget::serial())
    }

    /// As [`reachability`](Self::reachability), expanding wide BFS frontiers
    /// on extra worker threads claimed from `par`.
    ///
    /// Workers expand disjoint chunks of a frontier level into thread-local
    /// buffers; the results are then merged *in frontier order*, interning
    /// each state's successor distribution in its deterministic
    /// (state-key-sorted) order. Discovery order — and therefore state
    /// numbering, edge lists, sojourns, and every downstream float — is
    /// byte-identical to the serial build, whatever the budget grants.
    ///
    /// # Errors
    ///
    /// Exactly those of [`reachability`](Self::reachability); when several
    /// frontier states fail, the error of the lowest-numbered state is
    /// reported, as a serial build would.
    pub fn reachability_budgeted(
        &self,
        max_states: usize,
        par: &ParallelBudget,
    ) -> Result<ReachabilityGraph, GtpnError> {
        self.validate()?;
        let mut states: Vec<State> = Vec::new();
        let mut index: HashMap<State, usize> = HashMap::new();
        let mut edges: Vec<Vec<(usize, f64)>> = Vec::new();
        let mut sojourn: Vec<u64> = Vec::new();

        // Interns a state; newly discovered states join the next frontier
        // level because state index == discovery order and levels are
        // merged in index order.
        let intern = |s: State,
                      states: &mut Vec<State>,
                      index: &mut HashMap<State, usize>|
         -> Result<usize, GtpnError> {
            if let Some(&i) = index.get(&s) {
                return Ok(i);
            }
            if states.len() >= max_states {
                return Err(GtpnError::StateSpaceExceeded { limit: max_states });
            }
            states.push(s.clone());
            index.insert(s, states.len() - 1);
            Ok(states.len() - 1)
        };

        let mut fired = vec![false; self.transitions.len()];
        // Initial instantaneous phase from the initial marking. (The initial
        // distribution itself is irrelevant for steady state.)
        let initial = instantaneous_phase(self, self.initial_marking(), Vec::new(), &mut fired)?;
        for (s, _p) in initial {
            intern(s, &mut states, &mut index)?;
        }

        let mut cursor = 0;
        while cursor < states.len() {
            let level_end = states.len();
            let expanded = expand_level(self, &states[cursor..level_end], cursor, par, &mut fired);
            // Deterministic reduction: successors are interned strictly in
            // frontier order, so numbering matches a serial build and the
            // first in-order error is the one a serial build would hit.
            for (si, result) in (cursor..level_end).zip(expanded) {
                let (dt, dist) = result?;
                debug_assert_eq!(edges.len(), si);
                sojourn.push(dt);
                let mut out: Vec<(usize, f64)> = Vec::with_capacity(dist.len());
                for (s, p) in dist {
                    let j = intern(s, &mut states, &mut index)?;
                    out.push((j, p));
                }
                edges.push(out);
            }
            cursor = level_end;
        }

        Ok(ReachabilityGraph {
            net: self.clone(),
            states,
            edges,
            sojourn,
            fired,
        })
    }
}

/// One frontier state's expansion: its sojourn time and successor
/// distribution (in deterministic state-key order).
type Expansion = Result<(u64, Vec<(State, f64)>), GtpnError>;

/// A self-scheduled unit of frontier work: the absolute index of the
/// chunk's first state, the states to expand, and the disjoint output
/// slots their expansions land in.
type LevelChunk<'a, 'b> = (usize, &'a [State], &'b mut [Option<Expansion>]);

/// Expands one tangible state: advance time by its sojourn, then run the
/// instantaneous phase. Pure per-state work — safe to run on any thread.
fn expand_state(net: &Net, si: usize, state: &State, fired: &mut [bool]) -> Expansion {
    let dt = match state.time_to_next_completion() {
        Some(dt) => dt,
        None => return Err(GtpnError::Deadlock { state: si }),
    };
    // Advance time: completing firings deposit outputs.
    let mut marking = state.marking.clone();
    let mut remaining: Vec<(TransId, u64)> = Vec::new();
    for &(t, r) in &state.firings {
        if r == dt {
            for &(p, m) in &net.transitions[t.0].outputs {
                marking[p.0] += m;
            }
        } else {
            remaining.push((t, r - dt));
        }
    }
    let dist = instantaneous_phase(net, marking, remaining, fired)?;
    Ok((dt, dist))
}

/// Expands every state of one frontier level, on worker threads when the
/// level is wide and `par` grants cores. `out[i]` is always the expansion
/// of `level[i]` (absolute index `base + i`), whichever thread produced
/// it; `fired` accumulates the union of every worker's firing record
/// (commutative, so merge order cannot matter).
fn expand_level(
    net: &Net,
    level: &[State],
    base: usize,
    par: &ParallelBudget,
    fired: &mut [bool],
) -> Vec<Expansion> {
    let lease = if level.len() >= PAR_MIN_FRONTIER {
        par.claim_extra(level.len() / (2 * PAR_CHUNK))
    } else {
        par.claim_extra(0)
    };
    let workers = 1 + lease.extra();
    if workers == 1 {
        return level
            .iter()
            .enumerate()
            .map(|(i, s)| expand_state(net, base + i, s, fired))
            .collect();
    }

    // Self-scheduling chunks: slot chunks are disjoint `&mut` slices, so a
    // worker writes its results straight into the shared output vector.
    let chunk = level.len().div_ceil(workers * 4).max(PAR_CHUNK);
    let mut slots: Vec<Option<Expansion>> = Vec::with_capacity(level.len());
    slots.resize_with(level.len(), || None);
    {
        let work: Mutex<Vec<LevelChunk<'_, '_>>> = Mutex::new(
            level
                .chunks(chunk)
                .zip(slots.chunks_mut(chunk))
                .enumerate()
                .map(|(ci, (ss, os))| (base + ci * chunk, ss, os))
                .collect(),
        );
        let run = |fired: &mut [bool]| loop {
            let item = work.lock().expect("level work queue poisoned").pop();
            let Some((start, ss, os)) = item else { break };
            for (i, (s, slot)) in ss.iter().zip(os.iter_mut()).enumerate() {
                *slot = Some(expand_state(net, start + i, s, fired));
            }
        };
        let tcount = fired.len();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..lease.extra())
                .map(|_| {
                    scope.spawn(move || {
                        let mut local = vec![false; tcount];
                        run(&mut local);
                        local
                    })
                })
                .collect();
            run(fired);
            for h in handles {
                match h.join() {
                    Ok(local) => {
                        for (f, l) in fired.iter_mut().zip(local) {
                            *f |= l;
                        }
                    }
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });
    }
    slots
        .into_iter()
        .map(|s| s.expect("every frontier state expanded"))
        .collect()
}

impl ReachabilityGraph {
    /// Number of tangible states.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Total number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.iter().map(Vec::len).sum()
    }

    /// The tangible states.
    pub fn states(&self) -> &[State] {
        &self.states
    }

    /// Holding time of each tangible state.
    pub fn sojourns(&self) -> &[u64] {
        &self.sojourn
    }

    /// Out-edges `(successor, probability)` of state `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn out_edges(&self, i: usize) -> &[(usize, f64)] {
        &self.edges[i]
    }

    /// Solves for the steady state; see [`Solution`].
    ///
    /// # Errors
    ///
    /// Returns [`GtpnError::NoConvergence`] when the Gauss–Seidel sweeps do
    /// not reach `tolerance` within `max_sweeps`.
    pub fn solve(&self, tolerance: f64, max_sweeps: usize) -> Result<Solution, GtpnError> {
        Solution::solve(self, tolerance, max_sweeps)
    }

    /// As [`solve`](Self::solve), reusing `workspace`'s scratch buffers —
    /// identical results, no per-solve edge-list allocation. Sweep workers
    /// keep one workspace per thread and solve many points through it.
    ///
    /// # Errors
    ///
    /// Returns [`GtpnError::NoConvergence`] when the Gauss–Seidel sweeps do
    /// not reach `tolerance` within `max_sweeps`.
    pub fn solve_with(
        &self,
        tolerance: f64,
        max_sweeps: usize,
        workspace: &mut crate::solve::SolveWorkspace,
    ) -> Result<Solution, GtpnError> {
        Solution::solve_with(self, tolerance, max_sweeps, workspace)
    }

    /// Red-black ordered solve, the opt-in parallel variant behind
    /// `HSIPC_PAR_SOLVE=1`: both colors update from a frozen copy of the
    /// previous sweep, so the color batches fan out over `workers` threads
    /// with results **independent of the worker count**. Agrees with
    /// [`solve`](Self::solve) to solver tolerance (the iteration
    /// trajectories differ), not bit-for-bit.
    ///
    /// # Errors
    ///
    /// Returns [`GtpnError::NoConvergence`] when the sweeps do not reach
    /// `tolerance` within `max_sweeps`.
    pub fn solve_red_black(
        &self,
        tolerance: f64,
        max_sweeps: usize,
        workspace: &mut crate::solve::SolveWorkspace,
        workers: usize,
    ) -> Result<Solution, GtpnError> {
        Solution::solve_red_black_with(self, tolerance, max_sweeps, workspace, workers)
    }

    /// Estimated resident bytes of this graph — what a cache entry holding
    /// it costs. An estimate (allocator overhead and small fields are
    /// approximated per node), used to enforce the `HSIPC_CACHE_MB` budget.
    pub fn resident_bytes(&self) -> usize {
        let state_bytes: usize = self
            .states
            .iter()
            .map(|s| 64 + 4 * s.marking.len() + 16 * s.firings.len())
            .sum();
        let edge_bytes: usize = self.edges.iter().map(|e| 32 + 16 * e.len()).sum();
        state_bytes + edge_bytes + 8 * self.sojourn.len() + self.fired.len() + 256
    }

    /// Fingerprint of the chain's *shape*: state count, sojourns and edge
    /// targets — everything except the transition probabilities. Two sweep
    /// grid neighbors that differ only in a rate share a shape, so a
    /// converged solution for one is a valid warm start for the other
    /// (`gtpn::engine`'s warm-start slots key on this).
    pub fn shape_fingerprint(&self) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h = DefaultHasher::new();
        self.states.len().hash(&mut h);
        self.sojourn.hash(&mut h);
        for edges in &self.edges {
            edges.len().hash(&mut h);
            for &(succ, _) in edges {
                succ.hash(&mut h);
            }
        }
        h.finish()
    }

    /// The maximum reachable token count of `place` — its bound. A net is
    /// k-bounded when every place's bound is ≤ k. (Tokens held in transit by
    /// in-progress firings are not in any place and are not counted.)
    ///
    /// # Panics
    ///
    /// Panics if `place` does not belong to the net.
    pub fn place_bound(&self, place: crate::net::PlaceId) -> u32 {
        self.states
            .iter()
            .map(|s| s.marking[place.0])
            .max()
            .unwrap_or(0)
    }

    /// Transitions that never fire in any reachable behavior — dead code in
    /// the model, usually a mis-wired arc or an unsatisfiable gate.
    pub fn dead_transitions(&self) -> Vec<TransId> {
        self.fired
            .iter()
            .enumerate()
            .filter(|&(_, &f)| !f)
            .map(|(i, _)| TransId(i))
            .collect()
    }

    /// Time-weighted mean number of tokens in `place` under `solution` —
    /// the measure behind the paper's `Queue`-place instrumentation
    /// (§6.7.2): combined with transition usages it yields the mean number
    /// of customers in a subsystem for Little's-law calculations.
    ///
    /// Tokens held by in-progress firings are *not* counted (they are in
    /// transit, not in the place); add the relevant transition usages for a
    /// customers-in-system count.
    pub fn mean_tokens(&self, solution: &Solution, place: crate::net::PlaceId) -> f64 {
        self.states
            .iter()
            .zip(solution.state_probabilities())
            .map(|(s, &p)| p * f64::from(s.marking.get(place.0).copied().unwrap_or(0)))
            .sum()
    }
}

/// Runs the instantaneous firing phase from `marking` with `carried`
/// in-progress firings; returns the distribution over tangible states.
/// Shared with the lumped expansion ([`crate::lump`]), whose states are
/// exactly the post-completion markings this phase starts from.
pub(crate) fn instantaneous_phase(
    net: &Net,
    marking: Marking,
    carried: Vec<(TransId, u64)>,
    fired: &mut [bool],
) -> Result<Vec<(State, f64)>, GtpnError> {
    let tcount = net.transitions.len();
    let mut carried_counts = vec![0u32; tcount];
    for &(t, _) in &carried {
        carried_counts[t.0] += 1;
    }

    // Frontier configurations: (marking, newly started firings) -> probability.
    // Newly started firings are kept sorted for a canonical key. BTreeMaps
    // keep iteration — and therefore state discovery order, and therefore
    // the Gauss–Seidel sweep order — fully deterministic across runs.
    let mut frontier: BTreeMap<(Marking, Vec<(TransId, u64)>), f64> = BTreeMap::new();
    frontier.insert((marking, Vec::new()), 1.0);
    let mut results: BTreeMap<(Marking, Vec<(TransId, u64)>), f64> = BTreeMap::new();

    let mut firing_counts = vec![0u32; tcount];
    for round in 0.. {
        if round > MAX_PHASE_ROUNDS {
            return Err(GtpnError::ZeroDelayDivergence);
        }
        if frontier.is_empty() {
            break;
        }
        let mut next: BTreeMap<(Marking, Vec<(TransId, u64)>), f64> = BTreeMap::new();
        for ((m, pending), prob) in std::mem::take(&mut frontier) {
            // firing counts = carried + pending
            firing_counts.copy_from_slice(&carried_counts);
            for &(t, _) in &pending {
                firing_counts[t.0] += 1;
            }
            let ctx = EvalContext::new(&m, &firing_counts);

            // Collect enabled transitions and their weights.
            let mut enabled: Vec<(usize, f64)> = Vec::new();
            let mut total = 0.0;
            for (ti, t) in net.transitions.iter().enumerate() {
                // Multigraph: repeated arcs from the same place accumulate,
                // so check the aggregate demand per place.
                let has_tokens = t.inputs.iter().all(|&(p, _)| {
                    let needed: u32 = t
                        .inputs
                        .iter()
                        .filter(|&&(q, _)| q == p)
                        .map(|&(_, mm)| mm)
                        .sum();
                    m[p.0] >= needed
                });
                if !has_tokens {
                    continue;
                }
                let w = t.frequency.eval(ctx);
                if !w.is_finite() || w < 0.0 {
                    return Err(GtpnError::BadFrequency {
                        transition: t.name.clone(),
                        value: w,
                    });
                }
                if w > 0.0 {
                    enabled.push((ti, w));
                    total += w;
                }
            }

            if enabled.is_empty() {
                *results.entry((m, pending)).or_insert(0.0) += prob;
                continue;
            }

            for (ti, w) in enabled {
                let p = prob * w / total;
                if p < PROB_FLOOR {
                    continue;
                }
                fired[ti] = true;
                let t = &net.transitions[ti];
                let mut m2 = m.clone();
                for &(pl, mult) in &t.inputs {
                    m2[pl.0] -= mult;
                }
                let mut pending2 = pending.clone();
                if t.delay == 0 {
                    // Completes immediately.
                    for &(pl, mult) in &t.outputs {
                        m2[pl.0] += mult;
                    }
                } else {
                    pending2.push((TransId(ti), t.delay));
                    pending2.sort_unstable();
                }
                *next.entry((m2, pending2)).or_insert(0.0) += p;
            }
        }
        frontier = next;
    }

    let mut out = Vec::with_capacity(results.len());
    for ((m, pending), p) in results {
        let mut firings = carried.clone();
        firings.extend(pending);
        out.push((State::new(m, firings), p));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::net::Transition;

    /// A single token looping through a delay-1 transition: one state with a
    /// self loop.
    #[test]
    fn trivial_cycle() {
        let mut net = Net::new("cycle");
        let p = net.add_place("P", 1);
        net.add_transition(Transition::new("T").delay(1).input(p, 1).output(p, 1))
            .unwrap();
        let g = net.reachability(100).unwrap();
        assert_eq!(g.state_count(), 1);
        assert_eq!(g.sojourns(), &[1]);
        assert_eq!(g.out_edges(0), &[(0, 1.0)]);
    }

    /// Geometric stage: exit freq 0.25, loop freq 0.75 — both reachable.
    #[test]
    fn geometric_branching() {
        let mut net = Net::new("geo");
        let p = net.add_place("P", 1);
        let q = net.add_place("Q", 0);
        net.add_transition(
            Transition::new("exit")
                .delay(1)
                .frequency(Expr::constant(0.25))
                .input(p, 1)
                .output(q, 1),
        )
        .unwrap();
        net.add_transition(
            Transition::new("loop")
                .delay(1)
                .frequency(Expr::constant(0.75))
                .input(p, 1)
                .output(p, 1),
        )
        .unwrap();
        net.add_transition(Transition::new("recycle").delay(0).input(q, 1).output(p, 1))
            .unwrap();
        let g = net.reachability(100).unwrap();
        // Two tangible states: firing `exit` or firing `loop`.
        assert_eq!(g.state_count(), 2);
        for i in 0..2 {
            let probs: f64 = g.out_edges(i).iter().map(|&(_, p)| p).sum();
            assert!((probs - 1.0).abs() < 1e-12);
        }
    }

    /// Two independent tokens fire concurrently in one round.
    #[test]
    fn concurrent_firing() {
        let mut net = Net::new("conc");
        let a = net.add_place("A", 1);
        let b = net.add_place("B", 1);
        net.add_transition(Transition::new("TA").delay(2).input(a, 1).output(a, 1))
            .unwrap();
        net.add_transition(Transition::new("TB").delay(2).input(b, 1).output(b, 1))
            .unwrap();
        let g = net.reachability(100).unwrap();
        // Both transitions fire in lock step: a single state with both in
        // progress.
        assert_eq!(g.state_count(), 1);
        assert_eq!(g.states()[0].firings.len(), 2);
    }

    /// Deadlock detection: token consumed, never returned.
    #[test]
    fn deadlock_detected() {
        let mut net = Net::new("dead");
        let a = net.add_place("A", 1);
        let b = net.add_place("B", 0);
        net.add_transition(Transition::new("T").delay(1).input(a, 1).output(b, 1))
            .unwrap();
        let err = net.reachability(100).unwrap_err();
        assert!(matches!(err, GtpnError::Deadlock { .. }));
    }

    /// Zero-delay cycle producing tokens diverges and is reported.
    #[test]
    fn zero_delay_divergence_detected() {
        let mut net = Net::new("zeno");
        let a = net.add_place("A", 1);
        net.add_transition(Transition::new("T").delay(0).input(a, 1).output(a, 1))
            .unwrap();
        let err = net.reachability(100).unwrap_err();
        assert_eq!(err, GtpnError::ZeroDelayDivergence);
    }

    /// State budget enforcement.
    #[test]
    fn state_budget_enforced() {
        let mut net = Net::new("big");
        let a = net.add_place("A", 0);
        let b = net.add_place("B", 1);
        // Counter: every step adds a token to A — unbounded.
        net.add_transition(
            Transition::new("T")
                .delay(1)
                .input(b, 1)
                .output(b, 1)
                .output(a, 1),
        )
        .unwrap();
        let err = net.reachability(5).unwrap_err();
        assert!(matches!(err, GtpnError::StateSpaceExceeded { limit: 5 }));
    }

    /// Negative frequency is rejected.
    #[test]
    fn bad_frequency_rejected() {
        let mut net = Net::new("bad");
        let a = net.add_place("A", 1);
        net.add_transition(
            Transition::new("T")
                .delay(1)
                .frequency(Expr::constant(-1.0))
                .input(a, 1)
                .output(a, 1),
        )
        .unwrap();
        let err = net.reachability(100).unwrap_err();
        assert!(matches!(err, GtpnError::BadFrequency { .. }));
    }

    /// Gated transition: frequency 0 means "not enabled".
    #[test]
    fn zero_frequency_disables() {
        let mut net = Net::new("gate");
        let a = net.add_place("A", 1);
        let b = net.add_place("B", 0);
        // T1 is gated off whenever B is empty, so only T0 can fire.
        net.add_transition(Transition::new("T0").delay(1).input(a, 1).output(a, 1))
            .unwrap();
        net.add_transition(
            Transition::new("T1")
                .delay(1)
                .frequency(Expr::gate(
                    Expr::Not(Box::new(Expr::place_empty(crate::net::PlaceId(1)))),
                    Expr::constant(1.0),
                ))
                .input(a, 1)
                .output(b, 1),
        )
        .unwrap();
        let g = net.reachability(100).unwrap();
        assert_eq!(g.state_count(), 1);
        assert_eq!(g.states()[0].firings[0].0, TransId(0));
    }

    /// place_bound and dead_transitions on a small net. Tangible markings
    /// only show tokens that cannot move (everything fireable is already in
    /// progress), so a contended place's bound reflects the queue that
    /// builds behind the shared resource.
    #[test]
    fn analysis_bound_and_dead() {
        let mut net = Net::new("analysis");
        let a = net.add_place("A", 2);
        let host = net.add_place("Host", 1);
        let c = net.add_place("C", 0); // never marked
                                       // Two tokens compete for one Host: one waits in A at any time.
        net.add_transition(
            Transition::new("work")
                .delay(3)
                .input(a, 1)
                .input(host, 1)
                .output(a, 1)
                .output(host, 1),
        )
        .unwrap();
        // Dead: requires a token in C, which nothing produces.
        net.add_transition(Transition::new("dead").delay(1).input(c, 1).output(c, 1))
            .unwrap();
        let g = net.reachability(1000).unwrap();
        assert_eq!(g.place_bound(a), 1, "one token always queued behind Host");
        assert_eq!(g.place_bound(host), 0, "the Host token is always in use");
        assert_eq!(g.place_bound(c), 0);
        assert_eq!(g.dead_transitions(), vec![TransId(1)]);
    }

    /// A budgeted build with many logical workers is byte-identical to the
    /// serial build — numbering, edges (bit-for-bit floats), sojourns and
    /// the fired record all match, and errors agree too.
    #[test]
    fn budgeted_build_is_byte_identical() {
        // A net wide enough to cross PAR_MIN_FRONTIER: several independent
        // geometric stages multiply the frontier width.
        let mut net = Net::new("wide");
        for k in 0..4 {
            let p = net.add_place(format!("P{k}"), 1);
            let q = net.add_place(format!("Q{k}"), 0);
            net.add_transition(
                Transition::new(format!("exit{k}"))
                    .delay(1 + k as u64)
                    .frequency(Expr::constant(0.3))
                    .input(p, 1)
                    .output(q, 1),
            )
            .unwrap();
            net.add_transition(
                Transition::new(format!("loop{k}"))
                    .delay(1)
                    .frequency(Expr::constant(0.7))
                    .input(p, 1)
                    .output(p, 1),
            )
            .unwrap();
            net.add_transition(
                Transition::new(format!("recycle{k}"))
                    .delay(0)
                    .input(q, 1)
                    .output(p, 1),
            )
            .unwrap();
        }
        let serial = net.reachability(100_000).unwrap();
        assert!(
            serial.state_count() > PAR_MIN_FRONTIER,
            "test net too small ({} states) to exercise the parallel path",
            serial.state_count()
        );
        let budget = crate::ParallelBudget::new(8);
        let par = net.reachability_budgeted(100_000, &budget).unwrap();
        assert_eq!(serial.states, par.states);
        assert_eq!(serial.sojourn, par.sojourn);
        assert_eq!(serial.fired, par.fired);
        assert_eq!(serial.edges.len(), par.edges.len());
        for (a, b) in serial.edges.iter().zip(&par.edges) {
            assert_eq!(a.len(), b.len());
            for (&(i, p), &(j, q)) in a.iter().zip(b) {
                assert_eq!(i, j);
                assert_eq!(p.to_bits(), q.to_bits(), "edge probability drifted");
            }
        }
        // The budget is fully released afterwards.
        assert_eq!(budget.available(), 7);
        // Budget errors match the serial error too.
        let serr = net.reachability(50).unwrap_err();
        let perr = net.reachability_budgeted(50, &budget).unwrap_err();
        assert_eq!(serr, perr);
    }

    /// Heterogeneous delays: a 3-tick and a 2-tick transition interleave.
    #[test]
    fn heterogeneous_delays() {
        let mut net = Net::new("hetero");
        let a = net.add_place("A", 1);
        let b = net.add_place("B", 1);
        net.add_transition(Transition::new("T3").delay(3).input(a, 1).output(a, 1))
            .unwrap();
        net.add_transition(Transition::new("T2").delay(2).input(b, 1).output(b, 1))
            .unwrap();
        let g = net.reachability(1000).unwrap();
        // The joint cycle has period lcm(3,2)=6 with states at relative
        // offsets: (3,2),(1,2)->dt1,(2,1),(1,2)... exact count: offsets of
        // remaining pairs reachable: (3,2),(1,2)? let's just require >1 and
        // all edges stochastic.
        assert!(g.state_count() >= 2);
        for i in 0..g.state_count() {
            let s: f64 = g.out_edges(i).iter().map(|&(_, p)| p).sum();
            assert!((s - 1.0).abs() < 1e-12, "state {i} not stochastic");
        }
    }
}
