//! # gtpn — Generalized Timed Petri Nets
//!
//! An implementation of the Generalized Timed Petri Net (GTPN) formalism of
//! Holliday & Vernon, as used in Ramachandran's *Hardware Support for
//! Interprocess Communication* (UW–Madison TR #667, 1986 / ISCA 1987) to
//! model and compare node architectures for message-based operating systems.
//!
//! A GTPN is a Petri net whose transitions carry three attributes:
//!
//! * a **deterministic firing duration** (*delay*, in integer time units),
//! * a **frequency** — a possibly state-dependent expression governing the
//!   probabilistic resolution of conflicts between transitions that compete
//!   for tokens, and
//! * an optional **resource** label; the analyzer reports the steady-state
//!   mean number of in-progress firings of each resource ("resource usage"),
//!   which is the paper's throughput metric.
//!
//! The crate provides:
//!
//! * [`Net`] / [`Transition`] — net description with a small expression
//!   language ([`Expr`]) for state-dependent frequencies such as the paper's
//!   `(NetIntr = 0) & !T8 & !T9 -> 1/982, 0` gates,
//! * [`ReachabilityGraph`] — exact construction of the embedded Markov chain
//!   (tangible states only; zero-delay firings are eliminated inline),
//! * [`solve`](ReachabilityGraph::solve) — steady-state solution and
//!   time-weighted resource-usage estimates,
//! * [`sim`] — a Monte-Carlo token-game simulator with identical semantics,
//!   used for cross-validation and for nets too large to solve exactly,
//! * [`invariant`] — place-invariant (conservation) analysis,
//! * [`geometric`] — the paper's §6.6.1 trick of replacing a large constant
//!   delay by a geometrically distributed delay with the same mean.
//!
//! ## Example
//!
//! The two-transition example of the paper's Figure 6.6/6.7: a token cycles
//! through a geometric stage of mean 10 time units and we measure the
//! completion rate.
//!
//! ```
//! use gtpn::{Net, Transition, Expr};
//!
//! let mut net = Net::new("figure-6.7");
//! let p = net.add_place("P1", 1);
//! let done = net.add_place("P2", 0);
//! // Exit with probability 1/10 per unit step, else loop: geometric mean 10.
//! net.add_transition(
//!     Transition::new("T0").delay(1).frequency(Expr::constant(0.1))
//!         .resource("lambda").input(p, 1).output(done, 1),
//! )?;
//! net.add_transition(
//!     Transition::new("T1").delay(1).frequency(Expr::constant(0.9))
//!         .input(p, 1).output(p, 1),
//! )?;
//! // Immediately recycle the token.
//! net.add_transition(
//!     Transition::new("T2").delay(0).frequency(Expr::constant(1.0))
//!         .input(done, 1).output(p, 1),
//! )?;
//!
//! let graph = net.reachability(100_000)?;
//! let solution = graph.solve(1e-12, 1_000_000)?;
//! let usage = solution.resource_usage("lambda").unwrap();
//! assert!((usage - 0.1).abs() < 1e-9); // T0 busy 10% of the time
//! # Ok::<(), gtpn::GtpnError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod expr;
mod lru;
mod net;
mod reach;
mod solve;
mod state;

pub mod cache;
pub mod canonical;
pub mod dot;
pub mod engine;
pub mod geometric;
pub mod invariant;
pub mod lump;
pub mod par;
pub mod parse;
pub mod sim;

pub use engine::{Analysis, AnalysisEngine, BackendKind, BackendSel, DesOptions, EngineConfig};
pub use error::GtpnError;
pub use expr::{EvalContext, Expr};
pub use lump::LumpSel;
pub use net::{Net, PlaceId, TransId, Transition};
pub use par::ParallelBudget;
pub use reach::ReachabilityGraph;
pub use solve::{Solution, SolveWorkspace};
pub use state::{Marking, State};

/// Serializes tests that observe or clear the process-global caches — the
/// harness runs test functions on multiple threads, and counter assertions
/// in one test must not interleave with lookups from another.
#[cfg(test)]
pub(crate) fn test_serial() -> std::sync::MutexGuard<'static, ()> {
    static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());
    GATE.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}
