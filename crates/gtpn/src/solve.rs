//! Steady-state solution of the embedded Markov chain.
//!
//! The reachability graph is a finite discrete-time Markov chain whose state
//! `i` holds for a deterministic sojourn `h_i`. Small chains (at most
//! [`DIRECT_MAX_STATES`] states) are solved exactly by dense LU on the
//! balance equations; larger ones solve `π P = π` with a Gauss–Seidel
//! sweep (self-loops are eliminated analytically, which matters because
//! the paper's geometric-delay stages produce states with large self-loop
//! probabilities). Either way the result is then time-weighted:
//!
//! ```text
//! π_time(i) = π(i) · h_i / Σ_j π(j) · h_j
//! ```
//!
//! The **resource usage** of resource `r` is the time-weighted expected
//! number of in-progress firings of transitions labelled `r` — exactly the
//! output measure of the UW–Madison GTPN analyzer that the paper reads
//! throughput (`Λ`) from. A transition with delay `d` firing at rate `λ` has
//! usage `λ·d`, so the *rate* reported by [`Solution::resource_rate`] is
//! `usage / d`.

use crate::error::GtpnError;
use crate::net::TransId;
use crate::reach::ReachabilityGraph;
use std::collections::{HashMap, VecDeque};

/// Reusable scratch buffers for [`ReachabilityGraph::solve_with`].
///
/// A sweep evaluates hundreds of points whose reachability graphs are the
/// same size (or cached and literally the same graph); rebuilding the
/// incoming-edge lists and self-loop vector for each solve is pure
/// allocator churn. One workspace per worker thread keeps those buffers
/// warm across points. The solution vector itself is always freshly
/// allocated — it is moved into the returned [`Solution`].
#[derive(Debug, Default)]
pub struct SolveWorkspace {
    /// `incoming[j]` = `(i, p)` edges into state `j`, self-loops excluded.
    incoming: Vec<Vec<(usize, f64)>>,
    /// Total self-loop probability of each state.
    self_loop: Vec<f64>,
}

impl SolveWorkspace {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> SolveWorkspace {
        SolveWorkspace::default()
    }

    /// Clears and resizes the buffers for a graph of `n` states, keeping
    /// the per-state inner allocations.
    fn reset(&mut self, n: usize) {
        for list in self.incoming.iter_mut() {
            list.clear();
        }
        if self.incoming.len() < n {
            self.incoming.resize_with(n, Vec::new);
        }
        self.self_loop.clear();
        self.self_loop.resize(n, 0.0);
    }
}

/// Steady-state solution of a [`ReachabilityGraph`].
#[derive(Debug, Clone)]
pub struct Solution {
    /// Time-weighted steady-state probability of each tangible state.
    pi_time: Vec<f64>,
    /// Embedded-chain stationary distribution.
    pi: Vec<f64>,
    /// Mean sojourn time `Σ π h`.
    mean_sojourn: f64,
    /// Usage per transition (time-weighted mean number in progress).
    transition_usage: Vec<f64>,
    /// Resource label -> usage.
    resource_usage_map: HashMap<String, f64>,
    /// Resource label -> minimum delay among its transitions (for rates).
    resource_delay: HashMap<String, u64>,
    transition_delays: Vec<u64>,
    transition_names: Vec<String>,
    iterations: usize,
    residual: f64,
}

impl Solution {
    pub(crate) fn solve(
        graph: &ReachabilityGraph,
        tolerance: f64,
        max_sweeps: usize,
    ) -> Result<Solution, GtpnError> {
        Solution::solve_with(graph, tolerance, max_sweeps, &mut SolveWorkspace::new())
    }

    pub(crate) fn solve_with(
        graph: &ReachabilityGraph,
        tolerance: f64,
        max_sweeps: usize,
        ws: &mut SolveWorkspace,
    ) -> Result<Solution, GtpnError> {
        Solution::solve_seeded_with(graph, tolerance, max_sweeps, ws, None)
    }

    /// As [`solve_with`](Self::solve_with), starting the Gauss–Seidel
    /// iteration from `seed` (a previously converged embedded distribution
    /// of a same-shape chain — the warm-start hand-off of a sweep) instead
    /// of the uniform vector. A seed of the wrong length, or containing
    /// non-finite / negative mass, falls back to the cold uniform start.
    ///
    /// The seed moves the *trajectory*, not the destination: the iteration
    /// still runs to the same tail-bound stopping rule, so a warm solve
    /// agrees with a cold one to solver tolerance.
    pub(crate) fn solve_seeded_with(
        graph: &ReachabilityGraph,
        tolerance: f64,
        max_sweeps: usize,
        ws: &mut SolveWorkspace,
        seed: Option<&[f64]>,
    ) -> Result<Solution, GtpnError> {
        let n = graph.states.len();
        assert!(n > 0, "empty reachability graph");

        // Small graphs are solved exactly. The §6.6.3 fixed-point models
        // produce tiny (tens of states) but numerically stiff chains —
        // geometric stages with means in the thousands — on which the
        // Gauss–Seidel residual oscillates over orders of magnitude and
        // any local stopping rule can fire 10³ short of the requested
        // accuracy (observed: δ = 7e-12 with true error 1.5e-8). One
        // dense LU is exact, deterministic, and replaces tens of
        // thousands of sweeps on exactly the solver critical path.
        if n <= DIRECT_MAX_STATES {
            if let Some((pi, residual)) = solve_direct(graph) {
                return Ok(finish(graph, pi, 1, residual));
            }
        }

        // Incoming edge lists with self-loop separation, built into the
        // workspace's reusable buffers.
        ws.reset(n);
        build_incoming(graph, &mut ws.incoming, &mut ws.self_loop);
        let incoming = &ws.incoming;
        let self_loop = &ws.self_loop;

        let mut pi = seed_vector(n, seed);
        let mut iterations = 0;
        let mut residual = f64::INFINITY;
        // Residuals one and two sweeps back (0.0 = not yet seen, which
        // makes the rate estimate infinite and blocks early stopping).
        let mut prev = 0.0f64;
        let mut prev2 = 0.0f64;
        let mut aa = Anderson::new();
        let mut x_pre: Vec<f64> = Vec::new();
        let mut stall = StallDetector::new();
        let mut converged = false;
        while iterations < max_sweeps {
            iterations += 1;
            let mut max_delta = 0.0f64;
            // Symmetric Gauss–Seidel: alternate sweep direction, which
            // propagates probability mass quickly in both directions of the
            // (often chain-structured) reachability graph.
            let forward = iterations % 2 == 1;
            // The Anderson pair is (input, image) of the full symmetric
            // double sweep: snapshot the input before the forward half.
            if forward && iterations + 1 >= AA_WARMUP {
                x_pre.clone_from(&pi);
            }
            let update = |j: usize, pi: &mut Vec<f64>, max_delta: &mut f64| {
                let inflow: f64 = incoming[j].iter().map(|&(i, p)| pi[i] * p).sum();
                let denom = 1.0 - self_loop[j];
                let new = if denom <= 0.0 {
                    // Absorbing self-loop state: leave mass as-is; the
                    // deadlock check upstream prevents this in practice.
                    pi[j]
                } else {
                    inflow / denom
                };
                *max_delta = (*max_delta).max((new - pi[j]).abs());
                pi[j] = new;
            };
            if forward {
                for j in 0..n {
                    update(j, &mut pi, &mut max_delta);
                }
            } else {
                for j in (0..n).rev() {
                    update(j, &mut pi, &mut max_delta);
                }
            }
            // Normalize to guard against drift.
            let total: f64 = pi.iter().sum();
            if total > 0.0 {
                for v in pi.iter_mut() {
                    *v /= total;
                }
            }
            residual = max_delta;
            if converged_by_tail_bound(residual, (residual / prev2).sqrt(), tolerance)
                || stall.stalled(iterations, residual, tolerance)
            {
                converged = true;
                break;
            }
            prev2 = prev;
            prev = residual;
            // Anderson mixing on the slow chains, once per double sweep.
            // Fast solves converge inside the warmup and never see it,
            // preserving their exact historical trajectories; once the
            // residual is deep enough for the stall detector's floor
            // tracking, mixing stops — a mixed step there could only
            // perturb the endgame with rounding noise.
            if iterations >= AA_WARMUP && !forward && residual >= tolerance * 1e-2 {
                if let Some(cand) = aa.mix(&x_pre, &pi, residual) {
                    pi = cand;
                }
            }
        }
        if !converged {
            return Err(GtpnError::NoConvergence {
                residual,
                iterations,
            });
        }
        Ok(finish(graph, pi, iterations, residual))
    }

    /// Solves `π P = π` with red-black ordering: states are split by index
    /// parity, each color updated as a batch from a frozen copy of the
    /// previous values, reds before blacks. Batches are embarrassingly
    /// parallel, so the color update fans out over `workers` threads — and
    /// because every value is computed from the frozen vector, the result
    /// is **identical for any worker count** (only wall-clock changes).
    ///
    /// Within a color the update is Jacobi (every value reads the frozen
    /// vector), and pure Jacobi oscillates on periodic chains — which the
    /// embedded chains here nearly are once self-loops are eliminated (an
    /// odd cycle flips between two vectors forever). The scatter therefore
    /// applies under-relaxation (`RED_BLACK_OMEGA`): mixing the old value
    /// back in breaks the period-2 mode while leaving the fixed point
    /// unchanged.
    ///
    /// The iteration trajectory differs from the serial symmetric sweep of
    /// [`solve_with`](Self::solve_with) (red-black reads strictly older
    /// values within a color, and relaxes), so converged results agree
    /// with the serial solver to solver tolerance, not bit-for-bit. That
    /// is why this path is opt-in (`HSIPC_PAR_SOLVE=1`) and excluded from
    /// the byte-identity contract.
    pub(crate) fn solve_red_black_with(
        graph: &ReachabilityGraph,
        tolerance: f64,
        max_sweeps: usize,
        ws: &mut SolveWorkspace,
        workers: usize,
    ) -> Result<Solution, GtpnError> {
        Solution::solve_red_black_core(
            graph,
            tolerance,
            max_sweeps,
            ws,
            RbWidth::Fixed(workers),
            None,
        )
    }

    /// As [`solve_red_black_with`](Self::solve_red_black_with), but the
    /// color batches claim their worker width from `par` **per sweep**
    /// instead of once per solve: as sweep-pool workers drain and release
    /// cores mid-solve, the remaining sparse matvecs widen on the next
    /// sweep. Values are computed from the frozen vector either way, so the
    /// result stays independent of whatever widths the ledger granted.
    pub(crate) fn solve_red_black_budgeted(
        graph: &ReachabilityGraph,
        tolerance: f64,
        max_sweeps: usize,
        ws: &mut SolveWorkspace,
        par: &crate::par::ParallelBudget,
        seed: Option<&[f64]>,
    ) -> Result<Solution, GtpnError> {
        Solution::solve_red_black_core(graph, tolerance, max_sweeps, ws, RbWidth::Budget(par), seed)
    }

    fn solve_red_black_core(
        graph: &ReachabilityGraph,
        tolerance: f64,
        max_sweeps: usize,
        ws: &mut SolveWorkspace,
        width: RbWidth<'_>,
        seed: Option<&[f64]>,
    ) -> Result<Solution, GtpnError> {
        let n = graph.states.len();
        assert!(n > 0, "empty reachability graph");

        // Same direct path as [`solve_with`](Self::solve_with): below the
        // threshold the two solvers are literally the same computation, so
        // `HSIPC_PAR_SOLVE=1` changes nothing at all on small graphs.
        if n <= DIRECT_MAX_STATES {
            if let Some((pi, residual)) = solve_direct(graph) {
                return Ok(finish(graph, pi, 1, residual));
            }
        }

        ws.reset(n);
        build_incoming(graph, &mut ws.incoming, &mut ws.self_loop);
        let incoming = &ws.incoming[..n];
        let self_loop = &ws.self_loop[..n];

        let reds = n.div_ceil(2); // states 0, 2, 4, ...
        let blacks = n / 2; // states 1, 3, 5, ...
        let mut pi = seed_vector(n, seed);
        let mut fresh = vec![0.0f64; reds];

        let mut iterations = 0;
        let mut residual = f64::INFINITY;
        // Residual one sweep back (0.0 = not yet seen → infinite rate,
        // which blocks early stopping). The red-black iteration is uniform
        // sweep to sweep, so successive residuals estimate the rate.
        let mut prev = 0.0f64;
        let mut aa = Anderson::new();
        let mut x_pre: Vec<f64> = Vec::new();
        let mut stall = StallDetector::new();
        let mut converged = false;
        while iterations < max_sweeps {
            iterations += 1;
            // The Anderson pair is (input, image) of one full red-black
            // sweep: snapshot the input before the color updates.
            if iterations >= AA_WARMUP {
                x_pre.clone_from(&pi);
            }
            // Fixed widths are latched for the whole solve; a budget is
            // consulted anew each sweep, so cores freed by draining pool
            // workers widen the remaining sweeps of a long solve.
            let (_lease, workers) = match width {
                RbWidth::Fixed(w) => (None, w.max(1)),
                RbWidth::Budget(par) => {
                    if n >= PAR_SOLVE_MIN_STATES {
                        let lease = par.claim_extra(usize::MAX);
                        let w = 1 + lease.extra();
                        (Some(lease), w)
                    } else {
                        (None, 1)
                    }
                }
            };
            let mut max_delta = 0.0f64;
            for color in 0..2usize {
                let m = if color == 0 { reds } else { blacks };
                if m == 0 {
                    continue;
                }
                half_sweep(color, &pi, &mut fresh[..m], incoming, self_loop, workers);
                // Serial scatter: the residual accumulation and the writes
                // into `pi` happen in state order regardless of workers.
                for (r, &v) in fresh[..m].iter().enumerate() {
                    let j = 2 * r + color;
                    let new = pi[j] + RED_BLACK_OMEGA * (v - pi[j]);
                    max_delta = max_delta.max((new - pi[j]).abs());
                    pi[j] = new;
                }
            }
            // Normalize to guard against drift.
            let total: f64 = pi.iter().sum();
            if total > 0.0 {
                for v in pi.iter_mut() {
                    *v /= total;
                }
            }
            residual = max_delta;
            if converged_by_tail_bound(residual, residual / prev, tolerance)
                || stall.stalled(iterations, residual, tolerance)
            {
                converged = true;
                break;
            }
            prev = residual;
            // The same Anderson mixing as the serial sweep, once per
            // red-black sweep. The candidate is a deterministic function
            // of the iterates, so worker-count invariance is untouched.
            if iterations >= AA_WARMUP && residual >= tolerance * 1e-2 {
                if let Some(cand) = aa.mix(&x_pre, &pi, residual) {
                    pi = cand;
                }
            }
        }
        if !converged {
            return Err(GtpnError::NoConvergence {
                residual,
                iterations,
            });
        }
        Ok(finish(graph, pi, iterations, residual))
    }
}

/// Graphs at or below this size are solved directly (dense LU on the
/// balance equations) instead of iteratively. 128 states is a 128 KiB
/// dense matrix and ~2·10⁶ flops — microseconds — while covering every
/// graph the §6.6.3 fixed point solves at the paper's conversation counts,
/// which is where the stiff chains live. Larger graphs stay on the sparse
/// iterative solvers.
pub(crate) const DIRECT_MAX_STATES: usize = 128;

/// Graphs below this size never claim budget cores in the budgeted
/// red-black solve: the per-sweep work cannot amortize worker dispatch.
pub(crate) const PAR_SOLVE_MIN_STATES: usize = 512;

/// Worker-width policy of the red-black solver: a width fixed for the whole
/// solve (the public API) or a [`crate::par::ParallelBudget`] consulted per
/// sweep (the engine's path, which widens mid-solve as cores free up).
enum RbWidth<'a> {
    Fixed(usize),
    Budget(&'a crate::par::ParallelBudget),
}

/// The iteration's starting vector: a validated, renormalized copy of
/// `seed`, or the cold uniform start when the seed is absent, has the wrong
/// length (the net's shape changed along the sweep axis), or carries
/// non-finite / negative mass.
fn seed_vector(n: usize, seed: Option<&[f64]>) -> Vec<f64> {
    if let Some(s) = seed {
        if s.len() == n {
            let total: f64 = s.iter().sum();
            if total > 0.0 && total.is_finite() && s.iter().all(|&v| v.is_finite() && v >= 0.0) {
                return s.iter().map(|&v| v / total).collect();
            }
        }
    }
    vec![1.0 / n as f64; n]
}

/// Depth of Anderson mixing: an accelerated step combines up to
/// `AA_DEPTH + 1` of the most recent sweep images.
const AA_DEPTH: usize = 8;

/// Sweeps before mixing starts. Fast solves converge before this and keep
/// their exact historical trajectories; the stiff geometric-stage chains
/// (contraction rate `1 − 1/mean` with means in the thousands, i.e. ~10⁵
/// sweeps to tolerance unaided) are still in their first percent of
/// progress.
const AA_WARMUP: usize = 64;

/// Mix calls without halving the best residual before the window is
/// discarded and mixing enters a cooldown ([`AA_MAX_RESTARTS`] times),
/// then gives up for the remainder of the solve. The cooldown matters: on
/// a handful of solves the mixed sequence settles into a limit cycle —
/// the residual orbits around 1e-6, even *rising* slowly, for 10⁵ sweeps
/// without tripping any per-step guard — and because the iteration is
/// deterministic, a window rebuilt from the very same iterate re-enters
/// the very same cycle. Plain sweeps first have to carry the iterate a
/// measurable distance away (residual down 4×) before a fresh window gets
/// a different starting state; restarted there, mixing converges normally,
/// exactly as warm-seeded solves do. Only when repeated restarts stop
/// paying is plain Gauss–Seidel (with the unchanged stopping rule) the
/// better finisher.
const AA_PATIENCE: usize = 1024;

/// Window restarts granted before mixing is disabled for the solve.
const AA_MAX_RESTARTS: usize = 3;

/// Residual shrink factor that ends a post-restart cooldown.
const AA_COOLDOWN_SHRINK: f64 = 0.25;

/// Largest accepted ‖α‖₁ of the mixing coefficients. An ill-conditioned
/// window yields wildly oscillating coefficients whose mixed iterate
/// amplifies rounding noise instead of cancelling error — observed as a
/// limit cycle with the residual slowly *rising* at ~1e-6 for 10⁵ sweeps.
/// When the full window's coefficients exceed this, the fit is retried on
/// suffixes of the window (newest pairs) until it is tame; a window that
/// cannot produce a tame fit produces no step at all.
const AA_ALPHA_CAP: f64 = 1e6;

/// Anderson mixing over Gauss–Seidel sweeps.
///
/// For the sweep map `g` (one symmetric double sweep, or one red-black
/// sweep) with fixed point `π`, each call records the pair `(x_k, g(x_k))`
/// and returns the affine combination `Σ α_j g(x_j)` with `Σ α_j = 1`
/// minimizing `‖Σ α_j f_j‖₂` over a sliding window, where
/// `f_j = g(x_j) − x_j` is the sweep residual. For a linear map this is
/// reduced-rank extrapolation applied continuously — the fixed-point
/// analogue of a Krylov method on `I − M`. That matters here because the
/// paper's geometric stages produce a *dense* cluster of slow modes (ρ
/// within 1e-3 of 1): a rank-8 burst jump every few hundred sweeps leaves
/// most of the cluster standing (measured: ~5× residual per 1152-sweep
/// window on a 6336-state chain), while the same rank-8 fit refreshed
/// every sweep keeps cancelling the cluster as it rotates through the
/// window.
///
/// Everything is a deterministic function of the iterates, so the solvers
/// stay bit-reproducible (and the red-black solver stays worker-count
/// invariant). A degenerate least-squares system or a candidate that
/// fails the probability-vector guards resets the window; the solve falls
/// back to plain sweeps while it refills.
struct Anderson {
    /// Sweep residuals `f_j = g(x_j) − x_j`, oldest first.
    fs: VecDeque<Vec<f64>>,
    /// Images `g(x_j)`, aligned with `fs`.
    gxs: VecDeque<Vec<f64>>,
    /// Gram rows: `gram[a][b] = f_a · f_b`, maintained incrementally (one
    /// new row of dot products per call, not a full rebuild).
    gram: VecDeque<Vec<f64>>,
    /// Best (smallest) residual seen at any mix call.
    best: f64,
    /// Mix calls since `best` last halved; see [`AA_PATIENCE`].
    since_best: usize,
    /// Patience exhaustions so far; see [`AA_MAX_RESTARTS`].
    restarts: usize,
    /// Active cooldown: mixing stays off until the residual drops below
    /// this (see [`AA_COOLDOWN_SHRINK`]); `0.0` when no cooldown.
    cooldown_below: f64,
    disabled: bool,
}

impl Anderson {
    fn new() -> Anderson {
        Anderson {
            fs: VecDeque::new(),
            gxs: VecDeque::new(),
            gram: VecDeque::new(),
            best: f64::INFINITY,
            since_best: 0,
            restarts: 0,
            cooldown_below: 0.0,
            disabled: false,
        }
    }

    fn reset(&mut self) {
        self.fs.clear();
        self.gxs.clear();
        self.gram.clear();
    }

    /// Records one `(x, g(x))` pair and returns the mixed iterate, or
    /// `None` while the window is too shallow or when the least-squares
    /// system degenerates (which resets the window).
    fn mix(&mut self, x: &[f64], gx: &[f64], residual: f64) -> Option<Vec<f64>> {
        if self.disabled {
            return None;
        }
        if self.cooldown_below > 0.0 {
            if residual >= self.cooldown_below {
                return None;
            }
            self.cooldown_below = 0.0;
            self.best = residual;
            self.since_best = 0;
        }
        if residual < 0.5 * self.best {
            self.best = residual;
            self.since_best = 0;
        } else {
            self.since_best += 1;
            if self.since_best > AA_PATIENCE {
                self.reset();
                self.restarts += 1;
                if self.restarts > AA_MAX_RESTARTS {
                    self.disabled = true;
                } else {
                    self.cooldown_below = AA_COOLDOWN_SHRINK * self.best.min(residual);
                }
                return None;
            }
        }
        let n = x.len();
        let f: Vec<f64> = gx.iter().zip(x).map(|(g, x)| g - x).collect();
        if self.fs.len() == AA_DEPTH + 1 {
            self.fs.pop_front();
            self.gxs.pop_front();
            self.gram.pop_front();
            for row in self.gram.iter_mut() {
                row.remove(0);
            }
        }
        let new_row: Vec<f64> = self
            .fs
            .iter()
            .map(|fj| fj.iter().zip(&f).map(|(a, b)| a * b).sum())
            .chain(std::iter::once(f.iter().map(|v| v * v).sum()))
            .collect();
        for (row, &dot) in self.gram.iter_mut().zip(&new_row) {
            row.push(dot);
        }
        self.gram.push_back(new_row);
        self.fs.push_back(f);
        self.gxs.push_back(gx.to_vec());
        let m = self.fs.len();
        if m < 2 {
            return None;
        }
        // Fit on the newest `k` pairs, shrinking `k` until the coefficients
        // are tame ([`AA_ALPHA_CAP`]): the residuals of a stiff chain are
        // nearly collinear, so the Gram system is ill-conditioned by
        // design, and the ridge alone cannot stop an over-deep window from
        // producing a noise-amplifying fit.
        let mut chosen: Option<(usize, Vec<f64>)> = None;
        let mut k = m;
        while k >= 2 {
            let lo = m - k;
            let mut a = vec![0.0f64; k * k];
            for r in 0..k {
                for c in 0..k {
                    a[r * k + c] = self.gram[lo + r][lo + c];
                }
            }
            let trace: f64 = (0..k).map(|i| a[i * k + i]).sum();
            if !trace.is_finite() || trace <= 0.0 {
                self.reset();
                return None;
            }
            let ridge = 1e-12 * trace / k as f64;
            for i in 0..k {
                a[i * k + i] += ridge;
            }
            // Solve (G + ridge·I) y = 1; α = y / Σy minimizes ‖Σ α_j f_j‖
            // subject to Σ α = 1.
            let mut y = vec![1.0f64; k];
            if lu_solve_in_place(&mut a, &mut y, k) {
                let total: f64 = y.iter().sum();
                if total.is_finite() && total.abs() >= 1e-30 {
                    let alpha: Vec<f64> = y.iter().map(|v| v / total).collect();
                    if alpha.iter().all(|v| v.is_finite())
                        && alpha.iter().map(|v| v.abs()).sum::<f64>() <= AA_ALPHA_CAP
                    {
                        chosen = Some((lo, alpha));
                        break;
                    }
                }
            }
            k -= 1;
        }
        let (lo, alpha) = chosen?;
        // Candidate: Σ α_j g(x_j) over the chosen suffix.
        let mut cand = vec![0.0f64; n];
        for (j, &aj) in alpha.iter().enumerate() {
            for (c, &v) in cand.iter_mut().zip(&self.gxs[lo + j]) {
                *c += aj * v;
            }
        }
        // A probability vector or nothing: clamp rounding-level negatives,
        // reject real ones, renormalize.
        let mut total = 0.0f64;
        for v in cand.iter_mut() {
            if !v.is_finite() || *v < -1e-8 {
                self.reset();
                return None;
            }
            if *v < 0.0 {
                *v = 0.0;
            }
            total += *v;
        }
        if !total.is_finite() || total <= 0.5 {
            self.reset();
            return None;
        }
        for v in cand.iter_mut() {
            *v /= total;
        }
        Some(cand)
    }
}

/// Sweeps over which the residual must halve once it is far below
/// tolerance, or the solve is accepted as parked on its rounding floor.
const STALL_WINDOW: usize = 64;

/// Detects a solve stuck on the floating-point rounding floor.
///
/// A stiff chain (contraction rate ρ → 1) can grind its residual two
/// orders of magnitude below the requested tolerance and then flatline:
/// successive iterates differ only by accumulated rounding, so the rate
/// estimate hovers at 1 (blocking the tail bound) while the residual sits
/// just above the `tolerance·1e-3` noise clause (observed: 1.3e-14
/// against a 1e-14 clause, spinning to the sweep limit). Once the
/// residual is below `tolerance·1e-2` and fails to halve across a
/// [`STALL_WINDOW`], the iterate cannot be improved in this arithmetic
/// and is accepted. The error at acceptance is ≲ residual·ρ/(1−ρ) — with
/// the residual two decades under tolerance, still comfortably inside
/// the caller's contract.
struct StallDetector {
    mark: f64,
    mark_iter: usize,
}

impl StallDetector {
    fn new() -> StallDetector {
        StallDetector {
            mark: f64::INFINITY,
            mark_iter: 0,
        }
    }

    /// Feeds one sweep's residual; true when the solve has provably
    /// stalled on the rounding floor. Purely a function of the residual
    /// trajectory, so determinism and worker-count invariance hold.
    fn stalled(&mut self, iterations: usize, residual: f64, tolerance: f64) -> bool {
        if residual >= tolerance * 1e-2 {
            self.mark = f64::INFINITY;
            return false;
        }
        if self.mark.is_infinite() || residual <= 0.5 * self.mark {
            self.mark = residual;
            self.mark_iter = iterations;
            return false;
        }
        iterations - self.mark_iter >= STALL_WINDOW
    }
}

/// Dense LU solve with partial pivoting, in place: `a` is an `n×n`
/// row-major matrix, `b` the right-hand side, overwritten with the
/// solution. Returns false on a singular or non-finite system.
fn lu_solve_in_place(a: &mut [f64], b: &mut [f64], n: usize) -> bool {
    for col in 0..n {
        let mut piv = col;
        let mut best = a[col * n + col].abs();
        for r in col + 1..n {
            let v = a[r * n + col].abs();
            if v > best {
                best = v;
                piv = r;
            }
        }
        if !best.is_finite() || best <= 0.0 {
            return false;
        }
        if piv != col {
            for k in col..n {
                a.swap(piv * n + k, col * n + k);
            }
            b.swap(piv, col);
        }
        let d = a[col * n + col];
        for r in col + 1..n {
            let f = a[r * n + col] / d;
            if f == 0.0 {
                continue;
            }
            a[r * n + col] = 0.0;
            for c in col + 1..n {
                a[r * n + c] -= f * a[col * n + c];
            }
            b[r] -= f * b[col];
        }
    }
    for r in (0..n).rev() {
        let mut s = b[r];
        for c in r + 1..n {
            s -= a[r * n + c] * b[c];
        }
        b[r] = s / a[r * n + r];
        if !b[r].is_finite() {
            return false;
        }
    }
    true
}

/// Solves the embedded chain's balance equations `π(P − I) = 0`,
/// `Σπ = 1` exactly: dense LU with partial pivoting, the last balance
/// equation replaced by the normalization (the standard rank completion
/// for an irreducible chain). Returns the stationary vector and its
/// balance residual `max_j |π_j − Σ_i π_i P_ij|` (machine-precision
/// small), or `None` when elimination degenerates — a singular system or
/// a meaningfully negative component — in which case the caller falls
/// back to the iterative path and its own diagnostics.
fn solve_direct(graph: &ReachabilityGraph) -> Option<(Vec<f64>, f64)> {
    let n = graph.states.len();
    // Row j of `a` is state j's balance equation π_j = Σ_i π_i P_ij,
    // i.e. a[j][i] = Pᵀ[j][i] − δ_ij.
    let mut a = vec![0.0f64; n * n];
    for j in 0..n {
        a[j * n + j] = -1.0;
    }
    for (i, outs) in graph.edges.iter().enumerate() {
        for &(j, p) in outs {
            a[j * n + i] += p;
        }
    }
    let mut b = vec![0.0f64; n];
    for i in 0..n {
        a[(n - 1) * n + i] = 1.0;
    }
    b[n - 1] = 1.0;

    // Forward elimination with partial pivoting.
    for col in 0..n {
        let mut piv = col;
        let mut best = a[col * n + col].abs();
        for r in col + 1..n {
            let v = a[r * n + col].abs();
            if v > best {
                best = v;
                piv = r;
            }
        }
        if best < 1e-12 {
            return None;
        }
        if piv != col {
            for k in col..n {
                a.swap(piv * n + k, col * n + k);
            }
            b.swap(piv, col);
        }
        let d = a[col * n + col];
        for r in col + 1..n {
            let f = a[r * n + col] / d;
            if f == 0.0 {
                continue;
            }
            a[r * n + col] = 0.0;
            for c in col + 1..n {
                a[r * n + c] -= f * a[col * n + c];
            }
            b[r] -= f * b[col];
        }
    }
    // Back substitution.
    let mut pi = vec![0.0f64; n];
    for r in (0..n).rev() {
        let mut s = b[r];
        for c in r + 1..n {
            s -= a[r * n + c] * pi[c];
        }
        pi[r] = s / a[r * n + r];
    }
    // Elimination can leave rounding-level negatives; anything larger
    // means the system was not the chain we assumed.
    for v in pi.iter_mut() {
        if *v < 0.0 {
            if *v < -1e-9 {
                return None;
            }
            *v = 0.0;
        }
    }
    let total: f64 = pi.iter().sum();
    if total <= 0.0 {
        return None;
    }
    for v in pi.iter_mut() {
        *v /= total;
    }

    let mut inflow = vec![0.0f64; n];
    for (i, outs) in graph.edges.iter().enumerate() {
        for &(j, p) in outs {
            inflow[j] += pi[i] * p;
        }
    }
    let residual = pi
        .iter()
        .zip(&inflow)
        .map(|(p, q)| (p - q).abs())
        .fold(0.0, f64::max);
    Some((pi, residual))
}

/// The shared stopping rule: the iteration has converged when the
/// *estimated remaining distance to the fixed point* — not merely the last
/// step — is below `tolerance`. For a linearly contracting iteration with
/// rate ρ (estimated from successive residuals `δ_k/δ_{k-1}`), the tail of
/// the series is bounded by `δ·ρ/(1−ρ)`. Stopping on the raw step size
/// instead would under-deliver accuracy by a factor of `ρ/(1−ρ)` — orders
/// of magnitude for the slowly-contracting chains this repository solves,
/// and differently so for the serial and red-black iterations, which is
/// exactly the gap that would break their documented 1e-10 agreement.
/// `rate` is the caller's per-sweep contraction estimate: successive
/// residuals for the uniform red-black iteration, but `√(δ_k/δ_{k-2})` for
/// the symmetric serial sweep — its forward and backward half-residuals
/// differ by orders of magnitude, so only same-direction sweeps compare.
fn converged_by_tail_bound(residual: f64, rate: f64, tolerance: f64) -> bool {
    if residual >= tolerance {
        return false;
    }
    if rate < 1.0 && residual * rate / (1.0 - rate) < tolerance {
        return true;
    }
    // Noise-floor plateau: deeply sub-tolerance but the rate estimate has
    // degenerated to ~1 — the iteration hit f64 precision, not a slow mode.
    residual < tolerance * 1e-3
}

/// Under-relaxation factor of the red-black scatter. 0.5 zeroes the
/// period-2 oscillation mode of the within-color Jacobi update (iteration
/// eigenvalue `1 - ω + ωλ` vanishes at `λ = -1`) at the cost of roughly
/// doubling the sweep count on the slow modes — robustness over speed for
/// the chains this repository solves.
const RED_BLACK_OMEGA: f64 = 0.5;

/// Incoming-edge lists with self-loop separation, built into reusable
/// buffers sized for the graph (see [`SolveWorkspace::reset`]).
fn build_incoming(
    graph: &ReachabilityGraph,
    incoming: &mut [Vec<(usize, f64)>],
    self_loop: &mut [f64],
) {
    for (i, outs) in graph.edges.iter().enumerate() {
        for &(j, p) in outs {
            if i == j {
                self_loop[i] += p;
            } else {
                incoming[j].push((i, p));
            }
        }
    }
}

/// One red-black color update: `out[r]` receives the new value of state
/// `2r + color`, computed purely from the frozen `pi`. Fans out over
/// `workers` threads in contiguous chunks; values are independent of the
/// worker count and chunking by construction.
fn half_sweep(
    color: usize,
    pi: &[f64],
    out: &mut [f64],
    incoming: &[Vec<(usize, f64)>],
    self_loop: &[f64],
    workers: usize,
) {
    let value = |r: usize| -> f64 {
        let j = 2 * r + color;
        let inflow: f64 = incoming[j].iter().map(|&(i, p)| pi[i] * p).sum();
        let denom = 1.0 - self_loop[j];
        if denom <= 0.0 {
            // Absorbing self-loop state: leave mass as-is; the deadlock
            // check upstream prevents this in practice.
            pi[j]
        } else {
            inflow / denom
        }
    };
    let m = out.len();
    if workers <= 1 || m < workers * 8 {
        for (r, o) in out.iter_mut().enumerate() {
            *o = value(r);
        }
        return;
    }
    let chunk = m.div_ceil(workers);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        let mut chunks = out.chunks_mut(chunk).enumerate();
        let first = chunks.next();
        for (ci, oc) in chunks {
            handles.push(scope.spawn(move || {
                for (k, o) in oc.iter_mut().enumerate() {
                    *o = value(ci * chunk + k);
                }
            }));
        }
        if let Some((_, oc)) = first {
            for (k, o) in oc.iter_mut().enumerate() {
                *o = value(k);
            }
        }
        for h in handles {
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
}

/// Shared post-processing: time-weights the stationary distribution and
/// aggregates per-transition and per-resource usage. Identical for every
/// solver variant, so converged `pi` vectors produce comparable outputs.
fn finish(graph: &ReachabilityGraph, pi: Vec<f64>, iterations: usize, residual: f64) -> Solution {
    // Time weighting.
    let mean_sojourn: f64 = pi
        .iter()
        .zip(graph.sojourn.iter())
        .map(|(&p, &h)| p * h as f64)
        .sum();
    let pi_time: Vec<f64> = pi
        .iter()
        .zip(graph.sojourn.iter())
        .map(|(&p, &h)| p * h as f64 / mean_sojourn)
        .collect();

    // Per-transition usage.
    let tcount = graph.net.transition_count();
    let mut transition_usage = vec![0.0f64; tcount];
    for (si, state) in graph.states.iter().enumerate() {
        if pi_time[si] == 0.0 {
            continue;
        }
        for &(t, _) in &state.firings {
            transition_usage[t.0] += pi_time[si];
        }
    }

    // Aggregate per resource.
    let mut resource_usage_map: HashMap<String, f64> = HashMap::new();
    let mut resource_delay: HashMap<String, u64> = HashMap::new();
    for (ti, t) in graph.net.transitions.iter().enumerate() {
        if let Some(r) = &t.resource {
            *resource_usage_map.entry(r.clone()).or_insert(0.0) += transition_usage[ti];
            let d = resource_delay.entry(r.clone()).or_insert(t.delay);
            *d = (*d).min(t.delay);
        }
    }

    Solution {
        pi_time,
        pi,
        mean_sojourn,
        transition_usage,
        resource_usage_map,
        resource_delay,
        transition_delays: graph.net.transitions.iter().map(|t| t.delay).collect(),
        transition_names: graph
            .net
            .transitions
            .iter()
            .map(|t| t.name.clone())
            .collect(),
        iterations,
        residual,
    }
}

impl Solution {
    /// Time-weighted steady-state probabilities of the tangible states.
    pub fn state_probabilities(&self) -> &[f64] {
        &self.pi_time
    }

    /// Embedded-chain (per-step) stationary distribution.
    pub fn embedded_probabilities(&self) -> &[f64] {
        &self.pi
    }

    /// Mean sojourn time per embedded step.
    pub fn mean_sojourn(&self) -> f64 {
        self.mean_sojourn
    }

    /// Usage (time-weighted mean in-progress count) of a resource label.
    pub fn resource_usage(&self, resource: &str) -> Result<f64, GtpnError> {
        self.resource_usage_map
            .get(resource)
            .copied()
            .ok_or_else(|| GtpnError::UnknownName(resource.to_string()))
    }

    /// Completion rate of a resource: `usage / delay` of its transitions.
    ///
    /// When several transitions share a resource label they must share the
    /// same delay for this to be meaningful; the paper's nets satisfy this.
    ///
    /// # Errors
    ///
    /// Returns [`GtpnError::UnknownName`] for an unknown resource.
    pub fn resource_rate(&self, resource: &str) -> Result<f64, GtpnError> {
        let usage = self.resource_usage(resource)?;
        let delay = *self
            .resource_delay
            .get(resource)
            .ok_or_else(|| GtpnError::UnknownName(resource.to_string()))?;
        Ok(if delay == 0 {
            usage
        } else {
            usage / delay as f64
        })
    }

    /// Usage of an individual transition.
    pub fn transition_usage(&self, transition: TransId) -> f64 {
        self.transition_usage
            .get(transition.0)
            .copied()
            .unwrap_or(0.0)
    }

    /// Completion rate of an individual transition (`usage / delay`).
    pub fn transition_rate(&self, transition: TransId) -> f64 {
        let u = self.transition_usage(transition);
        match self.transition_delays.get(transition.0) {
            Some(&d) if d > 0 => u / d as f64,
            _ => u,
        }
    }

    /// Usage of a transition looked up by name.
    ///
    /// # Errors
    ///
    /// Returns [`GtpnError::UnknownName`] if no transition has this name.
    pub fn transition_usage_by_name(&self, name: &str) -> Result<f64, GtpnError> {
        let idx = self
            .transition_names
            .iter()
            .position(|n| n == name)
            .ok_or_else(|| GtpnError::UnknownName(name.to_string()))?;
        Ok(self.transition_usage[idx])
    }

    /// Number of Gauss–Seidel sweeps performed.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Final residual (max per-state change in the last sweep).
    pub fn residual(&self) -> f64 {
        self.residual
    }
}

#[cfg(test)]
mod tests {
    use crate::expr::Expr;
    use crate::net::{Net, Transition};

    /// Geometric stage with mean n: exit utilization must be 1/n.
    #[test]
    fn geometric_stage_utilization() {
        for n in [2.0, 10.0, 1390.0] {
            let mut net = Net::new("geo");
            let p = net.add_place("P", 1);
            let q = net.add_place("Q", 0);
            net.add_transition(
                Transition::new("exit")
                    .delay(1)
                    .frequency(Expr::constant(1.0 / n))
                    .resource("lambda")
                    .input(p, 1)
                    .output(q, 1),
            )
            .unwrap();
            net.add_transition(
                Transition::new("loop")
                    .delay(1)
                    .frequency(Expr::constant(1.0 - 1.0 / n))
                    .input(p, 1)
                    .output(p, 1),
            )
            .unwrap();
            net.add_transition(Transition::new("recycle").delay(0).input(q, 1).output(p, 1))
                .unwrap();
            let g = net.reachability(100).unwrap();
            let s = g.solve(1e-13, 100_000).unwrap();
            let u = s.resource_usage("lambda").unwrap();
            assert!((u - 1.0 / n).abs() < 1e-9, "n={n}: usage {u}");
        }
    }

    /// Two-stage tandem: each stage geometric mean 4 and 6; cycle time 10;
    /// throughput 0.1 per time unit.
    #[test]
    fn tandem_stage_throughput() {
        let mut net = Net::new("tandem");
        let a = net.add_place("A", 1);
        let b = net.add_place("B", 0);
        let mk = |name: &str, mean: f64| (name.to_string(), mean);
        let _ = mk;
        // Stage A: mean 4.
        net.add_transition(
            Transition::new("a_exit")
                .delay(1)
                .frequency(Expr::constant(0.25))
                .input(a, 1)
                .output(b, 1),
        )
        .unwrap();
        net.add_transition(
            Transition::new("a_loop")
                .delay(1)
                .frequency(Expr::constant(0.75))
                .input(a, 1)
                .output(a, 1),
        )
        .unwrap();
        // Stage B: mean 6, measured.
        net.add_transition(
            Transition::new("b_exit")
                .delay(1)
                .frequency(Expr::constant(1.0 / 6.0))
                .resource("lambda")
                .input(b, 1)
                .output(a, 1),
        )
        .unwrap();
        net.add_transition(
            Transition::new("b_loop")
                .delay(1)
                .frequency(Expr::constant(5.0 / 6.0))
                .resource("lambda")
                .input(b, 1)
                .output(b, 1),
        )
        .unwrap();
        let g = net.reachability(1000).unwrap();
        let s = g.solve(1e-13, 200_000).unwrap();
        // Token spends 4 of every 10 units in A, 6 in B: lambda (usage of
        // stage-B transitions) = 0.6.
        let u = s.resource_usage("lambda").unwrap();
        assert!((u - 0.6).abs() < 1e-9, "usage {u}");
        // Rate of b_exit alone = 1 completion per 10 units = 0.1.
        let rate = s.transition_usage_by_name("b_exit").unwrap();
        assert!((rate - 0.1).abs() < 1e-9, "b_exit usage {rate}");
    }

    /// Deterministic alternation (period-2 chain) still converges thanks to
    /// self-loop-free Gauss–Seidel.
    #[test]
    fn periodic_chain_converges() {
        let mut net = Net::new("periodic");
        let a = net.add_place("A", 1);
        let b = net.add_place("B", 0);
        net.add_transition(
            Transition::new("ab")
                .delay(1)
                .resource("x")
                .input(a, 1)
                .output(b, 1),
        )
        .unwrap();
        net.add_transition(Transition::new("ba").delay(3).input(b, 1).output(a, 1))
            .unwrap();
        let g = net.reachability(100).unwrap();
        let s = g.solve(1e-14, 100_000).unwrap();
        // "ab" fires 1 time unit out of every 4.
        let u = s.resource_usage("x").unwrap();
        assert!((u - 0.25).abs() < 1e-9, "usage {u}");
    }

    /// Probabilities are a distribution.
    #[test]
    fn probabilities_normalized() {
        let mut net = Net::new("norm");
        let p = net.add_place("P", 2);
        net.add_transition(
            Transition::new("t1")
                .delay(1)
                .frequency(Expr::constant(0.5))
                .input(p, 1)
                .output(p, 1),
        )
        .unwrap();
        net.add_transition(
            Transition::new("t2")
                .delay(2)
                .frequency(Expr::constant(0.5))
                .input(p, 1)
                .output(p, 1),
        )
        .unwrap();
        let g = net.reachability(1000).unwrap();
        let s = g.solve(1e-13, 100_000).unwrap();
        let total: f64 = s.state_probabilities().iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(s.mean_sojourn() > 0.0);
        assert!(s.iterations() > 0);
        assert!(s.residual() < 1e-13);
    }

    /// The red-black solver agrees with the serial symmetric sweep to well
    /// within 1e-10 and is bit-identical across worker counts.
    #[test]
    fn red_black_agrees_and_is_worker_invariant() {
        let mut net = Net::new("rb");
        // Five independent geometric stages: the product state space must
        // exceed DIRECT_MAX_STATES so this exercises the iterative
        // red-black path (not the shared direct solve), and be large
        // enough to engage the parallel fan-out.
        for s in 0..5 {
            let p = net.add_place(format!("P{s}"), 1);
            let q = net.add_place(format!("Q{s}"), 0);
            let mean = 3.0 + s as f64;
            net.add_transition(
                Transition::new(format!("exit{s}"))
                    .delay(1)
                    .frequency(Expr::constant(1.0 / mean))
                    .resource("lambda")
                    .input(p, 1)
                    .output(q, 1),
            )
            .unwrap();
            net.add_transition(
                Transition::new(format!("loop{s}"))
                    .delay(1)
                    .frequency(Expr::constant(1.0 - 1.0 / mean))
                    .input(p, 1)
                    .output(p, 1),
            )
            .unwrap();
            net.add_transition(
                Transition::new(format!("rec{s}"))
                    .delay(2)
                    .input(q, 1)
                    .output(p, 1),
            )
            .unwrap();
        }
        let g = net.reachability(100_000).unwrap();
        assert!(
            g.states().len() > super::DIRECT_MAX_STATES,
            "net too small to exercise the iterative path: {} states",
            g.states().len()
        );
        let serial = g.solve(1e-12, 1_000_000).unwrap();
        let mut ws = super::SolveWorkspace::new();
        let rb1 = g.solve_red_black(1e-12, 1_000_000, &mut ws, 1).unwrap();
        let rb4 = g.solve_red_black(1e-12, 1_000_000, &mut ws, 4).unwrap();
        // Worker-count invariance is exact: same floats, same sweep count.
        assert_eq!(rb1.iterations(), rb4.iterations());
        for (a, b) in rb1
            .state_probabilities()
            .iter()
            .zip(rb4.state_probabilities())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // Agreement with the serial solver.
        for (a, b) in serial
            .state_probabilities()
            .iter()
            .zip(rb1.state_probabilities())
        {
            assert!((a - b).abs() < 1e-10, "{a} vs {b}");
        }
        let u_serial = serial.resource_usage("lambda").unwrap();
        let u_rb = rb4.resource_usage("lambda").unwrap();
        assert!((u_serial - u_rb).abs() < 1e-10, "{u_serial} vs {u_rb}");
    }

    #[test]
    fn unknown_names_error() {
        let mut net = Net::new("u");
        let p = net.add_place("P", 1);
        net.add_transition(Transition::new("t").delay(1).input(p, 1).output(p, 1))
            .unwrap();
        let s = net.reachability(10).unwrap().solve(1e-12, 1000).unwrap();
        assert!(s.resource_usage("nope").is_err());
        assert!(s.transition_usage_by_name("nope").is_err());
    }
}
