//! Steady-state solution of the embedded Markov chain.
//!
//! The reachability graph is a finite discrete-time Markov chain whose state
//! `i` holds for a deterministic sojourn `h_i`. We solve `π P = π` with a
//! Gauss–Seidel sweep (self-loops are eliminated analytically, which matters
//! because the paper's geometric-delay stages produce states with large
//! self-loop probabilities), then time-weight:
//!
//! ```text
//! π_time(i) = π(i) · h_i / Σ_j π(j) · h_j
//! ```
//!
//! The **resource usage** of resource `r` is the time-weighted expected
//! number of in-progress firings of transitions labelled `r` — exactly the
//! output measure of the UW–Madison GTPN analyzer that the paper reads
//! throughput (`Λ`) from. A transition with delay `d` firing at rate `λ` has
//! usage `λ·d`, so the *rate* reported by [`Solution::resource_rate`] is
//! `usage / d`.

use crate::error::GtpnError;
use crate::net::TransId;
use crate::reach::ReachabilityGraph;
use std::collections::HashMap;

/// Reusable scratch buffers for [`ReachabilityGraph::solve_with`].
///
/// A sweep evaluates hundreds of points whose reachability graphs are the
/// same size (or cached and literally the same graph); rebuilding the
/// incoming-edge lists and self-loop vector for each solve is pure
/// allocator churn. One workspace per worker thread keeps those buffers
/// warm across points. The solution vector itself is always freshly
/// allocated — it is moved into the returned [`Solution`].
#[derive(Debug, Default)]
pub struct SolveWorkspace {
    /// `incoming[j]` = `(i, p)` edges into state `j`, self-loops excluded.
    incoming: Vec<Vec<(usize, f64)>>,
    /// Total self-loop probability of each state.
    self_loop: Vec<f64>,
}

impl SolveWorkspace {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> SolveWorkspace {
        SolveWorkspace::default()
    }

    /// Clears and resizes the buffers for a graph of `n` states, keeping
    /// the per-state inner allocations.
    fn reset(&mut self, n: usize) {
        for list in self.incoming.iter_mut() {
            list.clear();
        }
        if self.incoming.len() < n {
            self.incoming.resize_with(n, Vec::new);
        }
        self.self_loop.clear();
        self.self_loop.resize(n, 0.0);
    }
}

/// Steady-state solution of a [`ReachabilityGraph`].
#[derive(Debug, Clone)]
pub struct Solution {
    /// Time-weighted steady-state probability of each tangible state.
    pi_time: Vec<f64>,
    /// Embedded-chain stationary distribution.
    pi: Vec<f64>,
    /// Mean sojourn time `Σ π h`.
    mean_sojourn: f64,
    /// Usage per transition (time-weighted mean number in progress).
    transition_usage: Vec<f64>,
    /// Resource label -> usage.
    resource_usage_map: HashMap<String, f64>,
    /// Resource label -> minimum delay among its transitions (for rates).
    resource_delay: HashMap<String, u64>,
    transition_delays: Vec<u64>,
    transition_names: Vec<String>,
    iterations: usize,
    residual: f64,
}

impl Solution {
    pub(crate) fn solve(
        graph: &ReachabilityGraph,
        tolerance: f64,
        max_sweeps: usize,
    ) -> Result<Solution, GtpnError> {
        Solution::solve_with(graph, tolerance, max_sweeps, &mut SolveWorkspace::new())
    }

    pub(crate) fn solve_with(
        graph: &ReachabilityGraph,
        tolerance: f64,
        max_sweeps: usize,
        ws: &mut SolveWorkspace,
    ) -> Result<Solution, GtpnError> {
        let n = graph.states.len();
        assert!(n > 0, "empty reachability graph");

        // Incoming edge lists with self-loop separation, built into the
        // workspace's reusable buffers.
        ws.reset(n);
        let incoming = &mut ws.incoming;
        let self_loop = &mut ws.self_loop;
        for (i, outs) in graph.edges.iter().enumerate() {
            for &(j, p) in outs {
                if i == j {
                    self_loop[i] += p;
                } else {
                    incoming[j].push((i, p));
                }
            }
        }

        let mut pi = vec![1.0 / n as f64; n];
        let mut iterations = 0;
        let mut residual = f64::INFINITY;
        while iterations < max_sweeps {
            iterations += 1;
            let mut max_delta = 0.0f64;
            // Symmetric Gauss–Seidel: alternate sweep direction, which
            // propagates probability mass quickly in both directions of the
            // (often chain-structured) reachability graph.
            let forward = iterations % 2 == 1;
            let update = |j: usize, pi: &mut Vec<f64>, max_delta: &mut f64| {
                let inflow: f64 = incoming[j].iter().map(|&(i, p)| pi[i] * p).sum();
                let denom = 1.0 - self_loop[j];
                let new = if denom <= 0.0 {
                    // Absorbing self-loop state: leave mass as-is; the
                    // deadlock check upstream prevents this in practice.
                    pi[j]
                } else {
                    inflow / denom
                };
                *max_delta = (*max_delta).max((new - pi[j]).abs());
                pi[j] = new;
            };
            if forward {
                for j in 0..n {
                    update(j, &mut pi, &mut max_delta);
                }
            } else {
                for j in (0..n).rev() {
                    update(j, &mut pi, &mut max_delta);
                }
            }
            // Normalize to guard against drift.
            let total: f64 = pi.iter().sum();
            if total > 0.0 {
                for v in pi.iter_mut() {
                    *v /= total;
                }
            }
            residual = max_delta;
            if residual < tolerance {
                break;
            }
        }
        if residual >= tolerance {
            return Err(GtpnError::NoConvergence {
                residual,
                iterations,
            });
        }

        // Time weighting.
        let mean_sojourn: f64 = pi
            .iter()
            .zip(graph.sojourn.iter())
            .map(|(&p, &h)| p * h as f64)
            .sum();
        let pi_time: Vec<f64> = pi
            .iter()
            .zip(graph.sojourn.iter())
            .map(|(&p, &h)| p * h as f64 / mean_sojourn)
            .collect();

        // Per-transition usage.
        let tcount = graph.net.transition_count();
        let mut transition_usage = vec![0.0f64; tcount];
        for (si, state) in graph.states.iter().enumerate() {
            if pi_time[si] == 0.0 {
                continue;
            }
            for &(t, _) in &state.firings {
                transition_usage[t.0] += pi_time[si];
            }
        }

        // Aggregate per resource.
        let mut resource_usage_map: HashMap<String, f64> = HashMap::new();
        let mut resource_delay: HashMap<String, u64> = HashMap::new();
        for (ti, t) in graph.net.transitions.iter().enumerate() {
            if let Some(r) = &t.resource {
                *resource_usage_map.entry(r.clone()).or_insert(0.0) += transition_usage[ti];
                let d = resource_delay.entry(r.clone()).or_insert(t.delay);
                *d = (*d).min(t.delay);
            }
        }

        Ok(Solution {
            pi_time,
            pi,
            mean_sojourn,
            transition_usage,
            resource_usage_map,
            resource_delay,
            transition_delays: graph.net.transitions.iter().map(|t| t.delay).collect(),
            transition_names: graph
                .net
                .transitions
                .iter()
                .map(|t| t.name.clone())
                .collect(),
            iterations,
            residual,
        })
    }

    /// Time-weighted steady-state probabilities of the tangible states.
    pub fn state_probabilities(&self) -> &[f64] {
        &self.pi_time
    }

    /// Embedded-chain (per-step) stationary distribution.
    pub fn embedded_probabilities(&self) -> &[f64] {
        &self.pi
    }

    /// Mean sojourn time per embedded step.
    pub fn mean_sojourn(&self) -> f64 {
        self.mean_sojourn
    }

    /// Usage (time-weighted mean in-progress count) of a resource label.
    pub fn resource_usage(&self, resource: &str) -> Result<f64, GtpnError> {
        self.resource_usage_map
            .get(resource)
            .copied()
            .ok_or_else(|| GtpnError::UnknownName(resource.to_string()))
    }

    /// Completion rate of a resource: `usage / delay` of its transitions.
    ///
    /// When several transitions share a resource label they must share the
    /// same delay for this to be meaningful; the paper's nets satisfy this.
    ///
    /// # Errors
    ///
    /// Returns [`GtpnError::UnknownName`] for an unknown resource.
    pub fn resource_rate(&self, resource: &str) -> Result<f64, GtpnError> {
        let usage = self.resource_usage(resource)?;
        let delay = *self
            .resource_delay
            .get(resource)
            .ok_or_else(|| GtpnError::UnknownName(resource.to_string()))?;
        Ok(if delay == 0 {
            usage
        } else {
            usage / delay as f64
        })
    }

    /// Usage of an individual transition.
    pub fn transition_usage(&self, transition: TransId) -> f64 {
        self.transition_usage
            .get(transition.0)
            .copied()
            .unwrap_or(0.0)
    }

    /// Completion rate of an individual transition (`usage / delay`).
    pub fn transition_rate(&self, transition: TransId) -> f64 {
        let u = self.transition_usage(transition);
        match self.transition_delays.get(transition.0) {
            Some(&d) if d > 0 => u / d as f64,
            _ => u,
        }
    }

    /// Usage of a transition looked up by name.
    ///
    /// # Errors
    ///
    /// Returns [`GtpnError::UnknownName`] if no transition has this name.
    pub fn transition_usage_by_name(&self, name: &str) -> Result<f64, GtpnError> {
        let idx = self
            .transition_names
            .iter()
            .position(|n| n == name)
            .ok_or_else(|| GtpnError::UnknownName(name.to_string()))?;
        Ok(self.transition_usage[idx])
    }

    /// Number of Gauss–Seidel sweeps performed.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Final residual (max per-state change in the last sweep).
    pub fn residual(&self) -> f64 {
        self.residual
    }
}

#[cfg(test)]
mod tests {
    use crate::expr::Expr;
    use crate::net::{Net, Transition};

    /// Geometric stage with mean n: exit utilization must be 1/n.
    #[test]
    fn geometric_stage_utilization() {
        for n in [2.0, 10.0, 1390.0] {
            let mut net = Net::new("geo");
            let p = net.add_place("P", 1);
            let q = net.add_place("Q", 0);
            net.add_transition(
                Transition::new("exit")
                    .delay(1)
                    .frequency(Expr::constant(1.0 / n))
                    .resource("lambda")
                    .input(p, 1)
                    .output(q, 1),
            )
            .unwrap();
            net.add_transition(
                Transition::new("loop")
                    .delay(1)
                    .frequency(Expr::constant(1.0 - 1.0 / n))
                    .input(p, 1)
                    .output(p, 1),
            )
            .unwrap();
            net.add_transition(Transition::new("recycle").delay(0).input(q, 1).output(p, 1))
                .unwrap();
            let g = net.reachability(100).unwrap();
            let s = g.solve(1e-13, 100_000).unwrap();
            let u = s.resource_usage("lambda").unwrap();
            assert!((u - 1.0 / n).abs() < 1e-9, "n={n}: usage {u}");
        }
    }

    /// Two-stage tandem: each stage geometric mean 4 and 6; cycle time 10;
    /// throughput 0.1 per time unit.
    #[test]
    fn tandem_stage_throughput() {
        let mut net = Net::new("tandem");
        let a = net.add_place("A", 1);
        let b = net.add_place("B", 0);
        let mk = |name: &str, mean: f64| (name.to_string(), mean);
        let _ = mk;
        // Stage A: mean 4.
        net.add_transition(
            Transition::new("a_exit")
                .delay(1)
                .frequency(Expr::constant(0.25))
                .input(a, 1)
                .output(b, 1),
        )
        .unwrap();
        net.add_transition(
            Transition::new("a_loop")
                .delay(1)
                .frequency(Expr::constant(0.75))
                .input(a, 1)
                .output(a, 1),
        )
        .unwrap();
        // Stage B: mean 6, measured.
        net.add_transition(
            Transition::new("b_exit")
                .delay(1)
                .frequency(Expr::constant(1.0 / 6.0))
                .resource("lambda")
                .input(b, 1)
                .output(a, 1),
        )
        .unwrap();
        net.add_transition(
            Transition::new("b_loop")
                .delay(1)
                .frequency(Expr::constant(5.0 / 6.0))
                .resource("lambda")
                .input(b, 1)
                .output(b, 1),
        )
        .unwrap();
        let g = net.reachability(1000).unwrap();
        let s = g.solve(1e-13, 200_000).unwrap();
        // Token spends 4 of every 10 units in A, 6 in B: lambda (usage of
        // stage-B transitions) = 0.6.
        let u = s.resource_usage("lambda").unwrap();
        assert!((u - 0.6).abs() < 1e-9, "usage {u}");
        // Rate of b_exit alone = 1 completion per 10 units = 0.1.
        let rate = s.transition_usage_by_name("b_exit").unwrap();
        assert!((rate - 0.1).abs() < 1e-9, "b_exit usage {rate}");
    }

    /// Deterministic alternation (period-2 chain) still converges thanks to
    /// self-loop-free Gauss–Seidel.
    #[test]
    fn periodic_chain_converges() {
        let mut net = Net::new("periodic");
        let a = net.add_place("A", 1);
        let b = net.add_place("B", 0);
        net.add_transition(
            Transition::new("ab")
                .delay(1)
                .resource("x")
                .input(a, 1)
                .output(b, 1),
        )
        .unwrap();
        net.add_transition(Transition::new("ba").delay(3).input(b, 1).output(a, 1))
            .unwrap();
        let g = net.reachability(100).unwrap();
        let s = g.solve(1e-14, 100_000).unwrap();
        // "ab" fires 1 time unit out of every 4.
        let u = s.resource_usage("x").unwrap();
        assert!((u - 0.25).abs() < 1e-9, "usage {u}");
    }

    /// Probabilities are a distribution.
    #[test]
    fn probabilities_normalized() {
        let mut net = Net::new("norm");
        let p = net.add_place("P", 2);
        net.add_transition(
            Transition::new("t1")
                .delay(1)
                .frequency(Expr::constant(0.5))
                .input(p, 1)
                .output(p, 1),
        )
        .unwrap();
        net.add_transition(
            Transition::new("t2")
                .delay(2)
                .frequency(Expr::constant(0.5))
                .input(p, 1)
                .output(p, 1),
        )
        .unwrap();
        let g = net.reachability(1000).unwrap();
        let s = g.solve(1e-13, 100_000).unwrap();
        let total: f64 = s.state_probabilities().iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(s.mean_sojourn() > 0.0);
        assert!(s.iterations() > 0);
        assert!(s.residual() < 1e-13);
    }

    #[test]
    fn unknown_names_error() {
        let mut net = Net::new("u");
        let p = net.add_place("P", 1);
        net.add_transition(Transition::new("t").delay(1).input(p, 1).output(p, 1))
            .unwrap();
        let s = net.reachability(10).unwrap().solve(1e-12, 1000).unwrap();
        assert!(s.resource_usage("nope").is_err());
        assert!(s.transition_usage_by_name("nope").is_err());
    }
}
