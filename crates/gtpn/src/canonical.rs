//! Canonical form of a net: deterministic place/transition reordering.
//!
//! Two call sites that build the *same model* in different orders — places
//! added in a different sequence, transitions interleaved differently —
//! produce [`Net`]s that are structurally identical up to a relabeling of
//! ids, yet compare unequal and hash apart, so the exact-structure
//! reachability cache ([`crate::cache`]) cannot recognize them.
//! [`canonicalize`] computes a deterministic representative of that
//! relabeling class: places are sorted by `(name, initial marking)`,
//! transitions by `(name, delay, resource, remapped arcs, frequency
//! skeleton)`, arc lists are merged and sorted, and every [`PlaceId`] /
//! `TransId` embedded in arcs or frequency expressions is rewritten to the
//! new numbering. Nets that differ only in build order canonicalize to the
//! *same* net, so [`fingerprint`] (the hash of the canonical form) is the
//! cache key the engine-level solution cache ([`crate::engine`]) uses.
//!
//! The permutations are returned alongside the canonical net so cached
//! results expressed in one ordering can be re-addressed from another: the
//! engine composes `original → canonical → cached` id maps on a hit.

use crate::expr::Expr;
use crate::net::{Net, PlaceId, TransId, Transition};
use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};

/// A net in canonical form, with the permutations that produced it.
#[derive(Debug, Clone)]
pub struct Canonical {
    /// The canonical representative (same structure, deterministic order).
    pub net: Net,
    /// `place_map[original.0]` = canonical place index.
    pub place_map: Vec<usize>,
    /// `trans_map[original.0]` = canonical transition index.
    pub trans_map: Vec<usize>,
}

/// Computes the canonical form of `net`; see the module docs.
pub fn canonicalize(net: &Net) -> Canonical {
    // Places ordered by (name, initial marking); ties (duplicate name +
    // marking) stay in original order, which keeps the map deterministic.
    let mut porder: Vec<usize> = (0..net.places.len()).collect();
    porder.sort_by(|&a, &b| {
        let pa = &net.places[a];
        let pb = &net.places[b];
        (pa.name.as_str(), pa.initial, a).cmp(&(pb.name.as_str(), pb.initial, b))
    });
    let mut place_map = vec![0usize; porder.len()];
    for (newi, &old) in porder.iter().enumerate() {
        place_map[old] = newi;
    }

    // Transitions ordered by everything place-remapping can normalize. The
    // frequency skeleton renders `Firing` leaves without their ids (they are
    // not renumbered yet); transitions identical in every other respect but
    // their firing references keep original relative order — both build
    // orders of such twins still canonicalize consistently per-net, they
    // just may not dedup against each other (safe: the cache verifies
    // candidate entries by full structural equality).
    type TransKey = (
        String,
        u64,
        Option<String>,
        Vec<(usize, u32)>,
        Vec<(usize, u32)>,
        String,
    );
    let tkeys: Vec<TransKey> = net
        .transitions
        .iter()
        .map(|t| {
            (
                t.name.clone(),
                t.delay,
                t.resource.clone(),
                normalize_arcs(&t.inputs, &place_map),
                normalize_arcs(&t.outputs, &place_map),
                skeleton(&t.frequency, &place_map),
            )
        })
        .collect();
    let mut torder: Vec<usize> = (0..net.transitions.len()).collect();
    torder.sort_by(|&a, &b| tkeys[a].cmp(&tkeys[b]).then(a.cmp(&b)));
    let mut trans_map = vec![0usize; torder.len()];
    for (newi, &old) in torder.iter().enumerate() {
        trans_map[old] = newi;
    }

    let mut out = Net::new(net.name().to_string());
    for &old in &porder {
        out.add_place(net.places[old].name.clone(), net.places[old].initial);
    }
    for &old in &torder {
        let t = &net.transitions[old];
        let mut nt = Transition::new(t.name.clone())
            .delay(t.delay)
            .frequency(remap_expr(&t.frequency, &place_map, &trans_map));
        if let Some(r) = &t.resource {
            nt = nt.resource(r.clone());
        }
        for (p, m) in normalize_arcs(&t.inputs, &place_map) {
            nt = nt.input(PlaceId(p), m);
        }
        for (p, m) in normalize_arcs(&t.outputs, &place_map) {
            nt = nt.output(PlaceId(p), m);
        }
        out.add_transition(nt)
            .expect("remapped arcs reference existing places");
    }
    Canonical {
        net: out,
        place_map,
        trans_map,
    }
}

/// Canonical fingerprint of a net: the hash of its canonical form
/// (names included — the engine cache verifies hits by full equality, so
/// labels discriminating keys only reduces collision chains). Nets that are
/// identical up to place/transition build order share a fingerprint.
pub fn fingerprint(net: &Net) -> u64 {
    fingerprint_canonical(&canonicalize(net).net)
}

/// Hash of an already-canonical net; [`fingerprint`] = canonicalize + this.
pub(crate) fn fingerprint_canonical(net: &Net) -> u64 {
    let mut h = DefaultHasher::new();
    net.name().hash(&mut h);
    net.place_count().hash(&mut h);
    for p in &net.places {
        p.name.hash(&mut h);
        p.initial.hash(&mut h);
    }
    net.transition_count().hash(&mut h);
    for t in &net.transitions {
        t.name.hash(&mut h);
        t.delay.hash(&mut h);
        t.resource.hash(&mut h);
        t.inputs.hash(&mut h);
        t.outputs.hash(&mut h);
        crate::cache::hash_expr(&t.frequency, &mut h);
    }
    h.finish()
}

/// Merges duplicate arcs (the token game accumulates multiplicities per
/// place, so `[(p,1),(p,1)]` ≡ `[(p,2)]`), remaps the place ids and sorts.
fn normalize_arcs(arcs: &[(PlaceId, u32)], place_map: &[usize]) -> Vec<(usize, u32)> {
    let mut merged: BTreeMap<usize, u32> = BTreeMap::new();
    for &(p, m) in arcs {
        let mapped = place_map.get(p.0).copied().unwrap_or(p.0);
        *merged.entry(mapped).or_insert(0) += m;
    }
    merged.into_iter().collect()
}

/// Rewrites `Tokens`/`Firing` leaves to the canonical numbering.
fn remap_expr(e: &Expr, place_map: &[usize], trans_map: &[usize]) -> Expr {
    let r = |x: &Expr| Box::new(remap_expr(x, place_map, trans_map));
    match e {
        Expr::Const(v) => Expr::Const(*v),
        Expr::Tokens(p) => Expr::Tokens(PlaceId(place_map.get(p.0).copied().unwrap_or(p.0))),
        Expr::Firing(t) => Expr::Firing(TransId(trans_map.get(t.0).copied().unwrap_or(t.0))),
        Expr::Add(a, b) => Expr::Add(r(a), r(b)),
        Expr::Sub(a, b) => Expr::Sub(r(a), r(b)),
        Expr::Mul(a, b) => Expr::Mul(r(a), r(b)),
        Expr::Div(a, b) => Expr::Div(r(a), r(b)),
        Expr::Eq(a, b) => Expr::Eq(r(a), r(b)),
        Expr::Lt(a, b) => Expr::Lt(r(a), r(b)),
        Expr::Le(a, b) => Expr::Le(r(a), r(b)),
        Expr::And(a, b) => Expr::And(r(a), r(b)),
        Expr::Or(a, b) => Expr::Or(r(a), r(b)),
        Expr::Not(a) => Expr::Not(r(a)),
        Expr::If(c, a, b) => Expr::If(r(c), r(a), r(b)),
    }
}

/// Order key for a frequency expression: structure and constants with
/// places remapped, `Firing` ids elided (not renumbered yet at sort time).
fn skeleton(e: &Expr, place_map: &[usize]) -> String {
    let mut s = String::new();
    write_skeleton(e, place_map, &mut s);
    s
}

fn write_skeleton(e: &Expr, place_map: &[usize], out: &mut String) {
    use std::fmt::Write;
    let pair = |tag: &str, a: &Expr, b: &Expr, out: &mut String| {
        out.push_str(tag);
        out.push('(');
        write_skeleton(a, place_map, out);
        out.push(',');
        write_skeleton(b, place_map, out);
        out.push(')');
    };
    match e {
        Expr::Const(v) => {
            let _ = write!(out, "c{:016x}", v.to_bits());
        }
        Expr::Tokens(p) => {
            let _ = write!(out, "#{}", place_map.get(p.0).copied().unwrap_or(p.0));
        }
        Expr::Firing(_) => out.push('F'),
        Expr::Add(a, b) => pair("+", a, b, out),
        Expr::Sub(a, b) => pair("-", a, b, out),
        Expr::Mul(a, b) => pair("*", a, b, out),
        Expr::Div(a, b) => pair("/", a, b, out),
        Expr::Eq(a, b) => pair("=", a, b, out),
        Expr::Lt(a, b) => pair("<", a, b, out),
        Expr::Le(a, b) => pair("<=", a, b, out),
        Expr::And(a, b) => pair("&", a, b, out),
        Expr::Or(a, b) => pair("|", a, b, out),
        Expr::Not(a) => {
            out.push('!');
            write_skeleton(a, place_map, out);
        }
        Expr::If(c, a, b) => {
            out.push_str("if(");
            write_skeleton(c, place_map, out);
            out.push(',');
            write_skeleton(a, place_map, out);
            out.push(',');
            write_skeleton(b, place_map, out);
            out.push(')');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Same two-stage model, built in two different orders: places swapped,
    /// transitions interleaved differently.
    fn forward() -> Net {
        let mut net = Net::new("perm");
        let p = net.add_place("P", 1);
        let q = net.add_place("Q", 0);
        net.add_transition(
            Transition::new("exit")
                .delay(1)
                .frequency(Expr::gate(Expr::place_empty(q), Expr::constant(0.25)))
                .resource("lambda")
                .input(p, 1)
                .output(q, 1),
        )
        .unwrap();
        net.add_transition(Transition::new("recycle").delay(2).input(q, 1).output(p, 1))
            .unwrap();
        net
    }

    fn reversed() -> Net {
        let mut net = Net::new("perm");
        let q = net.add_place("Q", 0);
        let p = net.add_place("P", 1);
        net.add_transition(Transition::new("recycle").delay(2).input(q, 1).output(p, 1))
            .unwrap();
        net.add_transition(
            Transition::new("exit")
                .delay(1)
                .frequency(Expr::gate(Expr::place_empty(q), Expr::constant(0.25)))
                .resource("lambda")
                .input(p, 1)
                .output(q, 1),
        )
        .unwrap();
        net
    }

    #[test]
    fn build_order_does_not_change_canonical_form() {
        let a = canonicalize(&forward());
        let b = canonicalize(&reversed());
        assert_eq!(a.net, b.net, "canonical forms must be identical");
        assert_eq!(fingerprint(&forward()), fingerprint(&reversed()));
    }

    #[test]
    fn maps_invert_correctly() {
        let net = reversed();
        let c = canonicalize(&net);
        for (old, &newi) in c.place_map.iter().enumerate() {
            assert_eq!(
                net.place_name(PlaceId(old)),
                c.net.place_name(PlaceId(newi))
            );
        }
        for (old, &newi) in c.trans_map.iter().enumerate() {
            assert_eq!(
                net.transition_name(TransId(old)),
                c.net.transition_name(TransId(newi))
            );
        }
    }

    #[test]
    fn canonical_net_solves_to_the_same_answer() {
        let orig = forward();
        let canon = canonicalize(&orig).net;
        let a = orig
            .reachability(1_000)
            .unwrap()
            .solve(1e-12, 100_000)
            .unwrap()
            .resource_usage("lambda")
            .unwrap();
        let b = canon
            .reachability(1_000)
            .unwrap()
            .solve(1e-12, 100_000)
            .unwrap()
            .resource_usage("lambda")
            .unwrap();
        assert!((a - b).abs() < 1e-12, "{a} vs {b}");
    }

    #[test]
    fn duplicate_arcs_merge() {
        let mut a = Net::new("m");
        let p = a.add_place("P", 2);
        a.add_transition(
            Transition::new("t")
                .delay(1)
                .input(p, 1)
                .input(p, 1)
                .output(p, 2),
        )
        .unwrap();
        let mut b = Net::new("m");
        let p = b.add_place("P", 2);
        b.add_transition(Transition::new("t").delay(1).input(p, 2).output(p, 2))
            .unwrap();
        assert_eq!(fingerprint(&a), fingerprint(&b));
        assert_eq!(canonicalize(&a).net, canonicalize(&b).net);
    }

    #[test]
    fn different_structure_changes_fingerprint() {
        let mut other = forward();
        let extra = other.add_place("R", 1);
        other
            .add_transition(
                Transition::new("noise")
                    .delay(1)
                    .input(extra, 1)
                    .output(extra, 1),
            )
            .unwrap();
        assert_ne!(fingerprint(&forward()), fingerprint(&other));
    }
}
