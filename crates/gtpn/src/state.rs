//! Markings and tangible states of a GTPN.

use crate::net::TransId;
use std::fmt;

/// A marking: number of tokens in each place, indexed by `PlaceId`.
pub type Marking = Vec<u32>;

/// A tangible state of the timed net: a marking together with the multiset
/// of in-progress firings and their remaining durations.
///
/// Tokens consumed by an in-progress firing are *not* in the marking — GTPN
/// firing removes enabling tokens at start-of-firing and deposits output
/// tokens at end-of-firing.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct State {
    /// Tokens per place.
    pub marking: Marking,
    /// In-progress firings `(transition, remaining time)`, kept sorted so the
    /// representation is canonical and hashable.
    pub firings: Vec<(TransId, u64)>,
}

impl State {
    /// Creates a state, canonicalizing the firing list.
    pub fn new(marking: Marking, mut firings: Vec<(TransId, u64)>) -> State {
        firings.sort_unstable();
        State { marking, firings }
    }

    /// The remaining time until the next firing completes, or `None` when no
    /// firing is in progress (a potential deadlock).
    pub fn time_to_next_completion(&self) -> Option<u64> {
        self.firings.iter().map(|&(_, r)| r).min()
    }

    /// Number of in-progress firing instances per transition.
    pub fn firing_counts(&self, transition_count: usize) -> Vec<u32> {
        let mut counts = vec![0u32; transition_count];
        for &(t, _) in &self.firings {
            if t.0 < transition_count {
                counts[t.0] += 1;
            }
        }
        counts
    }
}

impl fmt::Display for State {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "M{:?} F{{", self.marking)?;
        for (i, (t, r)) in self.firings.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}:{r}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn firings_canonicalized() {
        let a = State::new(vec![1], vec![(TransId(2), 5), (TransId(0), 3)]);
        let b = State::new(vec![1], vec![(TransId(0), 3), (TransId(2), 5)]);
        assert_eq!(a, b);
    }

    #[test]
    fn next_completion_is_min() {
        let s = State::new(vec![], vec![(TransId(0), 3), (TransId(1), 7)]);
        assert_eq!(s.time_to_next_completion(), Some(3));
        let empty = State::new(vec![], vec![]);
        assert_eq!(empty.time_to_next_completion(), None);
    }

    #[test]
    fn firing_counts_multiset() {
        let s = State::new(
            vec![],
            vec![(TransId(1), 2), (TransId(1), 4), (TransId(0), 1)],
        );
        assert_eq!(s.firing_counts(3), vec![1, 2, 0]);
    }
}
