//! Exact aggregation (lumping) of the embedded Markov chain.
//!
//! The paper's conversation nets are built from geometric stages: every
//! timed transition has delay 1 (large constant delays are replaced by
//! delay-1 exit/loop pairs, §6.6.1) and zero-delay transitions are
//! eliminated inline by the instantaneous phase. In such a net every
//! in-progress firing of a tangible state has remaining time exactly 1,
//! so the time advance completes *all* of them and the successor
//! distribution of a tangible state `(m, F)` depends only on its
//! **post-completion marking** `u = m + Σ outputs(F)`.
//!
//! That is strong lumpability in its strongest form — all states of a
//! class share one outgoing row — so the chain quotiented by `u` is an
//! exact reduction, not an approximation:
//!
//! * **Lumped states** are the reachable post-completion markings. The
//!   raw chain's `n` permutation-symmetric clients generate one tangible
//!   state per (marking × in-progress multiset) combination; the quotient
//!   keeps only the occupancy vector, shrinking the chain by the number
//!   of ways the same marking is reached with different firing multisets
//!   (11–16× at n = 4–6 for the Architecture II net, growing with n).
//! * **Lumped edges** `u → u'` carry the summed probability of every
//!   phase outcome of `u` whose own post-completion marking is `u'`.
//! * **De-lumping is exact.** One-step balance gives the raw stationary
//!   distribution as `π(x) = Σ_u π̄(u)·D(u)(x)`, where `D(u)` is the
//!   instantaneous-phase outcome distribution of `u`. Every reported
//!   measure is linear in `π`, so it is recovered from per-lumped-state
//!   conditional expectations accumulated during expansion:
//!   `E[c_t | u]` (mean in-progress firings of transition `t`) and
//!   `E[m_p | u]` (mean tokens in place `p`). All sojourn times are 1 on
//!   both sides, so embedded and time-weighted distributions coincide and
//!   no re-weighting is needed.
//!
//! A net qualifies ([`lumpable`]) exactly when every transition's delay
//! is ≤ 1. Heterogeneous delays leave firings part-way through their
//! duration at the time advance, the successor distribution then depends
//! on the residual-firing multiset, and lumping correctly declines — the
//! raw pipeline handles those nets unchanged.
//!
//! The expansion is a frontier-ordered level-synchronous BFS over
//! post-completion markings, parallelized and made deterministic exactly
//! like the raw build ([`crate::reach`]): workers expand disjoint chunks
//! of a level, results are reduced in frontier order, and successor
//! markings are interned in each state's phase-outcome order — state
//! numbering, edge lists and every accumulated float are byte-identical
//! to a serial build.

use crate::error::GtpnError;
use crate::net::Net;
use crate::par::ParallelBudget;
use crate::reach::{instantaneous_phase, ReachabilityGraph};
use crate::solve::Solution;
use crate::state::{Marking, State};
use std::collections::HashMap;
use std::sync::Mutex;

/// Frontier width below which a level is expanded serially; see
/// [`crate::reach`]'s constant of the same name.
const PAR_MIN_FRONTIER: usize = 64;

/// Target states per self-scheduled work chunk in a parallel level.
const PAR_CHUNK: usize = 16;

/// Lumping policy of an engine (`HSIPC_LUMP`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LumpSel {
    /// Lump whenever the net qualifies ([`lumpable`]) — the default.
    #[default]
    Auto,
    /// Same behavior as [`Auto`](LumpSel::Auto): lumping is exact, so
    /// "on" cannot force it onto a net whose delay structure disqualifies
    /// it; the variant exists so `HSIPC_LUMP=on` reads as the stated
    /// intent in scripts and CI legs.
    On,
    /// Never lump; every exact solve runs on the raw tangible chain.
    Off,
}

impl LumpSel {
    /// Policy selected by `HSIPC_LUMP` (`auto`, `on`/`1` or `off`/`0`,
    /// case-insensitive); unset or unrecognized values mean [`Auto`].
    /// Read fresh on every call — not latched — so tests and CI identity
    /// legs can flip it within one process.
    ///
    /// [`Auto`]: LumpSel::Auto
    pub fn from_env() -> LumpSel {
        match std::env::var("HSIPC_LUMP") {
            Ok(v) if v == "1" || v.eq_ignore_ascii_case("on") => LumpSel::On,
            Ok(v) if v == "0" || v.eq_ignore_ascii_case("off") => LumpSel::Off,
            _ => LumpSel::Auto,
        }
    }

    /// Whether this policy permits lumping at all.
    pub fn enabled(self) -> bool {
        !matches!(self, LumpSel::Off)
    }
}

/// Whether `net` qualifies for exact lumping: valid and every transition
/// delay ≤ 1 (see the module docs for why that is the exact criterion).
/// Permutation-invariant, so it answers identically for a canonical
/// reordering of the same net.
pub fn lumpable(net: &Net) -> bool {
    net.validate().is_ok()
        && (0..net.transition_count()).all(|t| net.transition_delay(crate::net::TransId(t)) <= 1)
}

/// The quotient chain plus the per-state conditional expectations needed
/// to de-lump its solution; see the module docs.
#[derive(Debug)]
pub(crate) struct LumpedGraph {
    /// The lumped embedded chain: states are post-completion markings
    /// (with empty firing multisets), all sojourns 1. Solvers run on it
    /// unchanged.
    pub(crate) graph: ReachabilityGraph,
    /// Row-major `states × transition_count`: `E[c_t | u]`, the expected
    /// number of in-progress firings of each transition conditioned on
    /// the lumped state.
    usage: Vec<f64>,
    /// Row-major `states × place_count`: `E[m_p | u]`, the expected
    /// tangible token count of each place conditioned on the lumped state.
    tokens: Vec<f64>,
}

/// The de-lumped steady-state measures, shaped like [`Solution`]'s
/// aggregates so the engine can serve them through the same accessors.
#[derive(Debug)]
pub(crate) struct Delumped {
    /// Resource label → time-weighted mean in-progress count.
    pub(crate) resource_usage: HashMap<String, f64>,
    /// Resource label → minimum delay among its transitions.
    pub(crate) resource_delay: HashMap<String, u64>,
    /// Per-place time-averaged token counts.
    pub(crate) mean_tokens: Vec<f64>,
    /// Per-transition time-averaged in-progress firing counts.
    pub(crate) transition_usage: Vec<f64>,
}

impl LumpedGraph {
    /// Recovers the raw chain's measures from the lumped solution:
    /// `measure = Σ_u π̄(u)·E[measure | u]` (exact; module docs).
    pub(crate) fn delump(&self, solution: &Solution) -> Delumped {
        let pi = solution.state_probabilities();
        let tcount = self.graph.net.transition_count();
        let pcount = self.graph.net.place_count();
        let mut transition_usage = vec![0.0f64; tcount];
        let mut mean_tokens = vec![0.0f64; pcount];
        for (si, &p) in pi.iter().enumerate() {
            if p == 0.0 {
                continue;
            }
            let urow = &self.usage[si * tcount..(si + 1) * tcount];
            for (acc, &e) in transition_usage.iter_mut().zip(urow) {
                *acc += p * e;
            }
            let trow = &self.tokens[si * pcount..(si + 1) * pcount];
            for (acc, &e) in mean_tokens.iter_mut().zip(trow) {
                *acc += p * e;
            }
        }
        let mut resource_usage: HashMap<String, f64> = HashMap::new();
        let mut resource_delay: HashMap<String, u64> = HashMap::new();
        for (ti, t) in self.graph.net.transitions.iter().enumerate() {
            if let Some(r) = &t.resource {
                *resource_usage.entry(r.clone()).or_insert(0.0) += transition_usage[ti];
                let d = resource_delay.entry(r.clone()).or_insert(t.delay);
                *d = (*d).min(t.delay);
            }
        }
        Delumped {
            resource_usage,
            resource_delay,
            mean_tokens,
            transition_usage,
        }
    }
}

/// One lumped state's expansion: successor markings with probabilities
/// (in first-seen phase-outcome order) and the conditional-expectation
/// rows accumulated over the same outcomes.
struct LumpExpansion {
    succ: Vec<(Marking, f64)>,
    usage_row: Vec<f64>,
    tokens_row: Vec<f64>,
}

type LumpResult = Result<LumpExpansion, GtpnError>;

/// A self-scheduled unit of frontier work, as in [`crate::reach`].
type LevelChunk<'a, 'b> = (usize, &'a [Marking], &'b mut [Option<LumpResult>]);

/// Expands one lumped state: run the instantaneous phase from its marking
/// (all prior firings completed, so nothing is carried) and fold each
/// outcome to its own post-completion marking.
fn expand_lumped(net: &Net, si: usize, u: &Marking, fired: &mut [bool]) -> LumpResult {
    let tcount = net.transition_count();
    let pcount = net.place_count();
    let outcomes = instantaneous_phase(net, u.clone(), Vec::new(), fired)?;
    let mut succ: Vec<(Marking, f64)> = Vec::with_capacity(outcomes.len());
    let mut index: HashMap<Marking, usize> = HashMap::with_capacity(outcomes.len());
    let mut usage_row = vec![0.0f64; tcount];
    let mut tokens_row = vec![0.0f64; pcount];
    for (state, p) in outcomes {
        if state.firings.is_empty() {
            // A tangible state with nothing in progress never advances:
            // the raw build reports the same deadlock when it expands it.
            return Err(GtpnError::Deadlock { state: si });
        }
        for (acc, &m) in tokens_row.iter_mut().zip(state.marking.iter()) {
            *acc += p * f64::from(m);
        }
        let mut next = state.marking;
        for &(t, _) in &state.firings {
            usage_row[t.0] += p;
            for &(pl, mult) in net.transition_outputs(t) {
                next[pl.0] += mult;
            }
        }
        match index.get(&next) {
            Some(&j) => succ[j].1 += p,
            None => {
                index.insert(next.clone(), succ.len());
                succ.push((next, p));
            }
        }
    }
    Ok(LumpExpansion {
        succ,
        usage_row,
        tokens_row,
    })
}

/// Expands every lumped state of one frontier level, on worker threads
/// when the level is wide and `par` grants cores — the same disjoint-slot
/// self-scheduling as the raw build, with the same determinism argument:
/// `out[i]` is always the expansion of `level[i]`, and `fired` merges are
/// commutative unions.
fn expand_level(
    net: &Net,
    level: &[Marking],
    base: usize,
    par: &ParallelBudget,
    fired: &mut [bool],
) -> Vec<LumpResult> {
    let lease = if level.len() >= PAR_MIN_FRONTIER {
        par.claim_extra(level.len() / (2 * PAR_CHUNK))
    } else {
        par.claim_extra(0)
    };
    let workers = 1 + lease.extra();
    if workers == 1 {
        return level
            .iter()
            .enumerate()
            .map(|(i, u)| expand_lumped(net, base + i, u, fired))
            .collect();
    }

    let chunk = level.len().div_ceil(workers * 4).max(PAR_CHUNK);
    let mut slots: Vec<Option<LumpResult>> = Vec::with_capacity(level.len());
    slots.resize_with(level.len(), || None);
    {
        let work: Mutex<Vec<LevelChunk<'_, '_>>> = Mutex::new(
            level
                .chunks(chunk)
                .zip(slots.chunks_mut(chunk))
                .enumerate()
                .map(|(ci, (us, os))| (base + ci * chunk, us, os))
                .collect(),
        );
        let run = |fired: &mut [bool]| loop {
            let item = work.lock().expect("lumped level queue poisoned").pop();
            let Some((start, us, os)) = item else { break };
            for (i, (u, slot)) in us.iter().zip(os.iter_mut()).enumerate() {
                *slot = Some(expand_lumped(net, start + i, u, fired));
            }
        };
        let tcount = fired.len();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..lease.extra())
                .map(|_| {
                    scope.spawn(move || {
                        let mut local = vec![false; tcount];
                        run(&mut local);
                        local
                    })
                })
                .collect();
            run(fired);
            for h in handles {
                match h.join() {
                    Ok(local) => {
                        for (f, l) in fired.iter_mut().zip(local) {
                            *f |= l;
                        }
                    }
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });
    }
    slots
        .into_iter()
        .map(|s| s.expect("every lumped frontier state expanded"))
        .collect()
}

/// Builds the lumped chain of `net` directly — post-completion markings
/// are interned without ever materializing the raw tangible state space.
///
/// The caller is responsible for checking [`lumpable`] first; the budget
/// applies to *lumped* states, so an `Auto` engine falls back to DES only
/// past the quotient chain's size.
///
/// # Errors
///
/// Those of [`Net::reachability`], with [`GtpnError::StateSpaceExceeded`]
/// measured against the lumped state count.
pub(crate) fn reach_lumped_budgeted(
    net: &Net,
    max_states: usize,
    par: &ParallelBudget,
) -> Result<LumpedGraph, GtpnError> {
    net.validate()?;
    let tcount = net.transition_count();
    let mut states: Vec<Marking> = Vec::new();
    let mut index: HashMap<Marking, usize> = HashMap::new();
    let mut edges: Vec<Vec<(usize, f64)>> = Vec::new();
    let mut usage: Vec<f64> = Vec::new();
    let mut tokens: Vec<f64> = Vec::new();

    let intern = |u: Marking,
                  states: &mut Vec<Marking>,
                  index: &mut HashMap<Marking, usize>|
     -> Result<usize, GtpnError> {
        if let Some(&i) = index.get(&u) {
            return Ok(i);
        }
        if states.len() >= max_states {
            return Err(GtpnError::StateSpaceExceeded { limit: max_states });
        }
        states.push(u.clone());
        index.insert(u, states.len() - 1);
        Ok(states.len() - 1)
    };

    let mut fired = vec![false; tcount];
    // The initial marking is the chain's first post-completion marking
    // ("everything completed before time zero"); its expansion is exactly
    // the raw build's initial instantaneous phase.
    intern(net.initial_marking(), &mut states, &mut index)?;

    let mut cursor = 0;
    while cursor < states.len() {
        let level_end = states.len();
        let expanded = expand_level(net, &states[cursor..level_end], cursor, par, &mut fired);
        for result in expanded {
            let exp = result?;
            let mut out: Vec<(usize, f64)> = Vec::with_capacity(exp.succ.len());
            for (u, p) in exp.succ {
                let j = intern(u, &mut states, &mut index)?;
                out.push((j, p));
            }
            edges.push(out);
            usage.extend_from_slice(&exp.usage_row);
            tokens.extend_from_slice(&exp.tokens_row);
        }
        cursor = level_end;
    }

    let count = states.len();
    let graph = ReachabilityGraph {
        net: net.clone(),
        states: states
            .into_iter()
            .map(|u| State::new(u, Vec::new()))
            .collect(),
        edges,
        sojourn: vec![1; count],
        fired,
    };
    Ok(LumpedGraph {
        graph,
        usage,
        tokens,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::net::Transition;

    /// `n` clients cycling through a geometric stage (mean `m`) that
    /// competes for one shared server token — the shape of the paper's
    /// conversation nets, fully symmetric in the clients.
    fn symmetric(n: u32, m: f64) -> Net {
        let mut net = Net::new("sym");
        let p = net.add_place("Clients", n);
        let srv = net.add_place("Server", 1);
        let q = net.add_place("Done", 0);
        net.add_transition(
            Transition::new("serve")
                .delay(1)
                .frequency(Expr::constant(1.0 / m))
                .resource("lambda")
                .input(p, 1)
                .input(srv, 1)
                .output(q, 1)
                .output(srv, 1),
        )
        .unwrap();
        net.add_transition(
            Transition::new("think")
                .delay(1)
                .frequency(Expr::constant(1.0 - 1.0 / m))
                .input(p, 1)
                .output(p, 1),
        )
        .unwrap();
        net.add_transition(Transition::new("recycle").delay(0).input(q, 1).output(p, 1))
            .unwrap();
        net
    }

    fn solve_raw(net: &Net) -> Solution {
        net.reachability(100_000)
            .unwrap()
            .solve(1e-13, 200_000)
            .unwrap()
    }

    fn solve_lumped(net: &Net) -> (LumpedGraph, Solution) {
        let lumped = reach_lumped_budgeted(net, 100_000, &ParallelBudget::serial()).unwrap();
        let sol = lumped.graph.solve(1e-13, 200_000).unwrap();
        (lumped, sol)
    }

    #[test]
    fn lumpable_requires_unit_delays() {
        assert!(lumpable(&symmetric(2, 4.0)));
        let mut hetero = Net::new("hetero");
        let a = hetero.add_place("A", 1);
        hetero
            .add_transition(Transition::new("T2").delay(2).input(a, 1).output(a, 1))
            .unwrap();
        assert!(!lumpable(&hetero));
        assert!(!lumpable(&Net::new("empty")));
    }

    #[test]
    fn lumped_chain_is_smaller_and_measures_agree() {
        for n in [2u32, 3, 4] {
            let net = symmetric(n, 5.0);
            let raw = solve_raw(&net);
            let (lumped, sol) = solve_lumped(&net);
            let raw_states = net.reachability(100_000).unwrap().state_count();
            assert!(
                lumped.graph.state_count() <= raw_states,
                "n={n}: lumped {} > raw {raw_states}",
                lumped.graph.state_count()
            );
            let d = lumped.delump(&sol);
            let want = raw.resource_usage("lambda").unwrap();
            let got = d.resource_usage["lambda"];
            assert!(
                (want - got).abs() <= 1e-10,
                "n={n}: usage {got} vs raw {want}"
            );
            for t in 0..net.transition_count() {
                let id = crate::net::TransId(t);
                assert!(
                    (raw.transition_usage(id) - d.transition_usage[t]).abs() <= 1e-10,
                    "n={n}: transition {t} usage diverged"
                );
            }
            let raw_graph = net.reachability(100_000).unwrap();
            for p in 0..net.place_count() {
                let id = crate::net::PlaceId(p);
                assert!(
                    (raw_graph.mean_tokens(&raw, id) - d.mean_tokens[p]).abs() <= 1e-10,
                    "n={n}: place {p} tokens diverged"
                );
            }
        }
    }

    #[test]
    fn lumped_build_is_deterministic_across_budgets() {
        // Wide enough to cross PAR_MIN_FRONTIER at some level.
        let net = symmetric(6, 7.0);
        let serial = reach_lumped_budgeted(&net, 100_000, &ParallelBudget::serial()).unwrap();
        let par = reach_lumped_budgeted(&net, 100_000, &ParallelBudget::new(8)).unwrap();
        assert_eq!(serial.graph.states, par.graph.states);
        assert_eq!(serial.graph.fired, par.graph.fired);
        assert_eq!(serial.graph.edges.len(), par.graph.edges.len());
        for (a, b) in serial.graph.edges.iter().zip(&par.graph.edges) {
            assert_eq!(a.len(), b.len());
            for (&(i, p), &(j, q)) in a.iter().zip(b) {
                assert_eq!(i, j);
                assert_eq!(p.to_bits(), q.to_bits(), "edge probability drifted");
            }
        }
        for (a, b) in serial.usage.iter().zip(&par.usage) {
            assert_eq!(a.to_bits(), b.to_bits(), "usage expectation drifted");
        }
        for (a, b) in serial.tokens.iter().zip(&par.tokens) {
            assert_eq!(a.to_bits(), b.to_bits(), "token expectation drifted");
        }
    }

    #[test]
    fn lumped_budget_counts_lumped_states() {
        let net = symmetric(4, 5.0);
        let count = reach_lumped_budgeted(&net, 100_000, &ParallelBudget::serial())
            .unwrap()
            .graph
            .state_count();
        let err = reach_lumped_budgeted(&net, count - 1, &ParallelBudget::serial()).unwrap_err();
        assert!(matches!(
            err,
            GtpnError::StateSpaceExceeded { limit } if limit == count - 1
        ));
    }

    #[test]
    fn lumped_deadlock_detected() {
        let mut net = Net::new("dead");
        let a = net.add_place("A", 1);
        let b = net.add_place("B", 0);
        net.add_transition(Transition::new("T").delay(1).input(a, 1).output(b, 1))
            .unwrap();
        let err = reach_lumped_budgeted(&net, 100, &ParallelBudget::serial()).unwrap_err();
        assert!(matches!(err, GtpnError::Deadlock { .. }));
    }
}
