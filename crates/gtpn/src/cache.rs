//! Memoizing cache for reachability graphs.
//!
//! The paper's evaluation re-analyzes the same nets constantly: a sweep
//! over conversations × architectures × offered loads rebuilds the
//! Figure 6.9/6.12 nets point by point, several figures share points
//! outright (6.17 and 6.20 both solve architecture III at max load), and
//! the §6.6.3 non-local fixed point iterates over structurally identical
//! client/server nets. Reachability expansion dominates those solves, so
//! [`reachability`] memoizes graphs keyed by the net's structure.
//!
//! Keys are a 64-bit structural fingerprint (places, arcs, delays,
//! frequency expressions with exact bit-pattern float hashing) verified by
//! full structural equality ([`Net`]'s `PartialEq`), so fingerprint
//! collisions cannot alias two different nets. Values are
//! `Arc<ReachabilityGraph>`, shared freely across sweep worker threads.
//!
//! The cache is process-global and bounded with least-recently-used
//! eviction: every hit refreshes an entry's stamp, and inserting past
//! capacity drops the entry whose last use is oldest — so the nets a
//! long-running sweep keeps returning to (the §6.6.3 fixed-point iterates,
//! the shared max-load points) stay resident while one-shot nets age out.
//! Capacity defaults to [`MAX_ENTRIES`] and is configurable with the
//! `HSIPC_CACHE_CAP` environment variable (read once per process; `0`
//! disables caching entirely). The engine-level solution cache
//! ([`crate::engine`]) shares the same capacity knob and reports the same
//! counter set ([`CacheStats`]).

use crate::error::GtpnError;
use crate::expr::Expr;
use crate::net::Net;
use crate::reach::ReachabilityGraph;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex, OnceLock};

/// Default capacity (entries) when `HSIPC_CACHE_CAP` is unset.
pub const MAX_ENTRIES: usize = 256;

/// Configured capacity of the global caches: `HSIPC_CACHE_CAP` parsed once
/// per process, defaulting to [`MAX_ENTRIES`]. A capacity of `0` disables
/// caching (every lookup misses and nothing is retained).
pub fn capacity() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| {
        std::env::var("HSIPC_CACHE_CAP")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(MAX_ENTRIES)
    })
}

struct Entry {
    net: Net,
    graph: Arc<ReachabilityGraph>,
    /// Stamp of the most recent hit (or the insertion), for LRU eviction.
    last_used: u64,
}

struct CacheInner {
    /// fingerprint -> entries with that fingerprint (collision chain).
    map: HashMap<u64, Vec<Entry>>,
    /// Total entries across all chains.
    count: usize,
    /// Monotonic use counter backing the LRU stamps.
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl CacheInner {
    /// Drops the least-recently-used entry. No-op on an empty cache.
    fn evict_lru(&mut self) {
        let victim = self
            .map
            .iter()
            .flat_map(|(&fp, chain)| {
                chain
                    .iter()
                    .enumerate()
                    .map(move |(i, e)| (e.last_used, fp, i))
            })
            .min();
        if let Some((_, fp, i)) = victim {
            let empty = {
                let chain = self.map.get_mut(&fp).expect("victim chain exists");
                chain.remove(i);
                chain.is_empty()
            };
            if empty {
                self.map.remove(&fp);
            }
            self.count -= 1;
            self.evictions += 1;
        }
    }
}

fn cache() -> &'static Mutex<CacheInner> {
    static CACHE: OnceLock<Mutex<CacheInner>> = OnceLock::new();
    CACHE.get_or_init(|| {
        Mutex::new(CacheInner {
            map: HashMap::new(),
            count: 0,
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        })
    })
}

/// Hit/miss/eviction counters of a bounded cache. Shared by the
/// reachability cache ([`stats`]) and the engine solution cache
/// ([`crate::engine::cache_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to do the work.
    pub misses: u64,
    /// Entries dropped to make room (least recently used first).
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
}

/// Current statistics of the global reachability cache.
pub fn stats() -> CacheStats {
    let c = cache().lock().expect("reachability cache poisoned");
    CacheStats {
        hits: c.hits,
        misses: c.misses,
        evictions: c.evictions,
        entries: c.count,
    }
}

/// Empties the global cache (counters included) — test isolation aid.
pub fn clear() {
    let mut c = cache().lock().expect("reachability cache poisoned");
    c.map.clear();
    c.count = 0;
    c.tick = 0;
    c.hits = 0;
    c.misses = 0;
    c.evictions = 0;
}

/// As [`Net::reachability`], memoized on the net's structure.
///
/// A cached graph is returned only when its state count fits the caller's
/// `max_states` budget; otherwise the graph is rebuilt under that budget
/// (and the rebuild reports [`GtpnError::StateSpaceExceeded`] exactly as
/// the uncached path would). Failed expansions are not cached.
///
/// # Errors
///
/// Exactly those of [`Net::reachability`].
pub fn reachability(net: &Net, max_states: usize) -> Result<Arc<ReachabilityGraph>, GtpnError> {
    reachability_budgeted(net, max_states, &crate::par::ParallelBudget::serial())
}

/// As [`reachability`], expanding cache misses with extra worker threads
/// claimed from `par` ([`Net::reachability_budgeted`]). The parallel build
/// is byte-identical to the serial one, so hits and misses — and cached
/// values produced under any budget — are interchangeable.
///
/// # Errors
///
/// Exactly those of [`Net::reachability`].
pub fn reachability_budgeted(
    net: &Net,
    max_states: usize,
    par: &crate::par::ParallelBudget,
) -> Result<Arc<ReachabilityGraph>, GtpnError> {
    let cap = capacity();
    if cap == 0 {
        let mut c = cache().lock().expect("reachability cache poisoned");
        c.misses += 1;
        drop(c);
        return Ok(Arc::new(net.reachability_budgeted(max_states, par)?));
    }
    let fp = fingerprint(net);
    {
        let mut c = cache().lock().expect("reachability cache poisoned");
        let stamp = c.tick;
        if let Some(chain) = c.map.get_mut(&fp) {
            if let Some(entry) = chain
                .iter_mut()
                .find(|e| e.graph.state_count() <= max_states && e.net == *net)
            {
                entry.last_used = stamp;
                let graph = Arc::clone(&entry.graph);
                c.tick += 1;
                c.hits += 1;
                return Ok(graph);
            }
        }
        c.misses += 1;
    }

    // Expand outside the lock: big nets take a while and other workers may
    // be solving different points meanwhile. Two threads racing on the same
    // net both expand; the second insert is a harmless duplicate that
    // eviction ages out.
    let graph = Arc::new(net.reachability_budgeted(max_states, par)?);
    let mut c = cache().lock().expect("reachability cache poisoned");
    while c.count >= cap {
        c.evict_lru();
    }
    let stamp = c.tick;
    c.tick += 1;
    c.map.entry(fp).or_default().push(Entry {
        net: net.clone(),
        graph: Arc::clone(&graph),
        last_used: stamp,
    });
    c.count += 1;
    Ok(graph)
}

/// Structural fingerprint of a net: everything that determines its
/// reachability graph (names excluded — they are labels, not structure;
/// the equality check compares them anyway via `PartialEq`).
pub fn fingerprint(net: &Net) -> u64 {
    let mut h = DefaultHasher::new();
    net.place_count().hash(&mut h);
    for marking in net.initial_marking() {
        marking.hash(&mut h);
    }
    net.transition_count().hash(&mut h);
    for t in &net.transitions {
        t.delay.hash(&mut h);
        t.resource.hash(&mut h);
        t.inputs.hash(&mut h);
        t.outputs.hash(&mut h);
        hash_expr(&t.frequency, &mut h);
    }
    h.finish()
}

/// Hashes an expression tree; floats hash by bit pattern so distinct
/// timings produce distinct fingerprints. Shared with the canonical-net
/// fingerprint ([`crate::canonical`]).
pub(crate) fn hash_expr(e: &Expr, h: &mut DefaultHasher) {
    match e {
        Expr::Const(v) => {
            0u8.hash(h);
            v.to_bits().hash(h);
        }
        Expr::Tokens(p) => {
            1u8.hash(h);
            p.0.hash(h);
        }
        Expr::Firing(t) => {
            2u8.hash(h);
            t.0.hash(h);
        }
        Expr::Add(a, b) => hash_pair(3, a, b, h),
        Expr::Sub(a, b) => hash_pair(4, a, b, h),
        Expr::Mul(a, b) => hash_pair(5, a, b, h),
        Expr::Div(a, b) => hash_pair(6, a, b, h),
        Expr::Eq(a, b) => hash_pair(7, a, b, h),
        Expr::Lt(a, b) => hash_pair(8, a, b, h),
        Expr::Le(a, b) => hash_pair(9, a, b, h),
        Expr::And(a, b) => hash_pair(10, a, b, h),
        Expr::Or(a, b) => hash_pair(11, a, b, h),
        Expr::Not(a) => {
            12u8.hash(h);
            hash_expr(a, h);
        }
        Expr::If(c, a, b) => {
            13u8.hash(h);
            hash_expr(c, h);
            hash_expr(a, h);
            hash_expr(b, h);
        }
    }
}

fn hash_pair(tag: u8, a: &Expr, b: &Expr, h: &mut DefaultHasher) {
    tag.hash(h);
    hash_expr(a, h);
    hash_expr(b, h);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::Transition;
    use crate::test_serial as isolate;

    fn ring(freq: f64) -> Net {
        let mut net = Net::new("ring");
        let p = net.add_place("P", 1);
        let q = net.add_place("Q", 0);
        net.add_transition(
            Transition::new("exit")
                .delay(1)
                .frequency(Expr::constant(freq))
                .input(p, 1)
                .output(q, 1),
        )
        .unwrap();
        net.add_transition(
            Transition::new("loop")
                .delay(1)
                .frequency(Expr::constant(1.0 - freq))
                .input(p, 1)
                .output(p, 1),
        )
        .unwrap();
        net.add_transition(Transition::new("recycle").delay(0).input(q, 1).output(p, 1))
            .unwrap();
        net
    }

    #[test]
    fn identical_nets_share_one_graph() {
        let _gate = isolate();
        clear();
        let a = reachability(&ring(0.25), 100).unwrap();
        let b = reachability(&ring(0.25), 100).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second lookup must be a cache hit");
        let s = stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert_eq!(s.evictions, 0);
    }

    #[test]
    fn different_timings_are_distinct_entries() {
        let _gate = isolate();
        clear();
        let a = reachability(&ring(0.25), 100).unwrap();
        let b = reachability(&ring(0.125), 100).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_ne!(fingerprint(&ring(0.25)), fingerprint(&ring(0.125)));
        // Same shape, same state space; different edge probabilities.
        assert_eq!(a.state_count(), b.state_count());
        let pa: Vec<f64> = a.out_edges(0).iter().map(|&(_, p)| p).collect();
        let pb: Vec<f64> = b.out_edges(0).iter().map(|&(_, p)| p).collect();
        assert_ne!(pa, pb);
    }

    #[test]
    fn budget_still_enforced_on_hit_path() {
        let _gate = isolate();
        clear();
        let net = ring(0.5);
        let g = reachability(&net, 100).unwrap();
        assert!(g.state_count() > 1);
        // A budget below the cached graph's size must error, not hit.
        let err = reachability(&net, 1).unwrap_err();
        assert!(matches!(err, GtpnError::StateSpaceExceeded { limit: 1 }));
    }

    #[test]
    fn cached_solution_matches_fresh_solution() {
        let _gate = isolate();
        clear();
        let net = ring(0.1);
        let fresh = net
            .reachability(100)
            .unwrap()
            .solve(1e-13, 100_000)
            .unwrap();
        let cached = reachability(&net, 100)
            .unwrap()
            .solve(1e-13, 100_000)
            .unwrap();
        assert_eq!(
            fresh.state_probabilities(),
            cached.state_probabilities(),
            "cache must not change results"
        );
    }

    #[test]
    fn recently_used_entries_survive_eviction() {
        let _gate = isolate();
        clear();
        let cap = capacity();
        assert!(cap >= 2, "test requires a real cache");
        // Distinct frequencies i/10007 never collide with the other tests'
        // 0.25 / 0.125 / 0.5 / 0.1 rings.
        let freq = |i: usize| (i + 1) as f64 / 10007.0;
        // Fill to capacity.
        for i in 0..cap {
            reachability(&ring(freq(i)), 100).unwrap();
        }
        assert_eq!(stats().entries, cap);
        // Touch entry 0 so entry 1 becomes the least recently used…
        let kept = reachability(&ring(freq(0)), 100).unwrap();
        // …then overflow by one: entry 1 must be the victim.
        reachability(&ring(freq(cap)), 100).unwrap();
        let s = stats();
        assert_eq!(s.entries, cap);
        assert_eq!(s.evictions, 1);
        let again = reachability(&ring(freq(0)), 100).unwrap();
        assert!(Arc::ptr_eq(&kept, &again), "refreshed entry was evicted");
        let before = stats().misses;
        reachability(&ring(freq(1)), 100).unwrap();
        assert_eq!(stats().misses, before + 1, "LRU victim should re-expand");
    }
}
