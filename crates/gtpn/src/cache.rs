//! Memoizing cache for reachability graphs.
//!
//! The paper's evaluation re-analyzes the same nets constantly: a sweep
//! over conversations × architectures × offered loads rebuilds the
//! Figure 6.9/6.12 nets point by point, several figures share points
//! outright (6.17 and 6.20 both solve architecture III at max load), and
//! the §6.6.3 non-local fixed point iterates over structurally identical
//! client/server nets. Reachability expansion dominates those solves, so
//! [`reachability`] memoizes graphs keyed by the net's structure.
//!
//! Keys are a 64-bit structural fingerprint (places, arcs, delays,
//! frequency expressions with exact bit-pattern float hashing) verified by
//! full structural equality ([`Net`]'s `PartialEq`), so fingerprint
//! collisions cannot alias two different nets. Values are
//! `Arc<ReachabilityGraph>`, shared freely across sweep worker threads.
//!
//! The cache is process-global and bounded: once [`MAX_ENTRIES`] graphs are
//! resident the oldest entry is evicted (insertion order), which fits the
//! sweep access pattern — a burst of repeats while one figure renders, then
//! a new working set.

use crate::error::GtpnError;
use crate::expr::Expr;
use crate::net::Net;
use crate::reach::ReachabilityGraph;
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex, OnceLock};

/// Maximum number of cached graphs before insertion-order eviction.
pub const MAX_ENTRIES: usize = 256;

struct CacheInner {
    /// fingerprint -> entries with that fingerprint (collision chain).
    map: HashMap<u64, Vec<(Net, Arc<ReachabilityGraph>)>>,
    /// Insertion order for eviction.
    order: VecDeque<(u64, usize)>,
    hits: u64,
    misses: u64,
}

fn cache() -> &'static Mutex<CacheInner> {
    static CACHE: OnceLock<Mutex<CacheInner>> = OnceLock::new();
    CACHE.get_or_init(|| {
        Mutex::new(CacheInner {
            map: HashMap::new(),
            order: VecDeque::new(),
            hits: 0,
            misses: 0,
        })
    })
}

/// Hit/miss counters of the global cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to expand the graph.
    pub misses: u64,
    /// Graphs currently resident.
    pub entries: usize,
}

/// Current statistics of the global reachability cache.
pub fn stats() -> CacheStats {
    let c = cache().lock().expect("reachability cache poisoned");
    CacheStats {
        hits: c.hits,
        misses: c.misses,
        entries: c.order.len(),
    }
}

/// Empties the global cache (counters included) — test isolation aid.
pub fn clear() {
    let mut c = cache().lock().expect("reachability cache poisoned");
    c.map.clear();
    c.order.clear();
    c.hits = 0;
    c.misses = 0;
}

/// As [`Net::reachability`], memoized on the net's structure.
///
/// A cached graph is returned only when its state count fits the caller's
/// `max_states` budget; otherwise the graph is rebuilt under that budget
/// (and the rebuild reports [`GtpnError::StateSpaceExceeded`] exactly as
/// the uncached path would). Failed expansions are not cached.
///
/// # Errors
///
/// Exactly those of [`Net::reachability`].
pub fn reachability(net: &Net, max_states: usize) -> Result<Arc<ReachabilityGraph>, GtpnError> {
    let fp = fingerprint(net);
    {
        let mut c = cache().lock().expect("reachability cache poisoned");
        if let Some(entries) = c.map.get(&fp) {
            if let Some(graph) = entries
                .iter()
                .find(|(n, g)| g.state_count() <= max_states && n == net)
                .map(|(_, g)| Arc::clone(g))
            {
                c.hits += 1;
                return Ok(graph);
            }
        }
        c.misses += 1;
    }

    // Expand outside the lock: big nets take a while and other workers may
    // be solving different points meanwhile. Two threads racing on the same
    // net both expand; the second insert is a harmless duplicate that the
    // eviction queue ages out.
    let graph = Arc::new(net.reachability(max_states)?);
    let mut c = cache().lock().expect("reachability cache poisoned");
    while c.order.len() >= MAX_ENTRIES {
        if let Some((old_fp, _)) = c.order.pop_front() {
            // Drop the oldest entry for this fingerprint.
            if let Some(entries) = c.map.get_mut(&old_fp) {
                if !entries.is_empty() {
                    entries.remove(0);
                }
                if entries.is_empty() {
                    c.map.remove(&old_fp);
                }
            }
        }
    }
    let entries = c.map.entry(fp).or_default();
    entries.push((net.clone(), Arc::clone(&graph)));
    let idx = entries.len() - 1;
    c.order.push_back((fp, idx));
    Ok(graph)
}

/// Structural fingerprint of a net: everything that determines its
/// reachability graph (names excluded — they are labels, not structure;
/// the equality check compares them anyway via `PartialEq`).
pub fn fingerprint(net: &Net) -> u64 {
    let mut h = DefaultHasher::new();
    net.place_count().hash(&mut h);
    for marking in net.initial_marking() {
        marking.hash(&mut h);
    }
    net.transition_count().hash(&mut h);
    for t in &net.transitions {
        t.delay.hash(&mut h);
        t.resource.hash(&mut h);
        t.inputs.hash(&mut h);
        t.outputs.hash(&mut h);
        hash_expr(&t.frequency, &mut h);
    }
    h.finish()
}

/// Hashes an expression tree; floats hash by bit pattern so distinct
/// timings produce distinct fingerprints.
fn hash_expr(e: &Expr, h: &mut DefaultHasher) {
    match e {
        Expr::Const(v) => {
            0u8.hash(h);
            v.to_bits().hash(h);
        }
        Expr::Tokens(p) => {
            1u8.hash(h);
            p.0.hash(h);
        }
        Expr::Firing(t) => {
            2u8.hash(h);
            t.0.hash(h);
        }
        Expr::Add(a, b) => hash_pair(3, a, b, h),
        Expr::Sub(a, b) => hash_pair(4, a, b, h),
        Expr::Mul(a, b) => hash_pair(5, a, b, h),
        Expr::Div(a, b) => hash_pair(6, a, b, h),
        Expr::Eq(a, b) => hash_pair(7, a, b, h),
        Expr::Lt(a, b) => hash_pair(8, a, b, h),
        Expr::Le(a, b) => hash_pair(9, a, b, h),
        Expr::And(a, b) => hash_pair(10, a, b, h),
        Expr::Or(a, b) => hash_pair(11, a, b, h),
        Expr::Not(a) => {
            12u8.hash(h);
            hash_expr(a, h);
        }
        Expr::If(c, a, b) => {
            13u8.hash(h);
            hash_expr(c, h);
            hash_expr(a, h);
            hash_expr(b, h);
        }
    }
}

fn hash_pair(tag: u8, a: &Expr, b: &Expr, h: &mut DefaultHasher) {
    tag.hash(h);
    hash_expr(a, h);
    hash_expr(b, h);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::Transition;

    fn ring(freq: f64) -> Net {
        let mut net = Net::new("ring");
        let p = net.add_place("P", 1);
        let q = net.add_place("Q", 0);
        net.add_transition(
            Transition::new("exit")
                .delay(1)
                .frequency(Expr::constant(freq))
                .input(p, 1)
                .output(q, 1),
        )
        .unwrap();
        net.add_transition(
            Transition::new("loop")
                .delay(1)
                .frequency(Expr::constant(1.0 - freq))
                .input(p, 1)
                .output(p, 1),
        )
        .unwrap();
        net.add_transition(Transition::new("recycle").delay(0).input(q, 1).output(p, 1))
            .unwrap();
        net
    }

    #[test]
    fn identical_nets_share_one_graph() {
        clear();
        let a = reachability(&ring(0.25), 100).unwrap();
        let b = reachability(&ring(0.25), 100).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second lookup must be a cache hit");
        let s = stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn different_timings_are_distinct_entries() {
        clear();
        let a = reachability(&ring(0.25), 100).unwrap();
        let b = reachability(&ring(0.125), 100).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_ne!(fingerprint(&ring(0.25)), fingerprint(&ring(0.125)));
        // Same shape, same state space; different edge probabilities.
        assert_eq!(a.state_count(), b.state_count());
        let pa: Vec<f64> = a.out_edges(0).iter().map(|&(_, p)| p).collect();
        let pb: Vec<f64> = b.out_edges(0).iter().map(|&(_, p)| p).collect();
        assert_ne!(pa, pb);
    }

    #[test]
    fn budget_still_enforced_on_hit_path() {
        clear();
        let net = ring(0.5);
        let g = reachability(&net, 100).unwrap();
        assert!(g.state_count() > 1);
        // A budget below the cached graph's size must error, not hit.
        let err = reachability(&net, 1).unwrap_err();
        assert!(matches!(err, GtpnError::StateSpaceExceeded { limit: 1 }));
    }

    #[test]
    fn cached_solution_matches_fresh_solution() {
        clear();
        let net = ring(0.1);
        let fresh = net
            .reachability(100)
            .unwrap()
            .solve(1e-13, 100_000)
            .unwrap();
        let cached = reachability(&net, 100)
            .unwrap()
            .solve(1e-13, 100_000)
            .unwrap();
        assert_eq!(
            fresh.state_probabilities(),
            cached.state_probabilities(),
            "cache must not change results"
        );
    }
}
