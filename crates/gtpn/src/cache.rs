//! Memoizing cache for reachability graphs.
//!
//! The paper's evaluation re-analyzes the same nets constantly: a sweep
//! over conversations × architectures × offered loads rebuilds the
//! Figure 6.9/6.12 nets point by point, several figures share points
//! outright (6.17 and 6.20 both solve architecture III at max load), and
//! the §6.6.3 non-local fixed point iterates over structurally identical
//! client/server nets. Reachability expansion dominates those solves, so
//! [`reachability`] memoizes graphs keyed by the net's structure.
//!
//! Keys are a 64-bit structural fingerprint (places, arcs, delays,
//! frequency expressions with exact bit-pattern float hashing) verified by
//! full structural equality ([`Net`]'s `PartialEq`), so fingerprint
//! collisions cannot alias two different nets. Values are
//! `Arc<ReachabilityGraph>`, shared freely across sweep worker threads.
//!
//! # Bounding and eviction
//!
//! The cache is process-global and bounded by **resident bytes**
//! ([`CacheLimits::max_bytes`], `HSIPC_CACHE_MB`, default 256 MiB) and
//! optionally by entry count (`HSIPC_CACHE_CAP`; unset means unbounded,
//! `0` disables caching entirely). Graph sizes vary by four orders of
//! magnitude across the evaluation grids, so a byte budget is the quantity
//! that actually protects the machine — the old fixed 256-entry cap made
//! one figure's large grid evict another figure's still-hot points.
//!
//! Eviction is least-recently-used via an intrusive doubly-linked list
//! ([`crate::lru`]): O(1) per eviction instead of the old O(entries)
//! full-map scan. Entries are additionally tagged with the **partition**
//! (experiment id, see [`partition_scope`]) that inserted them, and the
//! victim search prefers the inserting partition's own oldest entry — a
//! sweep that overflows the budget eats its own tail rather than a
//! neighbor figure's.
//!
//! # Environment latching
//!
//! Limits are read from the environment **when a cache instance is
//! constructed** — once for this process-global cache (first use or
//! [`clear`], which reconstructs it), and once per private engine cache
//! ([`crate::engine::AnalysisEngine::with_cache`]). There is deliberately
//! no process-global `OnceLock` latch: an engine cache built after the
//! environment changes sees the new values. The engine-level solution
//! cache reports the same counter set ([`CacheStats`]).

use crate::error::GtpnError;
use crate::expr::Expr;
use crate::lru::BoundedLru;
use crate::net::Net;
use crate::reach::ReachabilityGraph;
use std::cell::Cell;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex, OnceLock};

/// Default resident-byte budget (mebibytes) when `HSIPC_CACHE_MB` is unset.
///
/// Sized so the full evaluation (`repro all`) runs eviction-free: its
/// resident working set measures ~260 MiB per cache, and an eviction on
/// the critical path costs a re-solve that dwarfs the memory it saved.
/// Memory-constrained runs dial it down with `HSIPC_CACHE_MB`.
pub const DEFAULT_CACHE_MB: usize = 1024;

/// Size bounds of a bounded cache, fixed at cache construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheLimits {
    /// Maximum resident entries (`usize::MAX` = unbounded, `0` = disabled).
    pub max_entries: usize,
    /// Maximum estimated resident bytes (`0` = disabled).
    pub max_bytes: usize,
}

impl CacheLimits {
    /// Reads `HSIPC_CACHE_CAP` (entry count; unset = unbounded) and
    /// `HSIPC_CACHE_MB` (mebibytes; unset = [`DEFAULT_CACHE_MB`]) from the
    /// environment **now** — call this at cache construction; the result is
    /// latched per cache instance, never per process.
    pub fn from_env() -> CacheLimits {
        let parse = |name: &str| {
            std::env::var(name)
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
        };
        CacheLimits {
            max_entries: parse("HSIPC_CACHE_CAP").unwrap_or(usize::MAX),
            max_bytes: parse("HSIPC_CACHE_MB")
                .map(|mb| mb.saturating_mul(1024 * 1024))
                .unwrap_or(DEFAULT_CACHE_MB * 1024 * 1024),
        }
    }

    /// Entry-count limits with the byte budget still read from the
    /// environment — the semantics of
    /// [`crate::engine::AnalysisEngine::with_cache`].
    pub fn with_entry_cap(cap: usize) -> CacheLimits {
        CacheLimits {
            max_entries: cap,
            ..CacheLimits::from_env()
        }
    }

    /// True when either bound is zero: every lookup misses and nothing is
    /// retained.
    pub fn disabled(&self) -> bool {
        self.max_entries == 0 || self.max_bytes == 0
    }
}

// ---------------------------------------------------------------------------
// Partitions
// ---------------------------------------------------------------------------

thread_local! {
    /// The eviction partition of work running on this thread (0 = none).
    static PARTITION: Cell<u32> = const { Cell::new(0) };
}

/// Restores the previous partition tag when dropped.
pub struct PartitionGuard {
    prev: u32,
}

impl Drop for PartitionGuard {
    fn drop(&mut self) {
        PARTITION.with(|p| p.set(self.prev));
    }
}

/// Tags cache inserts on this thread with partition `p` until the guard
/// drops. Sweep workers use this to carry their experiment's partition tag
/// ([`current_partition`]) across threads.
pub fn enter_partition(p: u32) -> PartitionGuard {
    PARTITION.with(|slot| {
        let prev = slot.replace(p);
        PartitionGuard { prev }
    })
}

/// The partition tag of the current thread (0 when none is active).
pub fn current_partition() -> u32 {
    PARTITION.with(|p| p.get())
}

/// Runs `f` with cache inserts tagged by `label`'s partition — one label
/// per experiment id keeps one figure's grid points from evicting
/// another's (see the module docs on eviction preference).
pub fn partition_scope<R>(label: &str, f: impl FnOnce() -> R) -> R {
    let mut h = DefaultHasher::new();
    label.hash(&mut h);
    let fp = h.finish();
    // Fold to 32 bits; 0 is reserved for "no partition".
    let tag = ((fp ^ (fp >> 32)) as u32).max(1);
    let _guard = enter_partition(tag);
    f()
}

// ---------------------------------------------------------------------------
// The global reachability cache
// ---------------------------------------------------------------------------

struct Entry {
    fp: u64,
    net: Net,
    graph: Arc<ReachabilityGraph>,
}

struct CacheInner {
    /// fingerprint -> slot indices with that fingerprint (collision chain).
    map: HashMap<u64, Vec<usize>>,
    lru: BoundedLru<Entry>,
    limits: CacheLimits,
    hits: u64,
    misses: u64,
    evictions: u64,
    dedup_drops: u64,
}

impl CacheInner {
    fn new(limits: CacheLimits) -> CacheInner {
        CacheInner {
            map: HashMap::new(),
            lru: BoundedLru::new(),
            limits,
            hits: 0,
            misses: 0,
            evictions: 0,
            dedup_drops: 0,
        }
    }

    /// Finds a resident graph for `net` that fits `max_states`.
    fn probe(&self, fp: u64, net: &Net, max_states: usize) -> Option<usize> {
        let chain = self.map.get(&fp)?;
        chain.iter().copied().find(|&idx| {
            let e = self.lru.get(idx);
            e.graph.state_count() <= max_states && e.net == *net
        })
    }

    /// Evicts the preferred victim (current partition's oldest, else the
    /// global LRU). Returns false on an empty cache.
    fn evict_one(&mut self) -> bool {
        let Some(idx) = self.lru.victim(current_partition()) else {
            return false;
        };
        let entry = self.lru.remove(idx);
        let chain = self.map.get_mut(&entry.fp).expect("chained entry");
        chain.retain(|&i| i != idx);
        if chain.is_empty() {
            self.map.remove(&entry.fp);
        }
        self.evictions += 1;
        true
    }

    /// Inserts a freshly built graph — unless another worker raced us here
    /// on the same net, in which case the duplicate is dropped and the
    /// first `Arc` is shared (`dedup_drops` counts these).
    fn insert_or_share(
        &mut self,
        fp: u64,
        net: &Net,
        graph: Arc<ReachabilityGraph>,
        max_states: usize,
    ) -> Arc<ReachabilityGraph> {
        if let Some(idx) = self.probe(fp, net, max_states) {
            self.dedup_drops += 1;
            let shared = Arc::clone(&self.lru.get(idx).graph);
            self.lru.touch(idx);
            return shared;
        }
        let bytes = entry_cost(net, &graph);
        if bytes > self.limits.max_bytes {
            // Bigger than the whole budget: serve it uncached.
            return graph;
        }
        while self.lru.len() >= self.limits.max_entries
            || self.lru.bytes() + bytes > self.limits.max_bytes
        {
            if !self.evict_one() {
                break;
            }
        }
        let idx = self.lru.insert(
            Entry {
                fp,
                net: net.clone(),
                graph: Arc::clone(&graph),
            },
            bytes,
            current_partition(),
        );
        self.map.entry(fp).or_default().push(idx);
        graph
    }
}

fn cache() -> &'static Mutex<CacheInner> {
    static CACHE: OnceLock<Mutex<CacheInner>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(CacheInner::new(CacheLimits::from_env())))
}

/// Hit/miss/eviction counters of a bounded cache. Shared by the
/// reachability cache ([`stats`]) and the engine solution cache
/// ([`crate::engine::cache_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to do the work.
    pub misses: u64,
    /// Entries dropped to make room (least recently used first, preferring
    /// the inserting partition).
    pub evictions: u64,
    /// Duplicate inserts dropped because a racing worker got there first.
    pub dedup_drops: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Estimated resident bytes of those entries.
    pub bytes: usize,
}

/// Current statistics of the global reachability cache.
pub fn stats() -> CacheStats {
    let c = cache().lock().expect("reachability cache poisoned");
    CacheStats {
        hits: c.hits,
        misses: c.misses,
        evictions: c.evictions,
        dedup_drops: c.dedup_drops,
        entries: c.lru.len(),
        bytes: c.lru.bytes(),
    }
}

/// Empties the global cache (counters included) and re-reads the limits
/// from the environment — equivalent to constructing it anew. Test
/// isolation aid.
pub fn clear() {
    let mut c = cache().lock().expect("reachability cache poisoned");
    *c = CacheInner::new(CacheLimits::from_env());
}

/// As [`Net::reachability`], memoized on the net's structure.
///
/// A cached graph is returned only when its state count fits the caller's
/// `max_states` budget; otherwise the graph is rebuilt under that budget
/// (and the rebuild reports [`GtpnError::StateSpaceExceeded`] exactly as
/// the uncached path would). Failed expansions are not cached.
///
/// # Errors
///
/// Exactly those of [`Net::reachability`].
pub fn reachability(net: &Net, max_states: usize) -> Result<Arc<ReachabilityGraph>, GtpnError> {
    reachability_budgeted(net, max_states, &crate::par::ParallelBudget::serial())
}

/// As [`reachability`], expanding cache misses with extra worker threads
/// claimed from `par` ([`Net::reachability_budgeted`]). The parallel build
/// is byte-identical to the serial one, so hits and misses — and cached
/// values produced under any budget — are interchangeable.
///
/// # Errors
///
/// Exactly those of [`Net::reachability`].
pub fn reachability_budgeted(
    net: &Net,
    max_states: usize,
    par: &crate::par::ParallelBudget,
) -> Result<Arc<ReachabilityGraph>, GtpnError> {
    let fp = fingerprint(net);
    {
        let mut c = cache().lock().expect("reachability cache poisoned");
        if c.limits.disabled() {
            c.misses += 1;
            drop(c);
            return Ok(Arc::new(net.reachability_budgeted(max_states, par)?));
        }
        if let Some(idx) = c.probe(fp, net, max_states) {
            c.hits += 1;
            let graph = Arc::clone(&c.lru.get(idx).graph);
            c.lru.touch(idx);
            return Ok(graph);
        }
        c.misses += 1;
    }

    // Expand outside the lock: big nets take a while and other workers may
    // be solving different points meanwhile. Two threads racing on the same
    // net both expand; `insert_or_share` drops the loser's duplicate and
    // hands it the winner's Arc.
    let graph = Arc::new(net.reachability_budgeted(max_states, par)?);
    let mut c = cache().lock().expect("reachability cache poisoned");
    Ok(c.insert_or_share(fp, net, graph, max_states))
}

/// Structural fingerprint of a net: everything that determines its
/// reachability graph (names excluded — they are labels, not structure;
/// the equality check compares them anyway via `PartialEq`).
pub fn fingerprint(net: &Net) -> u64 {
    let mut h = DefaultHasher::new();
    net.place_count().hash(&mut h);
    for marking in net.initial_marking() {
        marking.hash(&mut h);
    }
    net.transition_count().hash(&mut h);
    for t in &net.transitions {
        t.delay.hash(&mut h);
        t.resource.hash(&mut h);
        t.inputs.hash(&mut h);
        t.outputs.hash(&mut h);
        hash_expr(&t.frequency, &mut h);
    }
    h.finish()
}

/// A rough resident-byte estimate for a net retained in a cache entry.
pub(crate) fn net_bytes(net: &Net) -> usize {
    // Places (name + marking) plus transitions (arcs, expression tree,
    // labels); a coarse constant per node is plenty for a budget estimate.
    64 * net.place_count() + 256 * net.transition_count()
}

/// Resident cost of one reachability-cache entry: the graph plus the
/// retained verification copy of the net.
fn entry_cost(net: &Net, graph: &ReachabilityGraph) -> usize {
    graph.resident_bytes() + net_bytes(net)
}

/// Hashes an expression tree; floats hash by bit pattern so distinct
/// timings produce distinct fingerprints. Shared with the canonical-net
/// fingerprint ([`crate::canonical`]).
pub(crate) fn hash_expr(e: &Expr, h: &mut DefaultHasher) {
    match e {
        Expr::Const(v) => {
            0u8.hash(h);
            v.to_bits().hash(h);
        }
        Expr::Tokens(p) => {
            1u8.hash(h);
            p.0.hash(h);
        }
        Expr::Firing(t) => {
            2u8.hash(h);
            t.0.hash(h);
        }
        Expr::Add(a, b) => hash_pair(3, a, b, h),
        Expr::Sub(a, b) => hash_pair(4, a, b, h),
        Expr::Mul(a, b) => hash_pair(5, a, b, h),
        Expr::Div(a, b) => hash_pair(6, a, b, h),
        Expr::Eq(a, b) => hash_pair(7, a, b, h),
        Expr::Lt(a, b) => hash_pair(8, a, b, h),
        Expr::Le(a, b) => hash_pair(9, a, b, h),
        Expr::And(a, b) => hash_pair(10, a, b, h),
        Expr::Or(a, b) => hash_pair(11, a, b, h),
        Expr::Not(a) => {
            12u8.hash(h);
            hash_expr(a, h);
        }
        Expr::If(c, a, b) => {
            13u8.hash(h);
            hash_expr(c, h);
            hash_expr(a, h);
            hash_expr(b, h);
        }
    }
}

fn hash_pair(tag: u8, a: &Expr, b: &Expr, h: &mut DefaultHasher) {
    tag.hash(h);
    hash_expr(a, h);
    hash_expr(b, h);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::Transition;
    use crate::test_serial as isolate;

    fn ring(freq: f64) -> Net {
        let mut net = Net::new("ring");
        let p = net.add_place("P", 1);
        let q = net.add_place("Q", 0);
        net.add_transition(
            Transition::new("exit")
                .delay(1)
                .frequency(Expr::constant(freq))
                .input(p, 1)
                .output(q, 1),
        )
        .unwrap();
        net.add_transition(
            Transition::new("loop")
                .delay(1)
                .frequency(Expr::constant(1.0 - freq))
                .input(p, 1)
                .output(p, 1),
        )
        .unwrap();
        net.add_transition(Transition::new("recycle").delay(0).input(q, 1).output(p, 1))
            .unwrap();
        net
    }

    fn set_limits(limits: CacheLimits) {
        cache().lock().unwrap().limits = limits;
    }

    #[test]
    fn identical_nets_share_one_graph() {
        let _gate = isolate();
        clear();
        let a = reachability(&ring(0.25), 100).unwrap();
        let b = reachability(&ring(0.25), 100).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second lookup must be a cache hit");
        let s = stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert_eq!(s.evictions, 0);
        assert!(s.bytes > 0, "resident bytes should be accounted");
    }

    #[test]
    fn different_timings_are_distinct_entries() {
        let _gate = isolate();
        clear();
        let a = reachability(&ring(0.25), 100).unwrap();
        let b = reachability(&ring(0.125), 100).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_ne!(fingerprint(&ring(0.25)), fingerprint(&ring(0.125)));
        // Same shape, same state space; different edge probabilities.
        assert_eq!(a.state_count(), b.state_count());
        let pa: Vec<f64> = a.out_edges(0).iter().map(|&(_, p)| p).collect();
        let pb: Vec<f64> = b.out_edges(0).iter().map(|&(_, p)| p).collect();
        assert_ne!(pa, pb);
    }

    #[test]
    fn budget_still_enforced_on_hit_path() {
        let _gate = isolate();
        clear();
        let net = ring(0.5);
        let g = reachability(&net, 100).unwrap();
        assert!(g.state_count() > 1);
        // A budget below the cached graph's size must error, not hit.
        let err = reachability(&net, 1).unwrap_err();
        assert!(matches!(err, GtpnError::StateSpaceExceeded { limit: 1 }));
    }

    #[test]
    fn cached_solution_matches_fresh_solution() {
        let _gate = isolate();
        clear();
        let net = ring(0.1);
        let fresh = net
            .reachability(100)
            .unwrap()
            .solve(1e-13, 100_000)
            .unwrap();
        let cached = reachability(&net, 100)
            .unwrap()
            .solve(1e-13, 100_000)
            .unwrap();
        assert_eq!(
            fresh.state_probabilities(),
            cached.state_probabilities(),
            "cache must not change results"
        );
    }

    #[test]
    fn recently_used_entries_survive_eviction() {
        let _gate = isolate();
        clear();
        let cap = 4;
        set_limits(CacheLimits {
            max_entries: cap,
            max_bytes: usize::MAX,
        });
        // Distinct frequencies i/10007 never collide with the other tests'
        // 0.25 / 0.125 / 0.5 / 0.1 rings.
        let freq = |i: usize| (i + 1) as f64 / 10007.0;
        // Fill to capacity.
        for i in 0..cap {
            reachability(&ring(freq(i)), 100).unwrap();
        }
        assert_eq!(stats().entries, cap);
        // Touch entry 0 so entry 1 becomes the least recently used…
        let kept = reachability(&ring(freq(0)), 100).unwrap();
        // …then overflow by one: entry 1 must be the victim.
        reachability(&ring(freq(cap)), 100).unwrap();
        let s = stats();
        assert_eq!(s.entries, cap);
        assert_eq!(s.evictions, 1);
        let again = reachability(&ring(freq(0)), 100).unwrap();
        assert!(Arc::ptr_eq(&kept, &again), "refreshed entry was evicted");
        let before = stats().misses;
        reachability(&ring(freq(1)), 100).unwrap();
        assert_eq!(stats().misses, before + 1, "LRU victim should re-expand");
        clear();
    }

    #[test]
    fn byte_budget_bounds_residency() {
        let _gate = isolate();
        clear();
        let big = ring(0.77);
        let one = entry_cost(&big, &big.reachability(100).unwrap());
        // Room for one graph but not two.
        set_limits(CacheLimits {
            max_entries: usize::MAX,
            max_bytes: one + one / 2,
        });
        reachability(&ring(0.77), 100).unwrap();
        reachability(&ring(0.66), 100).unwrap();
        let s = stats();
        assert_eq!(s.entries, 1, "byte budget should hold one graph");
        assert_eq!(s.evictions, 1);
        assert!(s.bytes <= one + one / 2);
        // The newest entry is the resident one.
        reachability(&ring(0.66), 100).unwrap();
        assert_eq!(stats().hits, 1);
        clear();
    }

    #[test]
    fn eviction_prefers_the_inserting_partition() {
        let _gate = isolate();
        clear();
        set_limits(CacheLimits {
            max_entries: 2,
            max_bytes: usize::MAX,
        });
        let a = partition_scope("figA", || reachability(&ring(0.31), 100).unwrap());
        let b = partition_scope("figB", || reachability(&ring(0.32), 100).unwrap());
        // figA overflows the cache: its own older entry is the victim,
        // figB's survives even though it is not the most recent.
        partition_scope("figA", || reachability(&ring(0.33), 100).unwrap());
        let b2 = partition_scope("figB", || reachability(&ring(0.32), 100).unwrap());
        assert!(Arc::ptr_eq(&b, &b2), "other partition's entry was evicted");
        let a2 = partition_scope("figA", || reachability(&ring(0.31), 100).unwrap());
        assert!(
            !Arc::ptr_eq(&a, &a2),
            "inserting partition's own entry should have been the victim"
        );
        clear();
    }

    #[test]
    fn racing_inserts_share_the_first_graph() {
        let _gate = isolate();
        clear();
        let net = ring(0.44);
        let fp = fingerprint(&net);
        // Simulate two workers that both missed and both expanded.
        let g1 = Arc::new(net.reachability(100).unwrap());
        let g2 = Arc::new(net.reachability(100).unwrap());
        let mut c = cache().lock().unwrap();
        let first = c.insert_or_share(fp, &net, Arc::clone(&g1), 100);
        let second = c.insert_or_share(fp, &net, Arc::clone(&g2), 100);
        assert!(
            Arc::ptr_eq(&first, &second),
            "loser must be handed the winner's Arc"
        );
        assert!(Arc::ptr_eq(&first, &g1));
        assert_eq!(c.dedup_drops, 1);
        assert_eq!(c.lru.len(), 1, "the duplicate must not be inserted");
    }
}
