//! The paper's §6.6.1 geometric-delay approximation.
//!
//! The GCD of all deterministic delays sets the time granularity of the GTPN
//! state space, and message-passing activities take hundreds to thousands of
//! machine instructions while interrupts are fielded on single-instruction
//! boundaries. To keep the state space tractable the paper replaces each
//! large constant delay `n` by a *geometrically distributed* delay with the
//! same mean: a pair of delay-1 transitions sharing the stage's input
//! places, one exiting with frequency `1/n` and one looping back with
//! frequency `1 − 1/n` (Figure 6.7).
//!
//! [`GeometricStage`] builds that pair, including held resources such as the
//! paper's `Host` and `MP` tokens which are acquired each unit step and
//! returned at its end (which is how the models realize processor sharing),
//! and optional state-dependent gating (the paper's
//! `(NetIntr = 0) & !Tx & !Ty ->` expressions).

use crate::error::GtpnError;
use crate::expr::Expr;
use crate::net::{Net, PlaceId, TransId, Transition};

/// Builder for a geometric service stage approximating a constant delay.
#[derive(Debug, Clone)]
pub struct GeometricStage {
    name: String,
    mean: f64,
    inputs: Vec<(PlaceId, u32)>,
    outputs: Vec<(PlaceId, u32)>,
    held: Vec<PlaceId>,
    gate: Option<Expr>,
    resource: Option<String>,
}

impl GeometricStage {
    /// Creates a stage with the given mean duration (in time units).
    ///
    /// # Panics
    ///
    /// Panics if `mean < 1.0` — a geometric stage needs at least one unit
    /// step per visit.
    pub fn new(name: impl Into<String>, mean: f64) -> GeometricStage {
        assert!(mean >= 1.0, "geometric stage mean must be >= 1");
        GeometricStage {
            name: name.into(),
            mean,
            inputs: Vec::new(),
            outputs: Vec::new(),
            held: Vec::new(),
            gate: None,
            resource: None,
        }
    }

    /// Token(s) consumed when the stage completes (moved to `outputs`).
    pub fn input(mut self, place: PlaceId, multiplicity: u32) -> GeometricStage {
        self.inputs.push((place, multiplicity));
        self
    }

    /// Token(s) produced when the stage completes.
    pub fn output(mut self, place: PlaceId, multiplicity: u32) -> GeometricStage {
        self.outputs.push((place, multiplicity));
        self
    }

    /// A processor token acquired for each unit step and returned at its end
    /// — competing stages holding the same place share the processor.
    pub fn held(mut self, place: PlaceId) -> GeometricStage {
        self.held.push(place);
        self
    }

    /// State-dependent gate: the stage can only progress while the gate
    /// expression is non-zero (the paper's `expr -> f, 0`).
    pub fn gate(mut self, gate: Expr) -> GeometricStage {
        self.gate = Some(gate);
        self
    }

    /// Resource label attached to the *exit* transition — its usage divided
    /// by the stage's unit delay gives the stage completion rate.
    pub fn resource(mut self, resource: impl Into<String>) -> GeometricStage {
        self.resource = Some(resource.into());
        self
    }

    /// Adds the exit/loop transition pair to `net`; returns
    /// `(exit, loop)` transition ids.
    ///
    /// # Errors
    ///
    /// Propagates [`GtpnError::UnknownPlace`] from the underlying
    /// [`Net::add_transition`] calls.
    pub fn build(self, net: &mut Net) -> Result<(TransId, TransId), GtpnError> {
        let p_exit = 1.0 / self.mean;
        let exit_freq = match &self.gate {
            Some(g) => Expr::gate(g.clone(), Expr::constant(p_exit)),
            None => Expr::constant(p_exit),
        };
        let loop_freq = match &self.gate {
            Some(g) => Expr::gate(g.clone(), Expr::constant(1.0 - p_exit)),
            None => Expr::constant(1.0 - p_exit),
        };

        let mut exit_t = Transition::new(format!("{}_exit", self.name))
            .delay(1)
            .frequency(exit_freq);
        if let Some(r) = &self.resource {
            exit_t = exit_t.resource(r.clone());
        }
        let mut loop_t = Transition::new(format!("{}_loop", self.name))
            .delay(1)
            .frequency(loop_freq);

        for &(p, m) in &self.inputs {
            exit_t = exit_t.input(p, m);
            loop_t = loop_t.input(p, m);
        }
        for &p in &self.held {
            exit_t = exit_t.input(p, 1).output(p, 1);
            loop_t = loop_t.input(p, 1).output(p, 1);
        }
        for &(p, m) in &self.outputs {
            exit_t = exit_t.output(p, m);
        }
        // The loop transition returns the stage's own input tokens.
        for &(p, m) in &self.inputs {
            loop_t = loop_t.output(p, m);
        }

        // Degenerate mean 1.0: the loop transition would have frequency 0,
        // which is fine (never selected), but we still add it for shape
        // uniformity.
        let e = net.add_transition(exit_t)?;
        let l = net.add_transition(loop_t)?;
        Ok((e, l))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_mean_matches_constant_delay() {
        // Figure 6.7: throughput of the approximation equals that of the
        // constant-delay net it replaces.
        let mean = 37.0;
        let mut net = Net::new("geo-stage");
        let p = net.add_place("in", 1);
        let q = net.add_place("back", 0);
        GeometricStage::new("stage", mean)
            .input(p, 1)
            .output(q, 1)
            .resource("lambda")
            .build(&mut net)
            .unwrap();
        net.add_transition(Transition::new("recycle").delay(0).input(q, 1).output(p, 1))
            .unwrap();
        let s = net
            .reachability(100)
            .unwrap()
            .solve(1e-13, 100_000)
            .unwrap();
        // Completion rate should be 1/mean; usage of the exit transition is
        // rate * delay = 1/mean.
        let u = s.resource_usage("lambda").unwrap();
        assert!((u - 1.0 / mean).abs() < 1e-9, "usage {u}");
    }

    #[test]
    fn held_resource_shares_processor() {
        // Two stages share one Host token: each progresses half the time, so
        // completion rates halve relative to a dedicated processor.
        let mut net = Net::new("shared");
        let host = net.add_place("Host", 1);
        let a = net.add_place("A", 1);
        let b = net.add_place("B", 1);
        GeometricStage::new("sa", 10.0)
            .input(a, 1)
            .output(a, 1)
            .held(host)
            .resource("ra")
            .build(&mut net)
            .unwrap();
        GeometricStage::new("sb", 10.0)
            .input(b, 1)
            .output(b, 1)
            .held(host)
            .resource("rb")
            .build(&mut net)
            .unwrap();
        let s = net
            .reachability(1000)
            .unwrap()
            .solve(1e-13, 200_000)
            .unwrap();
        let ra = s.resource_usage("ra").unwrap();
        let rb = s.resource_usage("rb").unwrap();
        // Each stage runs half the time; exit probability per active step is
        // 1/10, so usage of the exit transition is 0.5 * 0.1 = 0.05.
        assert!((ra - 0.05).abs() < 1e-9, "ra {ra}");
        assert!((rb - 0.05).abs() < 1e-9, "rb {rb}");
    }

    #[test]
    fn gated_stage_blocks() {
        // Gate the stage on a place that is always empty: with no other
        // transitions the net deadlocks (nothing can ever fire).
        let mut net = Net::new("gated");
        let p = net.add_place("P", 1);
        let flag = net.add_place("Flag", 0);
        GeometricStage::new("s", 5.0)
            .input(p, 1)
            .output(p, 1)
            .gate(Expr::Not(Box::new(Expr::place_empty(flag))))
            .build(&mut net)
            .unwrap();
        let err = net.reachability(100).unwrap_err();
        assert!(matches!(err, GtpnError::Deadlock { .. }));
    }

    #[test]
    #[should_panic(expected = "mean must be >= 1")]
    fn rejects_sub_unit_mean() {
        GeometricStage::new("bad", 0.5);
    }
}
