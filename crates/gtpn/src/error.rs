use std::fmt;

/// Errors produced while building or analyzing a GTPN.
#[derive(Debug, Clone, PartialEq)]
pub enum GtpnError {
    /// A transition referenced a place id that does not belong to the net.
    UnknownPlace {
        /// Name of the offending transition.
        transition: String,
        /// The out-of-range place index.
        place: usize,
    },
    /// A frequency expression evaluated to a negative or non-finite value.
    BadFrequency {
        /// Name of the offending transition.
        transition: String,
        /// The offending value.
        value: f64,
    },
    /// The instantaneous-firing phase did not terminate (a cycle of
    /// zero-delay transitions keeps producing tokens).
    ZeroDelayDivergence,
    /// The reachability graph exceeded the caller-supplied state budget.
    StateSpaceExceeded {
        /// The budget that was exceeded.
        limit: usize,
    },
    /// The net dead-locked: a reachable state has no in-progress firing and
    /// no enabled transition. Steady-state analysis is undefined.
    Deadlock {
        /// Index of the dead state in the reachability graph.
        state: usize,
    },
    /// The steady-state solver did not reach the requested tolerance.
    NoConvergence {
        /// Residual after the final sweep.
        residual: f64,
        /// Number of sweeps performed.
        iterations: usize,
    },
    /// A requested resource or transition name does not exist in the net.
    UnknownName(String),
    /// The net has no places or no transitions.
    EmptyNet,
}

impl fmt::Display for GtpnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GtpnError::UnknownPlace { transition, place } => {
                write!(
                    f,
                    "transition `{transition}` references unknown place index {place}"
                )
            }
            GtpnError::BadFrequency { transition, value } => {
                write!(
                    f,
                    "transition `{transition}` frequency evaluated to invalid value {value}"
                )
            }
            GtpnError::ZeroDelayDivergence => {
                write!(
                    f,
                    "instantaneous firing phase diverged (zero-delay transition cycle)"
                )
            }
            GtpnError::StateSpaceExceeded { limit } => {
                write!(f, "reachability graph exceeded the state budget of {limit}")
            }
            GtpnError::Deadlock { state } => {
                write!(f, "net deadlocks in reachable state {state}")
            }
            GtpnError::NoConvergence {
                residual,
                iterations,
            } => {
                write!(
                    f,
                    "steady-state solver stalled at residual {residual:.3e} after {iterations} sweeps"
                )
            }
            GtpnError::UnknownName(name) => write!(f, "unknown resource or transition `{name}`"),
            GtpnError::EmptyNet => write!(f, "net has no places or no transitions"),
        }
    }
}

impl std::error::Error for GtpnError {}
