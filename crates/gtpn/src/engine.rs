//! The analysis engine: the one road from a [`Net`] to steady-state numbers.
//!
//! Every model, experiment, sweep point, cross-validation run and bench in
//! this repository obtains its throughput/usage figures through
//! [`AnalysisEngine::analyze`]. The engine owns three concerns the callers
//! used to hand-roll separately:
//!
//! * **Backend selection.** A [`Backend`] turns a net into an
//!   [`AnalysisData`]; two are provided. [`ExactMarkov`] is the paper's
//!   reference pipeline — reachability expansion (memoized by
//!   [`crate::cache`]) followed by the Gauss–Seidel steady-state solve,
//!   with a per-thread [`SolveWorkspace`] kept warm across points. When
//!   the net qualifies for exact lumping ([`crate::lump`]) and the
//!   engine's [`LumpSel`] policy permits, the exact backend builds and
//!   solves the *quotient* chain instead and de-lumps the measures —
//!   identical numbers to solver tolerance, combinatorially fewer
//!   states, so `Auto` falls back to DES only past the lumped budget.
//!   [`DesEstimate`] replaces the exact solve by batched Monte-Carlo runs
//!   of [`crate::sim`] and reports batch-means estimates with 95%
//!   confidence half-widths — usable when the reachability graph is too
//!   large to enumerate. [`BackendSel::Auto`] (the `HSIPC_BACKEND=auto`
//!   default) tries the exact path and falls back to DES exactly when the
//!   state budget is exceeded, which opens the `n > 4` conversation axis
//!   the exact solver cannot reach.
//!
//! * **Canonical solution caching.** Results are cached process-globally,
//!   keyed by `(canonical net fingerprint, backend, solver parameters)`
//!   where the fingerprint comes from [`crate::canonical`] — so two call
//!   sites that build the *same model in different orders* share one
//!   solve. A hit under a permuted build order transparently remaps
//!   [`PlaceId`]/[`TransId`] queries through the composed permutation. Hits
//!   are verified by full structural equality of the canonical forms, so
//!   fingerprint collisions cannot alias distinct nets. The cache is
//!   bounded like the reachability cache — by resident bytes
//!   (`HSIPC_CACHE_MB`) and optionally entry count (`HSIPC_CACHE_CAP`,
//!   `0` disables), see [`crate::cache::CacheLimits`] — with intrusive
//!   LRU eviction that prefers victims from the inserting experiment's
//!   own partition ([`crate::cache::partition_scope`]). It reports the
//!   same counter set via [`cache_stats`].
//!
//! * **Warm starts.** Consecutive points of a sweep differ only in a few
//!   rates, so their embedded chains share a *shape*
//!   ([`ReachabilityGraph::shape_fingerprint`]). A [`WarmStart`] carries
//!   converged embedded distributions across same-shape solves — threaded
//!   explicitly through [`AnalysisEngine::analyze_warm`], or installed
//!   ambiently on a sweep worker via [`warm_point_begin`] — and the next
//!   solve starts its iteration from the neighbor's answer instead of the
//!   uniform vector. Seeding moves the solver's *trajectory*, never its
//!   destination: the stopping rule is unchanged, so a warm solve agrees
//!   with a cold one to solver tolerance (`HSIPC_WARM_START=0` turns the
//!   hand-off off for A/B comparison).
//!
//! * **Determinism.** With lumping off the exact backend is bitwise
//!   identical to calling `net.reachability(budget)?.solve(tol, sweeps)`
//!   directly — a cache miss always solves the *caller's* net, never the
//!   canonical reordering (summation order changes the last ulp). A
//!   lumped solve is itself deterministic (byte-identical across runs,
//!   thread counts and build orders) but agrees with the raw solve to
//!   solver tolerance, not bit-for-bit — which is why the cache key
//!   records whether a result is lumped. DES replication seeds derive
//!   from the canonical fingerprint, so estimates are identical run-to-run
//!   and across build orders, no matter which sweep worker executes them.

use crate::cache::CacheLimits;
use crate::canonical::{self, Canonical};
use crate::error::GtpnError;
use crate::lru::BoundedLru;
use crate::lump::LumpSel;
use crate::net::{Net, PlaceId, TransId};
use crate::par::ParallelBudget;
use crate::reach::ReachabilityGraph;
use crate::sim::{self, ConfidenceInterval, SimOptions};
use crate::solve::{Solution, SolveWorkspace};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cell::RefCell;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Which backend produced (or should produce) an analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// Exact embedded-Markov-chain solution (reachability + Gauss–Seidel).
    Exact,
    /// Batched discrete-event simulation estimate with confidence intervals.
    Des,
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendKind::Exact => write!(f, "exact"),
            BackendKind::Des => write!(f, "des"),
        }
    }
}

/// Backend selection policy for an engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendSel {
    /// Always solve exactly; a too-large state space is an error.
    Exact,
    /// Always estimate by simulation.
    Des,
    /// Solve exactly when the state space fits the budget, otherwise
    /// estimate by simulation — the default.
    Auto,
}

impl BackendSel {
    /// Policy selected by `HSIPC_BACKEND` (`exact`, `des` or `auto`,
    /// case-insensitive); unset or unrecognized values mean [`Auto`].
    ///
    /// [`Auto`]: BackendSel::Auto
    pub fn from_env() -> BackendSel {
        match std::env::var("HSIPC_BACKEND") {
            Ok(v) if v.eq_ignore_ascii_case("exact") => BackendSel::Exact,
            Ok(v) if v.eq_ignore_ascii_case("des") => BackendSel::Des,
            _ => BackendSel::Auto,
        }
    }
}

/// Options for the DES backend's batched replications.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DesOptions {
    /// Simulated horizon per replication (net time units).
    pub horizon: u64,
    /// Warm-up discarded per replication.
    pub warmup: u64,
    /// Number of independent replications (>= 2 for a variance).
    pub batches: usize,
}

impl Default for DesOptions {
    fn default() -> Self {
        DesOptions {
            horizon: 400_000,
            warmup: 40_000,
            batches: 4,
        }
    }
}

/// Full configuration of an [`AnalysisEngine`].
#[derive(Debug, Clone, PartialEq)]
pub struct EngineConfig {
    /// Backend selection policy.
    pub backend: BackendSel,
    /// Gauss–Seidel convergence tolerance (exact backend).
    pub tolerance: f64,
    /// Gauss–Seidel sweep limit (exact backend).
    pub max_sweeps: usize,
    /// Reachability state budget; `Auto` falls back to DES beyond it.
    pub state_budget: usize,
    /// DES replication options.
    pub des: DesOptions,
    /// Use the red-black ordered solver (exact backend). Results agree
    /// with the default serial sweep to solver tolerance but are not
    /// bit-identical to it, so this is opt-in (`HSIPC_PAR_SOLVE=1` via
    /// [`crate::par::par_solve_enabled`]) and part of the cache key. The
    /// red-black results themselves are independent of thread count.
    pub par_solve: bool,
    /// Seed each solve from a same-shape neighbor's converged solution
    /// when a [`WarmStart`] store is in reach (explicit or ambient); see
    /// the module docs. On by default; `HSIPC_WARM_START=0` disables via
    /// [`warm_start_enabled`] for engines built by
    /// [`from_env`](AnalysisEngine::from_env). Not part of the cache key:
    /// warm and cold solves are interchangeable to solver tolerance.
    pub warm_start: bool,
    /// Exact-lumping policy ([`crate::lump`]): solve the quotient chain
    /// of a qualifying net instead of the raw tangible chain. Default
    /// [`LumpSel::Auto`]; part of the cache key (lumped and raw results
    /// agree to solver tolerance, not bit-for-bit). Engines built by
    /// [`from_env`](AnalysisEngine::from_env) read `HSIPC_LUMP` via
    /// [`LumpSel::from_env`].
    pub lump: LumpSel,
}

impl Default for EngineConfig {
    /// The models' production parameters: tolerance `1e-11`, 400 000-sweep
    /// limit, two-million-state budget, [`DesOptions::default`] and
    /// [`BackendSel::Auto`].
    fn default() -> Self {
        EngineConfig {
            backend: BackendSel::Auto,
            tolerance: 1e-11,
            max_sweeps: 400_000,
            state_budget: 2_000_000,
            des: DesOptions::default(),
            par_solve: false,
            warm_start: true,
            lump: LumpSel::Auto,
        }
    }
}

/// Whether warm starting is enabled by the environment: `HSIPC_WARM_START`
/// set to `0`, `off` or `false` disables it; anything else (including
/// unset) enables it. Read fresh on every call — not latched — so tests
/// and the CI identity legs can flip it within one process.
pub fn warm_start_enabled() -> bool {
    match std::env::var("HSIPC_WARM_START") {
        Ok(v) => !(v == "0" || v.eq_ignore_ascii_case("off") || v.eq_ignore_ascii_case("false")),
        Err(_) => true,
    }
}

/// Shapes retained per [`WarmStart`] store before it resets. A sweep point
/// touches a handful of distinct chain shapes (client net, server net, the
/// architecture's local model); the bound only guards against a pathological
/// caller accumulating unboundedly.
const WARM_MAX_SHAPES: usize = 64;

/// A hand-off store of converged embedded distributions, keyed by chain
/// shape ([`ReachabilityGraph::shape_fingerprint`]).
///
/// Two ways to supply one to the engine:
///
/// * **Explicitly** — create a `WarmStart` per solve *chain* and pass
///   `&mut` to [`AnalysisEngine::analyze_warm`]. The store travels with
///   the computation (e.g. the §6.6.3 fixed point keeps one per model
///   role across its iterations), so results cannot depend on which
///   thread runs it.
/// * **Ambiently** — sweep workers install a thread-local store with
///   [`warm_point_begin`] before evaluating a grid point; plain
///   [`analyze`](AnalysisEngine::analyze) calls then pick it up. Code
///   outside a sweep sees no store and solves cold, exactly as before.
///
/// Solutions of directly solved graphs (≤ the dense-LU cutoff) are not
/// recorded: the LU ignores seeds, so storing them would be dead weight.
#[derive(Debug, Default)]
pub struct WarmStart {
    slots: HashMap<u64, Vec<f64>>,
}

impl WarmStart {
    /// An empty store.
    pub fn new() -> WarmStart {
        WarmStart::default()
    }

    fn get(&self, shape: u64) -> Option<&[f64]> {
        self.slots.get(&shape).map(Vec::as_slice)
    }

    fn put(&mut self, shape: u64, pi: Vec<f64>) {
        if self.slots.len() >= WARM_MAX_SHAPES && !self.slots.contains_key(&shape) {
            self.slots.clear();
        }
        self.slots.insert(shape, pi);
    }
}

thread_local! {
    /// The ambient per-worker store: `(grid-eval token, store)`.
    static AMBIENT_WARM: RefCell<Option<(u64, WarmStart)>> = const { RefCell::new(None) };
}

/// A fresh token identifying one grid evaluation; see [`warm_point_begin`].
pub fn warm_token() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// Installs (or keeps) the calling worker's ambient [`WarmStart`] for the
/// grid evaluation identified by `token`. Called by the sweep layer before
/// each point: the first point a worker takes creates the store, later
/// points on the same worker reuse it — that continuity *is* the warm
/// chain. A store left behind by a different grid eval (stale token) is
/// replaced, never reused across evals.
pub fn warm_point_begin(token: u64) {
    AMBIENT_WARM.with(|cell| {
        let mut cell = cell.borrow_mut();
        match cell.as_ref() {
            Some((t, _)) if *t == token => {}
            _ => *cell = Some((token, WarmStart::new())),
        }
    });
}

/// Drops the calling thread's ambient store if it belongs to `token`.
/// Called by the sweep layer after a grid evaluation returns, so solves
/// outside any sweep never see a leftover store.
pub fn warm_end(token: u64) {
    AMBIENT_WARM.with(|cell| {
        let mut cell = cell.borrow_mut();
        if matches!(cell.as_ref(), Some((t, _)) if *t == token) {
            *cell = None;
        }
    });
}

/// The seed for a solve of `shape` from the explicit store if given, else
/// the ambient one (cloned out so no borrow crosses the solve).
fn warm_seed(warm: Option<&mut WarmStart>, shape: u64) -> Option<Vec<f64>> {
    match warm {
        Some(w) => w.get(shape).map(<[f64]>::to_vec),
        None => AMBIENT_WARM.with(|cell| {
            cell.borrow()
                .as_ref()
                .and_then(|(_, w)| w.get(shape).map(<[f64]>::to_vec))
        }),
    }
}

/// Records a converged distribution into the explicit store if given, else
/// the ambient one (a no-op when neither exists).
fn warm_store(warm: Option<&mut WarmStart>, shape: u64, pi: Vec<f64>) {
    match warm {
        Some(w) => w.put(shape, pi),
        None => AMBIENT_WARM.with(|cell| {
            if let Some((_, w)) = cell.borrow_mut().as_mut() {
                w.put(shape, pi);
            }
        }),
    }
}

/// The raw product of one backend run, in the analyzed net's id space.
///
/// Construction is internal to the crate: the two built-in backends fill
/// it, [`Analysis`] reads it. Exact runs carry the reachability graph and
/// [`Solution`] and answer queries through them; DES runs carry averaged
/// per-resource/per-place/per-transition vectors plus half-widths.
#[derive(Debug)]
pub struct AnalysisData {
    backend: BackendKind,
    /// Tangible-state count (0 for DES — nothing was enumerated).
    states: usize,
    /// DES: resource -> mean of batch means.
    resource_usage: HashMap<String, f64>,
    /// DES: resource -> 95% half-width over batch means.
    resource_half_width: HashMap<String, f64>,
    /// DES: resource -> minimum delay among its transitions (for rates).
    resource_delay: HashMap<String, u64>,
    /// DES: per-place time-averaged tokens.
    mean_tokens: Vec<f64>,
    /// DES: per-transition time-averaged in-progress firings.
    transition_usage: Vec<f64>,
    /// Exact: the graph and solution all queries delegate to.
    exact: Option<(Arc<ReachabilityGraph>, Solution)>,
    /// Lumped exact runs: `(iterations, residual)` of the quotient-chain
    /// solve. The de-lumped measures live in the DES-shaped fields above
    /// (they are plain per-name/per-id aggregates; no graph is retained),
    /// but carry no sampling error — `resource_half_width` stays empty.
    lumped: Option<(usize, f64)>,
}

/// The result of [`AnalysisEngine::analyze`]: backend-agnostic access to
/// steady-state measures, cheap to clone and share across sweep workers.
///
/// Ids passed to [`mean_tokens`](Analysis::mean_tokens) /
/// [`transition_usage`](Analysis::transition_usage) are interpreted in the
/// id space of the net the caller passed to `analyze` — when the result
/// was served from cache under a different build order, the stored
/// permutation is applied transparently.
#[derive(Debug, Clone)]
pub struct Analysis {
    data: Arc<AnalysisData>,
    /// `orig place id -> stored id`; `None` = identity.
    place_map: Option<Arc<Vec<usize>>>,
    /// `orig transition id -> stored id`; `None` = identity.
    trans_map: Option<Arc<Vec<usize>>>,
}

impl Analysis {
    fn identity(data: Arc<AnalysisData>) -> Analysis {
        Analysis {
            data,
            place_map: None,
            trans_map: None,
        }
    }

    fn map_place(&self, p: PlaceId) -> PlaceId {
        match &self.place_map {
            Some(m) => PlaceId(m.get(p.0).copied().unwrap_or(p.0)),
            None => p,
        }
    }

    fn map_trans(&self, t: TransId) -> TransId {
        match &self.trans_map {
            Some(m) => TransId(m.get(t.0).copied().unwrap_or(t.0)),
            None => t,
        }
    }

    /// Which backend produced this analysis.
    pub fn backend(&self) -> BackendKind {
        self.data.backend
    }

    /// States enumerated: raw tangible states for an unlumped exact run,
    /// *lumped* states when the quotient chain was solved
    /// ([`lumped`](Analysis::lumped)), 0 when the DES backend ran.
    pub fn states(&self) -> usize {
        self.data.states
    }

    /// Whether this exact analysis solved the lumped quotient chain.
    pub fn lumped(&self) -> bool {
        self.data.lumped.is_some()
    }

    /// Usage (time-weighted mean in-progress count) of a resource label.
    ///
    /// # Errors
    ///
    /// Returns [`GtpnError::UnknownName`] for an unknown resource.
    pub fn resource_usage(&self, resource: &str) -> Result<f64, GtpnError> {
        match &self.data.exact {
            Some((_, sol)) => sol.resource_usage(resource),
            None => self
                .data
                .resource_usage
                .get(resource)
                .copied()
                .ok_or_else(|| GtpnError::UnknownName(resource.to_string())),
        }
    }

    /// Completion rate of a resource: `usage / delay` of its transitions
    /// (usage itself for zero-delay resources), as
    /// [`Solution::resource_rate`].
    ///
    /// # Errors
    ///
    /// Returns [`GtpnError::UnknownName`] for an unknown resource.
    pub fn resource_rate(&self, resource: &str) -> Result<f64, GtpnError> {
        match &self.data.exact {
            Some((_, sol)) => sol.resource_rate(resource),
            None => {
                let usage = self.resource_usage(resource)?;
                let delay = *self
                    .data
                    .resource_delay
                    .get(resource)
                    .ok_or_else(|| GtpnError::UnknownName(resource.to_string()))?;
                Ok(if delay == 0 {
                    usage
                } else {
                    usage / delay as f64
                })
            }
        }
    }

    /// 95% confidence interval on a resource's usage. `Some` only for DES
    /// analyses — the exact backend's numbers carry no sampling error.
    pub fn resource_interval(&self, resource: &str) -> Option<ConfidenceInterval> {
        if self.data.backend != BackendKind::Des {
            return None;
        }
        Some(ConfidenceInterval {
            estimate: self.data.resource_usage.get(resource).copied()?,
            half_width: self.data.resource_half_width.get(resource).copied()?,
        })
    }

    /// Time-averaged token count of a place (tokens in transit inside
    /// in-progress firings not counted, on either backend).
    pub fn mean_tokens(&self, place: PlaceId) -> f64 {
        let p = self.map_place(place);
        match &self.data.exact {
            Some((graph, sol)) => graph.mean_tokens(sol, p),
            None => self.data.mean_tokens.get(p.0).copied().unwrap_or(0.0),
        }
    }

    /// Usage of an individual transition.
    pub fn transition_usage(&self, transition: TransId) -> f64 {
        let t = self.map_trans(transition);
        match &self.data.exact {
            Some((_, sol)) => sol.transition_usage(t),
            None => self.data.transition_usage.get(t.0).copied().unwrap_or(0.0),
        }
    }

    /// Gauss–Seidel sweeps performed (exact backend only; for a lumped
    /// run, the quotient-chain solve's count).
    pub fn iterations(&self) -> Option<usize> {
        self.data
            .exact
            .as_ref()
            .map(|(_, s)| s.iterations())
            .or(self.data.lumped.map(|(i, _)| i))
    }

    /// Final solver residual (exact backend only; for a lumped run, the
    /// quotient-chain solve's residual).
    pub fn residual(&self) -> Option<f64> {
        self.data
            .exact
            .as_ref()
            .map(|(_, s)| s.residual())
            .or(self.data.lumped.map(|(_, r)| r))
    }

    /// The underlying reachability graph — `Some` only for an unlumped
    /// exact analysis whose state indices are in the caller's own id
    /// space (i.e. not a cache hit served under a permuted build order).
    /// Lumped analyses keep no graph: pin [`LumpSel::Off`] to inspect
    /// raw states.
    pub fn graph(&self) -> Option<&Arc<ReachabilityGraph>> {
        match (&self.data.exact, &self.place_map, &self.trans_map) {
            (Some((g, _)), None, None) => Some(g),
            _ => None,
        }
    }
}

/// A strategy for turning a net into steady-state numbers.
///
/// The two implementations are [`ExactMarkov`] and [`DesEstimate`];
/// [`AnalysisData`] construction is crate-internal, so external backends
/// are not yet pluggable from outside `gtpn` — the trait is the seam
/// future ones (truncated state spaces, red-black solvers) slot into.
pub trait Backend: Sync {
    /// The kind tag this backend caches its results under.
    fn kind(&self) -> BackendKind;
    /// Analyzes `net` under `cfg`, in `net`'s own id space, drawing any
    /// extra worker threads from `par` (see [`ParallelBudget`]); backends
    /// must produce results independent of what the budget grants. `warm`
    /// is the explicit warm-start store, if the caller threads one.
    ///
    /// # Errors
    ///
    /// Backend-specific; see [`Net::reachability`],
    /// [`ReachabilityGraph::solve`] and [`sim::simulate`].
    fn run(
        &self,
        net: &Net,
        cfg: &EngineConfig,
        par: &ParallelBudget,
        warm: Option<&mut WarmStart>,
    ) -> Result<AnalysisData, GtpnError>;
}

thread_local! {
    /// The per-thread scratch workspace every exact solve runs through.
    static WORKSPACE: RefCell<SolveWorkspace> = RefCell::new(SolveWorkspace::new());
}

/// Solves `graph` through the per-thread workspace with the configured
/// solver, warm-seeding from (and storing back to) the caller's or the
/// ambient [`WarmStart`] store. The common trunk of the raw and lumped
/// exact paths.
fn solve_graph(
    graph: &ReachabilityGraph,
    cfg: &EngineConfig,
    par: &ParallelBudget,
    mut warm: Option<&mut WarmStart>,
) -> Result<Solution, GtpnError> {
    let shape = graph.shape_fingerprint();
    let seed = if cfg.warm_start {
        warm_seed(warm.as_deref_mut(), shape)
    } else {
        None
    };
    let solution = WORKSPACE.with(|ws| {
        let mut ws = ws.borrow_mut();
        if cfg.par_solve {
            // Red-black: always when configured (the ordering changes
            // the trajectory, so it must not depend on core
            // availability). The solver claims its worker width from
            // the budget per sweep, widening as pool workers drain.
            Solution::solve_red_black_budgeted(
                graph,
                cfg.tolerance,
                cfg.max_sweeps,
                &mut ws,
                par,
                seed.as_deref(),
            )
        } else {
            Solution::solve_seeded_with(
                graph,
                cfg.tolerance,
                cfg.max_sweeps,
                &mut ws,
                seed.as_deref(),
            )
        }
    })?;
    if cfg.warm_start && graph.state_count() > crate::solve::DIRECT_MAX_STATES {
        warm_store(warm, shape, solution.embedded_probabilities().to_vec());
    }
    Ok(solution)
}

/// The exact pipeline: reachability expansion + Gauss–Seidel, with a warm
/// per-thread [`SolveWorkspace`]. Lumps the chain first when the config's
/// [`LumpSel`] permits and the net qualifies ([`crate::lump::lumpable`]).
#[derive(Debug, Clone, Copy)]
pub struct ExactMarkov {
    /// Whether a raw expansion goes through the process-global
    /// reachability memo ([`crate::cache`]). The engine's cached path
    /// turns this off — its own solution cache already retains the graph
    /// inside the cached [`AnalysisData`], and storing the same `Arc` in
    /// both caches double-counted hundreds of MB against the byte budget
    /// for a memo that never got a lookup.
    pub memoize_graph: bool,
}

impl Default for ExactMarkov {
    /// Memoization on — right for standalone use, where nothing else
    /// retains the expanded graph.
    fn default() -> Self {
        ExactMarkov {
            memoize_graph: true,
        }
    }
}

impl Backend for ExactMarkov {
    fn kind(&self) -> BackendKind {
        BackendKind::Exact
    }

    fn run(
        &self,
        net: &Net,
        cfg: &EngineConfig,
        par: &ParallelBudget,
        warm: Option<&mut WarmStart>,
    ) -> Result<AnalysisData, GtpnError> {
        if cfg.lump.enabled() && crate::lump::lumpable(net) {
            let lumped = crate::lump::reach_lumped_budgeted(net, cfg.state_budget, par)?;
            let solution = solve_graph(&lumped.graph, cfg, par, warm)?;
            let d = lumped.delump(&solution);
            return Ok(AnalysisData {
                backend: BackendKind::Exact,
                states: lumped.graph.state_count(),
                resource_usage: d.resource_usage,
                resource_half_width: HashMap::new(),
                resource_delay: d.resource_delay,
                mean_tokens: d.mean_tokens,
                transition_usage: d.transition_usage,
                exact: None,
                lumped: Some((solution.iterations(), solution.residual())),
            });
        }
        let graph = if self.memoize_graph {
            crate::cache::reachability_budgeted(net, cfg.state_budget, par)?
        } else {
            Arc::new(net.reachability_budgeted(cfg.state_budget, par)?)
        };
        let solution = solve_graph(&graph, cfg, par, warm)?;
        Ok(AnalysisData {
            backend: BackendKind::Exact,
            states: graph.state_count(),
            resource_usage: HashMap::new(),
            resource_half_width: HashMap::new(),
            resource_delay: HashMap::new(),
            mean_tokens: Vec::new(),
            transition_usage: Vec::new(),
            exact: Some((graph, solution)),
            lumped: None,
        })
    }
}

/// The simulation backend: `batches` independent replications of
/// [`sim::simulate`], combined into batch-means estimates with 95%
/// half-widths. Replication seeds derive from the canonical net
/// fingerprint, so the estimate is a pure function of the model — stable
/// across runs, build orders and sweep-worker schedules.
#[derive(Debug, Clone, Copy, Default)]
pub struct DesEstimate;

impl Backend for DesEstimate {
    fn kind(&self) -> BackendKind {
        BackendKind::Des
    }

    fn run(
        &self,
        net: &Net,
        cfg: &EngineConfig,
        _par: &ParallelBudget,
        _warm: Option<&mut WarmStart>,
    ) -> Result<AnalysisData, GtpnError> {
        net.validate()?;
        let batches = cfg.des.batches.max(2);
        let opts = SimOptions {
            horizon: cfg.des.horizon,
            warmup: cfg.des.warmup,
        };
        // Simulate the *canonical* net: the sampled trajectory depends on
        // transition iteration order, so running the caller's ordering
        // would make the estimate depend on build order even with
        // identical seeds. Per-id vectors are mapped back afterwards.
        let canon = canonical::canonicalize(net);
        let fp = canonical::fingerprint_canonical(&canon.net);
        let resources: Vec<String> = net.resources().iter().map(|r| r.to_string()).collect();
        let mut batch_usage: Vec<Vec<f64>> = vec![Vec::with_capacity(batches); resources.len()];
        let mut canon_tokens = vec![0.0f64; net.place_count()];
        let mut canon_usage = vec![0.0f64; net.transition_count()];
        for b in 0..batches {
            let seed = splitmix64(fp ^ splitmix64(b as u64 + 1));
            let mut rng = StdRng::seed_from_u64(seed);
            let result = sim::simulate(&canon.net, &opts, &mut rng)?;
            for (ri, name) in resources.iter().enumerate() {
                batch_usage[ri].push(result.resource_usage(name)?);
            }
            for (acc, v) in canon_tokens.iter_mut().zip(&result.mean_tokens) {
                *acc += v;
            }
            for (acc, v) in canon_usage.iter_mut().zip(&result.transition_usage) {
                *acc += v;
            }
        }
        let n = batches as f64;
        let mean_tokens: Vec<f64> = canon
            .place_map
            .iter()
            .map(|&c| canon_tokens[c] / n)
            .collect();
        let transition_usage: Vec<f64> = canon
            .trans_map
            .iter()
            .map(|&c| canon_usage[c] / n)
            .collect();
        let mut resource_usage = HashMap::new();
        let mut resource_half_width = HashMap::new();
        for (name, means) in resources.iter().zip(&batch_usage) {
            let mean = means.iter().sum::<f64>() / n;
            let var = means.iter().map(|m| (m - mean) * (m - mean)).sum::<f64>() / (n - 1.0);
            // Same mildly conservative small-batch constant as
            // `sim::confidence_interval`.
            resource_usage.insert(name.clone(), mean);
            resource_half_width.insert(name.clone(), 2.1 * (var / n).sqrt());
        }
        let mut resource_delay = HashMap::new();
        for t in &net.transitions {
            if let Some(r) = &t.resource {
                let d = resource_delay.entry(r.clone()).or_insert(t.delay);
                *d = (*d).min(t.delay);
            }
        }
        Ok(AnalysisData {
            backend: BackendKind::Des,
            states: 0,
            resource_usage,
            resource_half_width,
            resource_delay,
            mean_tokens,
            transition_usage,
            exact: None,
            lumped: None,
        })
    }
}

/// SplitMix64 scramble — the seed spacing for DES replications.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

// ---------------------------------------------------------------------------
// The process-global solution cache.
// ---------------------------------------------------------------------------

/// Cache key: canonical fingerprint, backend kind, solver-parameter hash.
type CacheKey = (u64, BackendKind, u64);

#[derive(Debug)]
struct CacheEntry {
    /// Canonical form, for equality verification of candidate hits.
    canonical: Net,
    /// `canonical place id -> stored (analyzed net's) place id`.
    place_from_canon: Vec<usize>,
    /// `canonical transition id -> stored transition id`.
    trans_from_canon: Vec<usize>,
    data: Arc<AnalysisData>,
}

/// Estimated resident bytes of a cache entry: graph + solution vectors for
/// exact results, the averaged per-name/per-id vectors for DES, plus the
/// canonical net kept for hit verification. The reachability graph `Arc`
/// is usually shared with [`crate::cache`]; counting it in both caches is
/// a deliberate overestimate — the bound stays safe if either cache drops
/// its copy first.
fn entry_bytes(e: &CacheEntry) -> usize {
    let data = match &e.data.exact {
        // Solution: state + embedded probabilities and per-resource maps,
        // ~48 bytes per state dominated by the two f64 vectors.
        Some((graph, _)) => graph.resident_bytes() + 48 * graph.state_count(),
        None => {
            64 * (e.data.resource_usage.len()
                + e.data.resource_half_width.len()
                + e.data.resource_delay.len())
                + 8 * (e.data.mean_tokens.len() + e.data.transition_usage.len())
        }
    };
    data + crate::cache::net_bytes(&e.canonical)
        + 8 * (e.place_from_canon.len() + e.trans_from_canon.len())
        + 128
}

#[derive(Debug)]
struct EngineCache {
    /// key → slot indices in `lru` (a chain: distinct nets can share a
    /// fingerprint).
    map: HashMap<CacheKey, Vec<usize>>,
    lru: BoundedLru<(CacheKey, CacheEntry)>,
    limits: CacheLimits,
    hits: u64,
    misses: u64,
    evictions: u64,
    /// Results recomputed by a racing worker and dropped at insert because
    /// an equal entry had landed first.
    dedup_drops: u64,
}

impl EngineCache {
    fn new(limits: CacheLimits) -> EngineCache {
        EngineCache {
            map: HashMap::new(),
            lru: BoundedLru::new(),
            limits,
            hits: 0,
            misses: 0,
            evictions: 0,
            dedup_drops: 0,
        }
    }

    fn disabled(&self) -> bool {
        self.limits.max_entries == 0 || self.limits.max_bytes == 0
    }

    /// Evicts one entry — the least-recent of the current partition if it
    /// has any, else the global least-recent. False when already empty.
    fn evict_one(&mut self) -> bool {
        let Some(idx) = self.lru.victim(crate::cache::current_partition()) else {
            return false;
        };
        let (key, _) = self.lru.remove(idx);
        if let Some(chain) = self.map.get_mut(&key) {
            chain.retain(|&i| i != idx);
            if chain.is_empty() {
                self.map.remove(&key);
            }
        }
        self.evictions += 1;
        true
    }

    fn stats(&self) -> crate::cache::CacheStats {
        crate::cache::CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            dedup_drops: self.dedup_drops,
            entries: self.lru.len(),
            bytes: self.lru.bytes(),
        }
    }
}

fn engine_cache() -> &'static Mutex<EngineCache> {
    static CACHE: OnceLock<Mutex<EngineCache>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(EngineCache::new(CacheLimits::from_env())))
}

/// Current statistics of the global engine solution cache — the same
/// counter set as [`crate::cache::stats`].
pub fn cache_stats() -> crate::cache::CacheStats {
    engine_cache()
        .lock()
        .expect("engine cache poisoned")
        .stats()
}

/// Empties the global engine cache (counters included) — test isolation.
/// The cache is reconstructed, so `HSIPC_CACHE_CAP`/`HSIPC_CACHE_MB` are
/// re-read: setting them after this call takes effect.
pub fn clear_cache() {
    let mut c = engine_cache().lock().expect("engine cache poisoned");
    *c = EngineCache::new(CacheLimits::from_env());
}

// ---------------------------------------------------------------------------
// The engine.
// ---------------------------------------------------------------------------

/// The pluggable analysis engine; see the module docs.
#[derive(Debug, Clone, Default)]
pub struct AnalysisEngine {
    cfg: EngineConfig,
    /// Core budget for the backends' inner parallelism; `None` means the
    /// process-global budget ([`ParallelBudget::global`]).
    budget: Option<Arc<ParallelBudget>>,
    /// Solution cache; `None` means the process-global one.
    cache: Option<Arc<Mutex<EngineCache>>>,
}

impl AnalysisEngine {
    /// An engine with an explicit configuration.
    pub fn new(cfg: EngineConfig) -> AnalysisEngine {
        AnalysisEngine {
            cfg,
            budget: None,
            cache: None,
        }
    }

    /// The default configuration with the backend policy taken from
    /// `HSIPC_BACKEND` ([`BackendSel::from_env`]), the red-black solver
    /// opt-in from `HSIPC_PAR_SOLVE` ([`crate::par::par_solve_enabled`])
    /// and the lumping policy from `HSIPC_LUMP` ([`LumpSel::from_env`]).
    pub fn from_env() -> AnalysisEngine {
        AnalysisEngine::new(EngineConfig {
            backend: BackendSel::from_env(),
            par_solve: crate::par::par_solve_enabled(),
            warm_start: warm_start_enabled(),
            lump: LumpSel::from_env(),
            ..EngineConfig::default()
        })
    }

    /// This engine with a dedicated core budget. Nested solvers (the
    /// §6.6.3 fixed point, tests pinning parallelism) share one budget
    /// across their engines instead of drawing on the global one.
    pub fn with_budget(mut self, budget: Arc<ParallelBudget>) -> AnalysisEngine {
        self.budget = Some(budget);
        self
    }

    /// This engine with a private solution cache of `cap` entries (`0`
    /// disables caching for this engine), byte-bounded by the same
    /// `HSIPC_CACHE_MB` budget as the global cache. Results no longer flow
    /// through — or count against — the process-global LRU: tests get
    /// isolation without serializing on the global counters, and nested
    /// fixed-point solves stop evicting the outer sweep's hot entries.
    pub fn with_cache(mut self, cap: usize) -> AnalysisEngine {
        self.cache = Some(Arc::new(Mutex::new(EngineCache::new(
            CacheLimits::with_entry_cap(cap),
        ))));
        self
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// The core budget the engine's backends draw extra threads from.
    pub fn budget(&self) -> &ParallelBudget {
        match &self.budget {
            Some(b) => b,
            None => ParallelBudget::global(),
        }
    }

    /// A clone of the budget handle, for passing to sibling engines.
    pub fn budget_handle(&self) -> Option<Arc<ParallelBudget>> {
        self.budget.clone()
    }

    /// The solution cache this engine reads and writes.
    fn cache_mutex(&self) -> &Mutex<EngineCache> {
        match &self.cache {
            Some(c) => c,
            None => engine_cache(),
        }
    }

    /// Statistics of the cache this engine uses (the global one unless
    /// [`with_cache`](Self::with_cache) was applied).
    pub fn cache_stats(&self) -> crate::cache::CacheStats {
        self.cache_mutex()
            .lock()
            .expect("engine cache poisoned")
            .stats()
    }

    /// Hash of the parameters that determine a backend's result, beyond
    /// the net itself — part of the cache key so engines with different
    /// settings never alias. The DES hash includes the state budget so an
    /// `Auto` fallback result is only reused by engines that would have
    /// fallen back at the same point. `lumped` is whether the exact
    /// backend would solve the quotient chain for this net (a property of
    /// net and policy together, computed by [`effective_lump`]): lumped
    /// and raw solves agree to solver tolerance, not bit-for-bit, and
    /// their `states` counts mean different things, so they never alias —
    /// while any two engines that both lump share hits for every
    /// client-permutation of a net through the canonical fingerprint.
    ///
    /// [`effective_lump`]: AnalysisEngine::effective_lump
    fn params_hash(&self, kind: BackendKind, lumped: bool) -> u64 {
        let mut h = DefaultHasher::new();
        match kind {
            BackendKind::Exact => {
                self.cfg.tolerance.to_bits().hash(&mut h);
                self.cfg.max_sweeps.hash(&mut h);
                // The red-black solver converges to slightly different
                // bits, so its results must never alias the serial ones.
                self.cfg.par_solve.hash(&mut h);
                lumped.hash(&mut h);
            }
            BackendKind::Des => {
                self.cfg.des.horizon.hash(&mut h);
                self.cfg.des.warmup.hash(&mut h);
                self.cfg.des.batches.hash(&mut h);
                self.cfg.state_budget.hash(&mut h);
            }
        }
        h.finish()
    }

    /// Whether an exact run of `canon`'s net would solve the lumped
    /// chain under this engine's policy. [`crate::lump::lumpable`] is
    /// permutation-invariant, so probing on the canonical net answers
    /// for the caller's build order too.
    fn effective_lump(&self, kind: BackendKind, canon: &Canonical) -> bool {
        kind == BackendKind::Exact && self.cfg.lump.enabled() && crate::lump::lumpable(&canon.net)
    }

    /// The slot index of a verified hit for `key` under this engine's
    /// state budget, if any. Caller holds the lock.
    fn find_slot(
        c: &EngineCache,
        key: &CacheKey,
        budget: usize,
        canon: &Canonical,
    ) -> Option<usize> {
        let kind = key.1;
        c.map.get(key)?.iter().copied().find(|&i| {
            let (_, e) = c.lru.get(i);
            (kind != BackendKind::Exact || e.data.states <= budget) && e.canonical == canon.net
        })
    }

    /// Looks for a verified cache hit, composing the id permutation when
    /// the stored analysis came from a different build order.
    fn probe(&self, kind: BackendKind, canon: &Canonical, fp: u64) -> Option<Analysis> {
        let key = (
            fp,
            kind,
            self.params_hash(kind, self.effective_lump(kind, canon)),
        );
        let mut c = self.cache_mutex().lock().expect("engine cache poisoned");
        let idx = Self::find_slot(&c, &key, self.cfg.state_budget, canon)?;
        c.lru.touch(idx);
        let (_, entry) = c.lru.get(idx);
        let place_map = compose(&canon.place_map, &entry.place_from_canon);
        let trans_map = compose(&canon.trans_map, &entry.trans_from_canon);
        let analysis = Analysis {
            data: Arc::clone(&entry.data),
            place_map: place_map.map(Arc::new),
            trans_map: trans_map.map(Arc::new),
        };
        c.hits += 1;
        Some(analysis)
    }

    /// Inserts a freshly computed analysis, evicting entries (preferring
    /// the current partition's) until both the entry and the byte bounds
    /// hold. A racing insert of the same net is dropped, not duplicated —
    /// the old chain `push` could stack several copies of one solution
    /// when sweep workers missed simultaneously.
    fn insert(&self, kind: BackendKind, canon: &Canonical, fp: u64, data: &Arc<AnalysisData>) {
        let key = (
            fp,
            kind,
            self.params_hash(kind, self.effective_lump(kind, canon)),
        );
        let mut c = self.cache_mutex().lock().expect("engine cache poisoned");
        if c.disabled() {
            return;
        }
        if let Some(idx) = Self::find_slot(&c, &key, usize::MAX, canon) {
            c.dedup_drops += 1;
            c.lru.touch(idx);
            return;
        }
        let entry = CacheEntry {
            canonical: canon.net.clone(),
            place_from_canon: invert(&canon.place_map),
            trans_from_canon: invert(&canon.trans_map),
            data: Arc::clone(data),
        };
        let bytes = entry_bytes(&entry);
        if bytes > c.limits.max_bytes {
            // Larger than the whole budget: caching it would wipe the
            // cache and still not fit.
            return;
        }
        while c.lru.len() >= c.limits.max_entries || c.lru.bytes() + bytes > c.limits.max_bytes {
            if !c.evict_one() {
                break;
            }
        }
        let idx = c
            .lru
            .insert((key, entry), bytes, crate::cache::current_partition());
        c.map.entry(key).or_default().push(idx);
    }

    /// Runs `backend` on the original net (cache-bypassing core; the miss
    /// is counted by the caller).
    fn run_fresh(
        &self,
        backend: &dyn Backend,
        net: &Net,
        warm: Option<&mut WarmStart>,
    ) -> Result<Arc<AnalysisData>, GtpnError> {
        backend
            .run(net, &self.cfg, self.budget(), warm)
            .map(Arc::new)
    }

    /// Counts a miss on this engine's cache.
    fn count_miss(&self) {
        self.cache_mutex()
            .lock()
            .expect("engine cache poisoned")
            .misses += 1;
    }

    /// Analyzes `net` under the engine's policy; see the module docs.
    ///
    /// # Errors
    ///
    /// Those of the selected backend. Under [`BackendSel::Auto`],
    /// [`GtpnError::StateSpaceExceeded`] from the exact path triggers the
    /// DES fallback instead of being returned.
    pub fn analyze(&self, net: &Net) -> Result<Analysis, GtpnError> {
        self.analyze_warm(net, None)
    }

    /// As [`analyze`](Self::analyze), threading an explicit [`WarmStart`]
    /// store through to the exact backend. The store travels with the
    /// caller's computation (not with whichever thread runs it), so
    /// chained solves stay bit-identical regardless of core budgets.
    ///
    /// # Errors
    ///
    /// As [`analyze`](Self::analyze).
    pub fn analyze_warm(
        &self,
        net: &Net,
        mut warm: Option<&mut WarmStart>,
    ) -> Result<Analysis, GtpnError> {
        let cache_off = {
            let c = self.cache_mutex().lock().expect("engine cache poisoned");
            c.disabled()
        };
        if cache_off {
            self.count_miss();
            // No solution cache retains the graph here, so the raw
            // expansion is worth memoizing in the global reachability
            // cache.
            let exact = ExactMarkov::default();
            return match self.cfg.backend {
                BackendSel::Exact => self.run_fresh(&exact, net, warm).map(Analysis::identity),
                BackendSel::Des => self
                    .run_fresh(&DesEstimate, net, None)
                    .map(Analysis::identity),
                BackendSel::Auto => match self.run_fresh(&exact, net, warm.as_deref_mut()) {
                    Err(GtpnError::StateSpaceExceeded { .. }) => {
                        self.count_miss();
                        self.run_fresh(&DesEstimate, net, None)
                            .map(Analysis::identity)
                    }
                    other => other.map(Analysis::identity),
                },
            };
        }

        let canon = canonical::canonicalize(net);
        let fp = canonical::fingerprint_canonical(&canon.net);
        let solve_cached =
            |backend: &dyn Backend, warm: Option<&mut WarmStart>| -> Result<Analysis, GtpnError> {
                self.count_miss();
                let data = self.run_fresh(backend, net, warm)?;
                self.insert(backend.kind(), &canon, fp, &data);
                Ok(Analysis::identity(data))
            };
        // The solution cache about to hold the result already keeps the
        // graph alive inside its `AnalysisData`; memoizing the expansion
        // again in the global reachability cache would only double-count
        // its bytes (the dead-cache regression BENCH_solver.json caught).
        let exact = ExactMarkov {
            memoize_graph: false,
        };
        match self.cfg.backend {
            BackendSel::Exact => match self.probe(BackendKind::Exact, &canon, fp) {
                Some(hit) => Ok(hit),
                None => solve_cached(&exact, warm),
            },
            BackendSel::Des => match self.probe(BackendKind::Des, &canon, fp) {
                Some(hit) => Ok(hit),
                None => solve_cached(&DesEstimate, None),
            },
            BackendSel::Auto => {
                if let Some(hit) = self.probe(BackendKind::Exact, &canon, fp) {
                    return Ok(hit);
                }
                if let Some(hit) = self.probe(BackendKind::Des, &canon, fp) {
                    return Ok(hit);
                }
                match solve_cached(&exact, warm) {
                    Err(GtpnError::StateSpaceExceeded { .. }) => solve_cached(&DesEstimate, None),
                    other => other,
                }
            }
        }
    }
}

/// `orig -> canon` composed with `canon -> stored`; `None` when the
/// composition is the identity (the common same-build-order case).
fn compose(to_canon: &[usize], from_canon: &[usize]) -> Option<Vec<usize>> {
    let composed: Vec<usize> = to_canon.iter().map(|&c| from_canon[c]).collect();
    if composed.iter().enumerate().all(|(i, &v)| i == v) {
        None
    } else {
        Some(composed)
    }
}

/// Inverts a permutation given as `orig -> canon`.
fn invert(map: &[usize]) -> Vec<usize> {
    let mut inv = vec![0usize; map.len()];
    for (orig, &canon) in map.iter().enumerate() {
        inv[canon] = orig;
    }
    inv
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::net::Transition;

    /// Geometric stage ring with mean `m`; exact usage of "lambda" = 1/m.
    fn geo(m: f64) -> Net {
        let mut net = Net::new("geo");
        let p = net.add_place("P", 1);
        let q = net.add_place("Q", 0);
        net.add_transition(
            Transition::new("exit")
                .delay(1)
                .frequency(Expr::constant(1.0 / m))
                .resource("lambda")
                .input(p, 1)
                .output(q, 1),
        )
        .unwrap();
        net.add_transition(
            Transition::new("loop")
                .delay(1)
                .frequency(Expr::constant(1.0 - 1.0 / m))
                .input(p, 1)
                .output(p, 1),
        )
        .unwrap();
        net.add_transition(Transition::new("recycle").delay(0).input(q, 1).output(p, 1))
            .unwrap();
        net
    }

    /// The same net as `geo`, places and transitions added in reverse.
    fn geo_reversed(m: f64) -> Net {
        let mut net = Net::new("geo");
        let q = net.add_place("Q", 0);
        let p = net.add_place("P", 1);
        net.add_transition(Transition::new("recycle").delay(0).input(q, 1).output(p, 1))
            .unwrap();
        net.add_transition(
            Transition::new("loop")
                .delay(1)
                .frequency(Expr::constant(1.0 - 1.0 / m))
                .input(p, 1)
                .output(p, 1),
        )
        .unwrap();
        net.add_transition(
            Transition::new("exit")
                .delay(1)
                .frequency(Expr::constant(1.0 / m))
                .resource("lambda")
                .input(p, 1)
                .output(q, 1),
        )
        .unwrap();
        net
    }

    fn exact_engine() -> AnalysisEngine {
        AnalysisEngine::new(EngineConfig {
            backend: BackendSel::Exact,
            tolerance: 1e-12,
            max_sweeps: 100_000,
            state_budget: 1_000,
            // These tests assert raw-chain behavior (bitwise identity to
            // a direct solve, graph access); lumping is covered by its
            // own tests below.
            lump: LumpSel::Off,
            ..EngineConfig::default()
        })
    }

    #[test]
    fn exact_backend_is_bitwise_identical_to_direct_solve() {
        let _gate = crate::test_serial();
        clear_cache();
        let net = geo(10.0);
        let direct = net
            .reachability(1_000)
            .unwrap()
            .solve(1e-12, 100_000)
            .unwrap()
            .resource_usage("lambda")
            .unwrap();
        let a = exact_engine().analyze(&net).unwrap();
        assert_eq!(a.backend(), BackendKind::Exact);
        assert_eq!(
            a.resource_usage("lambda").unwrap().to_bits(),
            direct.to_bits()
        );
        assert!(a.iterations().unwrap() > 0);
        assert!(a.residual().unwrap() < 1e-12);
        assert!(a.graph().is_some());
        assert!(a.resource_interval("lambda").is_none());
    }

    #[test]
    fn permuted_build_order_hits_the_cache() {
        let _gate = crate::test_serial();
        clear_cache();
        let engine = exact_engine();
        let first = engine.analyze(&geo(7.0)).unwrap();
        let before = cache_stats();
        let second = engine.analyze(&geo_reversed(7.0)).unwrap();
        let after = cache_stats();
        assert_eq!(after.hits, before.hits + 1, "permuted net must cache-hit");
        assert_eq!(after.misses, before.misses);
        assert_eq!(
            first.resource_usage("lambda").unwrap().to_bits(),
            second.resource_usage("lambda").unwrap().to_bits()
        );
        // Id queries resolve through the composed permutation: place "P"
        // is id 1 in the reversed net, id 0 in the original.
        let reversed = geo_reversed(7.0);
        let p_rev = reversed.place_by_name("P").unwrap();
        let p_orig = geo(7.0).place_by_name("P").unwrap();
        assert_ne!(p_rev, p_orig, "permutation test needs differing ids");
        let direct = first.mean_tokens(p_orig);
        assert!(
            (second.mean_tokens(p_rev) - direct).abs() < 1e-12,
            "remapped mean_tokens must match"
        );
        // A remapped hit exposes no graph (its indices are foreign).
        assert!(second.graph().is_none());
        // Transition queries remap too.
        let t_rev = reversed.transition_by_name("exit").unwrap();
        assert!(second.transition_usage(t_rev) > 0.0);
    }

    #[test]
    fn auto_switches_to_des_exactly_at_the_state_budget() {
        let _gate = crate::test_serial();
        clear_cache();
        let net = geo(6.0);
        let states = net.reachability(1_000).unwrap().state_count();
        let mk = |budget: usize| {
            AnalysisEngine::new(EngineConfig {
                backend: BackendSel::Auto,
                tolerance: 1e-12,
                max_sweeps: 100_000,
                state_budget: budget,
                des: DesOptions {
                    horizon: 60_000,
                    warmup: 6_000,
                    batches: 3,
                },
                par_solve: false,
                warm_start: true,
                // The budget boundary below is stated in *raw* states.
                lump: LumpSel::Off,
            })
        };
        // Budget exactly at the state count: exact backend.
        let at = mk(states).analyze(&net).unwrap();
        assert_eq!(at.backend(), BackendKind::Exact);
        assert_eq!(at.states(), states);
        // One state less: DES fallback, with a confidence interval.
        let below = mk(states - 1).analyze(&net).unwrap();
        assert_eq!(below.backend(), BackendKind::Des);
        let ci = below.resource_interval("lambda").expect("DES has a CI");
        assert!(ci.half_width >= 0.0);
        assert!(
            (ci.estimate - 1.0 / 6.0).abs() < 0.02,
            "DES estimate {} far from exact {}",
            ci.estimate,
            1.0 / 6.0
        );
        // The fallback result is cached: a second call is a hit.
        let before = cache_stats();
        let again = mk(states - 1).analyze(&net).unwrap();
        assert_eq!(again.backend(), BackendKind::Des);
        assert_eq!(cache_stats().hits, before.hits + 1);
    }

    #[test]
    fn des_estimates_are_deterministic_across_build_orders() {
        let _gate = crate::test_serial();
        clear_cache();
        let engine = AnalysisEngine::new(EngineConfig {
            backend: BackendSel::Des,
            des: DesOptions {
                horizon: 60_000,
                warmup: 6_000,
                batches: 3,
            },
            ..EngineConfig::default()
        });
        let a = engine.analyze(&geo(9.0)).unwrap();
        clear_cache(); // force a fresh DES run for the permuted build
        let b = engine.analyze(&geo_reversed(9.0)).unwrap();
        assert_eq!(
            a.resource_usage("lambda").unwrap().to_bits(),
            b.resource_usage("lambda").unwrap().to_bits(),
            "canonical seeding must make DES order-invariant"
        );
    }

    #[test]
    fn distinct_configs_do_not_alias() {
        let _gate = crate::test_serial();
        clear_cache();
        let net = geo(5.0);
        let a = exact_engine().analyze(&net).unwrap();
        let tighter = AnalysisEngine::new(EngineConfig {
            tolerance: 1e-13,
            ..exact_engine().config().clone()
        });
        let before = cache_stats();
        let b = tighter.analyze(&net).unwrap();
        let after = cache_stats();
        assert_eq!(
            after.misses,
            before.misses + 1,
            "tolerance is part of the key"
        );
        assert!(a.resource_usage("lambda").is_ok() && b.resource_usage("lambda").is_ok());
    }

    #[test]
    fn par_solve_agrees_with_serial_and_keys_separately() {
        let _gate = crate::test_serial();
        clear_cache();
        let net = geo(10.0);
        let serial = exact_engine().analyze(&net).unwrap();
        let rb_engine = AnalysisEngine::new(EngineConfig {
            par_solve: true,
            ..exact_engine().config().clone()
        });
        let before = cache_stats();
        let rb = rb_engine.analyze(&net).unwrap();
        assert_eq!(
            cache_stats().misses,
            before.misses + 1,
            "par_solve must be part of the cache key"
        );
        let a = serial.resource_usage("lambda").unwrap();
        let b = rb.resource_usage("lambda").unwrap();
        assert!((a - b).abs() < 1e-10, "{a} vs {b}");
    }

    #[test]
    fn private_cache_is_isolated_from_the_global_one() {
        let _gate = crate::test_serial();
        clear_cache();
        let engine = exact_engine().with_cache(8);
        let net = geo(11.0);
        let global_before = cache_stats();
        engine.analyze(&net).unwrap();
        engine.analyze(&net).unwrap();
        let s = engine.cache_stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        let global_after = cache_stats();
        assert_eq!(global_after.hits, global_before.hits);
        assert_eq!(global_after.misses, global_before.misses);
        // Capacity 0 disables caching for this engine alone.
        let off = exact_engine().with_cache(0);
        off.analyze(&net).unwrap();
        off.analyze(&net).unwrap();
        let s = off.cache_stats();
        assert_eq!((s.hits, s.misses, s.entries), (0, 2, 0));
        assert_eq!(cache_stats().misses, global_after.misses);
    }

    #[test]
    fn backend_sel_env_parsing_defaults_to_auto() {
        // Never mutates the environment: only asserts the fallback.
        assert_eq!(BackendSel::from_env(), BackendSel::Auto);
    }

    /// Two clients cycling through two geometric stages (A → B → A, mean
    /// `m` each) — symmetric and delay-homogeneous, so it lumps, and
    /// distinct in-progress multisets share post-completion markings, so
    /// the quotient chain is *strictly* smaller (10 raw states vs 3).
    fn sym2(m: f64) -> Net {
        let mut net = Net::new("sym2");
        let a = net.add_place("A", 2);
        let b = net.add_place("B", 0);
        net.add_transition(
            Transition::new("exitA")
                .delay(1)
                .frequency(Expr::constant(1.0 / m))
                .resource("lambda")
                .input(a, 1)
                .output(b, 1),
        )
        .unwrap();
        net.add_transition(
            Transition::new("loopA")
                .delay(1)
                .frequency(Expr::constant(1.0 - 1.0 / m))
                .input(a, 1)
                .output(a, 1),
        )
        .unwrap();
        net.add_transition(
            Transition::new("exitB")
                .delay(1)
                .frequency(Expr::constant(1.0 / m))
                .input(b, 1)
                .output(a, 1),
        )
        .unwrap();
        net.add_transition(
            Transition::new("loopB")
                .delay(1)
                .frequency(Expr::constant(1.0 - 1.0 / m))
                .input(b, 1)
                .output(b, 1),
        )
        .unwrap();
        net
    }

    fn lump_engine(lump: LumpSel) -> AnalysisEngine {
        AnalysisEngine::new(EngineConfig {
            backend: BackendSel::Exact,
            tolerance: 1e-12,
            max_sweeps: 100_000,
            state_budget: 10_000,
            lump,
            ..EngineConfig::default()
        })
    }

    #[test]
    fn lumped_engine_agrees_with_raw_and_shrinks_the_chain() {
        let _gate = crate::test_serial();
        clear_cache();
        let net = sym2(6.0);
        let raw = lump_engine(LumpSel::Off).analyze(&net).unwrap();
        let lumped = lump_engine(LumpSel::Auto).analyze(&net).unwrap();
        assert!(!raw.lumped() && lumped.lumped());
        assert_eq!(lumped.backend(), BackendKind::Exact);
        assert!(
            lumped.states() < raw.states(),
            "quotient chain ({}) not smaller than raw ({})",
            lumped.states(),
            raw.states()
        );
        let a = raw.resource_usage("lambda").unwrap();
        let b = lumped.resource_usage("lambda").unwrap();
        assert!((a - b).abs() < 1e-10, "usage {a} vs lumped {b}");
        let ra = raw.resource_rate("lambda").unwrap();
        let rb = lumped.resource_rate("lambda").unwrap();
        assert!((ra - rb).abs() < 1e-10, "rate {ra} vs lumped {rb}");
        for pl in 0..net.place_count() {
            let id = PlaceId(pl);
            assert!(
                (raw.mean_tokens(id) - lumped.mean_tokens(id)).abs() < 1e-10,
                "place {pl} tokens diverged"
            );
        }
        for t in 0..net.transition_count() {
            let id = TransId(t);
            assert!(
                (raw.transition_usage(id) - lumped.transition_usage(id)).abs() < 1e-10,
                "transition {t} usage diverged"
            );
        }
        // A lumped run keeps no raw graph but still reports its solve.
        assert!(lumped.graph().is_none() && raw.graph().is_some());
        assert!(lumped.iterations().unwrap() > 0);
        assert!(lumped.residual().unwrap() < 1e-12);
        assert!(lumped.resource_interval("lambda").is_none());
        // An unknown resource errors on both paths.
        assert!(lumped.resource_usage("nope").is_err());
    }

    #[test]
    fn lumped_and_raw_results_key_separately() {
        let _gate = crate::test_serial();
        clear_cache();
        let net = sym2(9.0);
        lump_engine(LumpSel::Off).analyze(&net).unwrap();
        let before = cache_stats();
        // A lumping engine must not be served the raw entry...
        let lumped = lump_engine(LumpSel::Auto).analyze(&net).unwrap();
        assert!(lumped.lumped());
        assert_eq!(cache_stats().misses, before.misses + 1);
        // ...while On and Auto (same effective policy) share entries.
        let before = cache_stats();
        let again = lump_engine(LumpSel::On).analyze(&net).unwrap();
        assert!(again.lumped());
        assert_eq!(cache_stats().hits, before.hits + 1);
    }

    #[test]
    fn lumping_declines_on_heterogeneous_delays() {
        let _gate = crate::test_serial();
        clear_cache();
        // A delay-2 transition disqualifies the net: the lumping engine
        // must transparently solve the raw chain instead.
        let mut net = Net::new("hetero");
        let a = net.add_place("A", 1);
        net.add_transition(
            Transition::new("T2")
                .delay(2)
                .resource("lambda")
                .input(a, 1)
                .output(a, 1),
        )
        .unwrap();
        let on = lump_engine(LumpSel::On).analyze(&net).unwrap();
        assert!(!on.lumped());
        let off = lump_engine(LumpSel::Off).analyze(&net).unwrap();
        assert_eq!(
            on.resource_usage("lambda").unwrap().to_bits(),
            off.resource_usage("lambda").unwrap().to_bits(),
            "declined lumping must leave the raw pipeline untouched"
        );
        // Same effective key (both raw): the second analyze was a hit.
        let s = cache_stats();
        assert!(s.hits >= 1);
    }

    #[test]
    fn lumped_hits_serve_permuted_build_orders() {
        let _gate = crate::test_serial();
        clear_cache();
        // sym2 built in reverse: same canonical form, so the lumped
        // solve is shared and id queries remap.
        let m = 7.0;
        let mut rev = Net::new("sym2");
        let b = rev.add_place("B", 0);
        let a = rev.add_place("A", 2);
        rev.add_transition(
            Transition::new("loopB")
                .delay(1)
                .frequency(Expr::constant(1.0 - 1.0 / m))
                .input(b, 1)
                .output(b, 1),
        )
        .unwrap();
        rev.add_transition(
            Transition::new("exitB")
                .delay(1)
                .frequency(Expr::constant(1.0 / m))
                .input(b, 1)
                .output(a, 1),
        )
        .unwrap();
        rev.add_transition(
            Transition::new("loopA")
                .delay(1)
                .frequency(Expr::constant(1.0 - 1.0 / m))
                .input(a, 1)
                .output(a, 1),
        )
        .unwrap();
        rev.add_transition(
            Transition::new("exitA")
                .delay(1)
                .frequency(Expr::constant(1.0 / m))
                .resource("lambda")
                .input(a, 1)
                .output(b, 1),
        )
        .unwrap();
        let engine = lump_engine(LumpSel::Auto);
        let first = engine.analyze(&sym2(m)).unwrap();
        let before = cache_stats();
        let second = engine.analyze(&rev).unwrap();
        assert_eq!(cache_stats().hits, before.hits + 1);
        assert!(second.lumped());
        let orig_exit = sym2(m).transition_by_name("exitB").unwrap();
        let rev_exit = rev.transition_by_name("exitB").unwrap();
        assert_ne!(orig_exit, rev_exit, "permutation test needs differing ids");
        let want = first.transition_usage(orig_exit);
        assert!(want > 0.0);
        assert!(
            (second.transition_usage(rev_exit) - want).abs() < 1e-12,
            "remapped lumped transition_usage must match"
        );
    }
}
