//! Graphviz (DOT) export of a net — for inspecting the architecture models
//! the way the thesis presents them (Figures 6.9–6.14).

use crate::net::Net;
use std::fmt::Write as _;

/// Renders the net in Graphviz DOT format: places as circles labeled with
/// their initial marking, transitions as boxes labeled with delay and
/// frequency, arcs with multiplicities (> 1).
pub fn to_dot(net: &Net) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", escape(net.name()));
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [fontname=\"Helvetica\"];");
    for (i, p) in net.places.iter().enumerate() {
        let tokens = if p.initial > 0 {
            format!("\\n●{}", p.initial)
        } else {
            String::new()
        };
        let _ = writeln!(
            out,
            "  p{i} [shape=circle, label=\"{}{}\"];",
            escape(&p.name),
            tokens
        );
    }
    for (i, t) in net.transitions.iter().enumerate() {
        let resource = t
            .resource
            .as_deref()
            .map(|r| format!("\\n[{}]", escape(r)))
            .unwrap_or_default();
        let _ = writeln!(
            out,
            "  t{i} [shape=box, style=filled, fillcolor=lightgray, \
             label=\"{}\\nd={} f={}{}\"];",
            escape(&t.name),
            t.delay,
            escape(&t.frequency.to_string()),
            resource
        );
        for &(p, m) in &t.inputs {
            let label = if m > 1 {
                format!(" [label=\"{m}\"]")
            } else {
                String::new()
            };
            let _ = writeln!(out, "  p{} -> t{i}{label};", p.0);
        }
        for &(p, m) in &t.outputs {
            let label = if m > 1 {
                format!(" [label=\"{m}\"]")
            } else {
                String::new()
            };
            let _ = writeln!(out, "  t{i} -> p{}{label};", p.0);
        }
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::Transition;
    use crate::Expr;

    #[test]
    fn renders_places_transitions_arcs() {
        let mut net = Net::new("demo");
        let a = net.add_place("Clients", 3);
        let b = net.add_place("Done", 0);
        net.add_transition(
            Transition::new("serve")
                .delay(2)
                .frequency(Expr::constant(0.5))
                .resource("lambda")
                .input(a, 2)
                .output(b, 1),
        )
        .unwrap();
        let dot = to_dot(&net);
        assert!(dot.starts_with("digraph \"demo\""));
        assert!(dot.contains("Clients\\n●3"), "{dot}");
        assert!(dot.contains("shape=circle"));
        assert!(dot.contains("shape=box"));
        assert!(dot.contains("[lambda]"));
        assert!(dot.contains("p0 -> t0 [label=\"2\"]"), "{dot}");
        assert!(dot.contains("t0 -> p1;"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn escapes_quotes_in_names() {
        let mut net = Net::new("has \"quotes\"");
        let p = net.add_place("p\"q", 0);
        net.add_transition(Transition::new("t").delay(1).input(p, 1).output(p, 1))
            .unwrap();
        let dot = to_dot(&net);
        assert!(dot.contains("has \\\"quotes\\\""));
        assert!(dot.contains("p\\\"q"));
    }
}
