//! Monte-Carlo token-game simulation of a GTPN.
//!
//! Plays the same two-phase semantics as the exact analyzer
//! ([`crate::ReachabilityGraph`]) but samples conflict resolutions with an
//! RNG instead of enumerating them. Used to cross-validate the exact solver
//! and to estimate resource usage on nets whose state space is too large to
//! enumerate.

use crate::error::GtpnError;
use crate::expr::EvalContext;
use crate::net::{Net, TransId};
use crate::state::Marking;
use rand::Rng;
use std::collections::HashMap;

/// Options for a simulation run.
#[derive(Debug, Clone)]
pub struct SimOptions {
    /// Simulated time horizon (in net time units).
    pub horizon: u64,
    /// Time discarded at the start before statistics accumulate (warm-up).
    pub warmup: u64,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            horizon: 1_000_000,
            warmup: 100_000,
        }
    }
}

/// Aggregated statistics of a simulation run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Resource label -> time-averaged number of in-progress firings.
    pub resource_usage: HashMap<String, f64>,
    /// Per-transition completion counts over the measured interval.
    pub completions: Vec<u64>,
    /// Measured interval length.
    pub measured_time: u64,
    /// Per-place time-averaged token count (the DES analogue of
    /// `ReachabilityGraph::mean_tokens`; tokens held by in-progress firings
    /// are in transit and not counted, matching the exact solver).
    pub mean_tokens: Vec<f64>,
    /// Per-transition time-averaged number of in-progress firings (the DES
    /// analogue of `Solution::transition_usage`).
    pub transition_usage: Vec<f64>,
}

impl SimResult {
    /// Time-averaged usage of a resource.
    ///
    /// # Errors
    ///
    /// Returns [`GtpnError::UnknownName`] for an unknown resource.
    pub fn resource_usage(&self, resource: &str) -> Result<f64, GtpnError> {
        self.resource_usage
            .get(resource)
            .copied()
            .ok_or_else(|| GtpnError::UnknownName(resource.to_string()))
    }

    /// Completion rate (per time unit) of a transition.
    pub fn transition_rate(&self, transition: TransId) -> f64 {
        if self.measured_time == 0 {
            return 0.0;
        }
        self.completions.get(transition.0).copied().unwrap_or(0) as f64 / self.measured_time as f64
    }
}

/// A batch-means estimate: point estimate plus a half-width such that the
/// true mean lies within `estimate ± half_width` with ~95% confidence
/// (normal approximation over independent batches).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Point estimate (mean of the batch means).
    pub estimate: f64,
    /// 95% half-width.
    pub half_width: f64,
}

impl ConfidenceInterval {
    /// Whether `value` lies inside the interval.
    pub fn contains(&self, value: f64) -> bool {
        (value - self.estimate).abs() <= self.half_width
    }
}

/// Runs `batches` independent replications of the simulation (seeded from
/// `rng`) and returns a batch-means confidence interval for the usage of
/// `resource`.
///
/// # Errors
///
/// Propagates simulation errors; [`GtpnError::UnknownName`] for an unknown
/// resource.
///
/// # Panics
///
/// Panics when `batches < 2` — an interval needs a variance estimate.
pub fn confidence_interval<R: Rng>(
    net: &Net,
    options: &SimOptions,
    resource: &str,
    batches: usize,
    rng: &mut R,
) -> Result<ConfidenceInterval, GtpnError> {
    assert!(batches >= 2, "need at least two batches for a variance");
    let mut means = Vec::with_capacity(batches);
    for _ in 0..batches {
        let result = simulate(net, options, rng)?;
        means.push(result.resource_usage(resource)?);
    }
    let n = means.len() as f64;
    let mean = means.iter().sum::<f64>() / n;
    let var = means.iter().map(|m| (m - mean) * (m - mean)).sum::<f64>() / (n - 1.0);
    // t ≈ 1.96 for large n; use 2.1 as a mildly conservative constant for
    // the small batch counts typical here.
    let half_width = 2.1 * (var / n).sqrt();
    Ok(ConfidenceInterval {
        estimate: mean,
        half_width,
    })
}

/// Simulates the net for `options.horizon` time units.
///
/// # Errors
///
/// * [`GtpnError::Deadlock`] if the net reaches a state with no enabled
///   transition and no in-progress firing.
/// * [`GtpnError::ZeroDelayDivergence`] on a productive zero-delay cycle.
/// * [`GtpnError::BadFrequency`] on an invalid frequency value.
pub fn simulate<R: Rng>(
    net: &Net,
    options: &SimOptions,
    rng: &mut R,
) -> Result<SimResult, GtpnError> {
    net.validate()?;
    let tcount = net.transition_count();
    let mut marking: Marking = net.initial_marking();
    // In-progress firings as (transition, absolute completion time).
    let mut firings: Vec<(TransId, u64)> = Vec::new();
    let mut firing_counts = vec![0u32; tcount];
    let mut completions = vec![0u64; tcount];
    let mut token_time = vec![0.0f64; net.place_count()];
    let mut transition_usage_time = vec![0.0f64; tcount];
    let mut usage_time: HashMap<String, f64> = HashMap::new();
    for r in net.resources() {
        usage_time.insert(r.to_string(), 0.0);
    }

    let mut now: u64 = 0;
    while now < options.horizon {
        // Instantaneous phase: sequential proportional selection.
        let mut rounds = 0usize;
        loop {
            rounds += 1;
            if rounds > 100_000 {
                return Err(GtpnError::ZeroDelayDivergence);
            }
            let ctx = EvalContext::new(&marking, &firing_counts);
            let mut enabled: Vec<(usize, f64)> = Vec::new();
            let mut total = 0.0;
            for (ti, t) in net.transitions.iter().enumerate() {
                let ok = t.inputs.iter().all(|&(p, _)| {
                    let needed: u32 = t
                        .inputs
                        .iter()
                        .filter(|&&(q, _)| q == p)
                        .map(|&(_, mm)| mm)
                        .sum();
                    marking[p.0] >= needed
                });
                if !ok {
                    continue;
                }
                let w = t.frequency.eval(ctx);
                if !w.is_finite() || w < 0.0 {
                    return Err(GtpnError::BadFrequency {
                        transition: t.name.clone(),
                        value: w,
                    });
                }
                if w > 0.0 {
                    enabled.push((ti, w));
                    total += w;
                }
            }
            if enabled.is_empty() {
                break;
            }
            // Sample proportionally.
            let mut x = rng.gen_range(0.0..total);
            let mut chosen = enabled[enabled.len() - 1].0;
            for &(ti, w) in &enabled {
                if x < w {
                    chosen = ti;
                    break;
                }
                x -= w;
            }
            let t = &net.transitions[chosen];
            for &(p, m) in &t.inputs {
                marking[p.0] -= m;
            }
            if t.delay == 0 {
                for &(p, m) in &t.outputs {
                    marking[p.0] += m;
                }
                completions[chosen] += u64::from(now >= options.warmup);
            } else {
                firings.push((TransId(chosen), now + t.delay));
                firing_counts[chosen] += 1;
            }
        }

        if firings.is_empty() {
            return Err(GtpnError::Deadlock { state: 0 });
        }

        // Advance to the next completion.
        let next = firings.iter().map(|&(_, c)| c).min().expect("non-empty");
        let dt_start = now.max(options.warmup);
        let dt_end = next.min(options.horizon).max(dt_start);
        let weight = (dt_end - dt_start) as f64;
        if weight > 0.0 {
            for (ti, t) in net.transitions.iter().enumerate() {
                if firing_counts[ti] > 0 {
                    transition_usage_time[ti] += weight * f64::from(firing_counts[ti]);
                    if let Some(r) = &t.resource {
                        *usage_time.get_mut(r).expect("pre-seeded") +=
                            weight * f64::from(firing_counts[ti]);
                    }
                }
            }
            for (pi, &tokens) in marking.iter().enumerate() {
                if tokens > 0 {
                    token_time[pi] += weight * f64::from(tokens);
                }
            }
        }
        now = next;
        let mut i = 0;
        while i < firings.len() {
            if firings[i].1 == next {
                let (t, _) = firings.swap_remove(i);
                firing_counts[t.0] -= 1;
                for &(p, m) in &net.transitions[t.0].outputs {
                    marking[p.0] += m;
                }
                completions[t.0] += u64::from(now >= options.warmup);
            } else {
                i += 1;
            }
        }
    }

    let measured = options.horizon.saturating_sub(options.warmup);
    let resource_usage = usage_time
        .into_iter()
        .map(|(k, v)| {
            (
                k,
                if measured == 0 {
                    0.0
                } else {
                    v / measured as f64
                },
            )
        })
        .collect();
    let time_avg = |v: Vec<f64>| -> Vec<f64> {
        if measured == 0 {
            vec![0.0; v.len()]
        } else {
            v.into_iter().map(|x| x / measured as f64).collect()
        }
    };
    Ok(SimResult {
        resource_usage,
        completions,
        measured_time: measured,
        mean_tokens: time_avg(token_time),
        transition_usage: time_avg(transition_usage_time),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::net::Transition;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn geometric_net(n: f64) -> Net {
        let mut net = Net::new("geo");
        let p = net.add_place("P", 1);
        let q = net.add_place("Q", 0);
        net.add_transition(
            Transition::new("exit")
                .delay(1)
                .frequency(Expr::constant(1.0 / n))
                .resource("lambda")
                .input(p, 1)
                .output(q, 1),
        )
        .unwrap();
        net.add_transition(
            Transition::new("loop")
                .delay(1)
                .frequency(Expr::constant(1.0 - 1.0 / n))
                .input(p, 1)
                .output(p, 1),
        )
        .unwrap();
        net.add_transition(Transition::new("recycle").delay(0).input(q, 1).output(p, 1))
            .unwrap();
        net
    }

    #[test]
    fn simulation_matches_exact_solution() {
        let net = geometric_net(10.0);
        let mut rng = StdRng::seed_from_u64(42);
        let result = simulate(
            &net,
            &SimOptions {
                horizon: 400_000,
                warmup: 10_000,
            },
            &mut rng,
        )
        .unwrap();
        let sim_usage = result.resource_usage("lambda").unwrap();
        let exact = net
            .reachability(100)
            .unwrap()
            .solve(1e-13, 100_000)
            .unwrap()
            .resource_usage("lambda")
            .unwrap();
        assert!(
            (sim_usage - exact).abs() < 0.01,
            "sim {sim_usage} vs exact {exact}"
        );
    }

    #[test]
    fn completion_rates_consistent() {
        let net = geometric_net(4.0);
        let mut rng = StdRng::seed_from_u64(7);
        let result = simulate(
            &net,
            &SimOptions {
                horizon: 200_000,
                warmup: 5_000,
            },
            &mut rng,
        )
        .unwrap();
        // Exit rate = 1 per 4 time units.
        let rate = result.transition_rate(TransId(0));
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn confidence_interval_covers_exact_value() {
        let net = geometric_net(8.0);
        let exact = net
            .reachability(100)
            .unwrap()
            .solve(1e-13, 100_000)
            .unwrap()
            .resource_usage("lambda")
            .unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        let ci = confidence_interval(
            &net,
            &SimOptions {
                horizon: 80_000,
                warmup: 8_000,
            },
            "lambda",
            8,
            &mut rng,
        )
        .unwrap();
        assert!(ci.half_width > 0.0);
        assert!(ci.half_width < 0.05 * ci.estimate, "hw {}", ci.half_width);
        assert!(ci.contains(exact), "{ci:?} vs exact {exact}");
    }

    #[test]
    #[should_panic(expected = "two batches")]
    fn interval_needs_batches() {
        let net = geometric_net(4.0);
        let mut rng = StdRng::seed_from_u64(0);
        let _ = confidence_interval(&net, &SimOptions::default(), "lambda", 1, &mut rng);
    }

    #[test]
    fn deterministic_with_seed() {
        let net = geometric_net(5.0);
        let opts = SimOptions {
            horizon: 50_000,
            warmup: 1_000,
        };
        let a = simulate(&net, &opts, &mut StdRng::seed_from_u64(1)).unwrap();
        let b = simulate(&net, &opts, &mut StdRng::seed_from_u64(1)).unwrap();
        assert_eq!(a.completions, b.completions);
    }

    #[test]
    fn deadlock_reported() {
        let mut net = Net::new("dead");
        let a = net.add_place("A", 1);
        let b = net.add_place("B", 0);
        net.add_transition(Transition::new("t").delay(1).input(a, 1).output(b, 1))
            .unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let err = simulate(&net, &SimOptions::default(), &mut rng).unwrap_err();
        assert!(matches!(err, GtpnError::Deadlock { .. }));
    }
}
