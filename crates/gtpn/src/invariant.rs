//! Place-invariant (conservation) analysis.
//!
//! A *P-invariant* is an integer weighting `y` of places with `C·y = 0`
//! (where `C` is the incidence matrix): the weighted token count
//! `Σ y_p · M(p)` is conserved by every firing. The paper's models are built
//! from conservative cycles — clients, servers and processor tokens all
//! circulate — so invariants are a useful structural sanity check on the
//! architecture nets: e.g. the `Host` token weighting must be invariant in
//! every model.

use crate::net::Net;

/// Computes a basis of P-invariants (integer vectors `y ≥ 0` is *not*
/// required; this returns a rational null-space basis scaled to integers).
///
/// Returns one `Vec<i64>` per basis vector, indexed by place.
pub fn p_invariants(net: &Net) -> Vec<Vec<i64>> {
    let c = net.incidence_matrix();
    let p = net.place_count();
    if p == 0 {
        return Vec::new();
    }
    // Solve C·y = 0: exact fraction-free elimination over the t×p matrix.
    let m: Vec<Vec<i128>> = c
        .iter()
        .map(|row| row.iter().map(|&v| i128::from(v)).collect())
        .collect();
    null_space_basis(m, p)
}

/// Checks whether the weighted token count `Σ y_p · M(p)` of `weights` is
/// conserved by every transition, i.e. `weights` is a P-invariant.
pub fn is_invariant(net: &Net, weights: &[i64]) -> bool {
    let c = net.incidence_matrix();
    c.iter().all(|row| {
        row.iter()
            .zip(weights.iter())
            .map(|(&a, &y)| i128::from(a) * i128::from(y))
            .sum::<i128>()
            == 0
    })
}

/// Weighted token count of a marking under an invariant.
pub fn weighted_tokens(marking: &[u32], weights: &[i64]) -> i64 {
    marking
        .iter()
        .zip(weights.iter())
        .map(|(&m, &y)| i64::from(m) * y)
        .sum()
}

/// Computes a basis of T-invariants: integer firing-count vectors `x` with
/// `Cᵀ·x = 0` — firing every transition `x_t` times returns the net to its
/// starting marking. The paper's conversation cycles are exactly such
/// invariants (every stage fires once per conversation).
pub fn t_invariants(net: &Net) -> Vec<Vec<i64>> {
    // T-invariants of C are P-invariants of the transposed incidence
    // matrix; reuse the same elimination on a transposed view via a
    // lightweight shim.
    let c = net.incidence_matrix();
    let t = c.len();
    let p = net.place_count();
    if t == 0 {
        return Vec::new();
    }
    // Build transposed matrix rows = places, cols = transitions.
    let mut m: Vec<Vec<i128>> = vec![vec![0; t]; p];
    for (ti, row) in c.iter().enumerate() {
        for (pi, &v) in row.iter().enumerate() {
            m[pi][ti] = i128::from(v);
        }
    }
    null_space_basis(m, t)
}

/// Checks whether `counts` is a T-invariant (`Cᵀ·counts = 0`).
pub fn is_t_invariant(net: &Net, counts: &[i64]) -> bool {
    let c = net.incidence_matrix();
    (0..net.place_count()).all(|pi| {
        c.iter()
            .zip(counts.iter())
            .map(|(row, &x)| i128::from(row[pi]) * i128::from(x))
            .sum::<i128>()
            == 0
    })
}

/// Fraction-free Gaussian elimination returning an integer basis of the
/// null space of the given row-major matrix with `cols` columns.
#[allow(clippy::needless_range_loop)] // indices alias rows during elimination
fn null_space_basis(mut m: Vec<Vec<i128>>, cols: usize) -> Vec<Vec<i64>> {
    let rows = m.len();
    let mut pivot_col_of_row: Vec<usize> = Vec::new();
    let mut row = 0usize;
    for col in 0..cols {
        let mut pivot = None;
        for r in row..rows {
            if m[r][col] != 0 {
                pivot = Some(r);
                break;
            }
        }
        let Some(pr) = pivot else { continue };
        m.swap(row, pr);
        let pv = m[row][col];
        for r in 0..rows {
            if r != row && m[r][col] != 0 {
                let f = m[r][col];
                for k in 0..cols {
                    m[r][k] = m[r][k] * pv - f * m[row][k];
                }
                normalize_row(&mut m[r]);
            }
        }
        pivot_col_of_row.push(col);
        row += 1;
        if row == rows {
            break;
        }
    }
    let pivot_cols = pivot_col_of_row.clone();
    let free_cols: Vec<usize> = (0..cols).filter(|c| !pivot_cols.contains(c)).collect();
    let mut basis = Vec::new();
    for &fc in &free_cols {
        let mut num: Vec<i128> = vec![0; cols];
        let mut den: Vec<i128> = vec![1; cols];
        num[fc] = 1;
        for (r, &pc) in pivot_col_of_row.iter().enumerate() {
            let pv = m[r][pc];
            let coeff = m[r][fc];
            if coeff != 0 {
                num[pc] = -coeff;
                den[pc] = pv;
            }
        }
        let mut l: i128 = 1;
        for &d in &den {
            l = lcm(l, d.abs().max(1));
        }
        let mut y: Vec<i64> = (0..cols)
            .map(|i| i64::try_from(num[i] * (l / den[i])).expect("coefficient overflow"))
            .collect();
        let g = y.iter().fold(0i64, |acc, &v| gcd64(acc, v.abs()));
        if g > 1 {
            for v in y.iter_mut() {
                *v /= g;
            }
        }
        if y.iter().find(|&&v| v != 0).map(|&v| v < 0).unwrap_or(false) {
            for v in y.iter_mut() {
                *v = -*v;
            }
        }
        basis.push(y);
    }
    basis
}

fn normalize_row(row: &mut [i128]) {
    let mut g: i128 = 0;
    for &v in row.iter() {
        g = gcd(g, v.abs());
    }
    if g > 1 {
        for v in row.iter_mut() {
            *v /= g;
        }
    }
}

fn gcd(a: i128, b: i128) -> i128 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn gcd64(a: i64, b: i64) -> i64 {
    if b == 0 {
        a
    } else {
        gcd64(b, a % b)
    }
}

fn lcm(a: i128, b: i128) -> i128 {
    if a == 0 || b == 0 {
        0
    } else {
        a / gcd(a, b) * b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::Transition;

    /// A simple cycle conserves its token: invariant (1, 1).
    #[test]
    fn cycle_is_conservative() {
        let mut net = Net::new("cycle");
        let a = net.add_place("A", 1);
        let b = net.add_place("B", 0);
        net.add_transition(Transition::new("ab").delay(1).input(a, 1).output(b, 1))
            .unwrap();
        net.add_transition(Transition::new("ba").delay(1).input(b, 1).output(a, 1))
            .unwrap();
        let basis = p_invariants(&net);
        assert_eq!(basis.len(), 1);
        assert!(is_invariant(&net, &basis[0]));
        assert_eq!(basis[0], vec![1, 1]);
        assert_eq!(weighted_tokens(&net.initial_marking(), &basis[0]), 1);
    }

    /// A producer (token multiplication) breaks conservation.
    #[test]
    fn producer_has_no_full_invariant() {
        let mut net = Net::new("prod");
        let a = net.add_place("A", 1);
        let b = net.add_place("B", 0);
        // A -> A + B : cannot conserve both A and B with nonzero weights.
        net.add_transition(
            Transition::new("t")
                .delay(1)
                .input(a, 1)
                .output(a, 1)
                .output(b, 1),
        )
        .unwrap();
        let basis = p_invariants(&net);
        // The only invariants have weight 0 on B... actually y_A*0 + y_B*1 =
        // 0 forces y_B = 0, leaving y = (1, 0).
        assert_eq!(basis.len(), 1);
        assert_eq!(basis[0], vec![1, 0]);
    }

    /// Weighted invariant: T consumes 2 of A, produces 1 of B -> y = (1, 2).
    #[test]
    fn weighted_invariant_found() {
        let mut net = Net::new("weighted");
        let a = net.add_place("A", 2);
        let b = net.add_place("B", 0);
        net.add_transition(Transition::new("fwd").delay(1).input(a, 2).output(b, 1))
            .unwrap();
        net.add_transition(Transition::new("rev").delay(1).input(b, 1).output(a, 2))
            .unwrap();
        let basis = p_invariants(&net);
        assert_eq!(basis.len(), 1);
        assert!(is_invariant(&net, &basis[0]));
        assert_eq!(basis[0], vec![1, 2]);
    }

    /// Two independent cycles: two-dimensional invariant space.
    #[test]
    fn independent_cycles_two_invariants() {
        let mut net = Net::new("two");
        let a = net.add_place("A", 1);
        let b = net.add_place("B", 1);
        net.add_transition(Transition::new("ta").delay(1).input(a, 1).output(a, 1))
            .unwrap();
        net.add_transition(Transition::new("tb").delay(1).input(b, 1).output(b, 1))
            .unwrap();
        let basis = p_invariants(&net);
        assert_eq!(basis.len(), 2);
        for y in &basis {
            assert!(is_invariant(&net, y));
        }
    }

    /// T-invariants: a plain cycle reproduces with firing vector (1, 1); a
    /// batching cycle (one transition moves tokens two at a time) needs the
    /// single-token transition to fire twice per batch.
    #[test]
    fn cycle_t_invariants() {
        let mut net = Net::new("cycle");
        let a = net.add_place("A", 1);
        let b = net.add_place("B", 0);
        net.add_transition(Transition::new("ab").delay(1).input(a, 1).output(b, 1))
            .unwrap();
        net.add_transition(Transition::new("ba").delay(1).input(b, 1).output(a, 1))
            .unwrap();
        let basis = t_invariants(&net);
        assert_eq!(basis.len(), 1);
        assert!(is_t_invariant(&net, &basis[0]));
        assert_eq!(basis[0], vec![1, 1]);

        let mut net = Net::new("batch");
        let a = net.add_place("A", 2);
        let b = net.add_place("B", 0);
        net.add_transition(Transition::new("ab").delay(1).input(a, 1).output(b, 1))
            .unwrap();
        net.add_transition(Transition::new("ba2").delay(1).input(b, 2).output(a, 2))
            .unwrap();
        let basis = t_invariants(&net);
        assert_eq!(basis.len(), 1);
        assert_eq!(basis[0], vec![2, 1]);
        assert!(is_t_invariant(&net, &basis[0]));
        assert!(!is_t_invariant(&net, &[1, 1]));
    }

    /// is_invariant rejects a non-invariant weighting.
    #[test]
    fn non_invariant_rejected() {
        let mut net = Net::new("n");
        let a = net.add_place("A", 1);
        let b = net.add_place("B", 0);
        net.add_transition(Transition::new("t").delay(1).input(a, 1).output(b, 2))
            .unwrap();
        assert!(!is_invariant(&net, &[1, 1]));
        assert!(is_invariant(&net, &[2, 1]));
    }
}
