//! Net structure: places, transitions, arcs.

use crate::error::GtpnError;
use crate::expr::Expr;
use std::fmt;

/// Identifier of a place within a [`Net`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PlaceId(pub usize);

/// Identifier of a transition within a [`Net`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TransId(pub usize);

impl fmt::Display for PlaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl fmt::Display for TransId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) struct PlaceDef {
    pub name: String,
    pub initial: u32,
}

/// A transition description: inputs, outputs and the GTPN attribute vector
/// (delay, frequency, resource).
///
/// Built with a consuming builder style:
///
/// ```
/// # use gtpn::{Net, Transition, Expr};
/// # let mut net = Net::new("n");
/// # let p = net.add_place("p", 1);
/// let t = Transition::new("T0")
///     .delay(1)
///     .frequency(Expr::constant(0.25))
///     .resource("lambda")
///     .input(p, 1)
///     .output(p, 1);
/// net.add_transition(t)?;
/// # Ok::<(), gtpn::GtpnError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Transition {
    pub(crate) name: String,
    pub(crate) delay: u64,
    pub(crate) frequency: Expr,
    pub(crate) resource: Option<String>,
    pub(crate) inputs: Vec<(PlaceId, u32)>,
    pub(crate) outputs: Vec<(PlaceId, u32)>,
}

impl Transition {
    /// Creates a transition with delay 0, frequency 1 and no arcs.
    pub fn new(name: impl Into<String>) -> Transition {
        Transition {
            name: name.into(),
            delay: 0,
            frequency: Expr::Const(1.0),
            resource: None,
            inputs: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// Sets the deterministic firing duration in integer time units.
    pub fn delay(mut self, delay: u64) -> Transition {
        self.delay = delay;
        self
    }

    /// Sets the frequency attribute (may be state-dependent).
    pub fn frequency(mut self, frequency: impl Into<Expr>) -> Transition {
        self.frequency = frequency.into();
        self
    }

    /// Attaches a resource label; the analyzer reports its mean usage.
    pub fn resource(mut self, resource: impl Into<String>) -> Transition {
        self.resource = Some(resource.into());
        self
    }

    /// Adds an input arc of the given multiplicity.
    pub fn input(mut self, place: PlaceId, multiplicity: u32) -> Transition {
        self.inputs.push((place, multiplicity));
        self
    }

    /// Adds an output arc of the given multiplicity.
    pub fn output(mut self, place: PlaceId, multiplicity: u32) -> Transition {
        self.outputs.push((place, multiplicity));
        self
    }
}

/// A Generalized Timed Petri Net.
///
/// Equality is structural — same places, transitions, arcs, delays and
/// frequency expressions — and is what the reachability cache
/// ([`crate::cache`]) uses to recognize a net it has already expanded.
#[derive(Debug, Clone, PartialEq)]
pub struct Net {
    name: String,
    pub(crate) places: Vec<PlaceDef>,
    pub(crate) transitions: Vec<Transition>,
}

impl Net {
    /// Creates an empty net.
    pub fn new(name: impl Into<String>) -> Net {
        Net {
            name: name.into(),
            places: Vec::new(),
            transitions: Vec::new(),
        }
    }

    /// The net's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a place with the given initial marking and returns its id.
    pub fn add_place(&mut self, name: impl Into<String>, initial: u32) -> PlaceId {
        self.places.push(PlaceDef {
            name: name.into(),
            initial,
        });
        PlaceId(self.places.len() - 1)
    }

    /// Adds a transition and returns its id.
    ///
    /// # Errors
    ///
    /// Returns [`GtpnError::UnknownPlace`] if an arc references a place that
    /// has not been added to this net.
    pub fn add_transition(&mut self, transition: Transition) -> Result<TransId, GtpnError> {
        for &(p, _) in transition.inputs.iter().chain(transition.outputs.iter()) {
            if p.0 >= self.places.len() {
                return Err(GtpnError::UnknownPlace {
                    transition: transition.name.clone(),
                    place: p.0,
                });
            }
        }
        self.transitions.push(transition);
        Ok(TransId(self.transitions.len() - 1))
    }

    /// Number of places.
    pub fn place_count(&self) -> usize {
        self.places.len()
    }

    /// Number of transitions.
    pub fn transition_count(&self) -> usize {
        self.transitions.len()
    }

    /// Name of a place.
    ///
    /// # Panics
    ///
    /// Panics if `place` does not belong to this net.
    pub fn place_name(&self, place: PlaceId) -> &str {
        &self.places[place.0].name
    }

    /// Name of a transition.
    ///
    /// # Panics
    ///
    /// Panics if `transition` does not belong to this net.
    pub fn transition_name(&self, transition: TransId) -> &str {
        &self.transitions[transition.0].name
    }

    /// Delay attribute of a transition.
    ///
    /// # Panics
    ///
    /// Panics if `transition` does not belong to this net.
    pub fn transition_delay(&self, transition: TransId) -> u64 {
        self.transitions[transition.0].delay
    }

    /// Output arcs `(place, multiplicity)` of a transition — the tokens it
    /// deposits at end-of-firing.
    ///
    /// # Panics
    ///
    /// Panics if `transition` does not belong to this net.
    pub fn transition_outputs(&self, transition: TransId) -> &[(PlaceId, u32)] {
        &self.transitions[transition.0].outputs
    }

    /// Looks up a transition id by name (first match).
    pub fn transition_by_name(&self, name: &str) -> Option<TransId> {
        self.transitions
            .iter()
            .position(|t| t.name == name)
            .map(TransId)
    }

    /// Looks up a place id by name (first match).
    pub fn place_by_name(&self, name: &str) -> Option<PlaceId> {
        self.places.iter().position(|p| p.name == name).map(PlaceId)
    }

    /// The initial marking.
    pub fn initial_marking(&self) -> Vec<u32> {
        self.places.iter().map(|p| p.initial).collect()
    }

    /// All distinct resource labels, in order of first appearance.
    pub fn resources(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for t in &self.transitions {
            if let Some(r) = &t.resource {
                if !out.contains(&r.as_str()) {
                    out.push(r);
                }
            }
        }
        out
    }

    /// The incidence matrix `C[t][p] = outputs(t, p) - inputs(t, p)`.
    pub fn incidence_matrix(&self) -> Vec<Vec<i64>> {
        let mut c = vec![vec![0i64; self.places.len()]; self.transitions.len()];
        for (ti, t) in self.transitions.iter().enumerate() {
            for &(p, m) in &t.inputs {
                c[ti][p.0] -= i64::from(m);
            }
            for &(p, m) in &t.outputs {
                c[ti][p.0] += i64::from(m);
            }
        }
        c
    }

    /// Validates the net: non-empty and all arcs in range.
    ///
    /// # Errors
    ///
    /// Returns [`GtpnError::EmptyNet`] when the net has no places or no
    /// transitions.
    pub fn validate(&self) -> Result<(), GtpnError> {
        if self.places.is_empty() || self.transitions.is_empty() {
            return Err(GtpnError::EmptyNet);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let mut net = Net::new("test");
        let a = net.add_place("A", 2);
        let b = net.add_place("B", 0);
        let t = net
            .add_transition(Transition::new("T0").delay(3).input(a, 1).output(b, 2))
            .unwrap();
        assert_eq!(net.place_count(), 2);
        assert_eq!(net.transition_count(), 1);
        assert_eq!(net.place_name(a), "A");
        assert_eq!(net.transition_name(t), "T0");
        assert_eq!(net.transition_delay(t), 3);
        assert_eq!(net.initial_marking(), vec![2, 0]);
        assert_eq!(net.place_by_name("B"), Some(b));
        assert_eq!(net.transition_by_name("T0"), Some(t));
        assert_eq!(net.transition_by_name("nope"), None);
    }

    #[test]
    fn unknown_place_rejected() {
        let mut net = Net::new("test");
        let err = net
            .add_transition(Transition::new("T0").input(PlaceId(5), 1))
            .unwrap_err();
        assert!(matches!(err, GtpnError::UnknownPlace { place: 5, .. }));
    }

    #[test]
    fn incidence_matrix_signs() {
        let mut net = Net::new("test");
        let a = net.add_place("A", 1);
        let b = net.add_place("B", 0);
        net.add_transition(Transition::new("T0").input(a, 2).output(b, 3))
            .unwrap();
        assert_eq!(net.incidence_matrix(), vec![vec![-2, 3]]);
    }

    #[test]
    fn resources_deduplicated_in_order() {
        let mut net = Net::new("test");
        let a = net.add_place("A", 1);
        net.add_transition(Transition::new("T0").resource("x").input(a, 1))
            .unwrap();
        net.add_transition(Transition::new("T1").resource("y").input(a, 1))
            .unwrap();
        net.add_transition(Transition::new("T2").resource("x").input(a, 1))
            .unwrap();
        assert_eq!(net.resources(), vec!["x", "y"]);
    }

    #[test]
    fn empty_net_invalid() {
        assert!(Net::new("e").validate().is_err());
    }

    #[test]
    fn multigraph_arcs_accumulate() {
        // Two arcs from the same place behave like multiplicity 2.
        let mut net = Net::new("test");
        let a = net.add_place("A", 2);
        net.add_transition(Transition::new("T0").input(a, 1).input(a, 1))
            .unwrap();
        let c = net.incidence_matrix();
        assert_eq!(c[0][0], -2);
    }
}
