//! Parser for the thesis's textual frequency-expression notation.
//!
//! The transition tables write state-dependent frequencies like:
//!
//! ```text
//! (NetIntr = 0) & !T4 & !T5 -> 1/1314.9, 0
//! ```
//!
//! [`parse_expr`] turns that notation into an [`Expr`], resolving place
//! names through the net and `T<number>` / transition names through the
//! net's transitions — so models can be written exactly as the paper
//! prints them.
//!
//! Grammar (precedence low→high):
//!
//! ```text
//! expr    := or ( "->" expr "," expr )?        gated choice
//! or      := and ( "|" and )*
//! and     := cmp ( "&" cmp )*
//! cmp     := add ( ("="|"<="|"<") add )?
//! add     := mul ( ("+"|"-") mul )*
//! mul     := unary ( ("*"|"/") unary )*
//! unary   := "!" unary | primary
//! primary := number | "#"? name | "(" expr ")"
//! ```
//!
//! A bare name resolves to a *place* token count when a place of that name
//! exists, otherwise to the *firing* indicator of the transition of that
//! name; `#name` forces the place reading; `T<k>` with no such place or
//! transition name resolves to transition index `k`.

use crate::error::GtpnError;
use crate::expr::Expr;
use crate::net::{Net, TransId};

/// Parses the paper's expression notation against `net`'s names.
///
/// # Errors
///
/// [`GtpnError::UnknownName`] for unresolvable identifiers or syntax
/// errors (the message carries the offending fragment).
pub fn parse_expr(net: &Net, input: &str) -> Result<Expr, GtpnError> {
    let tokens = tokenize(input)?;
    let mut p = Parser {
        net,
        tokens,
        pos: 0,
    };
    let e = p.expr()?;
    if p.pos != p.tokens.len() {
        return Err(GtpnError::UnknownName(format!(
            "trailing input near `{}`",
            p.tokens[p.pos..]
                .iter()
                .map(Token::text)
                .collect::<Vec<_>>()
                .join(" ")
        )));
    }
    Ok(e)
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Number(f64),
    Name(String),
    Hash,
    Bang,
    And,
    Or,
    Arrow,
    Comma,
    Eq,
    Le,
    Lt,
    Plus,
    Minus,
    Star,
    Slash,
    LParen,
    RParen,
}

impl Token {
    fn text(&self) -> String {
        match self {
            Token::Number(v) => v.to_string(),
            Token::Name(s) => s.clone(),
            Token::Hash => "#".into(),
            Token::Bang => "!".into(),
            Token::And => "&".into(),
            Token::Or => "|".into(),
            Token::Arrow => "->".into(),
            Token::Comma => ",".into(),
            Token::Eq => "=".into(),
            Token::Le => "<=".into(),
            Token::Lt => "<".into(),
            Token::Plus => "+".into(),
            Token::Minus => "-".into(),
            Token::Star => "*".into(),
            Token::Slash => "/".into(),
            Token::LParen => "(".into(),
            Token::RParen => ")".into(),
        }
    }
}

fn tokenize(input: &str) -> Result<Vec<Token>, GtpnError> {
    let mut out = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            ' ' | '\t' | '\n' => i += 1,
            '#' => {
                out.push(Token::Hash);
                i += 1;
            }
            '!' => {
                out.push(Token::Bang);
                i += 1;
            }
            '&' => {
                out.push(Token::And);
                i += 1;
            }
            '|' => {
                out.push(Token::Or);
                i += 1;
            }
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            '=' => {
                out.push(Token::Eq);
                i += 1;
            }
            '<' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push(Token::Le);
                    i += 2;
                } else {
                    out.push(Token::Lt);
                    i += 1;
                }
            }
            '+' => {
                out.push(Token::Plus);
                i += 1;
            }
            '-' => {
                if chars.get(i + 1) == Some(&'>') {
                    out.push(Token::Arrow);
                    i += 2;
                } else {
                    out.push(Token::Minus);
                    i += 1;
                }
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            '/' => {
                out.push(Token::Slash);
                i += 1;
            }
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            _ if c.is_ascii_digit() || c == '.' => {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '.') {
                    i += 1;
                }
                let s: String = chars[start..i].iter().collect();
                let v = s
                    .parse::<f64>()
                    .map_err(|_| GtpnError::UnknownName(format!("bad number `{s}`")))?;
                out.push(Token::Number(v));
            }
            _ if c.is_alphanumeric() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                out.push(Token::Name(chars[start..i].iter().collect()));
            }
            _ => {
                return Err(GtpnError::UnknownName(format!(
                    "unexpected character `{c}`"
                )))
            }
        }
    }
    Ok(out)
}

struct Parser<'a> {
    net: &'a Net,
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Token) -> Result<(), GtpnError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(GtpnError::UnknownName(format!(
                "expected `{}` near position {}",
                t.text(),
                self.pos
            )))
        }
    }

    fn expr(&mut self) -> Result<Expr, GtpnError> {
        let cond = self.or()?;
        if self.eat(&Token::Arrow) {
            let then = self.expr()?;
            self.expect(&Token::Comma)?;
            let els = self.expr()?;
            Ok(Expr::If(Box::new(cond), Box::new(then), Box::new(els)))
        } else {
            Ok(cond)
        }
    }

    fn or(&mut self) -> Result<Expr, GtpnError> {
        let mut e = self.and()?;
        while self.eat(&Token::Or) {
            e = Expr::Or(Box::new(e), Box::new(self.and()?));
        }
        Ok(e)
    }

    fn and(&mut self) -> Result<Expr, GtpnError> {
        let mut e = self.cmp()?;
        while self.eat(&Token::And) {
            e = Expr::And(Box::new(e), Box::new(self.cmp()?));
        }
        Ok(e)
    }

    fn cmp(&mut self) -> Result<Expr, GtpnError> {
        let e = self.add()?;
        if self.eat(&Token::Eq) {
            Ok(Expr::Eq(Box::new(e), Box::new(self.add()?)))
        } else if self.eat(&Token::Le) {
            Ok(Expr::Le(Box::new(e), Box::new(self.add()?)))
        } else if self.eat(&Token::Lt) {
            Ok(Expr::Lt(Box::new(e), Box::new(self.add()?)))
        } else {
            Ok(e)
        }
    }

    fn add(&mut self) -> Result<Expr, GtpnError> {
        let mut e = self.mul()?;
        loop {
            if self.eat(&Token::Plus) {
                e = Expr::Add(Box::new(e), Box::new(self.mul()?));
            } else if self.eat(&Token::Minus) {
                e = Expr::Sub(Box::new(e), Box::new(self.mul()?));
            } else {
                return Ok(e);
            }
        }
    }

    fn mul(&mut self) -> Result<Expr, GtpnError> {
        let mut e = self.unary()?;
        loop {
            if self.eat(&Token::Star) {
                e = Expr::Mul(Box::new(e), Box::new(self.unary()?));
            } else if self.eat(&Token::Slash) {
                e = Expr::Div(Box::new(e), Box::new(self.unary()?));
            } else {
                return Ok(e);
            }
        }
    }

    fn unary(&mut self) -> Result<Expr, GtpnError> {
        if self.eat(&Token::Bang) {
            Ok(Expr::Not(Box::new(self.unary()?)))
        } else {
            self.primary()
        }
    }

    fn primary(&mut self) -> Result<Expr, GtpnError> {
        match self.peek().cloned() {
            Some(Token::Number(v)) => {
                self.pos += 1;
                Ok(Expr::Const(v))
            }
            Some(Token::Hash) => {
                self.pos += 1;
                match self.peek().cloned() {
                    Some(Token::Name(name)) => {
                        self.pos += 1;
                        let p = self
                            .net
                            .place_by_name(&name)
                            .ok_or_else(|| GtpnError::UnknownName(format!("place `{name}`")))?;
                        Ok(Expr::Tokens(p))
                    }
                    _ => Err(GtpnError::UnknownName("`#` needs a place name".into())),
                }
            }
            Some(Token::Name(name)) => {
                self.pos += 1;
                self.resolve(&name)
            }
            Some(Token::LParen) => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            other => Err(GtpnError::UnknownName(format!(
                "expected a value, found {:?}",
                other.map(|t| t.text())
            ))),
        }
    }

    fn resolve(&self, name: &str) -> Result<Expr, GtpnError> {
        if let Some(p) = self.net.place_by_name(name) {
            return Ok(Expr::Tokens(p));
        }
        if let Some(t) = self.net.transition_by_name(name) {
            return Ok(Expr::Firing(t));
        }
        // `T<k>` as a raw transition index, the tables' shorthand.
        if let Some(rest) = name.strip_prefix('T') {
            if let Ok(k) = rest.parse::<usize>() {
                if k < self.net.transition_count() {
                    return Ok(Expr::Firing(TransId(k)));
                }
            }
        }
        Err(GtpnError::UnknownName(format!(
            "`{name}` is neither a place nor a transition"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::EvalContext;
    use crate::net::Transition;

    fn demo_net() -> Net {
        let mut net = Net::new("demo");
        net.add_place("NetIntr", 0);
        net.add_place("Host", 1);
        let p = net.add_place("P", 1);
        for i in 0..6 {
            net.add_transition(
                Transition::new(format!("T{i}"))
                    .delay(1)
                    .input(p, 1)
                    .output(p, 1),
            )
            .unwrap();
        }
        net
    }

    #[test]
    fn parses_the_table_6_7_gate() {
        let net = demo_net();
        let e = parse_expr(&net, "(NetIntr = 0) & !T4 & !T5 -> 1/1314.9, 0").unwrap();
        let firing = vec![0u32; 6];
        let v = e.eval(EvalContext::new(&[0, 1, 1], &firing));
        assert!((v - 1.0 / 1314.9).abs() < 1e-12);
        // Pending interrupt gates it off.
        assert_eq!(e.eval(EvalContext::new(&[1, 1, 1], &firing)), 0.0);
        // T4 firing gates it off.
        let mut firing = vec![0u32; 6];
        firing[4] = 1;
        assert_eq!(e.eval(EvalContext::new(&[0, 1, 1], &firing)), 0.0);
    }

    #[test]
    fn arithmetic_precedence() {
        let net = demo_net();
        let e = parse_expr(&net, "1 - 1/1390").unwrap();
        let v = e.eval(EvalContext::new(&[0, 1, 1], &[0; 6]));
        assert!((v - (1.0 - 1.0 / 1390.0)).abs() < 1e-12);
        let e = parse_expr(&net, "2 + 3 * 4").unwrap();
        assert_eq!(e.eval(EvalContext::new(&[], &[])), 14.0);
        let e = parse_expr(&net, "(2 + 3) * 4").unwrap();
        assert_eq!(e.eval(EvalContext::new(&[], &[])), 20.0);
    }

    #[test]
    fn names_resolve_places_then_transitions() {
        let net = demo_net();
        // Host is a place: token count.
        let e = parse_expr(&net, "Host").unwrap();
        assert_eq!(e, Expr::Tokens(net.place_by_name("Host").unwrap()));
        // T3 is a transition: firing indicator.
        let e = parse_expr(&net, "T3").unwrap();
        assert_eq!(e, Expr::Firing(net.transition_by_name("T3").unwrap()));
        // #Host forces the place reading.
        let e = parse_expr(&net, "#Host").unwrap();
        assert_eq!(e, Expr::Tokens(net.place_by_name("Host").unwrap()));
    }

    #[test]
    fn nested_gates() {
        let net = demo_net();
        let e = parse_expr(&net, "Host = 1 -> (NetIntr = 0 -> 0.5, 0.25), 0.125").unwrap();
        assert_eq!(e.eval(EvalContext::new(&[0, 1, 1], &[0; 6])), 0.5);
        assert_eq!(e.eval(EvalContext::new(&[2, 1, 1], &[0; 6])), 0.25);
        assert_eq!(e.eval(EvalContext::new(&[0, 0, 1], &[0; 6])), 0.125);
    }

    #[test]
    fn comparison_operators() {
        let net = demo_net();
        let e = parse_expr(&net, "NetIntr <= 2").unwrap();
        assert_eq!(e.eval(EvalContext::new(&[2, 0, 0], &[0; 6])), 1.0);
        assert_eq!(e.eval(EvalContext::new(&[3, 0, 0], &[0; 6])), 0.0);
        let e = parse_expr(&net, "NetIntr < 2").unwrap();
        assert_eq!(e.eval(EvalContext::new(&[2, 0, 0], &[0; 6])), 0.0);
    }

    #[test]
    fn errors_are_descriptive() {
        let net = demo_net();
        for (input, fragment) in [
            ("NoSuchName", "neither a place nor a transition"),
            ("1 +", "expected a value"),
            ("(1", "expected `)`"),
            ("1 -> 2", "expected `,`"),
            ("1 2", "trailing input"),
            ("@", "unexpected character"),
        ] {
            let err = parse_expr(&net, input).unwrap_err();
            assert!(err.to_string().contains(fragment), "{input}: {err}");
        }
    }

    #[test]
    fn round_trips_through_display() {
        // The Display form of a parsed expression re-parses to something
        // equivalent (spot check by evaluation).
        let net = demo_net();
        let e = parse_expr(&net, "(NetIntr = 0) & !T1 -> 1/982, 0").unwrap();
        let printed = format!("{e}");
        // Display uses #P<i> / T<i> forms; rebuild a net whose names match.
        assert!(printed.contains("#P0"));
        assert!(printed.contains("T1"));
    }
}
