//! Core-budget accounting for nested parallelism.
//!
//! Two layers of this repository want threads: the sweep engine's outer
//! worker pool (one grid point per worker) and the solver's inner hot
//! loops (frontier-parallel reachability expansion, the opt-in red-black
//! Gauss–Seidel, the §6.6.3 fixed point's concurrent sub-solves). Letting
//! each layer size itself from the environment independently oversubscribes
//! the machine exactly when it hurts most — a big grid whose tail is one
//! huge solve. This module provides the shared ledger both layers draw
//! from:
//!
//! * [`threads`] — the one place the thread-count environment knobs are
//!   read (`HSIPC_SWEEP` as a number, `RAYON_NUM_THREADS`,
//!   `HSIPC_SWEEP_THREADS`, then the machine's available parallelism).
//!   `sweep::threads()` re-exports it; nothing else parses these variables.
//! * [`ParallelBudget`] — a counter of *extra* cores (beyond the calling
//!   thread) that may be running at once. Outer pool workers
//!   [`register`](ParallelBudget::register) the core they occupy; inner
//!   loops [`claim_extra`](ParallelBudget::claim_extra) whatever is left
//!   and degrade to serial when the pool has the machine saturated. As
//!   pool workers drain and exit, their cores free up and the remaining
//!   big solves widen — the critical-path handoff the sweep needs.
//! * [`join2`] — run two closures concurrently when the budget grants a
//!   core, sequentially otherwise; results are identical either way.
//!
//! Budgeted code paths are *logically* parallel: a budget of 8 grants 7
//! extra workers even on a single-core machine, so determinism tests can
//! force the parallel code paths anywhere. Wall-clock speedup, of course,
//! still comes only from real cores.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// The process-wide thread-count policy, parsed once:
///
/// 1. `HSIPC_SWEEP` set to a number — that many threads (`1` = serial;
///    `seq`/`sequential` are accepted as aliases for `1`);
/// 2. else `RAYON_NUM_THREADS` (rayon's conventional knob);
/// 3. else `HSIPC_SWEEP_THREADS` (this repo's historical knob);
/// 4. else the machine's available parallelism.
pub fn threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        let default = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        threads_from(
            std::env::var("HSIPC_SWEEP").ok().as_deref(),
            std::env::var("RAYON_NUM_THREADS").ok().as_deref(),
            std::env::var("HSIPC_SWEEP_THREADS").ok().as_deref(),
            default,
        )
    })
}

/// The pure policy behind [`threads`], testable without touching the
/// environment.
pub(crate) fn threads_from(
    hsipc_sweep: Option<&str>,
    rayon: Option<&str>,
    legacy: Option<&str>,
    default: usize,
) -> usize {
    if let Some(v) = hsipc_sweep {
        let v = v.trim();
        if v.eq_ignore_ascii_case("seq") || v.eq_ignore_ascii_case("sequential") {
            return 1;
        }
        if let Ok(n) = v.parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    for v in [rayon, legacy].into_iter().flatten() {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    default.max(1)
}

/// Whether the opt-in parallel red-black Gauss–Seidel is enabled
/// (`HSIPC_PAR_SOLVE=1`). Default off: the red-black sweep agrees with the
/// serial solver to solver tolerance, not bit-for-bit.
pub fn par_solve_enabled() -> bool {
    static ON: OnceLock<bool> = OnceLock::new();
    *ON.get_or_init(|| matches!(std::env::var("HSIPC_PAR_SOLVE").as_deref(), Ok("1")))
}

/// A ledger of extra cores shared by the outer sweep pool and the solver's
/// inner parallel loops; see the module docs.
#[derive(Debug)]
pub struct ParallelBudget {
    /// Extra cores beyond the root caller that may run concurrently.
    extra: usize,
    /// Extra cores currently spoken for (may exceed `extra` through
    /// [`register`](Self::register), never through
    /// [`claim_extra`](Self::claim_extra)).
    in_use: AtomicUsize,
}

impl ParallelBudget {
    /// A budget for `cores` total cores (the calling thread plus
    /// `cores - 1` extras). `cores` is clamped to at least 1.
    pub fn new(cores: usize) -> ParallelBudget {
        ParallelBudget {
            extra: cores.max(1) - 1,
            in_use: AtomicUsize::new(0),
        }
    }

    /// A strictly serial budget: every claim returns zero extra cores.
    pub fn serial() -> ParallelBudget {
        ParallelBudget::new(1)
    }

    /// The process-global budget, sized by [`threads`] — what the default
    /// engines and the sweep pool share.
    pub fn global() -> &'static ParallelBudget {
        static GLOBAL: OnceLock<ParallelBudget> = OnceLock::new();
        GLOBAL.get_or_init(|| ParallelBudget::new(threads()))
    }

    /// Total cores this budget represents (extras plus the caller).
    pub fn cores(&self) -> usize {
        self.extra + 1
    }

    /// Extra cores currently unclaimed.
    pub fn available(&self) -> usize {
        self.extra
            .saturating_sub(self.in_use.load(Ordering::Relaxed))
    }

    /// Cores currently leased (registered pool workers plus inner claims);
    /// may exceed [`cores`](Self::cores)` - 1` when the pool overcommits.
    pub fn in_use(&self) -> usize {
        self.in_use.load(Ordering::Relaxed)
    }

    /// Unconditionally marks one core as occupied — the outer pool calls
    /// this from each worker thread so inner claims see the machine as
    /// busy. Released when the lease drops (the worker exits).
    pub fn register(&self) -> CoreLease<'_> {
        self.in_use.fetch_add(1, Ordering::Relaxed);
        CoreLease { budget: self, n: 1 }
    }

    /// Claims up to `want` extra cores, never exceeding the budget; the
    /// returned lease may hold zero. Inner parallel loops size themselves
    /// by `1 + lease.extra()` workers and release by dropping the lease.
    pub fn claim_extra(&self, want: usize) -> CoreLease<'_> {
        if want == 0 || self.extra == 0 {
            return CoreLease { budget: self, n: 0 };
        }
        let mut cur = self.in_use.load(Ordering::Relaxed);
        loop {
            let free = self.extra.saturating_sub(cur);
            let n = want.min(free);
            if n == 0 {
                return CoreLease { budget: self, n: 0 };
            }
            match self.in_use.compare_exchange_weak(
                cur,
                cur + n,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return CoreLease { budget: self, n },
                Err(now) => cur = now,
            }
        }
    }
}

/// Cores held against a [`ParallelBudget`]; returned on drop.
#[derive(Debug)]
pub struct CoreLease<'a> {
    budget: &'a ParallelBudget,
    n: usize,
}

impl CoreLease<'_> {
    /// Number of extra cores this lease holds (0 = run serial).
    pub fn extra(&self) -> usize {
        self.n
    }
}

impl Drop for CoreLease<'_> {
    fn drop(&mut self) {
        if self.n > 0 {
            self.budget.in_use.fetch_sub(self.n, Ordering::Relaxed);
        }
    }
}

/// Runs `a` and `b` concurrently when `budget` grants an extra core,
/// sequentially otherwise. Both closures always run to completion and the
/// results are identical either way — callers rely on this for the
/// byte-identity contract across thread counts.
pub fn join2<A, B, RA, RB>(budget: &ParallelBudget, a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let lease = budget.claim_extra(1);
    if lease.extra() == 0 {
        return (a(), b());
    }
    std::thread::scope(|scope| {
        let hb = scope.spawn(b);
        let ra = a();
        let rb = match hb.join() {
            Ok(rb) => rb,
            Err(payload) => std::panic::resume_unwind(payload),
        };
        (ra, rb)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threads_policy_precedence() {
        // HSIPC_SWEEP numeric wins over everything.
        assert_eq!(threads_from(Some("8"), Some("2"), Some("3"), 4), 8);
        assert_eq!(threads_from(Some("1"), Some("2"), None, 4), 1);
        // seq/sequential are aliases for 1.
        assert_eq!(threads_from(Some("seq"), Some("2"), None, 4), 1);
        assert_eq!(threads_from(Some("Sequential"), None, None, 4), 1);
        // Unparsable HSIPC_SWEEP falls through to the other knobs.
        assert_eq!(threads_from(Some("fast"), Some("2"), Some("3"), 4), 2);
        assert_eq!(threads_from(None, None, Some("3"), 4), 3);
        assert_eq!(threads_from(None, None, None, 4), 4);
        // Zero is never returned.
        assert_eq!(threads_from(Some("0"), None, None, 0), 1);
    }

    #[test]
    fn budget_claims_are_bounded_and_released() {
        let b = ParallelBudget::new(4);
        assert_eq!(b.cores(), 4);
        assert_eq!(b.available(), 3);
        let first = b.claim_extra(2);
        assert_eq!(first.extra(), 2);
        let second = b.claim_extra(5);
        assert_eq!(second.extra(), 1, "only one core left");
        assert_eq!(b.claim_extra(1).extra(), 0);
        drop(first);
        assert_eq!(b.available(), 2);
        drop(second);
        assert_eq!(b.available(), 3);
    }

    #[test]
    fn register_counts_against_inner_claims() {
        let b = ParallelBudget::new(2);
        let worker = b.register();
        assert_eq!(b.claim_extra(1).extra(), 0, "pool worker owns the core");
        drop(worker);
        assert_eq!(b.claim_extra(1).extra(), 1);
    }

    #[test]
    fn serial_budget_never_grants() {
        let b = ParallelBudget::serial();
        assert_eq!(b.cores(), 1);
        assert_eq!(b.claim_extra(usize::MAX).extra(), 0);
    }

    #[test]
    fn join2_matches_sequential() {
        let b = ParallelBudget::new(8);
        let (x, y) = join2(&b, || 6 * 7, || "ok");
        assert_eq!((x, y), (42, "ok"));
        let s = ParallelBudget::serial();
        let (x, y) = join2(&s, || 6 * 7, || "ok");
        assert_eq!((x, y), (42, "ok"));
    }
}
