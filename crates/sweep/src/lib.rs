//! # sweep — parallel experiment/sweep engine
//!
//! The paper's evaluation is a grid of independent analyses: GTPN solves and
//! discrete-event runs over `(architecture, locality, conversations,
//! offered_load, …)`. Every point is independent of every other, so the grid
//! can be evaluated by a pool of worker threads — but the rendered tables
//! and figures must come out in *paper order*, byte-identical to a
//! sequential evaluation. This crate provides exactly that contract:
//!
//! * [`Grid`] — an ordered collection of sweep points with an
//!   order-preserving [`Grid::eval`];
//! * [`map`] / [`map_with`] — the underlying order-preserving parallel map
//!   (self-scheduling workers over a shared index, results reassembled by
//!   position);
//! * [`point_seed`] — deterministic RNG seeds derived from grid
//!   coordinates, so DES replications are reproducible run-to-run no matter
//!   which worker executes them or in what order;
//! * [`ExecMode`] / [`threads`] — environment-controlled execution policy:
//!   `HSIPC_SWEEP=<n>` sets the worker count (`1`, `seq` or `sequential`
//!   force the sequential path), falling back to `RAYON_NUM_THREADS`
//!   (rayon's conventional knob), then `HSIPC_SWEEP_THREADS`, then the
//!   machine's available parallelism. The policy lives in [`gtpn::par`] so
//!   the solver's inner parallelism reads the very same knobs — and both
//!   layers draw threads from one [`gtpn::ParallelBudget`]: each pool
//!   worker registers the core it occupies, so inner loops (frontier
//!   expansion, red-black sweeps, the §6.6.3 concurrent sub-solves) only
//!   widen onto cores the pool leaves free.
//!
//! Worker panics propagate to the caller — a failing sweep point fails the
//! whole sweep, as it would sequentially.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Stack size of each pool worker. Sweep closures run solver iterations
/// and live-runtime drivers, not deep recursion; 2 MiB is ample while
/// keeping a wide pool from reserving the platform-default 8 MiB per
/// thread.
const WORKER_STACK: usize = 2 * 1024 * 1024;

/// How a sweep is evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// In-order, single-threaded — the reference path.
    Sequential,
    /// Self-scheduling worker pool; output order is still deterministic.
    Parallel,
}

/// The execution mode selected by the environment: sequential exactly when
/// [`threads`] resolves to one worker (`HSIPC_SWEEP=1`, `seq` or
/// `sequential`, or a single-core default), parallel otherwise.
pub fn exec_mode() -> ExecMode {
    if threads() <= 1 {
        ExecMode::Sequential
    } else {
        ExecMode::Parallel
    }
}

/// Worker count for parallel sweeps — the one thread-count policy of the
/// repository, re-exported from [`gtpn::par::threads`]: `HSIPC_SWEEP` as a
/// number, then `RAYON_NUM_THREADS`, then `HSIPC_SWEEP_THREADS`, then the
/// machine's available parallelism.
pub fn threads() -> usize {
    gtpn::par::threads()
}

/// Deprecated name of [`threads`], kept for callers predating the
/// centralized policy.
pub fn thread_count() -> usize {
    threads()
}

/// Order-preserving map over `items` using the environment's execution mode
/// and thread count. `out[i]` is always `f(&items[i])`.
pub fn map<I, O, F>(items: &[I], f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    map_with(exec_mode(), threads(), items, f)
}

/// Order-preserving map with explicit mode and thread count — the testable
/// core of [`map`].
pub fn map_with<I, O, F>(mode: ExecMode, threads: usize, items: &[I], f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    let workers = threads.min(items.len());
    if mode == ExecMode::Sequential || workers <= 1 {
        return items.iter().map(f).collect();
    }

    // Self-scheduling pool: workers claim the next unstarted index, so a
    // slow point (a big GTPN solve) does not hold up the others; results
    // carry their index and are reassembled in grid order afterwards.
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, O)>();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let tx = tx.clone();
                let next = &next;
                let f = &f;
                // Named, stack-capped workers: pool threads run sweep
                // points, not deep recursion — 2 MiB apiece keeps a wide
                // pool cheap and makes workers identifiable in thread
                // listings and panic messages.
                std::thread::Builder::new()
                    .name(format!("hsipc-sweep{w}"))
                    .stack_size(WORKER_STACK)
                    .spawn_scoped(scope, move || {
                        // Occupy one core in the shared budget for this
                        // worker's lifetime: inner solver parallelism only
                        // widens onto cores the pool leaves free, and as
                        // workers drain off the end of the grid their cores
                        // flow to the remaining (big) solves.
                        let _core = gtpn::ParallelBudget::global().register();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= items.len() {
                                break;
                            }
                            let out = f(&items[i]);
                            if tx.send((i, out)).is_err() {
                                break;
                            }
                        }
                    })
                    .expect("spawn sweep worker")
            })
            .collect();
        // Re-raise a worker's panic with its original payload so a failing
        // sweep point reports the same message it would sequentially.
        for h in handles {
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
    drop(tx);

    let mut slots: Vec<Option<O>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    for (i, out) in rx {
        slots[i] = Some(out);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every sweep point produced a result"))
        .collect()
}

/// An ordered grid of independent sweep points.
///
/// The order of `points` is the *paper order* — the order rows appear in
/// the rendered table or figure — and [`Grid::eval`] returns results in
/// exactly that order regardless of execution mode.
#[derive(Debug, Clone)]
pub struct Grid<P> {
    points: Vec<P>,
}

impl<P> Grid<P> {
    /// A grid from points already in paper order.
    pub fn new(points: Vec<P>) -> Grid<P> {
        Grid { points }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the grid has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The points, in paper order.
    pub fn points(&self) -> &[P] {
        &self.points
    }

    /// Evaluates every point under the environment's execution policy;
    /// `out[i]` corresponds to `points()[i]`.
    pub fn eval<O, F>(&self, f: F) -> Vec<O>
    where
        P: Sync,
        O: Send,
        F: Fn(&P) -> O + Sync,
    {
        map(&self.points, f)
    }

    /// Evaluates with an explicit mode — used by the byte-identity tests.
    pub fn eval_with<O, F>(&self, mode: ExecMode, threads: usize, f: F) -> Vec<O>
    where
        P: Sync,
        O: Send,
        F: Fn(&P) -> O + Sync,
    {
        map_with(mode, threads, &self.points, f)
    }

    /// Evaluates every point through a shared [`gtpn::AnalysisEngine`]
    /// under the environment's execution policy. Workers all analyze
    /// through the same engine, so structurally-identical nets across
    /// points hit one canonical solution cache no matter which worker
    /// claims them.
    ///
    /// Each worker additionally carries the caller's cache partition (so
    /// an overflowing sweep evicts its own cache entries first, not
    /// another experiment's) and — when the engine has warm starts
    /// enabled — an ambient [`gtpn::engine::WarmStart`] store: consecutive
    /// points solved by one worker hand their converged solutions to the
    /// next same-shape solve. The store is scoped to this evaluation by a
    /// token, so solves outside any sweep always start cold.
    pub fn eval_in<O, F>(&self, engine: &gtpn::AnalysisEngine, f: F) -> Vec<O>
    where
        P: Sync,
        O: Send,
        F: Fn(&gtpn::AnalysisEngine, &P) -> O + Sync,
    {
        self.eval_in_with(engine, exec_mode(), threads(), f)
    }

    /// As [`Grid::eval_in`] with an explicit mode and thread count.
    pub fn eval_in_with<O, F>(
        &self,
        engine: &gtpn::AnalysisEngine,
        mode: ExecMode,
        threads: usize,
        f: F,
    ) -> Vec<O>
    where
        P: Sync,
        O: Send,
        F: Fn(&gtpn::AnalysisEngine, &P) -> O + Sync,
    {
        let token = gtpn::engine::warm_token();
        let warm = engine.config().warm_start;
        let part = gtpn::cache::current_partition();
        let out = map_with(mode, threads, &self.points, |p| {
            let _part = gtpn::cache::enter_partition(part);
            if warm {
                gtpn::engine::warm_point_begin(token);
            }
            f(engine, p)
        });
        // Sequential evaluation ran on this thread: drop its store so
        // later direct `analyze` calls start cold. (Pool workers took
        // theirs to the grave with their thread-locals.)
        if warm {
            gtpn::engine::warm_end(token);
        }
        out
    }
}

/// The cartesian product `outer × inner`, outer-major — the nested-loop
/// order `for o in outer { for i in inner { … } }` used by the paper's
/// tables.
pub fn cartesian<A: Clone, B: Clone>(outer: &[A], inner: &[B]) -> Grid<(A, B)> {
    let mut points = Vec::with_capacity(outer.len() * inner.len());
    for o in outer {
        for i in inner {
            points.push((o.clone(), i.clone()));
        }
    }
    Grid::new(points)
}

/// Deterministic RNG seed for one grid point, derived from the experiment
/// id and the point's coordinates — never from a shared RNG, so the seed a
/// point gets does not depend on which worker ran first.
///
/// FNV-1a over the label and coordinate words, finished with a SplitMix64
/// scramble for avalanche.
pub fn point_seed(experiment: &str, coords: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |b: u8| {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    };
    for b in experiment.bytes() {
        eat(b);
    }
    for &c in coords {
        for b in c.to_le_bytes() {
            eat(b);
        }
    }
    let mut z = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..97).collect();
        let seq = map_with(ExecMode::Sequential, 1, &items, |&x| x * x);
        for threads in [2, 3, 8] {
            let par = map_with(ExecMode::Parallel, threads, &items, |&x| x * x);
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn all_points_evaluated_exactly_once() {
        let calls = AtomicUsize::new(0);
        let items: Vec<usize> = (0..50).collect();
        let out = map_with(ExecMode::Parallel, 4, &items, |&x| {
            calls.fetch_add(1, Ordering::Relaxed);
            x + 1
        });
        assert_eq!(calls.load(Ordering::Relaxed), 50);
        assert_eq!(out, (1..=50).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_singleton_grids() {
        let empty: Vec<u32> = Vec::new();
        assert!(map_with(ExecMode::Parallel, 4, &empty, |&x| x).is_empty());
        assert_eq!(
            map_with(ExecMode::Parallel, 4, &[7u32], |&x| x * 2),
            vec![14]
        );
        let g: Grid<u32> = Grid::new(vec![]);
        assert!(g.is_empty());
    }

    #[test]
    #[should_panic(expected = "sweep point 13")]
    fn worker_panic_propagates() {
        let items: Vec<usize> = (0..40).collect();
        let _ = map_with(ExecMode::Parallel, 4, &items, |&x| {
            assert!(x != 13, "sweep point 13 failed");
            x
        });
    }

    #[test]
    fn cartesian_is_outer_major() {
        let g = cartesian(&['a', 'b'], &[1, 2, 3]);
        let want = [('a', 1), ('a', 2), ('a', 3), ('b', 1), ('b', 2), ('b', 3)];
        assert_eq!(g.points(), &want[..]);
        assert_eq!(g.len(), 6);
    }

    #[test]
    fn point_seeds_are_stable_and_distinct() {
        let a = point_seed("fig6.15", &[1, 0]);
        assert_eq!(a, point_seed("fig6.15", &[1, 0]), "same point, same seed");
        assert_ne!(a, point_seed("fig6.15", &[1, 1]), "coords matter");
        assert_ne!(a, point_seed("fig6.16", &[1, 0]), "experiment id matters");
        // Coordinate boundaries are not ambiguous: [1,0] vs [1] differ.
        assert_ne!(a, point_seed("fig6.15", &[1]));
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(threads() >= 1);
        assert_eq!(threads(), thread_count(), "deprecated alias must agree");
        // One policy everywhere: the sweep pool and the solver's inner
        // parallelism must size themselves identically.
        assert_eq!(threads(), gtpn::par::threads());
        assert_eq!(
            exec_mode() == ExecMode::Sequential,
            threads() <= 1,
            "mode and worker count must agree"
        );
    }

    #[test]
    fn pool_workers_occupy_the_shared_core_budget() {
        use std::sync::atomic::AtomicUsize;
        let items: Vec<usize> = (0..64).collect();
        let min_in_use = AtomicUsize::new(usize::MAX);
        let budget = gtpn::ParallelBudget::global();
        map_with(ExecMode::Parallel, 3, &items, |&x| {
            // The observing worker itself holds a registered core, so the
            // shared ledger is never empty from inside the pool. (Other
            // tests' pools may add to it concurrently; they never
            // subtract below our own lease.)
            min_in_use.fetch_min(budget.in_use(), Ordering::Relaxed);
            x
        });
        assert!(min_in_use.load(Ordering::Relaxed) >= 1);
    }
}
