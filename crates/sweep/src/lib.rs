//! # sweep — parallel experiment/sweep engine
//!
//! The paper's evaluation is a grid of independent analyses: GTPN solves and
//! discrete-event runs over `(architecture, locality, conversations,
//! offered_load, …)`. Every point is independent of every other, so the grid
//! can be evaluated by a pool of worker threads — but the rendered tables
//! and figures must come out in *paper order*, byte-identical to a
//! sequential evaluation. This crate provides exactly that contract:
//!
//! * [`Grid`] — an ordered collection of sweep points with an
//!   order-preserving [`Grid::eval`];
//! * [`map`] / [`map_with`] — the underlying order-preserving parallel map
//!   (self-scheduling workers over a shared index, results reassembled by
//!   position);
//! * [`point_seed`] — deterministic RNG seeds derived from grid
//!   coordinates, so DES replications are reproducible run-to-run no matter
//!   which worker executes them or in what order;
//! * [`ExecMode`] / [`thread_count`] — environment-controlled execution
//!   policy: `HSIPC_SWEEP=seq` forces the sequential path, and
//!   `RAYON_NUM_THREADS` (rayon's conventional knob) or
//!   `HSIPC_SWEEP_THREADS` sets the worker count.
//!
//! Worker panics propagate to the caller — a failing sweep point fails the
//! whole sweep, as it would sequentially.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// How a sweep is evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// In-order, single-threaded — the reference path.
    Sequential,
    /// Self-scheduling worker pool; output order is still deterministic.
    Parallel,
}

/// The execution mode selected by the environment: `HSIPC_SWEEP=seq`
/// forces [`ExecMode::Sequential`]; anything else (including unset) is
/// [`ExecMode::Parallel`].
pub fn exec_mode() -> ExecMode {
    match std::env::var("HSIPC_SWEEP") {
        Ok(v) if v.eq_ignore_ascii_case("seq") || v.eq_ignore_ascii_case("sequential") => {
            ExecMode::Sequential
        }
        _ => ExecMode::Parallel,
    }
}

/// Worker count for parallel sweeps: `RAYON_NUM_THREADS` if set (rayon's
/// conventional knob), else `HSIPC_SWEEP_THREADS`, else the machine's
/// available parallelism.
pub fn thread_count() -> usize {
    for var in ["RAYON_NUM_THREADS", "HSIPC_SWEEP_THREADS"] {
        if let Ok(v) = std::env::var(var) {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Order-preserving map over `items` using the environment's execution mode
/// and thread count. `out[i]` is always `f(&items[i])`.
pub fn map<I, O, F>(items: &[I], f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    map_with(exec_mode(), thread_count(), items, f)
}

/// Order-preserving map with explicit mode and thread count — the testable
/// core of [`map`].
pub fn map_with<I, O, F>(mode: ExecMode, threads: usize, items: &[I], f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    let workers = threads.min(items.len());
    if mode == ExecMode::Sequential || workers <= 1 {
        return items.iter().map(f).collect();
    }

    // Self-scheduling pool: workers claim the next unstarted index, so a
    // slow point (a big GTPN solve) does not hold up the others; results
    // carry their index and are reassembled in grid order afterwards.
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, O)>();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let tx = tx.clone();
                let next = &next;
                let f = &f;
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    let out = f(&items[i]);
                    if tx.send((i, out)).is_err() {
                        break;
                    }
                })
            })
            .collect();
        // Re-raise a worker's panic with its original payload so a failing
        // sweep point reports the same message it would sequentially.
        for h in handles {
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
    drop(tx);

    let mut slots: Vec<Option<O>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    for (i, out) in rx {
        slots[i] = Some(out);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every sweep point produced a result"))
        .collect()
}

/// An ordered grid of independent sweep points.
///
/// The order of `points` is the *paper order* — the order rows appear in
/// the rendered table or figure — and [`Grid::eval`] returns results in
/// exactly that order regardless of execution mode.
#[derive(Debug, Clone)]
pub struct Grid<P> {
    points: Vec<P>,
}

impl<P> Grid<P> {
    /// A grid from points already in paper order.
    pub fn new(points: Vec<P>) -> Grid<P> {
        Grid { points }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the grid has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The points, in paper order.
    pub fn points(&self) -> &[P] {
        &self.points
    }

    /// Evaluates every point under the environment's execution policy;
    /// `out[i]` corresponds to `points()[i]`.
    pub fn eval<O, F>(&self, f: F) -> Vec<O>
    where
        P: Sync,
        O: Send,
        F: Fn(&P) -> O + Sync,
    {
        map(&self.points, f)
    }

    /// Evaluates with an explicit mode — used by the byte-identity tests.
    pub fn eval_with<O, F>(&self, mode: ExecMode, threads: usize, f: F) -> Vec<O>
    where
        P: Sync,
        O: Send,
        F: Fn(&P) -> O + Sync,
    {
        map_with(mode, threads, &self.points, f)
    }

    /// Evaluates every point through a shared [`gtpn::AnalysisEngine`]
    /// under the environment's execution policy. Workers all analyze
    /// through the same engine, so structurally-identical nets across
    /// points hit one canonical solution cache no matter which worker
    /// claims them.
    pub fn eval_in<O, F>(&self, engine: &gtpn::AnalysisEngine, f: F) -> Vec<O>
    where
        P: Sync,
        O: Send,
        F: Fn(&gtpn::AnalysisEngine, &P) -> O + Sync,
    {
        map(&self.points, |p| f(engine, p))
    }

    /// As [`Grid::eval_in`] with an explicit mode and thread count.
    pub fn eval_in_with<O, F>(
        &self,
        engine: &gtpn::AnalysisEngine,
        mode: ExecMode,
        threads: usize,
        f: F,
    ) -> Vec<O>
    where
        P: Sync,
        O: Send,
        F: Fn(&gtpn::AnalysisEngine, &P) -> O + Sync,
    {
        map_with(mode, threads, &self.points, |p| f(engine, p))
    }
}

/// The cartesian product `outer × inner`, outer-major — the nested-loop
/// order `for o in outer { for i in inner { … } }` used by the paper's
/// tables.
pub fn cartesian<A: Clone, B: Clone>(outer: &[A], inner: &[B]) -> Grid<(A, B)> {
    let mut points = Vec::with_capacity(outer.len() * inner.len());
    for o in outer {
        for i in inner {
            points.push((o.clone(), i.clone()));
        }
    }
    Grid::new(points)
}

/// Deterministic RNG seed for one grid point, derived from the experiment
/// id and the point's coordinates — never from a shared RNG, so the seed a
/// point gets does not depend on which worker ran first.
///
/// FNV-1a over the label and coordinate words, finished with a SplitMix64
/// scramble for avalanche.
pub fn point_seed(experiment: &str, coords: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |b: u8| {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    };
    for b in experiment.bytes() {
        eat(b);
    }
    for &c in coords {
        for b in c.to_le_bytes() {
            eat(b);
        }
    }
    let mut z = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..97).collect();
        let seq = map_with(ExecMode::Sequential, 1, &items, |&x| x * x);
        for threads in [2, 3, 8] {
            let par = map_with(ExecMode::Parallel, threads, &items, |&x| x * x);
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn all_points_evaluated_exactly_once() {
        let calls = AtomicUsize::new(0);
        let items: Vec<usize> = (0..50).collect();
        let out = map_with(ExecMode::Parallel, 4, &items, |&x| {
            calls.fetch_add(1, Ordering::Relaxed);
            x + 1
        });
        assert_eq!(calls.load(Ordering::Relaxed), 50);
        assert_eq!(out, (1..=50).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_singleton_grids() {
        let empty: Vec<u32> = Vec::new();
        assert!(map_with(ExecMode::Parallel, 4, &empty, |&x| x).is_empty());
        assert_eq!(
            map_with(ExecMode::Parallel, 4, &[7u32], |&x| x * 2),
            vec![14]
        );
        let g: Grid<u32> = Grid::new(vec![]);
        assert!(g.is_empty());
    }

    #[test]
    #[should_panic(expected = "sweep point 13")]
    fn worker_panic_propagates() {
        let items: Vec<usize> = (0..40).collect();
        let _ = map_with(ExecMode::Parallel, 4, &items, |&x| {
            assert!(x != 13, "sweep point 13 failed");
            x
        });
    }

    #[test]
    fn cartesian_is_outer_major() {
        let g = cartesian(&['a', 'b'], &[1, 2, 3]);
        let want = [('a', 1), ('a', 2), ('a', 3), ('b', 1), ('b', 2), ('b', 3)];
        assert_eq!(g.points(), &want[..]);
        assert_eq!(g.len(), 6);
    }

    #[test]
    fn point_seeds_are_stable_and_distinct() {
        let a = point_seed("fig6.15", &[1, 0]);
        assert_eq!(a, point_seed("fig6.15", &[1, 0]), "same point, same seed");
        assert_ne!(a, point_seed("fig6.15", &[1, 1]), "coords matter");
        assert_ne!(a, point_seed("fig6.16", &[1, 0]), "experiment id matters");
        // Coordinate boundaries are not ambiguous: [1,0] vs [1] differ.
        assert_ne!(a, point_seed("fig6.15", &[1]));
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(thread_count() >= 1);
    }
}
