//! # hsipc — Hardware Support for Interprocess Communication
//!
//! A full reproduction of Umakishore Ramachandran's *Hardware Support for
//! Interprocess Communication* (UW–Madison TR #667, 1986; ISCA 1987): the
//! message-coprocessor software partition, the smart bus and smart shared
//! memory, the 925-style message kernel, the Chapter 3 profiling study, and
//! the Chapter 6 GTPN performance models of four node architectures —
//! plus a discrete-event simulator standing in for the paper's experimental
//! 925 implementation.
//!
//! ## Crate map
//!
//! | Module | Contents |
//! |--------|----------|
//! | [`gtpn`] | Generalized Timed Petri Net engine: nets, state-dependent frequencies, reachability, Markov solve, Monte-Carlo simulation, invariants |
//! | [`smartbus`] | The smart bus: Table 5.1 signals, Table 5.2 commands, Taub arbitration, edge-accurate protocol engine |
//! | [`smartmem`] | The smart shared memory controller: block table with preempt/restart, atomic queue primitives, Appendix A micro-routines |
//! | [`msgkernel`] | The 925-style message kernel: tasks, services, send/receive/reply rendezvous, memory moves, computation & communication lists |
//! | [`netsim`] | The 4 Mb/s token ring |
//! | [`archsim`] | Discrete-event simulation of Architectures I–IV under the paper's measured activity costs |
//! | [`models`] | The Chapter 6 GTPN models: local, non-local (iterative client/server), contention, offered loads, validation |
//! | [`profiler`] | The Chapter 3 profiling study: synthetic Charlotte/Jasmin/925/Unix kernels under the §3.3 harness |
//! | [`runtime`] | Live node runtime: real host/MP threads per node driving the kernel through shared atomic queues under load |
//! | [`sweep`] | Parallel experiment/sweep engine: order-preserving grid evaluation, deterministic per-point seeding |
//! | [`experiments`] | Regeneration of every table and figure in the evaluation |
//!
//! ## Quickstart
//!
//! ```
//! use hsipc::archsim::{Architecture, Locality, Simulation, WorkloadSpec};
//!
//! // How much does a message coprocessor help two local conversations with
//! // ~1.1 ms of server computation each?
//! let spec = WorkloadSpec {
//!     conversations: 2,
//!     server_compute_us: 1_140.0,
//!     locality: Locality::Local,
//!     horizon_us: 1_000_000.0,
//!     warmup_us: 100_000.0,
//!     seed: 1,
//! };
//! let uni = Simulation::new(Architecture::Uniprocessor, &spec).run();
//! let mp = Simulation::new(Architecture::MessageCoprocessor, &spec).run();
//! assert!(mp.throughput_per_ms > uni.throughput_per_ms);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use archsim;
pub use gtpn;
pub use models;
pub use msgkernel;
pub use netsim;
pub use profiler;
pub use runtime;
pub use smartbus;
pub use smartmem;
pub use sweep;

pub mod experiments;
pub mod livesweep;
