//! Regeneration of every table and figure in the paper's evaluation.
//!
//! Each experiment is addressable by the paper's table/figure number
//! (`"table3.1"`, `"fig6.17"`, …) and renders its result as text — the same
//! rows/series the paper reports, produced by actually running the
//! corresponding harness (profiler, bus simulator, GTPN models, DES).
//!
//! ```
//! let out = hsipc::experiments::run("table5.2").expect("known experiment");
//! assert!(out.contains("Enqueue control block"));
//! ```

mod ch3;
mod ch4;
mod ch5;
mod ch6figures;
mod ch6tables;

/// A regenerable experiment.
pub struct Experiment {
    /// Identifier: the paper's table/figure number, e.g. `"table6.1"`.
    pub id: &'static str,
    /// Human-readable title.
    pub title: &'static str,
    /// Produces the experiment's output.
    pub run: fn() -> String,
}

/// All experiments, in paper order.
pub fn all() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "table3.1",
            title: "Charlotte profiling (local, 1000 B)",
            run: ch3::table_3_1,
        },
        Experiment {
            id: "table3.2",
            title: "Jasmin profiling (local, 32 B)",
            run: ch3::table_3_2,
        },
        Experiment {
            id: "table3.3",
            title: "925 profiling (local, 40 B)",
            run: ch3::table_3_3,
        },
        Experiment {
            id: "table3.4",
            title: "Unix profiling (local, 128 B)",
            run: ch3::table_3_4,
        },
        Experiment {
            id: "table3.5",
            title: "Unix profiling (non-local, 128 B)",
            run: ch3::table_3_5,
        },
        Experiment {
            id: "table3.6",
            title: "Unix server service times",
            run: ch3::table_3_6,
        },
        Experiment {
            id: "table3.7",
            title: "Unix read/write vs block size",
            run: ch3::table_3_7,
        },
        Experiment {
            id: "fig3.path",
            title: "Message-path time-stamping (S3.3 technique 3)",
            run: ch3::fig_3_msgpath,
        },
        Experiment {
            id: "fig4.6",
            title: "Blocking remote invocation send timeline",
            run: ch4::fig_4_6,
        },
        Experiment {
            id: "table5.1",
            title: "Smart bus signals",
            run: ch5::table_5_1,
        },
        Experiment {
            id: "table5.2",
            title: "Smart bus commands",
            run: ch5::table_5_2,
        },
        Experiment {
            id: "fig5.timing",
            title: "Smart bus timing diagrams (Figs 5.4-5.16)",
            run: ch5::fig_5_timing,
        },
        Experiment {
            id: "table6.1",
            title: "Queue/block primitive times, Arch II vs III",
            run: ch6tables::table_6_1,
        },
        Experiment {
            id: "table6.2",
            title: "Shared-memory contention completion times",
            run: ch6tables::table_6_2,
        },
        Experiment {
            id: "table6.4",
            title: "Arch I local activity costs",
            run: ch6tables::table_6_4,
        },
        Experiment {
            id: "table6.6",
            title: "Arch I non-local activity costs",
            run: ch6tables::table_6_6,
        },
        Experiment {
            id: "table6.9",
            title: "Arch II local activity costs",
            run: ch6tables::table_6_9,
        },
        Experiment {
            id: "table6.11",
            title: "Arch II non-local activity costs",
            run: ch6tables::table_6_11,
        },
        Experiment {
            id: "table6.14",
            title: "Arch III local activity costs",
            run: ch6tables::table_6_14,
        },
        Experiment {
            id: "table6.16",
            title: "Arch III non-local activity costs",
            run: ch6tables::table_6_16,
        },
        Experiment {
            id: "table6.19",
            title: "Arch IV local activity costs",
            run: ch6tables::table_6_19,
        },
        Experiment {
            id: "table6.21",
            title: "Arch IV non-local activity costs",
            run: ch6tables::table_6_21,
        },
        Experiment {
            id: "table6.24",
            title: "Offered loads (local)",
            run: ch6tables::table_6_24,
        },
        Experiment {
            id: "table6.25",
            title: "Offered loads (non-local)",
            run: ch6tables::table_6_25,
        },
        Experiment {
            id: "fig6.7",
            title: "Geometric-delay approximation",
            run: ch6figures::fig_6_7,
        },
        Experiment {
            id: "fig6.15",
            title: "Model validation (GTPN vs DES)",
            run: ch6figures::fig_6_15,
        },
        Experiment {
            id: "fig6.17",
            title: "Maximum communication load (I/II/III)",
            run: ch6figures::fig_6_17,
        },
        Experiment {
            id: "fig6.18",
            title: "Realistic workload, local (I/II/III)",
            run: ch6figures::fig_6_18,
        },
        Experiment {
            id: "fig6.19",
            title: "Realistic workload, non-local (I/II/III)",
            run: ch6figures::fig_6_19,
        },
        Experiment {
            id: "fig6.20",
            title: "Max load, III vs IV (local)",
            run: ch6figures::fig_6_20,
        },
        Experiment {
            id: "fig6.21",
            title: "Max load, III vs IV (non-local)",
            run: ch6figures::fig_6_21,
        },
        Experiment {
            id: "fig6.22",
            title: "Realistic load, III vs IV (local)",
            run: ch6figures::fig_6_22,
        },
        Experiment {
            id: "fig6.23",
            title: "Realistic load, III vs IV (non-local)",
            run: ch6figures::fig_6_23,
        },
        Experiment {
            id: "fig7.1",
            title: "Chapter 7 extension: one MP, multiple hosts",
            run: ch6figures::fig_7_1,
        },
        Experiment {
            id: "fig7.scale",
            title: "Chapter 7 scale-out: beyond n=4 via the DES backend",
            run: ch6figures::fig_7_scale,
        },
    ]
}

/// Runs one experiment by id; `None` for an unknown id.
pub fn run(id: &str) -> Option<String> {
    all().into_iter().find(|e| e.id == id).map(|e| (e.run)())
}

/// Runs one experiment under an explicit sweep execution mode, bypassing
/// the `HSIPC_SWEEP` / thread-count environment policy. Experiments whose
/// grids are swept honor `mode`/`threads`; the rest — the ch3 profiling
/// tables and every other single-solve experiment — run as one-point
/// grids on the same engine, so every experiment flows through one
/// evaluation path. Output is byte-identical across modes — that is the
/// sweep engine's contract, and `tests/sweep_identity.rs` holds it to it.
///
/// The experiment id tags the run as a cache *partition*
/// ([`gtpn::cache::partition_scope`]): lookups stay global, so
/// structurally shared nets still hit across figures, but when the bounded
/// caches overflow, an experiment's inserts evict its own stale entries
/// before touching another experiment's hot ones.
pub fn run_with(id: &str, mode: sweep::ExecMode, threads: usize) -> Option<String> {
    gtpn::cache::partition_scope(id, || run_with_inner(id, mode, threads))
}

fn run_with_inner(id: &str, mode: sweep::ExecMode, threads: usize) -> Option<String> {
    match id {
        "table6.24" => Some(ch6tables::table_6_24_with(mode, threads)),
        "table6.25" => Some(ch6tables::table_6_25_with(mode, threads)),
        "fig6.15" => Some(ch6figures::fig_6_15_with(mode, threads)),
        "fig6.17" => Some(ch6figures::fig_6_17_with(mode, threads)),
        "fig6.18" => Some(ch6figures::fig_6_18_with(mode, threads)),
        "fig6.19" => Some(ch6figures::fig_6_19_with(mode, threads)),
        "fig6.20" => Some(ch6figures::fig_6_20_with(mode, threads)),
        "fig6.21" => Some(ch6figures::fig_6_21_with(mode, threads)),
        "fig6.22" => Some(ch6figures::fig_6_22_with(mode, threads)),
        "fig6.23" => Some(ch6figures::fig_6_23_with(mode, threads)),
        "fig7.1" => Some(ch6figures::fig_7_1_with(mode, threads)),
        "fig7.scale" => Some(ch6figures::fig_7_scale_with(mode, threads)),
        _ => all().into_iter().find(|e| e.id == id).map(|e| {
            sweep::Grid::new(vec![e.run])
                .eval_with(mode, threads, |run| run())
                .pop()
                .expect("one-point grid yields one result")
        }),
    }
}

/// Renders a text table: a header row and aligned columns.
pub(crate) fn render_table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let line = |cells: &[String], widths: &[usize]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            if i > 0 {
                s.push_str("  ");
            }
            s.push_str(&format!("{:<width$}", c, width = widths[i]));
        }
        s.trim_end().to_string()
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&line(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&line(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_unique_and_runnable_lookup() {
        let experiments = all();
        let mut ids = std::collections::HashSet::new();
        for e in &experiments {
            assert!(ids.insert(e.id), "duplicate id {}", e.id);
        }
        assert!(experiments.len() >= 30);
        assert!(run("no-such-table").is_none());
    }

    #[test]
    fn fast_experiments_render() {
        for id in ["table3.3", "table5.1", "table5.2", "table6.4", "table6.24"] {
            let out = run(id).expect("known id");
            assert!(out.lines().count() > 3, "{id}: {out}");
        }
    }

    #[test]
    fn render_table_aligns() {
        let out = render_table(
            "T",
            &["a", "long-header"],
            &[vec!["xx".into(), "1".into()], vec!["y".into(), "22".into()]],
        );
        assert!(out.contains("long-header"));
        assert!(out.lines().count() == 5);
    }
}
