//! Chapter 4 — the software-partition implementation: Figure 4.6's
//! blocking-remote-invocation-send timeline, reconstructed from a traced
//! discrete-event run.

use archsim::{Architecture, Locality, Simulation, WorkloadSpec};

/// Figure 4.6 — the timeline of one blocking remote-invocation send across
/// two nodes: which processor does what, when.
pub fn fig_4_6() -> String {
    let spec = WorkloadSpec {
        conversations: 1,
        server_compute_us: 1_000.0,
        locality: Locality::NonLocal,
        horizon_us: 12_000.0,
        warmup_us: 0.0,
        seed: 1,
    };
    let (_, mut trace) = Simulation::new(Architecture::MessageCoprocessor, &spec).run_traced();
    trace.sort_by(|a, b| a.start_us.total_cmp(&b.start_us));
    let mut out = String::from(
        "Figure 4.6 — Blocking Remote Invocation Send (Architecture II, one conversation)\n\
         node 0 = client node, node 1 = server node; times in µs\n\n",
    );
    out.push_str(&format!(
        "{:>9}  {:>9}  {:<6} {:<6} {}\n",
        "start", "end", "node", "proc", "activity"
    ));
    out.push_str(&"-".repeat(64));
    out.push('\n');
    for seg in trace.iter().take(20) {
        out.push_str(&format!(
            "{:>9.1}  {:>9.1}  {:<6} {:<6} {}\n",
            seg.start_us,
            seg.end_us,
            format!("node{}", seg.node),
            seg.processor,
            seg.label
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn figure_4_6_renders_the_scenario() {
        let t = super::fig_4_6();
        assert!(t.contains("SyscallSend"), "{t}");
        assert!(t.contains("ProcessSend"));
        assert!(t.contains("DMA out"));
        assert!(t.contains("Interrupt: Match"));
        assert!(t.contains("SyscallReply"));
    }
}
