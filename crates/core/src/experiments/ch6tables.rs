//! Chapter 6 tables: primitive costs, contention, activity tables, offered
//! loads.

use super::render_table;
use archsim::timings::{self, Architecture, Locality};
use models::contention;

/// Table 6.1 — queue/block primitive times under Architectures II and III.
pub fn table_6_1() -> String {
    let rows: Vec<Vec<String>> = timings::TABLE_6_1
        .iter()
        .map(|&(op, (p2, m2), (p3, m3))| {
            vec![
                op.to_string(),
                format!("{p2:.0}"),
                format!("{m2:.0}"),
                format!("{p3:.0}"),
                format!("{m3:.0}"),
                format!("{:.1}x", (p2 + m2) / (p3 + m3)),
            ]
        })
        .collect();
    render_table(
        "Table 6.1 — Comparison of Processing Times (µs)",
        &[
            "Operation",
            "II proc",
            "II mem",
            "III proc",
            "III mem",
            "Speedup",
        ],
        &rows,
    )
}

/// Table 6.2 — contention completion times from the low-level model,
/// side by side with the published values.
pub fn table_6_2() -> String {
    let published = [1314.9, 235.2, 235.2, 982.0];
    let times = contention::completion_times(contention::TABLE_6_2).expect("table 6.2 mix solves");
    let rows: Vec<Vec<String>> = contention::TABLE_6_2
        .iter()
        .zip(times.iter())
        .zip(published.iter())
        .map(|((a, &got), &want)| {
            vec![
                a.name.to_string(),
                format!("{:.0}", a.best_us),
                format!("{got:.1}"),
                format!("{want:.1}"),
                format!("{:+.2}%", 100.0 * (got - want) / want),
            ]
        })
        .collect();
    render_table(
        "Table 6.2 — Architecture I non-local client contention (µs)",
        &["Activity", "Best", "Model", "Published", "Δ"],
        &rows,
    )
}

fn activity_table(paper_table: &str, arch: Architecture, locality: Locality) -> String {
    let rows: Vec<Vec<String>> = timings::activity_table(arch, locality)
        .iter()
        .map(|a| {
            vec![
                a.action.to_string(),
                format!("{:?}", a.kind),
                format!("{:?}", a.processor),
                format!("{:.0}", a.processing_us),
                format!("{:.0}", a.shared_us()),
                format!("{:.0}", a.best_us()),
                format!("{:.1}", a.contention_us),
            ]
        })
        .collect();
    let mut out = render_table(
        &format!("{paper_table} — {arch}, {locality:?} conversation (µs)"),
        &[
            "#",
            "Activity",
            "Proc",
            "Processing",
            "Shared",
            "Best",
            "Contention",
        ],
        &rows,
    );
    out.push_str(&format!(
        "Round-trip communication time C = {:.0} µs (best, host+MP)\n",
        timings::round_trip_us(arch, locality, false)
    ));
    out
}

/// Table 6.4 — Architecture I, local.
pub fn table_6_4() -> String {
    activity_table("Table 6.4", Architecture::Uniprocessor, Locality::Local)
}

/// Table 6.6 — Architecture I, non-local.
pub fn table_6_6() -> String {
    activity_table("Table 6.6", Architecture::Uniprocessor, Locality::NonLocal)
}

/// Table 6.9 — Architecture II, local.
pub fn table_6_9() -> String {
    activity_table(
        "Table 6.9",
        Architecture::MessageCoprocessor,
        Locality::Local,
    )
}

/// Table 6.11 — Architecture II, non-local.
pub fn table_6_11() -> String {
    activity_table(
        "Table 6.11",
        Architecture::MessageCoprocessor,
        Locality::NonLocal,
    )
}

/// Table 6.14 — Architecture III, local.
pub fn table_6_14() -> String {
    activity_table("Table 6.14", Architecture::SmartBus, Locality::Local)
}

/// Table 6.16 — Architecture III, non-local.
pub fn table_6_16() -> String {
    activity_table("Table 6.16", Architecture::SmartBus, Locality::NonLocal)
}

/// Table 6.19 — Architecture IV, local.
pub fn table_6_19() -> String {
    activity_table(
        "Table 6.19",
        Architecture::PartitionedSmartBus,
        Locality::Local,
    )
}

/// Table 6.21 — Architecture IV, non-local.
pub fn table_6_21() -> String {
    activity_table(
        "Table 6.21",
        Architecture::PartitionedSmartBus,
        Locality::NonLocal,
    )
}

fn offered_table(
    mode: sweep::ExecMode,
    threads: usize,
    paper_table: &str,
    locality: Locality,
) -> String {
    // Each row is an independent sweep point over the paper's server times.
    let grid = sweep::Grid::new(models::offered::SERVER_TIMES_MS.to_vec());
    let rows = grid.eval_with(mode, threads, |&server_ms| {
        let r = models::offered::row(locality, server_ms);
        let mut cells = vec![format!("{:.2}", r.server_ms)];
        cells.extend(r.loads.iter().map(|l| format!("{l:.3}")));
        cells
    });
    render_table(
        &format!("{paper_table} — Offered Loads ({locality:?})"),
        &["Server (ms)", "I", "II", "III", "IV"],
        &rows,
    )
}

/// Table 6.24 — offered loads, local.
pub fn table_6_24() -> String {
    table_6_24_with(sweep::exec_mode(), sweep::threads())
}

/// [`table_6_24`] under an explicit execution mode.
pub fn table_6_24_with(mode: sweep::ExecMode, threads: usize) -> String {
    offered_table(mode, threads, "Table 6.24", Locality::Local)
}

/// Table 6.25 — offered loads, non-local.
pub fn table_6_25() -> String {
    table_6_25_with(sweep::exec_mode(), sweep::threads())
}

/// [`table_6_25`] under an explicit execution mode.
pub fn table_6_25_with(mode: sweep::ExecMode, threads: usize) -> String {
    offered_table(mode, threads, "Table 6.25", Locality::NonLocal)
}

#[cfg(test)]
mod tests {
    #[test]
    fn table_6_1_shows_speedups() {
        let t = super::table_6_1();
        assert!(t.contains("Enqueue"));
        assert!(t.contains("7.4x"), "{t}");
    }

    #[test]
    fn offered_tables_have_thirteen_rows() {
        let t = super::table_6_24();
        // Header + rule + 13 rows + title.
        assert_eq!(t.lines().count(), 16, "{t}");
    }
}
