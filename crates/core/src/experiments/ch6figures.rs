//! Chapter 6 figures: throughput series from the GTPN models and the
//! discrete-event "experiment".
//!
//! Every figure is a grid of independent model solves (or DES runs), so
//! each is expressed as a [`sweep`] grid: points are laid out in *paper
//! order* — the order rows appear in the rendered table — evaluated under
//! the engine's execution policy, and reassembled positionally. The
//! rendered text is byte-identical whether the grid runs sequentially or
//! on a worker pool; the `*_with` variants take an explicit mode so the
//! identity is testable.

use super::render_table;
use archsim::timings::{Architecture, Locality};
use models::{
    local, nonlocal, offered, validation, AnalysisEngine, BackendSel, DesOptions, EngineConfig,
};
use sweep::{ExecMode, Grid};

/// Conversation counts the paper plots (1–4; its tools could not go
/// further, §6.9.2).
const CONVERSATIONS: [u32; 4] = [1, 2, 3, 4];

/// Offered-load sweep (architecture-I axis) used by the realistic-workload
/// figures.
const LOAD_SWEEP: [f64; 7] = [0.95, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4];

/// The environment's execution policy, for the registry's `fn() -> String`
/// entries.
fn env_exec() -> (ExecMode, usize) {
    (sweep::exec_mode(), sweep::threads())
}

/// Figure 6.7 — the geometric approximation of a large constant delay
/// preserves mean throughput.
pub fn fig_6_7() -> String {
    use gtpn::{Net, Transition};
    let delay = 500u64;
    // Constant-delay net: a token cycles through one delay-500 transition.
    let mut constant = Net::new("constant");
    let p = constant.add_place("P", 1);
    constant
        .add_transition(
            Transition::new("T")
                .delay(delay)
                .resource("lambda")
                .input(p, 1)
                .output(p, 1),
        )
        .expect("place exists");
    // Tight-tolerance exact engine: both nets are tiny (≤ `delay` states).
    // Lumping stays off: the figure prints the constant-vs-geometric
    // relative difference, a quantity at solver-tolerance scale that the
    // (equally exact, differently rounded) quotient solve would perturb.
    let engine = AnalysisEngine::new(EngineConfig {
        backend: BackendSel::Exact,
        tolerance: 1e-12,
        max_sweeps: 100_000,
        state_budget: 1_000,
        des: DesOptions::default(),
        par_solve: gtpn::par::par_solve_enabled(),
        warm_start: gtpn::engine::warm_start_enabled(),
        lump: gtpn::LumpSel::Off,
    });
    let exact = engine
        .analyze(&constant)
        .expect("constant net solves")
        .resource_rate("lambda")
        .expect("resource defined");

    // Geometric net with the same mean.
    let mut geo = Net::new("geometric");
    let p = geo.add_place("P", 1);
    gtpn::geometric::GeometricStage::new("T", delay as f64)
        .input(p, 1)
        .output(p, 1)
        .resource("lambda")
        .build(&mut geo)
        .expect("place exists");
    let approx = engine
        .analyze(&geo)
        .expect("geometric net solves")
        .resource_rate("lambda")
        .expect("resource defined");

    format!(
        "Figure 6.7 — Modeling Large Constant Delays\n\
         constant delay {delay}: throughput {exact:.6}/us\n\
         geometric mean {delay}: throughput {approx:.6}/us\n\
         relative difference {:.2e}\n",
        (exact - approx).abs() / exact
    )
}

/// Figure 6.15 — validation: GTPN model vs the discrete-event experiment,
/// architecture II non-local, 1–4 conversations at three compute levels.
pub fn fig_6_15() -> String {
    let (mode, threads) = env_exec();
    fig_6_15_with(mode, threads)
}

/// [`fig_6_15`] under an explicit execution mode.
pub fn fig_6_15_with(mode: ExecMode, threads: usize) -> String {
    let mut points = Vec::new();
    for &n in &CONVERSATIONS {
        for (i, server_us) in [570.0, 2_850.0, 11_400.0].into_iter().enumerate() {
            points.push((n, i, server_us));
        }
    }
    let grid = Grid::new(points);
    let engine = models::default_engine();
    let rows = grid.eval_in_with(engine, mode, threads, |engine, &(n, i, server_us)| {
        // Each DES replication seeds from its grid coordinates — never from
        // a shared RNG — so results are identical no matter which worker
        // runs the point or in what order.
        let seed = sweep::point_seed("fig6.15", &[u64::from(n), i as u64]);
        let p =
            validation::compare_in(engine, n, server_us, seed).expect("validation point solves");
        vec![
            n.to_string(),
            format!("{:.2}", server_us / 1_000.0),
            format!("{:.4}", p.model_per_ms),
            format!("{:.4}", p.measured_per_ms),
            format!(
                "{:+.1}%",
                100.0 * (p.model_per_ms - p.measured_per_ms) / p.measured_per_ms
            ),
        ]
    });
    render_table(
        "Figure 6.15 — Model Validation (Architecture II, non-local)",
        &["Conv", "Server (ms)", "Model (/ms)", "Measured (/ms)", "Δ"],
        &rows,
    )
}

/// One max-load or realistic-workload model solve: the slow kernel every
/// figure grid point runs.
fn solve_throughput(
    engine: &AnalysisEngine,
    arch: Architecture,
    locality: Locality,
    n: u32,
    server_us: f64,
) -> f64 {
    match locality {
        Locality::Local => {
            local::solve_in(engine, arch, n, server_us)
                .expect("local model solves")
                .throughput_per_ms
        }
        Locality::NonLocal => {
            nonlocal::solve_in(engine, arch, n, server_us)
                .expect("non-local model solves")
                .throughput_per_ms
        }
    }
}

fn max_load(
    mode: ExecMode,
    threads: usize,
    archs: &[Architecture],
    locality: Locality,
    title: &str,
) -> String {
    let grid = sweep::cartesian(&CONVERSATIONS, archs);
    let engine = models::default_engine();
    let cells = grid.eval_in_with(engine, mode, threads, |engine, &(n, arch)| {
        format!("{:.4}", solve_throughput(engine, arch, locality, n, 0.0))
    });
    let rows: Vec<Vec<String>> = CONVERSATIONS
        .iter()
        .zip(cells.chunks(archs.len()))
        .map(|(n, chunk)| {
            let mut row = vec![n.to_string()];
            row.extend_from_slice(chunk);
            row
        })
        .collect();
    let mut header: Vec<&str> = vec!["Conversations"];
    let labels: Vec<String> = archs
        .iter()
        .map(|a| format!("Arch {} (/ms)", a.label()))
        .collect();
    header.extend(labels.iter().map(String::as_str));
    render_table(title, &header, &rows)
}

fn realistic(
    mode: ExecMode,
    threads: usize,
    archs: &[Architecture],
    locality: Locality,
    title: &str,
) -> String {
    let mut points = Vec::new();
    for &load in &LOAD_SWEEP {
        let server_us = offered::server_time_for_load_arch1(locality, load);
        for &n in &[1u32, 4] {
            for &arch in archs {
                points.push((load, server_us, n, arch));
            }
        }
    }
    let grid = Grid::new(points);
    let engine = models::default_engine();
    let cells = grid.eval_in_with(engine, mode, threads, |engine, &(_, server_us, n, arch)| {
        format!(
            "{:.4}",
            solve_throughput(engine, arch, locality, n, server_us)
        )
    });
    let rows: Vec<Vec<String>> = grid
        .points()
        .chunks(archs.len())
        .zip(cells.chunks(archs.len()))
        .map(|(pts, chunk)| {
            let (load, _, n, _) = pts[0];
            let mut row = vec![format!("{load:.2}"), n.to_string()];
            row.extend_from_slice(chunk);
            row
        })
        .collect();
    let mut header: Vec<&str> = vec!["Load(I)", "Conv"];
    let labels: Vec<String> = archs
        .iter()
        .map(|a| format!("Arch {} (/ms)", a.label()))
        .collect();
    header.extend(labels.iter().map(String::as_str));
    render_table(title, &header, &rows)
}

const MAIN_THREE: [Architecture; 3] = [
    Architecture::Uniprocessor,
    Architecture::MessageCoprocessor,
    Architecture::SmartBus,
];
const THREE_FOUR: [Architecture; 2] = [Architecture::SmartBus, Architecture::PartitionedSmartBus];

/// Figure 6.17(a, b) — maximum communication load.
pub fn fig_6_17() -> String {
    let (mode, threads) = env_exec();
    fig_6_17_with(mode, threads)
}

/// [`fig_6_17`] under an explicit execution mode.
pub fn fig_6_17_with(mode: ExecMode, threads: usize) -> String {
    let mut out = max_load(
        mode,
        threads,
        &MAIN_THREE,
        Locality::Local,
        "Figure 6.17(a) — Maximum Communication Load (Local)",
    );
    out.push('\n');
    out.push_str(&max_load(
        mode,
        threads,
        &MAIN_THREE,
        Locality::NonLocal,
        "Figure 6.17(b) — Maximum Communication Load (Non-local)",
    ));
    out
}

/// Figure 6.18 — realistic workload, local.
pub fn fig_6_18() -> String {
    let (mode, threads) = env_exec();
    fig_6_18_with(mode, threads)
}

/// [`fig_6_18`] under an explicit execution mode.
pub fn fig_6_18_with(mode: ExecMode, threads: usize) -> String {
    realistic(
        mode,
        threads,
        &MAIN_THREE,
        Locality::Local,
        "Figure 6.18 — Realistic Workload (Local)",
    )
}

/// Figure 6.19 — realistic workload, non-local.
pub fn fig_6_19() -> String {
    let (mode, threads) = env_exec();
    fig_6_19_with(mode, threads)
}

/// [`fig_6_19`] under an explicit execution mode.
pub fn fig_6_19_with(mode: ExecMode, threads: usize) -> String {
    realistic(
        mode,
        threads,
        &MAIN_THREE,
        Locality::NonLocal,
        "Figure 6.19 — Realistic Workload (Non-local)",
    )
}

/// Figure 6.20 — maximum load, III vs IV, local.
pub fn fig_6_20() -> String {
    let (mode, threads) = env_exec();
    fig_6_20_with(mode, threads)
}

/// [`fig_6_20`] under an explicit execution mode.
pub fn fig_6_20_with(mode: ExecMode, threads: usize) -> String {
    max_load(
        mode,
        threads,
        &THREE_FOUR,
        Locality::Local,
        "Figure 6.20 — Max Load (III & IV, Local)",
    )
}

/// Figure 6.21 — maximum load, III vs IV, non-local.
pub fn fig_6_21() -> String {
    let (mode, threads) = env_exec();
    fig_6_21_with(mode, threads)
}

/// [`fig_6_21`] under an explicit execution mode.
pub fn fig_6_21_with(mode: ExecMode, threads: usize) -> String {
    max_load(
        mode,
        threads,
        &THREE_FOUR,
        Locality::NonLocal,
        "Figure 6.21 — Max Load (III & IV, Non-local)",
    )
}

/// Figure 6.22 — realistic load, III vs IV, local.
pub fn fig_6_22() -> String {
    let (mode, threads) = env_exec();
    fig_6_22_with(mode, threads)
}

/// [`fig_6_22`] under an explicit execution mode.
pub fn fig_6_22_with(mode: ExecMode, threads: usize) -> String {
    realistic(
        mode,
        threads,
        &THREE_FOUR,
        Locality::Local,
        "Figure 6.22 — Realistic Load (III & IV, Local)",
    )
}

/// Figure 6.23 — realistic load, III vs IV, non-local.
pub fn fig_6_23() -> String {
    let (mode, threads) = env_exec();
    fig_6_23_with(mode, threads)
}

/// [`fig_6_23`] under an explicit execution mode.
pub fn fig_6_23_with(mode: ExecMode, threads: usize) -> String {
    realistic(
        mode,
        threads,
        &THREE_FOUR,
        Locality::NonLocal,
        "Figure 6.23 — Realistic Load (III & IV, Non-local)",
    )
}

/// Chapter 7 extension — a shared-memory multiprocessor node: one message
/// coprocessor serving 1–3 hosts (Figure 7.1's proposal), at a
/// computation-heavy load where extra hosts matter.
pub fn fig_7_1() -> String {
    let (mode, threads) = env_exec();
    fig_7_1_with(mode, threads)
}

/// [`fig_7_1`] under an explicit execution mode.
pub fn fig_7_1_with(mode: ExecMode, threads: usize) -> String {
    let x = 5_700.0;
    let hosts_axis: [u32; 3] = [1, 2, 3];
    let conv_axis: [u32; 2] = [2, 4];
    let grid = sweep::cartesian(&hosts_axis, &conv_axis);
    let engine = models::default_engine();
    let cells = grid.eval_in_with(engine, mode, threads, |engine, &(hosts, n)| {
        let t = local::solve_with_hosts_in(engine, Architecture::MessageCoprocessor, n, x, hosts)
            .expect("multi-host model solves");
        format!("{:.4}", t.throughput_per_ms)
    });
    let rows: Vec<Vec<String>> = hosts_axis
        .iter()
        .zip(cells.chunks(conv_axis.len()))
        .map(|(hosts, chunk)| {
            let mut row = vec![hosts.to_string()];
            row.extend_from_slice(chunk);
            row
        })
        .collect();
    render_table(
        "Chapter 7 extension — One MP serving multiple hosts (Arch II, local, S=5.7ms)",
        &["Hosts", "2 conv (/ms)", "4 conv (/ms)"],
        &rows,
    )
}

/// Chapter 7 scale-out — past the paper's n ≤ 4 ceiling (§6.9.2 notes the
/// GTPN tools could not go further). Exact lumping collapses the
/// permutation-symmetric client population to occupancy counts
/// ([`gtpn::lump`]), so the `auto` engine now solves n = 8, 16 and 32
/// exactly within the chapter-6 two-million-state budget — the raw chains
/// there are billions of states — and falls back to the discrete-event
/// backend (95% confidence half-widths) only past the *lumped* budget.
pub fn fig_7_scale() -> String {
    let (mode, threads) = env_exec();
    fig_7_scale_with(mode, threads)
}

/// [`fig_7_scale`] under an explicit execution mode.
pub fn fig_7_scale_with(mode: ExecMode, threads: usize) -> String {
    let x = 5_700.0;
    // Lumping is pinned on (not read from `HSIPC_LUMP`): the figure's
    // whole point is the exact-vs-DES switchover location, which must not
    // move under an environment override — `HSIPC_LUMP=off` byte-identity
    // over `repro all` depends on it.
    let engine = AnalysisEngine::new(EngineConfig {
        backend: BackendSel::Auto,
        tolerance: models::TOLERANCE,
        max_sweeps: models::MAX_SWEEPS,
        state_budget: models::STATE_BUDGET,
        des: DesOptions::default(),
        par_solve: gtpn::par::par_solve_enabled(),
        warm_start: gtpn::engine::warm_start_enabled(),
        lump: gtpn::LumpSel::On,
    });
    // The n = 32 point: its lumped chain (~10M states by measurement) is
    // past the two-million budget, so `Auto` would spend minutes expanding
    // before aborting into the DES fallback. DES replication seeds derive
    // from the canonical net alone — not from the engine — so running the
    // DES backend directly produces the byte-identical result the `Auto`
    // fallback would reach, skipping the doomed expansion.
    let des_engine = AnalysisEngine::new(EngineConfig {
        backend: BackendSel::Des,
        ..engine.config().clone()
    });
    let grid = Grid::new(vec![2u32, 4, 8, 16, 32]);
    let rows = grid.eval_in_with(&engine, mode, threads, |engine, &n| {
        let engine = if n <= 16 { engine } else { &des_engine };
        let t = local::solve_in(engine, Architecture::MessageCoprocessor, n, x)
            .expect("scale point solves");
        vec![
            n.to_string(),
            format!("{:.4}", t.throughput_per_ms),
            t.backend.to_string(),
            t.half_width_per_ms
                .map_or_else(|| "-".to_string(), |hw| format!("{hw:.4}")),
        ]
    });
    render_table(
        "Chapter 7 scale-out — Arch II local beyond n=4 (auto backend, lumped exact, S=5.7ms)",
        &["Conv", "Throughput (/ms)", "Backend", "±95% (/ms)"],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn geometric_approximation_exact_in_mean() {
        let t = super::fig_6_7();
        assert!(t.contains("relative difference"), "{t}");
    }

    #[test]
    fn max_load_local_orders_architectures() {
        let t = super::fig_6_17();
        assert!(t.contains("Maximum Communication Load (Local)"));
        assert!(t.contains("Non-local"));
    }
}
