//! Chapter 6 figures: throughput series from the GTPN models and the
//! discrete-event "experiment".

use super::render_table;
use archsim::timings::{Architecture, Locality};
use models::{local, nonlocal, offered, validation};

/// Conversation counts the paper plots (1–4; its tools could not go
/// further, §6.9.2).
const CONVERSATIONS: [u32; 4] = [1, 2, 3, 4];

/// Offered-load sweep (architecture-I axis) used by the realistic-workload
/// figures.
const LOAD_SWEEP: [f64; 7] = [0.95, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4];

/// Figure 6.7 — the geometric approximation of a large constant delay
/// preserves mean throughput.
pub fn fig_6_7() -> String {
    use gtpn::{Net, Transition};
    let delay = 500u64;
    // Constant-delay net: a token cycles through one delay-500 transition.
    let mut constant = Net::new("constant");
    let p = constant.add_place("P", 1);
    constant
        .add_transition(
            Transition::new("T").delay(delay).resource("lambda").input(p, 1).output(p, 1),
        )
        .expect("place exists");
    let exact = constant
        .reachability(100)
        .and_then(|g| g.solve(1e-12, 100_000))
        .map(|s| s.resource_rate("lambda").expect("resource defined"))
        .expect("constant net solves");

    // Geometric net with the same mean.
    let mut geo = Net::new("geometric");
    let p = geo.add_place("P", 1);
    gtpn::geometric::GeometricStage::new("T", delay as f64)
        .input(p, 1)
        .output(p, 1)
        .resource("lambda")
        .build(&mut geo)
        .expect("place exists");
    let approx = geo
        .reachability(100)
        .and_then(|g| g.solve(1e-12, 100_000))
        .map(|s| s.resource_rate("lambda").expect("resource defined"))
        .expect("geometric net solves");

    format!(
        "Figure 6.7 — Modeling Large Constant Delays\n\
         constant delay {delay}: throughput {exact:.6}/us\n\
         geometric mean {delay}: throughput {approx:.6}/us\n\
         relative difference {:.2e}\n",
        (exact - approx).abs() / exact
    )
}

/// Figure 6.15 — validation: GTPN model vs the discrete-event experiment,
/// architecture II non-local, 1–4 conversations at three compute levels.
pub fn fig_6_15() -> String {
    let mut rows = Vec::new();
    for &n in &CONVERSATIONS {
        for (i, server_us) in [570.0, 2_850.0, 11_400.0].into_iter().enumerate() {
            let p = validation::compare(n, server_us, 40 + n as u64 + i as u64)
                .expect("validation point solves");
            rows.push(vec![
                n.to_string(),
                format!("{:.2}", server_us / 1_000.0),
                format!("{:.4}", p.model_per_ms),
                format!("{:.4}", p.measured_per_ms),
                format!("{:+.1}%", 100.0 * (p.model_per_ms - p.measured_per_ms) / p.measured_per_ms),
            ]);
        }
    }
    render_table(
        "Figure 6.15 — Model Validation (Architecture II, non-local)",
        &["Conv", "Server (ms)", "Model (/ms)", "Measured (/ms)", "Δ"],
        &rows,
    )
}

fn max_load(archs: &[Architecture], locality: Locality, title: &str) -> String {
    let mut rows = Vec::new();
    for &n in &CONVERSATIONS {
        let mut cells = vec![n.to_string()];
        for &arch in archs {
            let t = match locality {
                Locality::Local => local::solve(arch, n, 0.0).expect("local model solves").throughput_per_ms,
                Locality::NonLocal => {
                    nonlocal::solve(arch, n, 0.0).expect("non-local model solves").throughput_per_ms
                }
            };
            cells.push(format!("{t:.4}"));
        }
        rows.push(cells);
    }
    let mut header: Vec<&str> = vec!["Conversations"];
    let labels: Vec<String> =
        archs.iter().map(|a| format!("Arch {} (/ms)", a.label())).collect();
    header.extend(labels.iter().map(String::as_str));
    render_table(title, &header, &rows)
}

fn realistic(archs: &[Architecture], locality: Locality, title: &str) -> String {
    let mut rows = Vec::new();
    for &load in &LOAD_SWEEP {
        let server_us = offered::server_time_for_load_arch1(locality, load);
        for &n in &[1u32, 4] {
            let mut cells = vec![format!("{load:.2}"), n.to_string()];
            for &arch in archs {
                let t = match locality {
                    Locality::Local => {
                        local::solve(arch, n, server_us).expect("local model solves").throughput_per_ms
                    }
                    Locality::NonLocal => nonlocal::solve(arch, n, server_us)
                        .expect("non-local model solves")
                        .throughput_per_ms,
                };
                cells.push(format!("{t:.4}"));
            }
            rows.push(cells);
        }
    }
    let mut header: Vec<&str> = vec!["Load(I)", "Conv"];
    let labels: Vec<String> =
        archs.iter().map(|a| format!("Arch {} (/ms)", a.label())).collect();
    header.extend(labels.iter().map(String::as_str));
    render_table(title, &header, &rows)
}

const MAIN_THREE: [Architecture; 3] = [
    Architecture::Uniprocessor,
    Architecture::MessageCoprocessor,
    Architecture::SmartBus,
];
const THREE_FOUR: [Architecture; 2] =
    [Architecture::SmartBus, Architecture::PartitionedSmartBus];

/// Figure 6.17(a, b) — maximum communication load.
pub fn fig_6_17() -> String {
    let mut out = max_load(
        &MAIN_THREE,
        Locality::Local,
        "Figure 6.17(a) — Maximum Communication Load (Local)",
    );
    out.push('\n');
    out.push_str(&max_load(
        &MAIN_THREE,
        Locality::NonLocal,
        "Figure 6.17(b) — Maximum Communication Load (Non-local)",
    ));
    out
}

/// Figure 6.18 — realistic workload, local.
pub fn fig_6_18() -> String {
    realistic(&MAIN_THREE, Locality::Local, "Figure 6.18 — Realistic Workload (Local)")
}

/// Figure 6.19 — realistic workload, non-local.
pub fn fig_6_19() -> String {
    realistic(&MAIN_THREE, Locality::NonLocal, "Figure 6.19 — Realistic Workload (Non-local)")
}

/// Figure 6.20 — maximum load, III vs IV, local.
pub fn fig_6_20() -> String {
    max_load(&THREE_FOUR, Locality::Local, "Figure 6.20 — Max Load (III & IV, Local)")
}

/// Figure 6.21 — maximum load, III vs IV, non-local.
pub fn fig_6_21() -> String {
    max_load(&THREE_FOUR, Locality::NonLocal, "Figure 6.21 — Max Load (III & IV, Non-local)")
}

/// Figure 6.22 — realistic load, III vs IV, local.
pub fn fig_6_22() -> String {
    realistic(&THREE_FOUR, Locality::Local, "Figure 6.22 — Realistic Load (III & IV, Local)")
}

/// Figure 6.23 — realistic load, III vs IV, non-local.
pub fn fig_6_23() -> String {
    realistic(&THREE_FOUR, Locality::NonLocal, "Figure 6.23 — Realistic Load (III & IV, Non-local)")
}

/// Chapter 7 extension — a shared-memory multiprocessor node: one message
/// coprocessor serving 1–3 hosts (Figure 7.1's proposal), at a
/// computation-heavy load where extra hosts matter.
pub fn fig_7_1() -> String {
    let x = 5_700.0;
    let mut rows = Vec::new();
    for hosts in 1..=3u32 {
        let mut cells = vec![hosts.to_string()];
        for &n in &[2u32, 4] {
            let t = local::solve_with_hosts(Architecture::MessageCoprocessor, n, x, hosts)
                .expect("multi-host model solves");
            cells.push(format!("{:.4}", t.throughput_per_ms));
        }
        rows.push(cells);
    }
    render_table(
        "Chapter 7 extension — One MP serving multiple hosts (Arch II, local, S=5.7ms)",
        &["Hosts", "2 conv (/ms)", "4 conv (/ms)"],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn geometric_approximation_exact_in_mean() {
        let t = super::fig_6_7();
        assert!(t.contains("relative difference"), "{t}");
    }

    #[test]
    fn max_load_local_orders_architectures() {
        let t = super::fig_6_17();
        assert!(t.contains("Maximum Communication Load (Local)"));
        assert!(t.contains("Non-local"));
    }
}
