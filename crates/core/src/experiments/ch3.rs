//! Chapter 3 tables: the profiling study.

use super::render_table;
use profiler::analysis;
use profiler::systems;
use profiler::{KernelRun, KernelSpec};

const ROUND_TRIPS: u64 = 200;

fn breakdown_table(spec: &KernelSpec, paper_table: &str) -> String {
    let b = KernelRun::new(spec).execute(ROUND_TRIPS).breakdown();
    let title =
        format!(
        "{paper_table} — {} Profiling\n{}\nRound Trip ({}) = {:.3} ms ({} bytes)  Copy = {:.3} ms",
        b.system,
        b.processor,
        if spec.local { "Local Message" } else { "Non-local Message" },
        b.round_trip_ms,
        b.message_bytes,
        b.copy_ms,
    );
    let rows: Vec<Vec<String>> = b
        .rows
        .iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                format!("{:.3}", r.time_ms),
                format!("{:.1}", r.percent),
            ]
        })
        .collect();
    let mut out = render_table(&title, &["Activity", "Time (ms)", "% of RT"], &rows);
    out.push_str(&format!(
        "Fixed overhead (size-independent): {:.3} ms; copy crossover ≈ {} bytes\n",
        analysis::fixed_overhead_ms(&b),
        analysis::copy_crossover_bytes(&b),
    ));
    out
}

/// Table 3.1 — Charlotte.
pub fn table_3_1() -> String {
    breakdown_table(&systems::charlotte(), "Table 3.1")
}

/// Table 3.2 — Jasmin.
pub fn table_3_2() -> String {
    breakdown_table(&systems::jasmin(), "Table 3.2")
}

/// Table 3.3 — 925.
pub fn table_3_3() -> String {
    breakdown_table(&systems::sys925(), "Table 3.3")
}

/// Table 3.4 — Unix, local.
pub fn table_3_4() -> String {
    breakdown_table(&systems::unix_local(), "Table 3.4")
}

/// Table 3.5 — Unix, non-local.
pub fn table_3_5() -> String {
    breakdown_table(&systems::unix_nonlocal(), "Table 3.5")
}

/// Table 3.6 — Unix servers.
pub fn table_3_6() -> String {
    let rows: Vec<Vec<String>> = systems::UNIX_SERVERS
        .iter()
        .map(|&(name, t)| vec![name.to_string(), format!("{t:.3}")])
        .collect();
    let mut out = render_table(
        "Table 3.6 — Unix Servers (system service \"computation\" times)",
        &["System Service", "Time (ms)"],
        &rows,
    );
    out.push_str(&format!(
        "Mean service time {:.2} ms — comparable to the 4.57 ms local communication time (§3.5)\n",
        analysis::mean_server_time_ms()
    ));
    out
}

/// Table 3.7 — Unix read/write by block size.
pub fn table_3_7() -> String {
    let rows: Vec<Vec<String>> = systems::UNIX_READ_WRITE
        .iter()
        .map(|&(b, r, w)| vec![b.to_string(), format!("{r:.4}"), format!("{w:.4}")])
        .collect();
    let mut out = render_table(
        "Table 3.7 — Unix Read/Write service times",
        &["BlockSize", "Read (ms)", "Write (ms)"],
        &rows,
    );
    let (ri, rs) = analysis::read_write_fit(false);
    let (wi, ws) = analysis::read_write_fit(true);
    out.push_str(&format!(
        "Linear fits: read ≈ {ri:.2} + {rs:.2}·KB ms; write ≈ {wi:.2} + {ws:.2}·KB ms\n"
    ));
    out
}

/// §3.3 measurement 3 — message-path time-stamping: the Unix transmit
/// route under light and saturating load, with the bottleneck queue
/// identified.
pub fn fig_3_msgpath() -> String {
    use profiler::msgpath::MessagePath;
    let path = MessagePath::unix_transmit();
    let mut out =
        String::from("S3.3 measurement 3 — Message-path time-stamping (Unix transmit route)\n\n");
    for (label, interarrival) in [
        ("light load (10 ms apart)", 10_000u64),
        ("saturating (0.7 ms apart)", 700),
    ] {
        let r = path.report(300, interarrival);
        out.push_str(&format!(
            "{label}: mean latency {:.0} us, bottleneck queue: {}\n",
            r.mean_latency_us, r.bottleneck
        ));
        for s in &r.stages {
            out.push_str(&format!(
                "    {:<24} service {:>4} us  mean wait {:>9.1} us\n",
                s.name, s.service_us, s.mean_wait_us
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn charlotte_table_carries_published_shape() {
        let t = super::table_3_1();
        assert!(t.contains("Charlotte"));
        assert!(t.contains("Protocol Processing"));
        // 50% of the round trip is protocol processing.
        assert!(t.contains("50.0"), "{t}");
    }

    #[test]
    fn unix_tables_render() {
        assert!(super::table_3_6().contains("Make Directory"));
        assert!(super::table_3_7().contains("4096"));
    }
}
