//! Chapter 5 tables: the smart bus specification, verified against the
//! running bus simulator.

use super::render_table;
use smartbus::signal::Signal;
use smartbus::waveform::TimingDiagram;
use smartbus::{BlockDirection, BusEngine, Command, RequestNumber, Transaction};
use smartmem::SmartMemory;

/// Table 5.1 — smart bus signals.
pub fn table_5_1() -> String {
    let rows: Vec<Vec<String>> = Signal::ALL
        .iter()
        .map(|s| {
            vec![
                s.mnemonic().to_string(),
                s.line_count().to_string(),
                s.description().to_string(),
            ]
        })
        .collect();
    render_table(
        "Table 5.1 — Smart Bus Signals",
        &["Signal", "Lines", "Description"],
        &rows,
    )
}

/// Table 5.2 — smart bus commands, with the handshake cost each incurs on
/// the simulated bus.
pub fn table_5_2() -> String {
    let rows: Vec<Vec<String>> = Command::ALL
        .iter()
        .map(|c| {
            let edges = if c.is_streaming() {
                "2/word".to_string()
            } else {
                c.handshake_edges().to_string()
            };
            vec![format!("{:04b}", c.encoding()), c.name().to_string(), edges]
        })
        .collect();
    let mut out = render_table(
        "Table 5.2 — Smart Bus Commands",
        &["CM0-3", "Command", "Edges"],
        &rows,
    );
    // Demonstrate the headline transaction timings on the live simulator.
    let mut bus = BusEngine::new(SmartMemory::new(4096), RequestNumber::new(7));
    let mp = bus
        .add_unit("mp", RequestNumber::new(2))
        .expect("fresh engine");
    bus.submit(
        mp,
        Transaction::Enqueue {
            list: 0x20,
            element: 0x100,
        },
    )
    .expect("idle unit");
    bus.run_until_idle().expect("valid transaction");
    let enq_ns = bus.time_ns();
    bus.submit(
        mp,
        Transaction::BlockTransfer {
            addr: 0x200,
            count: 40,
            direction: BlockDirection::Write,
            data: (0..20).collect(),
        },
    )
    .expect("idle unit");
    bus.run_until_idle().expect("valid transaction");
    let blk_ns = bus.time_ns() - enq_ns;
    out.push_str(&format!(
        "Measured on the simulator: enqueue = {enq_ns} ns (four edges); \
         40-byte block write = {blk_ns} ns (one request + twenty word pairs)\n"
    ));
    out
}

/// Figures 5.4–5.16 — the transaction timing diagrams, generated from the
/// protocol definitions.
pub fn fig_5_timing() -> String {
    let mut out = String::from("Figures 5.4-5.16 — Smart Bus Timing Diagrams\n\n");
    for c in Command::ALL {
        out.push_str(&TimingDiagram::for_command(c, 4).render());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn signals_table_lists_all_ten() {
        let t = super::table_5_1();
        for m in [
            "A/D", "TG", "CM", "IS", "IK", "BBSY", "BR", "AR", "ANC", "CLR",
        ] {
            assert!(t.contains(m), "missing {m} in {t}");
        }
    }

    #[test]
    fn commands_table_shows_live_timings() {
        let t = super::table_5_2();
        assert!(t.contains("enqueue = 1000 ns"), "{t}");
        assert!(t.contains("block write = 11000 ns"), "{t}");
    }
}
