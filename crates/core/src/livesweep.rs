//! # livesweep — saturation curves from a fleet of virtual-time live runs
//!
//! The paper's key figures (6.17–6.23) are *curves*: throughput swept over
//! offered load, conversations, and buffers, one line per architecture.
//! `repro live` executes exactly one configuration per invocation; this
//! module executes a whole grid — arch I–IV × server-compute X ×
//! conversations × buffers — as independent virtual-clock runs on the
//! [`sweep`] order-preserving worker pool, and renders the live curve next
//! to the matching GTPN model point with a relative error per point.
//!
//! Three properties carry over from the rest of the repository:
//!
//! * **Paper order.** The grid is rendered conversations-major, then
//!   buffers, then architecture, then offered load — the nested-loop order
//!   of the figures — no matter which worker finished first.
//! * **Byte determinism.** Every run is virtual-clock, so each point's
//!   measurements are a pure function of its configuration; model points
//!   come from the shared [`models::default_engine`]. The rendered text
//!   contains no wall-clock quantity, so repeated runs and
//!   `HSIPC_SWEEP=1` vs `8` produce identical bytes
//!   (`tests/live_sweep.rs` holds it to that).
//! * **One engine.** Model points evaluate through the shared
//!   [`gtpn::AnalysisEngine`] under a `live-sweep` cache partition, so
//!   workers share one solution cache and warm-start chain exactly like
//!   `repro all`'s figure sweeps.
//!
//! The interesting regimes the solver cannot reach come out in the extra
//! columns: `stalls` (kernel-buffer shortage blocking, §3.2.3) explodes at
//! `buffers ≪ conversations`, `peak_q` (deepest inbound ring backlog)
//! shows a remote receiver falling behind, and the per-architecture knee
//! line locates the saturation point of each live curve.

use runtime::{Architecture, ClockMode, Config, Handoff, Locality, RunReport};
use std::fmt::Write as _;
use std::time::Duration;
use sweep::ExecMode;

/// The grid one `repro live-sweep` invocation executes.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Architectures, in render order.
    pub archs: Vec<Architecture>,
    /// Offered-load points: server compute X per request, microseconds,
    /// in render order (the curve's x-axis).
    pub x_us: Vec<f64>,
    /// Conversations-per-node axis (outermost render loop).
    pub conversations: Vec<u32>,
    /// Kernel-buffers-per-node axis.
    pub buffers: Vec<u16>,
    /// Nodes per run.
    pub nodes: u32,
    /// Traffic locality of every run.
    pub locality: Locality,
    /// Virtual load-phase length of every run.
    pub duration: Duration,
    /// Activity-time scale factor.
    pub scale: f64,
    /// Virtual-coordinator handoff mode for every run.
    pub handoff: Handoff,
}

impl SweepSpec {
    /// The default grid: one full fig6.17-style curve — all four
    /// architectures over eleven offered-load points spanning the §6.3
    /// workload (X = 1140 µs) from maximum communication load (X = 0) to
    /// deep into the compute-bound tail, at the model-validated n = 4
    /// local configuration.
    pub fn default_curve() -> SweepSpec {
        SweepSpec {
            archs: Architecture::ALL.to_vec(),
            x_us: vec![
                0.0, 285.0, 570.0, 855.0, 1_140.0, 1_425.0, 1_710.0, 2_280.0, 2_850.0, 4_275.0,
                5_700.0,
            ],
            conversations: vec![4],
            buffers: vec![32],
            nodes: 1,
            locality: Locality::Local,
            duration: Duration::from_millis(1_000),
            scale: 1.0,
            handoff: Handoff::Targeted,
        }
    }

    /// The grid points in paper order: conversations-major, then buffers,
    /// then architecture, then offered load.
    pub fn points(&self) -> Vec<SweepPoint> {
        let mut points = Vec::with_capacity(
            self.conversations.len() * self.buffers.len() * self.archs.len() * self.x_us.len(),
        );
        for &conversations in &self.conversations {
            for &buffers in &self.buffers {
                for &architecture in &self.archs {
                    for &x_us in &self.x_us {
                        points.push(SweepPoint {
                            architecture,
                            conversations,
                            buffers,
                            x_us,
                        });
                    }
                }
            }
        }
        points
    }

    /// The [`Config`] one point executes as. Always virtual-clock: the
    /// sweep's determinism contract (and its wall-clock budget) depends
    /// on it.
    fn config(&self, point: &SweepPoint) -> Config {
        let mut config = Config::new(point.architecture);
        config.nodes = self.nodes;
        config.conversations = point.conversations;
        config.server_compute_us = point.x_us;
        config.duration = self.duration;
        config.locality = self.locality;
        config.scale = self.scale;
        config.buffers = point.buffers;
        config.clock = ClockMode::Virtual;
        config.handoff = self.handoff;
        config
    }
}

/// One grid point: the coordinates that vary across the sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Architecture executed.
    pub architecture: Architecture,
    /// Conversations per node.
    pub conversations: u32,
    /// Kernel buffers per node.
    pub buffers: u16,
    /// Server compute X, microseconds.
    pub x_us: f64,
}

/// One evaluated grid point: the live run next to its model point.
#[derive(Debug, Clone)]
pub struct PointOutcome {
    /// The grid coordinates.
    pub point: SweepPoint,
    /// The virtual live run's measurements.
    pub report: RunReport,
    /// The matching GTPN model throughput, conversations/ms per node
    /// (`None` when the model failed to solve at this point).
    pub model_per_ms: Option<f64>,
}

impl PointOutcome {
    /// Live throughput per node, conversations/ms — the unit the per-node
    /// model predicts.
    pub fn live_per_node_ms(&self, nodes: u32) -> f64 {
        self.report.throughput_per_ms / f64::from(nodes.max(1))
    }

    /// Signed relative error of the live measurement against the model,
    /// percent (`None` without a model point).
    pub fn rel_err_pct(&self, nodes: u32) -> Option<f64> {
        let model = self.model_per_ms?;
        if model <= 0.0 {
            return None;
        }
        Some((self.live_per_node_ms(nodes) - model) / model * 100.0)
    }
}

/// Everything one sweep produced.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// The spec that ran.
    pub spec: SweepSpec,
    /// Per-point results, in paper order.
    pub outcomes: Vec<PointOutcome>,
    /// The deterministic text rendering (no wall-clock content).
    pub rendered: String,
    /// Total *virtual* seconds simulated across all runs.
    pub virtual_seconds: f64,
    /// Total wall seconds spent inside runs (≥ the sweep's wall time when
    /// workers overlap — the ratio is the fan-out win).
    pub run_wall_seconds: f64,
    /// Whether every run drained within its grace period.
    pub all_clean: bool,
    /// Whether every run completed at least one round trip.
    pub all_progressed: bool,
}

/// Runs the sweep under the environment's execution policy
/// (`HSIPC_SWEEP` etc.).
pub fn run(spec: &SweepSpec) -> SweepOutcome {
    run_with(spec, sweep::exec_mode(), sweep::threads())
}

/// Runs the sweep with an explicit execution mode and worker count — the
/// testable core `tests/live_sweep.rs` drives for its byte-identity
/// checks.
pub fn run_with(spec: &SweepSpec, mode: ExecMode, threads: usize) -> SweepOutcome {
    let grid = sweep::Grid::new(spec.points());
    let engine = models::default_engine();
    // Grid points fan out on the order-preserving pool; every worker
    // analyzes its model point through the shared engine (one solution
    // cache, warm-start hand-off along the X axis) inside the sweep's own
    // cache partition. The closure is deterministic, so mode/threads only
    // control fan-out, never the bytes.
    let outcomes = gtpn::cache::partition_scope("live-sweep", || {
        grid.eval_in_with(engine, mode, threads, |engine, point| {
            let report = runtime::run(&spec.config(point));
            let model_per_ms = models::live_throughput_in(
                engine,
                point.architecture,
                spec.locality,
                point.conversations,
                point.x_us,
            )
            .ok();
            PointOutcome {
                point: *point,
                report,
                model_per_ms,
            }
        })
    });

    let rendered = render(spec, &outcomes);
    let virtual_seconds = outcomes
        .iter()
        .map(|o| o.report.elapsed.as_secs_f64())
        .sum();
    let run_wall_seconds = outcomes.iter().map(|o| o.report.wall.as_secs_f64()).sum();
    let all_clean = outcomes.iter().all(|o| o.report.clean_shutdown);
    let all_progressed = outcomes.iter().all(|o| o.report.round_trips > 0);
    SweepOutcome {
        spec: spec.clone(),
        outcomes,
        rendered,
        virtual_seconds,
        run_wall_seconds,
        all_clean,
        all_progressed,
    }
}

/// The saturation knee of one `(X, throughput)` curve: the largest X whose
/// throughput stays within 2% of the curve's maximum — past it, added
/// compute time costs throughput one-for-one; before it, the architecture
/// is communication-bound and extra X is absorbed.
fn knee(curve: &[(f64, f64)]) -> Option<(f64, f64)> {
    let max = curve.iter().map(|&(_, t)| t).fold(0.0_f64, f64::max);
    if max <= 0.0 {
        return None;
    }
    curve.iter().rfind(|&&(_, t)| t >= 0.98 * max).copied()
}

/// Renders the sweep in paper order. Deterministic: live numbers are
/// virtual-clock, model numbers come from the solver, and no wall-clock
/// quantity appears.
fn render(spec: &SweepSpec, outcomes: &[PointOutcome]) -> String {
    let mut out = String::new();
    let arch_list = spec
        .archs
        .iter()
        .map(|a| a.label())
        .collect::<Vec<_>>()
        .join(",");
    let _ = writeln!(
        out,
        "live-sweep: arch {} x {} X-point(s), {} node(s), {} traffic, {} ms virtual load, scale {}, {} handoff",
        arch_list,
        spec.x_us.len(),
        spec.nodes,
        match spec.locality {
            Locality::Local => "local",
            Locality::NonLocal => "non-local",
        },
        spec.duration.as_millis(),
        spec.scale,
        spec.handoff,
    );
    let mut index = 0;
    for &conversations in &spec.conversations {
        for &buffers in &spec.buffers {
            let _ = writeln!(
                out,
                "\nconversations {conversations}/node, buffers {buffers}:"
            );
            let _ = writeln!(
                out,
                "{:<5} {:>7} {:>11} {:>8} {:>9} {:>7} {:>10} {:>10} {:>7} {:>7}  shutdown",
                "arch",
                "X_us",
                "roundtrips",
                "live/ms",
                "model/ms",
                "err%",
                "p50_us",
                "p99_us",
                "stalls",
                "peak_q",
            );
            let mut knees: Vec<(Architecture, Option<(f64, f64)>)> = Vec::new();
            for &arch in &spec.archs {
                let mut curve: Vec<(f64, f64)> = Vec::with_capacity(spec.x_us.len());
                for &x_us in &spec.x_us {
                    let o = &outcomes[index];
                    index += 1;
                    debug_assert_eq!(o.point.architecture, arch);
                    debug_assert_eq!(o.point.x_us, x_us);
                    let live = o.live_per_node_ms(spec.nodes);
                    curve.push((x_us, live));
                    let model = o
                        .model_per_ms
                        .map_or_else(|| format!("{:>9}", "-"), |m| format!("{m:>9.4}"));
                    let err = o
                        .rel_err_pct(spec.nodes)
                        .map_or_else(|| format!("{:>7}", "-"), |e| format!("{e:>+7.1}"));
                    let _ = writeln!(
                        out,
                        "{:<5} {:>7.0} {:>11} {:>8.4} {} {} {:>10.1} {:>10.1} {:>7} {:>7}  {}",
                        arch.label(),
                        x_us,
                        o.report.round_trips,
                        live,
                        model,
                        err,
                        o.report.latency.p50_us,
                        o.report.latency.p99_us,
                        o.report.buffer_stalls,
                        o.report.peak_ring_queue,
                        if o.report.clean_shutdown {
                            "clean"
                        } else {
                            "UNCLEAN"
                        },
                    );
                }
                knees.push((arch, knee(&curve)));
            }
            for (arch, k) in knees {
                match k {
                    Some((x, t)) => {
                        let _ = writeln!(
                            out,
                            "knee {}: X = {:.0} us at {:.4}/ms (within 2% of curve max)",
                            arch.label(),
                            x,
                            t
                        );
                    }
                    None => {
                        let _ = writeln!(out, "knee {}: no throughput measured", arch.label());
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn points_are_in_paper_order() {
        let mut spec = SweepSpec::default_curve();
        spec.archs = vec![Architecture::Uniprocessor, Architecture::SmartBus];
        spec.x_us = vec![0.0, 1_140.0];
        spec.conversations = vec![4, 8];
        spec.buffers = vec![1, 32];
        let points = spec.points();
        assert_eq!(points.len(), 2 * 2 * 2 * 2);
        // Innermost axis: X. Then arch, then buffers, then conversations.
        assert_eq!(points[0].x_us, 0.0);
        assert_eq!(points[1].x_us, 1_140.0);
        assert_eq!(points[0].architecture, Architecture::Uniprocessor);
        assert_eq!(points[2].architecture, Architecture::SmartBus);
        assert_eq!(points[0].buffers, 1);
        assert_eq!(points[4].buffers, 32);
        assert_eq!(points[0].conversations, 4);
        assert_eq!(points[8].conversations, 8);
    }

    #[test]
    fn default_curve_meets_the_figure_shape() {
        let spec = SweepSpec::default_curve();
        assert!(spec.x_us.len() >= 10, "a full curve needs ≥ 10 load points");
        assert_eq!(spec.archs, Architecture::ALL.to_vec());
        assert!(spec.x_us.windows(2).all(|w| w[0] < w[1]), "X must ascend");
        assert!(spec.x_us.contains(&1_140.0), "the §6.3 workload point");
    }

    #[test]
    fn knee_finds_the_last_near_max_point() {
        // Flat then falling: the knee is the last flat point.
        let curve = [(0.0, 1.0), (100.0, 0.997), (200.0, 0.9), (300.0, 0.5)];
        assert_eq!(knee(&curve), Some((100.0, 0.997)));
        // Monotone falling from the start: the knee is the first point.
        let falling = [(0.0, 1.0), (100.0, 0.8), (200.0, 0.6)];
        assert_eq!(knee(&falling), Some((0.0, 1.0)));
        assert_eq!(knee(&[(0.0, 0.0)]), None);
        assert_eq!(knee(&[]), None);
    }
}
