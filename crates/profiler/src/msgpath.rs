//! Message-path time-stamping (§3.3, measurement 3).
//!
//! The third profiling technique follows each message from source to
//! destination, time-stamping it at the "interesting points" — queueing,
//! dequeueing, copying — to learn which kernel data structures it crosses
//! and where it waits. "If the network device is the bottleneck, messages
//! will probably spend most of the time on the device queues."
//!
//! [`MessagePath`] models the route as a tandem of FCFS service stages
//! (e.g. `socket queue → protocol processing → device queue → wire`); a
//! deterministic arrival schedule is pushed through, every message carries
//! its stamp record, and [`PathReport`] summarizes waiting time per stage
//! and names the bottleneck.

/// One stage of the message route.
#[derive(Debug, Clone)]
pub struct PathStage {
    /// Stage name ("device queue", "copy to kernel buffer", …).
    pub name: &'static str,
    /// Service time per message, µs.
    pub service_us: u64,
}

/// The stamp record a message accumulates: `(stage, enqueued_at,
/// dequeued_at, completed_at)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stamp {
    /// Stage name.
    pub stage: &'static str,
    /// Arrival at the stage's queue.
    pub enqueued_at: u64,
    /// Start of service (dequeue).
    pub dequeued_at: u64,
    /// End of service.
    pub completed_at: u64,
}

impl Stamp {
    /// Time spent waiting on this stage's queue.
    pub fn wait_us(&self) -> u64 {
        self.dequeued_at - self.enqueued_at
    }
}

/// A traced message.
#[derive(Debug, Clone)]
pub struct TracedMessage {
    /// Arrival time of the message at the first stage.
    pub arrived_at: u64,
    /// Stamps, one per stage in route order.
    pub stamps: Vec<Stamp>,
}

impl TracedMessage {
    /// Total source-to-destination latency.
    pub fn latency_us(&self) -> u64 {
        self.stamps
            .last()
            .map_or(0, |s| s.completed_at - self.arrived_at)
    }
}

/// Per-stage summary of a run.
#[derive(Debug, Clone, PartialEq)]
pub struct StageStats {
    /// Stage name.
    pub name: &'static str,
    /// Mean queue-waiting time, µs.
    pub mean_wait_us: f64,
    /// Service time, µs.
    pub service_us: u64,
}

/// The whole report.
#[derive(Debug, Clone)]
pub struct PathReport {
    /// Per-stage statistics, in route order.
    pub stages: Vec<StageStats>,
    /// Mean end-to-end latency, µs.
    pub mean_latency_us: f64,
    /// Stage with the highest mean wait — the route's bottleneck queue.
    pub bottleneck: &'static str,
}

/// A message route: a tandem of FCFS stages.
#[derive(Debug, Clone)]
pub struct MessagePath {
    stages: Vec<PathStage>,
}

impl MessagePath {
    /// Builds a route from its stages.
    ///
    /// # Panics
    ///
    /// Panics on an empty route.
    pub fn new(stages: Vec<PathStage>) -> MessagePath {
        assert!(
            !stages.is_empty(),
            "a message route needs at least one stage"
        );
        MessagePath { stages }
    }

    /// The Unix non-local transmit path of Table 3.5: socket queue →
    /// copies → TCP → IP → device queue → wire, with the paper's times.
    pub fn unix_transmit() -> MessagePath {
        MessagePath::new(vec![
            PathStage {
                name: "socket routines",
                service_us: 510,
            },
            PathStage {
                name: "copy to kernel buffer",
                service_us: 250,
            },
            PathStage {
                name: "TCP processing",
                service_us: 650,
            },
            PathStage {
                name: "IP processing",
                service_us: 800,
            },
            PathStage {
                name: "device queue + DMA",
                service_us: 550,
            },
            PathStage {
                name: "wire (4 Mb/s)",
                service_us: 112,
            },
        ])
    }

    /// Pushes messages arriving every `interarrival_us` through the route
    /// and returns the fully stamped messages.
    pub fn run(&self, messages: usize, interarrival_us: u64) -> Vec<TracedMessage> {
        // Each stage is FCFS: it becomes free at `free_at[i]`.
        let mut free_at = vec![0u64; self.stages.len()];
        let mut out = Vec::with_capacity(messages);
        for m in 0..messages as u64 {
            let arrived = m * interarrival_us;
            let mut t = arrived;
            let mut stamps = Vec::with_capacity(self.stages.len());
            for (i, stage) in self.stages.iter().enumerate() {
                let enqueued_at = t;
                let dequeued_at = t.max(free_at[i]);
                let completed_at = dequeued_at + stage.service_us;
                free_at[i] = completed_at;
                stamps.push(Stamp {
                    stage: stage.name,
                    enqueued_at,
                    dequeued_at,
                    completed_at,
                });
                t = completed_at;
            }
            out.push(TracedMessage {
                arrived_at: arrived,
                stamps,
            });
        }
        out
    }

    /// Runs and summarizes: per-stage mean waits and the bottleneck queue.
    pub fn report(&self, messages: usize, interarrival_us: u64) -> PathReport {
        let traced = self.run(messages, interarrival_us);
        let n = traced.len() as f64;
        let stages = self
            .stages
            .iter()
            .enumerate()
            .map(|(i, s)| StageStats {
                name: s.name,
                mean_wait_us: traced
                    .iter()
                    .map(|m| m.stamps[i].wait_us() as f64)
                    .sum::<f64>()
                    / n,
                service_us: s.service_us,
            })
            .collect::<Vec<_>>();
        let bottleneck = stages
            .iter()
            .max_by(|a, b| a.mean_wait_us.total_cmp(&b.mean_wait_us))
            .expect("non-empty route")
            .name;
        PathReport {
            mean_latency_us: traced.iter().map(|m| m.latency_us() as f64).sum::<f64>() / n,
            stages,
            bottleneck,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn route(times: &[u64]) -> MessagePath {
        const NAMES: [&str; 5] = ["a", "b", "c", "d", "e"];
        MessagePath::new(
            times
                .iter()
                .enumerate()
                .map(|(i, &t)| PathStage {
                    name: NAMES[i],
                    service_us: t,
                })
                .collect(),
        )
    }

    #[test]
    fn unloaded_message_never_waits() {
        let p = route(&[100, 200, 50]);
        let traced = p.run(1, 1_000_000);
        let m = &traced[0];
        assert_eq!(m.latency_us(), 350);
        for s in &m.stamps {
            assert_eq!(s.wait_us(), 0, "{}", s.stage);
        }
    }

    #[test]
    fn slowest_stage_is_the_bottleneck() {
        // Arrivals faster than the slowest stage's service rate: the queue
        // in front of it grows and dominates waiting time.
        let p = route(&[100, 500, 50]);
        let r = p.report(200, 200);
        assert_eq!(r.bottleneck, "b");
        let b = &r.stages[1];
        assert!(
            b.mean_wait_us > 10.0 * r.stages[2].mean_wait_us,
            "b waits {} vs c {}",
            b.mean_wait_us,
            r.stages[2].mean_wait_us
        );
    }

    #[test]
    fn stamps_are_causally_ordered() {
        let p = route(&[120, 80, 300]);
        for m in p.run(50, 100) {
            let mut prev_end = m.arrived_at;
            for s in &m.stamps {
                assert_eq!(s.enqueued_at, prev_end);
                assert!(s.dequeued_at >= s.enqueued_at);
                assert_eq!(s.completed_at, s.dequeued_at + p_stage_time(&p, s.stage));
                prev_end = s.completed_at;
            }
        }
    }

    fn p_stage_time(p: &MessagePath, name: &str) -> u64 {
        p.stages.iter().find(|s| s.name == name).unwrap().service_us
    }

    #[test]
    fn unix_transmit_path_matches_table_3_5_half_trip() {
        // The transmit chain (one direction) sums to half the 128-byte
        // non-local profile's kernel time plus the wire.
        let p = MessagePath::unix_transmit();
        let r = p.report(1, 1_000_000);
        assert!(
            (r.mean_latency_us - 2_872.0).abs() < 1.0,
            "{}",
            r.mean_latency_us
        );
        // Lightly loaded: no queueing anywhere.
        assert!(r.stages.iter().all(|s| s.mean_wait_us == 0.0));
        // Saturated: IP processing (the costliest kernel stage) becomes the
        // bottleneck queue, exactly the §3.3 diagnosis pattern.
        let r = p.report(300, 700);
        assert_eq!(r.bottleneck, "IP processing");
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn empty_route_rejected() {
        MessagePath::new(Vec::new());
    }
}
