//! The four profiled systems (Tables 3.1–3.7).
//!
//! Activity structures, processor speeds and message sizes are transcribed
//! from the thesis; each activity's instruction budget is its published
//! time at the published MIPS rating, so replaying a kernel run through the
//! harness regenerates the tables.

use crate::spec::{activity_from_time, KernelSpec};

/// Charlotte (Table 3.1): VAX 11/750 at ~0.5 MIPS, 1000-byte local message,
/// 20 ms round trip.
pub fn charlotte() -> KernelSpec {
    let mips = 0.5;
    KernelSpec {
        name: "Charlotte",
        processor: "VAX 11/750 (~0.5 MIPS)",
        mips,
        message_bytes: 1_000,
        local: true,
        activities: vec![
            activity_from_time("Kernel-Process Switching Time", 2.0, mips, 4),
            activity_from_time("Copy Time", 0.6, mips, 2),
            activity_from_time("Entering and Exiting Kernel", 2.8, mips, 4),
            activity_from_time("Protocol Processing for Sender and Receiver", 10.0, mips, 2),
            activity_from_time("Link Translation and Request Selection", 4.6, mips, 2),
        ],
    }
}

/// Jasmin (Table 3.2): 12 MHz Motorola 68000 at ~0.3 MIPS, 32-byte message
/// each way, 0.72 ms round trip (kernel procedures invoked as subroutines —
/// no kernel entry/exit cost).
pub fn jasmin() -> KernelSpec {
    let mips = 0.3;
    KernelSpec {
        name: "Jasmin",
        processor: "Motorola 68000 (~0.3 MIPS)",
        mips,
        message_bytes: 32,
        local: true,
        activities: vec![
            activity_from_time(
                "Actions Leading to Short-Term Scheduling Decisions",
                0.288,
                mips,
                2,
            ),
            activity_from_time("Copy Time", 0.108, mips, 4),
            activity_from_time("Buffer Management", 0.072, mips, 2),
            activity_from_time("Path Management", 0.144, mips, 2),
            activity_from_time(
                "Miscellaneous (Network Channels, Communication Task)",
                0.108,
                mips,
                1,
            ),
        ],
    }
}

/// The 925 (Table 3.3): 8 MHz Motorola 68000 at ~0.3 MIPS, 40-byte message
/// each way, 5.6 ms round trip.
pub fn sys925() -> KernelSpec {
    let mips = 0.3;
    KernelSpec {
        name: "925",
        processor: "Motorola 68000 (~0.3 MIPS)",
        mips,
        message_bytes: 40,
        local: true,
        activities: vec![
            activity_from_time(
                "Short-Term Scheduling (Including event processing)",
                1.96,
                mips,
                3,
            ),
            activity_from_time("Copy Time", 0.84, mips, 4),
            activity_from_time("Entering and Exiting Kernel", 0.56, mips, 6),
            activity_from_time(
                "Checking, Addressing, and Control Block Manipulation",
                2.24,
                mips,
                3,
            ),
        ],
    }
}

/// Unix 4.2bsd, local sockets (Table 3.4): MicroVAX II at ~0.8 MIPS,
/// 128-byte message each way, 4.57 ms round trip, four copies.
pub fn unix_local() -> KernelSpec {
    let mips = 0.8;
    KernelSpec {
        name: "Unix",
        processor: "Microvax II (~0.8 MIPS)",
        mips,
        message_bytes: 128,
        local: true,
        activities: vec![
            activity_from_time(
                "Validity Checking and Control Block Manipulation",
                2.44,
                mips,
                4,
            ),
            activity_from_time("Copy Time", 0.88, mips, 4),
            activity_from_time("Short-Term Scheduling", 0.78, mips, 2),
            activity_from_time("Buffer Management", 0.46, mips, 4),
        ],
    }
}

/// Unix 4.2bsd over TCP/IP (Table 3.5): 128-byte non-local message, 6.8 ms
/// round trip.
pub fn unix_nonlocal() -> KernelSpec {
    let mips = 0.8;
    KernelSpec {
        name: "Unix",
        processor: "Microvax II (~0.8 MIPS)",
        mips,
        message_bytes: 128,
        local: false,
        activities: vec![
            activity_from_time("Socket Routines", 1.02, mips, 2),
            activity_from_time("Copy Time", 0.5, mips, 2),
            activity_from_time("Checksum Calculation", 0.6, mips, 2),
            activity_from_time("Short-Term Scheduling", 0.4, mips, 2),
            activity_from_time("Buffer Management", 0.3, mips, 2),
            activity_from_time("TCP processing", 1.3, mips, 2),
            activity_from_time("IP processing", 1.6, mips, 2),
            activity_from_time("Interrupt Processing", 1.1, mips, 2),
        ],
    }
}

/// Table 3.6 — Unix system-service ("server computation") times, ms.
pub const UNIX_SERVERS: &[(&str, f64)] = &[
    ("Open File", 4.35),
    ("Close File", 0.36),
    ("Make Directory", 18.71),
    ("Remove Directory", 14.28),
    ("Timer Service (Sleep)", 3.453),
    ("GetTimeofDay", 0.200),
];

/// Table 3.7 — Unix file-system read/write times by block size, ms:
/// `(block size, read, write)` (zero-byte baseline already subtracted).
pub const UNIX_READ_WRITE: &[(u32, f64, f64)] = &[
    (128, 1.0092, 1.5464),
    (256, 1.0867, 1.7633),
    (512, 1.2329, 2.0982),
    (1024, 1.5999, 2.7095),
    (2048, 1.7647, 3.8082),
    (3072, 2.739, 5.7908),
    (4096, 3.2442, 6.1082),
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::KernelRun;

    #[test]
    fn table_3_1_charlotte_breakdown() {
        let spec = charlotte();
        let b = KernelRun::new(&spec).execute(200).breakdown();
        assert!(
            (b.round_trip_ms - 20.0).abs() < 0.1,
            "rt {}",
            b.round_trip_ms
        );
        assert!((b.copy_ms - 0.6).abs() < 0.05);
        let protocol = b
            .rows
            .iter()
            .find(|r| r.name.starts_with("Protocol"))
            .unwrap();
        assert!(
            (protocol.percent - 50.0).abs() < 1.0,
            "{}",
            protocol.percent
        );
        let copy = b.rows.iter().find(|r| r.name == "Copy Time").unwrap();
        assert!((copy.percent - 3.0).abs() < 0.5, "{}", copy.percent);
    }

    #[test]
    fn table_3_2_jasmin_breakdown() {
        let spec = jasmin();
        let b = KernelRun::new(&spec).execute(200).breakdown();
        assert!(
            (b.round_trip_ms - 0.72).abs() < 0.05,
            "rt {}",
            b.round_trip_ms
        );
        let sched = &b.rows[0];
        assert!((sched.percent - 40.0).abs() < 3.0, "{}", sched.percent);
    }

    #[test]
    fn table_3_3_925_breakdown() {
        let spec = sys925();
        let b = KernelRun::new(&spec).execute(200).breakdown();
        assert!(
            (b.round_trip_ms - 5.6).abs() < 0.05,
            "rt {}",
            b.round_trip_ms
        );
        let checking = b
            .rows
            .iter()
            .find(|r| r.name.starts_with("Checking"))
            .unwrap();
        assert!((checking.percent - 40.0).abs() < 1.0);
        let copy = b.rows.iter().find(|r| r.name == "Copy Time").unwrap();
        assert!((copy.percent - 15.0).abs() < 1.0);
    }

    #[test]
    fn table_3_4_unix_local_breakdown() {
        let spec = unix_local();
        let b = KernelRun::new(&spec).execute(200).breakdown();
        assert!(
            (b.round_trip_ms - 4.57).abs() < 0.05,
            "rt {}",
            b.round_trip_ms
        );
        let validity = &b.rows[0];
        assert!(
            (validity.percent - 53.4).abs() < 1.0,
            "{}",
            validity.percent
        );
    }

    #[test]
    fn table_3_5_unix_nonlocal_breakdown() {
        let spec = unix_nonlocal();
        let b = KernelRun::new(&spec).execute(200).breakdown();
        assert!(
            (b.round_trip_ms - 6.8).abs() < 0.1,
            "rt {}",
            b.round_trip_ms
        );
        let ip = b.rows.iter().find(|r| r.name == "IP processing").unwrap();
        assert!((ip.percent - 24.0).abs() < 1.0);
        // Protocol processing (TCP+IP+checksum) dwarfs the copy cost.
        let copy = b.rows.iter().find(|r| r.name == "Copy Time").unwrap();
        assert!(copy.percent < 8.0);
    }

    #[test]
    fn servers_and_filesystem_tables_present() {
        assert_eq!(UNIX_SERVERS.len(), 6);
        assert_eq!(UNIX_READ_WRITE.len(), 7);
        // Writes cost more than reads at every block size.
        for &(_, r, w) in UNIX_READ_WRITE {
            assert!(w > r);
        }
        // Read/write times grow with block size.
        for w in UNIX_READ_WRITE.windows(2) {
            assert!(w[1].1 > w[0].1);
            assert!(w[1].2 > w[0].2);
        }
    }
}
