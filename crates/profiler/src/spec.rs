//! Synthetic-kernel specifications.

/// One message-passing activity of a kernel (a row of Tables 3.1–3.5).
#[derive(Debug, Clone)]
pub struct ActivitySpec {
    /// Activity name as printed in the table.
    pub name: &'static str,
    /// Instructions executed for this activity in one round trip.
    pub instructions_per_round_trip: u64,
    /// Procedure invocations per round trip (entry/exit instrumentation
    /// fires once per visit).
    pub visits_per_round_trip: u32,
}

/// A profiled system: processor speed, message size, and its activity
/// structure.
#[derive(Debug, Clone)]
pub struct KernelSpec {
    /// System name ("Charlotte", "Jasmin", "925", "Unix").
    pub name: &'static str,
    /// Processor description for the table header.
    pub processor: &'static str,
    /// Instruction rate, MIPS.
    pub mips: f64,
    /// Message payload in bytes (one way).
    pub message_bytes: u32,
    /// Whether this is the local or non-local measurement.
    pub local: bool,
    /// The activity rows.
    pub activities: Vec<ActivitySpec>,
}

impl KernelSpec {
    /// Time for one instruction, microseconds.
    pub fn instruction_us(&self) -> f64 {
        1.0 / self.mips
    }

    /// Nominal round-trip time: all activities end to end, µs.
    pub fn nominal_round_trip_us(&self) -> f64 {
        self.activities
            .iter()
            .map(|a| a.instructions_per_round_trip as f64 * self.instruction_us())
            .sum()
    }

    /// The copy activity, if the table breaks one out.
    pub fn copy_activity(&self) -> Option<&ActivitySpec> {
        self.activities.iter().find(|a| a.name.contains("Copy"))
    }
}

/// Builds an activity spec from a published activity time (ms) at a given
/// MIPS rating: the instruction budget is what that time buys on that
/// processor.
pub fn activity_from_time(
    name: &'static str,
    time_ms: f64,
    mips: f64,
    visits: u32,
) -> ActivitySpec {
    ActivitySpec {
        name,
        instructions_per_round_trip: (time_ms * 1_000.0 * mips).round() as u64,
        visits_per_round_trip: visits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instruction_budget_round_trips_time() {
        let a = activity_from_time("X", 2.0, 0.5, 1);
        // 2 ms at 0.5 MIPS = 1000 instructions.
        assert_eq!(a.instructions_per_round_trip, 1_000);
        let spec = KernelSpec {
            name: "t",
            processor: "test",
            mips: 0.5,
            message_bytes: 100,
            local: true,
            activities: vec![a],
        };
        assert!((spec.nominal_round_trip_us() - 2_000.0).abs() < 1e-9);
    }
}
