//! The wrapping hardware timer of the §3.3 measurement technique.

/// A free-running hardware interval timer of limited width, as found on the
/// profiled machines. Reads return the low bits of a microsecond counter;
/// the §3.3 procedure ("applying correction if the timer wraps around")
/// must handle wrap-around, which [`HardwareTimer::elapsed`] implements.
#[derive(Debug, Clone, Copy)]
pub struct HardwareTimer {
    /// Counter width in bits.
    width: u32,
}

impl HardwareTimer {
    /// A timer with a counter of `width` bits (1..=32).
    ///
    /// # Panics
    ///
    /// Panics for widths outside 1..=32.
    pub fn new(width: u32) -> HardwareTimer {
        assert!((1..=32).contains(&width), "timer width out of range");
        HardwareTimer { width }
    }

    /// The 16-bit timer typical of the profiled hardware.
    pub fn sixteen_bit() -> HardwareTimer {
        HardwareTimer::new(16)
    }

    /// Modulus of the counter.
    pub fn modulus(&self) -> u64 {
        1u64 << self.width
    }

    /// Reads the timer at absolute time `now_us` (microseconds).
    pub fn read(&self, now_us: u64) -> u64 {
        now_us & (self.modulus() - 1)
    }

    /// Elapsed microseconds between two reads, correcting one wrap.
    ///
    /// Intervals longer than the timer period are irrecoverable (the real
    /// measurement had the same constraint); callers keep instrumented
    /// sections short.
    pub fn elapsed(&self, entry: u64, exit: u64) -> u64 {
        if exit >= entry {
            exit - entry
        } else {
            exit + self.modulus() - entry
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_are_modular() {
        let t = HardwareTimer::sixteen_bit();
        assert_eq!(t.read(65_535), 65_535);
        assert_eq!(t.read(65_536), 0);
        assert_eq!(t.read(65_540), 4);
    }

    #[test]
    fn wrap_corrected() {
        let t = HardwareTimer::sixteen_bit();
        let entry = t.read(65_530);
        let exit = t.read(65_536 + 10);
        assert_eq!(t.elapsed(entry, exit), 16);
    }

    #[test]
    fn no_wrap_direct() {
        let t = HardwareTimer::sixteen_bit();
        assert_eq!(t.elapsed(5, 105), 100);
    }

    #[test]
    #[should_panic(expected = "width")]
    fn invalid_width() {
        HardwareTimer::new(0);
    }
}
