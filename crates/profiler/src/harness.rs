//! The §3.3 profiling harness.
//!
//! Instrumentation per the thesis:
//!
//! ```text
//! procedure_entry = record
//!     count                : integer;
//!     timer_value_at_entry : integer;
//!     elapsed_time         : integer;
//! end;
//! statistics : array (procedure_names) of procedure_entry;
//! ```
//!
//! A *kernel run* executes a producer that sends a fixed number of messages
//! and a consumer that receives them; the hardware timer is read on entering
//! and leaving each instrumented kernel procedure, wrap-corrected, and the
//! per-procedure elapsed time accumulated. The cost of the timing code
//! itself is measured and subtracted ("suitable corrections have to be made
//! to remove the cost incurred due to the timing code itself").

use crate::spec::KernelSpec;
use crate::timer::HardwareTimer;
use std::collections::HashMap;

/// Cost of one timer read on the instrumented machine, microseconds.
pub const TIMER_READ_US: u64 = 4;

/// Per-procedure statistics record.
#[derive(Debug, Clone, Copy, Default)]
struct ProcedureEntry {
    count: u64,
    timer_value_at_entry: u64,
    elapsed_time: u64,
}

/// The statistics array plus the virtual clock and timer.
#[derive(Debug)]
pub struct Profiler {
    timer: HardwareTimer,
    statistics: HashMap<&'static str, ProcedureEntry>,
    order: Vec<&'static str>,
    now_us: u64,
}

impl Profiler {
    /// A profiler over a fresh virtual clock.
    pub fn new(timer: HardwareTimer) -> Profiler {
        Profiler {
            timer,
            statistics: HashMap::new(),
            order: Vec::new(),
            now_us: 0,
        }
    }

    /// The current virtual time, µs.
    pub fn now_us(&self) -> u64 {
        self.now_us
    }

    /// Enters an instrumented procedure: read the timer (the read itself
    /// costs time that lands inside the measured window) and record the
    /// value.
    pub fn enter(&mut self, name: &'static str) {
        let value = self.timer.read(self.now_us);
        self.now_us += TIMER_READ_US;
        if !self.statistics.contains_key(name) {
            self.order.push(name);
        }
        let e = self.statistics.entry(name).or_default();
        e.timer_value_at_entry = value;
    }

    /// Burns `us` microseconds of procedure body.
    pub fn execute_us(&mut self, us: u64) {
        self.now_us += us;
    }

    /// Exits the procedure: read the timer again (paying for the read),
    /// wrap-correct, accumulate.
    pub fn exit(&mut self, name: &'static str) {
        self.now_us += TIMER_READ_US;
        let value = self.timer.read(self.now_us);
        let e = self.statistics.get_mut(name).expect("exit without enter");
        e.elapsed_time += self.timer.elapsed(e.timer_value_at_entry, value);
        e.count += 1;
    }

    /// Raw (uncorrected) elapsed time for a procedure, µs.
    pub fn raw_elapsed_us(&self, name: &str) -> u64 {
        self.statistics.get(name).map_or(0, |e| e.elapsed_time)
    }

    /// Visit count for a procedure.
    pub fn count(&self, name: &str) -> u64 {
        self.statistics.get(name).map_or(0, |e| e.count)
    }

    /// Elapsed time with the timing-code overhead removed: both timer reads
    /// sit inside the measured window, so each visit carries
    /// `2 × TIMER_READ_US` of instrumentation cost — "suitable corrections
    /// have to be made to remove the cost incurred due to the timing code
    /// itself" (§3.3).
    pub fn corrected_elapsed_us(&self, name: &str) -> u64 {
        let e = match self.statistics.get(name) {
            Some(e) => *e,
            None => return 0,
        };
        e.elapsed_time.saturating_sub(2 * TIMER_READ_US * e.count)
    }

    /// Procedure names in first-visit order.
    pub fn procedures(&self) -> &[&'static str] {
        &self.order
    }
}

/// One row of a Table 3.x breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct BreakdownRow {
    /// Activity name.
    pub name: &'static str,
    /// Time per round trip, milliseconds.
    pub time_ms: f64,
    /// Percentage of the round-trip time.
    pub percent: f64,
}

/// A complete breakdown (one of Tables 3.1–3.5).
#[derive(Debug, Clone)]
pub struct Breakdown {
    /// System name.
    pub system: &'static str,
    /// Processor description.
    pub processor: &'static str,
    /// Measured round-trip time, milliseconds.
    pub round_trip_ms: f64,
    /// Copy time per round trip, milliseconds (0 when not broken out).
    pub copy_ms: f64,
    /// Message size in bytes.
    pub message_bytes: u32,
    /// The activity rows.
    pub rows: Vec<BreakdownRow>,
}

/// A kernel run: executes the producer/consumer loop of a synthetic kernel
/// under the profiling harness.
#[derive(Debug)]
pub struct KernelRun<'a> {
    spec: &'a KernelSpec,
    profiler: Profiler,
    round_trips: u64,
}

impl<'a> KernelRun<'a> {
    /// Prepares a run of `spec`.
    pub fn new(spec: &'a KernelSpec) -> KernelRun<'a> {
        KernelRun {
            spec,
            profiler: Profiler::new(HardwareTimer::sixteen_bit()),
            round_trips: 0,
        }
    }

    /// Executes `messages` round trips (producer sends, consumer replies),
    /// visiting every activity's procedures with its instruction budget.
    pub fn execute(mut self, messages: u64) -> KernelRun<'a> {
        let instr_us = self.spec.instruction_us();
        for _ in 0..messages {
            for a in &self.spec.activities {
                let per_visit_us = (a.instructions_per_round_trip as f64 * instr_us
                    / f64::from(a.visits_per_round_trip.max(1)))
                .round() as u64;
                for _ in 0..a.visits_per_round_trip.max(1) {
                    self.profiler.enter(a.name);
                    self.profiler.execute_us(per_visit_us);
                    self.profiler.exit(a.name);
                }
            }
            self.round_trips += 1;
        }
        self
    }

    /// Access to the profiler (counts, raw elapsed).
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    /// Analyzes the statistics array into a Table 3.x breakdown.
    ///
    /// # Panics
    ///
    /// Panics if no round trips were executed.
    pub fn breakdown(&self) -> Breakdown {
        assert!(self.round_trips > 0, "execute() the run first");
        let mut rows = Vec::new();
        let mut total_us = 0.0;
        for a in &self.spec.activities {
            let us = self.profiler.corrected_elapsed_us(a.name) as f64 / self.round_trips as f64;
            total_us += us;
            rows.push((a.name, us));
        }
        let copy_ms = rows
            .iter()
            .find(|(n, _)| n.contains("Copy"))
            .map_or(0.0, |(_, us)| us / 1_000.0);
        let rows = rows
            .into_iter()
            .map(|(name, us)| BreakdownRow {
                name,
                time_ms: us / 1_000.0,
                percent: 100.0 * us / total_us,
            })
            .collect();
        Breakdown {
            system: self.spec.name,
            processor: self.spec.processor,
            round_trip_ms: total_us / 1_000.0,
            copy_ms,
            message_bytes: self.spec.message_bytes,
            rows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ActivitySpec, KernelSpec};

    fn tiny_spec() -> KernelSpec {
        KernelSpec {
            name: "tiny",
            processor: "1 MIPS test CPU",
            mips: 1.0,
            message_bytes: 64,
            local: true,
            activities: vec![
                ActivitySpec {
                    name: "Alpha",
                    instructions_per_round_trip: 3_000,
                    visits_per_round_trip: 1,
                },
                ActivitySpec {
                    name: "Copy Time",
                    instructions_per_round_trip: 1_000,
                    visits_per_round_trip: 4,
                },
            ],
        }
    }

    #[test]
    fn percentages_sum_to_100() {
        let spec = tiny_spec();
        let b = KernelRun::new(&spec).execute(50).breakdown();
        let total: f64 = b.rows.iter().map(|r| r.percent).sum();
        assert!((total - 100.0).abs() < 1e-9);
        assert_eq!(b.rows.len(), 2);
    }

    #[test]
    fn times_recover_instruction_budgets() {
        let spec = tiny_spec();
        let b = KernelRun::new(&spec).execute(50).breakdown();
        // 3000 instructions at 1 MIPS = 3 ms.
        let alpha = &b.rows[0];
        assert!((alpha.time_ms - 3.0).abs() < 0.01, "{}", alpha.time_ms);
        assert!((b.copy_ms - 1.0).abs() < 0.01, "{}", b.copy_ms);
        assert!((b.round_trip_ms - 4.0).abs() < 0.02);
    }

    #[test]
    fn counts_track_visits() {
        let spec = tiny_spec();
        let run = KernelRun::new(&spec).execute(10);
        assert_eq!(run.profiler().count("Alpha"), 10);
        assert_eq!(run.profiler().count("Copy Time"), 40);
    }

    #[test]
    fn survives_timer_wrap() {
        // Run long enough that the 16-bit µs timer wraps many times; the
        // per-procedure elapsed stays correct because each measured window
        // is far shorter than the 65.5 ms period.
        let spec = tiny_spec();
        let run = KernelRun::new(&spec).execute(1_000);
        assert!(run.profiler().now_us() > 4 * 65_536);
        let b = run.breakdown();
        assert!((b.round_trip_ms - 4.0).abs() < 0.02, "{}", b.round_trip_ms);
    }

    #[test]
    #[should_panic(expected = "execute")]
    fn breakdown_requires_a_run() {
        let spec = tiny_spec();
        KernelRun::new(&spec).breakdown();
    }
}
