//! # profiler — the Chapter 3 kernel-profiling study
//!
//! The thesis profiles four operating systems — Charlotte, Jasmin, the IBM
//! 925, and 4.2bsd Unix — to show that message passing carries a large
//! *fixed* processing overhead (validity checking, control-block
//! manipulation, short-term scheduling, buffer management) for **local as
//! well as non-local** communication, with copy time only dominating for
//! multi-kilobyte messages.
//!
//! We cannot rerun a VAX 11/750 or a Versabus 68000, so this crate rebuilds
//! the *measurement*: each system is encoded as a synthetic kernel — its
//! published activity structure with per-activity instruction budgets on
//! its published processor speed — and replayed through the §3.3
//! procedure-call profiling harness: a wrapping hardware timer read at
//! procedure entry/exit, per-procedure `(count, timer_value_at_entry,
//! elapsed_time)` records, and correction for the timing code's own
//! overhead. Regenerating Tables 3.1–3.7 is then an actual exercise of the
//! instrumentation, not a constant dump.
//!
//! ```
//! use profiler::{systems, KernelRun};
//!
//! let spec = systems::charlotte();
//! let table = KernelRun::new(&spec).execute(100).breakdown();
//! let protocol = table.rows.iter().find(|r| r.name.contains("Protocol")).unwrap();
//! assert!((protocol.percent - 50.0).abs() < 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod harness;
mod spec;
mod timer;

pub mod analysis;
pub mod msgpath;
pub mod systems;

pub use harness::{Breakdown, BreakdownRow, KernelRun, Profiler};
pub use spec::{ActivitySpec, KernelSpec};
pub use timer::HardwareTimer;
