//! Cross-system analysis (§3.4–§3.7).
//!
//! The chapter's inferences: message passing has a large *fixed* overhead
//! independent of message size; copy time is a *variable* overhead
//! proportional to size; the fixed part dominates until messages grow to
//! kilobytes; and server "computation" times are comparable to kernel
//! "communication" times — which is what motivates splitting computation
//! (host) from communication (message coprocessor).

use crate::harness::Breakdown;
use crate::systems::{UNIX_READ_WRITE, UNIX_SERVERS};

/// Fixed (size-independent) overhead of a round trip, ms: everything but
/// the copy (§3.4 reports 19.4 ms for Charlotte, 0.612 ms for Jasmin,
/// 4.76 ms for the 925).
pub fn fixed_overhead_ms(b: &Breakdown) -> f64 {
    b.round_trip_ms - b.copy_ms
}

/// Per-byte copy cost, µs/byte (copy time is for the bytes moved in one
/// round trip, i.e. the message both ways through kernel buffers).
pub fn copy_us_per_byte(b: &Breakdown) -> f64 {
    if b.message_bytes == 0 {
        return 0.0;
    }
    b.copy_ms * 1_000.0 / f64::from(b.message_bytes)
}

/// Message size (bytes) at which copy time reaches half the round trip —
/// where the variable overhead starts to dominate (§3.2's 6000-byte
/// Charlotte observation, §3.6's "larger than 1000 bytes" characteristic).
pub fn copy_crossover_bytes(b: &Breakdown) -> u64 {
    let per_byte_ms = copy_us_per_byte(b) / 1_000.0;
    if per_byte_ms <= 0.0 {
        return u64::MAX;
    }
    (fixed_overhead_ms(b) / per_byte_ms).ceil() as u64
}

/// Mean Unix server computation time (Table 3.6), ms.
pub fn mean_server_time_ms() -> f64 {
    let sum: f64 = UNIX_SERVERS.iter().map(|&(_, t)| t).sum();
    sum / UNIX_SERVERS.len() as f64
}

/// Linear-regression slope and intercept of read (or write) time vs block
/// size (Table 3.7): `time_ms ≈ intercept + slope_ms_per_kb * kb`.
pub fn read_write_fit(write: bool) -> (f64, f64) {
    let points: Vec<(f64, f64)> = UNIX_READ_WRITE
        .iter()
        .map(|&(b, r, w)| (f64::from(b) / 1024.0, if write { w } else { r }))
        .collect();
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    let intercept = (sy - slope * sx) / n;
    (intercept, slope)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::KernelRun;
    use crate::systems;

    #[test]
    fn fixed_overheads_match_section_3_4() {
        let pairs: [(fn() -> crate::KernelSpec, f64); 3] = [
            (systems::charlotte, 19.4),
            (systems::jasmin, 0.612),
            (systems::sys925, 4.76),
        ];
        for (mk, want) in pairs {
            let spec = mk();
            let b = KernelRun::new(&spec).execute(100).breakdown();
            let got = fixed_overhead_ms(&b);
            assert!(
                (got - want).abs() / want < 0.05,
                "{}: {got} vs {want}",
                b.system
            );
        }
    }

    #[test]
    fn copy_dominates_only_for_large_messages() {
        // §3.6: for messages under ~100 bytes copy is <20% of the round
        // trip; crossover sits in the kilobytes.
        for mk in [systems::jasmin, systems::sys925, systems::unix_local] {
            let spec = mk();
            let b = KernelRun::new(&spec).execute(100).breakdown();
            let copy_pct = 100.0 * b.copy_ms / b.round_trip_ms;
            assert!(copy_pct < 20.5, "{}: copy {copy_pct}%", b.system);
            // Crossover lies well beyond the measured message size in every
            // system (the fixed overhead dominates the measured points).
            assert!(
                copy_crossover_bytes(&b) > u64::from(b.message_bytes) * 2,
                "{}: crossover {}",
                b.system,
                copy_crossover_bytes(&b)
            );
        }
    }

    #[test]
    fn computation_comparable_to_communication() {
        // §3.5: mean service times are of the same order as the 4.57 ms
        // local communication time — the basis for the even host/MP split.
        let mean = mean_server_time_ms();
        assert!(mean > 1.0 && mean < 10.0, "mean {mean}");
        let spec = systems::unix_local();
        let b = KernelRun::new(&spec).execute(100).breakdown();
        let ratio = mean / b.round_trip_ms;
        assert!(ratio > 0.5 && ratio < 2.5, "ratio {ratio}");
    }

    #[test]
    fn filesystem_times_grow_linearly() {
        let (intercept, slope) = read_write_fit(false);
        assert!(intercept > 0.5, "reads have a fixed cost: {intercept}");
        assert!(slope > 0.3, "and a per-KB cost: {slope}");
        let (wi, ws) = read_write_fit(true);
        assert!(ws > slope, "writes cost more per KB: {ws} vs {slope}");
        assert!(wi > 0.5);
    }
}
