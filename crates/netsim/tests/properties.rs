//! Property-based tests of the token ring.

use netsim::{RingNodeId, TokenRing};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The medium serializes: frames never overlap, deliveries are in
    /// transmit order, and total busy time equals the sum of wire times.
    #[test]
    fn medium_serialization_laws(
        frames in proptest::collection::vec((0u64..10_000, 1u32..2_000), 1..40),
    ) {
        let mut ring: TokenRing<usize> = TokenRing::default();
        ring.attach(RingNodeId(0));
        ring.attach(RingNodeId(1));
        let mut expected_busy = 0u64;
        let mut last_arrival = 0u64;
        for (i, &(at, bytes)) in frames.iter().enumerate() {
            let tx = ring.transmission_ns(bytes);
            expected_busy += tx;
            let arrive = ring.transmit(at, RingNodeId(0), RingNodeId(1), bytes, i).unwrap();
            // No overlap: each arrival is at least one wire time after the
            // later of (submission, previous arrival).
            prop_assert!(arrive >= at + tx);
            prop_assert!(arrive >= last_arrival + tx);
            last_arrival = arrive;
        }
        prop_assert_eq!(ring.stats().busy_ns, expected_busy);
        // Drain everything: in-order payloads.
        let got = ring.poll(u64::MAX);
        let order: Vec<usize> = got.iter().map(|d| d.frame.payload).collect();
        let want: Vec<usize> = (0..frames.len()).collect();
        prop_assert_eq!(order, want);
        prop_assert!(ring.idle());
    }

    /// Wire time is linear in frame size and inversely proportional to the
    /// bit rate.
    #[test]
    fn wire_time_scaling(bytes in 1u32..10_000, rate_mhz in 1u64..100) {
        let ring: TokenRing<()> = TokenRing::new(rate_mhz * 1_000_000);
        let t1 = ring.transmission_ns(bytes);
        let t2 = ring.transmission_ns(bytes * 2);
        // Doubling payload less than doubles total time (header amortizes)
        // but strictly increases it.
        prop_assert!(t2 > t1);
        prop_assert!(t2 <= 2 * t1);
        // Rate scaling: 2x the bit rate, at most half (+1 rounding) the time.
        let fast: TokenRing<()> = TokenRing::new(rate_mhz * 2_000_000);
        prop_assert!(fast.transmission_ns(bytes) <= t1 / 2 + 1);
    }

    /// Polling earlier than the first arrival returns nothing; polling at
    /// the arrival instant returns exactly the frames due.
    #[test]
    fn poll_boundaries(at in 0u64..1_000, bytes in 1u32..500) {
        let mut ring: TokenRing<&'static str> = TokenRing::default();
        ring.attach(RingNodeId(0));
        ring.attach(RingNodeId(1));
        let arrive = ring.transmit(at, RingNodeId(0), RingNodeId(1), bytes, "x").unwrap();
        prop_assert!(ring.poll(arrive - 1).is_empty());
        prop_assert_eq!(ring.next_arrival(), Some(arrive));
        let got = ring.poll(arrive);
        prop_assert_eq!(got.len(), 1);
        prop_assert!(ring.next_arrival().is_none());
    }
}
