//! # netsim — the inter-node network substrate
//!
//! The thesis's experimental 925 nodes are interconnected by a 4 Mb/s token
//! ring (similar to the IBM token ring), controlled by the message
//! coprocessor (§4.3). Its modeling assumptions (§4.6, §6.6.4) are:
//!
//! * the network is **reliable** — no checksums, acknowledgements,
//!   retransmissions or time-outs;
//! * packets **mirror IPC calls** — one `send` packet and one `reply`
//!   packet per round trip;
//! * the network is **not a bottleneck** — but interfaces still take real
//!   time, and packet arrival is an asynchronous event that raises an
//!   interrupt at the destination.
//!
//! [`TokenRing`] implements exactly this: a shared medium serializing
//! transmissions at a configured bit rate, delivering in order, reliably,
//! with per-packet wire latency derived from the frame size. The
//! architecture simulator layers DMA and interrupt-processing costs on top.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod live;

use std::collections::VecDeque;
use std::fmt;

/// Identifier of a node on the ring (mirrors `msgkernel::NodeId`'s `u32`,
/// kept independent so this crate stands alone).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RingNodeId(pub u32);

impl fmt::Display for RingNodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ring{}", self.0)
    }
}

/// A frame in flight: an opaque payload of `P` plus routing metadata.
#[derive(Debug, Clone)]
pub struct Frame<P> {
    /// Sender.
    pub from: RingNodeId,
    /// Destination.
    pub to: RingNodeId,
    /// Payload bytes on the wire (headers included).
    pub wire_bytes: u32,
    /// The payload object carried.
    pub payload: P,
}

/// A frame that has arrived and awaits pickup by the destination's network
/// interface.
#[derive(Debug, Clone)]
pub struct Delivery<P> {
    /// Arrival time, nanoseconds.
    pub at_ns: u64,
    /// The frame.
    pub frame: Frame<P>,
}

/// Errors from the ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RingError {
    /// The destination node was never attached.
    UnknownNode(RingNodeId),
}

impl fmt::Display for RingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RingError::UnknownNode(n) => write!(f, "unknown ring node {n}"),
        }
    }
}

impl std::error::Error for RingError {}

/// Ring statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RingStats {
    /// Frames transmitted.
    pub frames: u64,
    /// Total payload bytes moved.
    pub bytes: u64,
    /// Total time the medium was busy, nanoseconds.
    pub busy_ns: u64,
}

/// A reliable, serializing token ring.
#[derive(Debug)]
pub struct TokenRing<P> {
    bit_rate_bps: u64,
    header_bytes: u32,
    nodes: Vec<RingNodeId>,
    /// Time at which the medium becomes free.
    medium_free_ns: u64,
    in_flight: VecDeque<Delivery<P>>, // ordered by arrival time
    stats: RingStats,
}

/// The paper's ring: four megabits per second (§3.1, §4.3).
pub const DEFAULT_BIT_RATE: u64 = 4_000_000;

/// Frame header overhead (addresses, framing) in bytes.
pub const HEADER_BYTES: u32 = 16;

impl<P> TokenRing<P> {
    /// Creates a ring with the given bit rate.
    pub fn new(bit_rate_bps: u64) -> TokenRing<P> {
        assert!(bit_rate_bps > 0, "bit rate must be positive");
        TokenRing {
            bit_rate_bps,
            header_bytes: HEADER_BYTES,
            nodes: Vec::new(),
            medium_free_ns: 0,
            in_flight: VecDeque::new(),
            stats: RingStats::default(),
        }
    }

    /// Attaches a node to the ring.
    pub fn attach(&mut self, node: RingNodeId) {
        if !self.nodes.contains(&node) {
            self.nodes.push(node);
        }
    }

    /// Wire time for `payload_bytes` of payload (plus header), nanoseconds.
    pub fn transmission_ns(&self, payload_bytes: u32) -> u64 {
        let bits = u64::from(payload_bytes + self.header_bytes) * 8;
        bits * 1_000_000_000 / self.bit_rate_bps
    }

    /// Queues a frame for transmission at time `now_ns`; returns its
    /// arrival time. The medium is serialized: a busy ring delays the
    /// frame until the current transmission completes.
    ///
    /// # Errors
    ///
    /// [`RingError::UnknownNode`] if either endpoint is not attached.
    pub fn transmit(
        &mut self,
        now_ns: u64,
        from: RingNodeId,
        to: RingNodeId,
        payload_bytes: u32,
        payload: P,
    ) -> Result<u64, RingError> {
        for n in [from, to] {
            if !self.nodes.contains(&n) {
                return Err(RingError::UnknownNode(n));
            }
        }
        let start = now_ns.max(self.medium_free_ns);
        let tx = self.transmission_ns(payload_bytes);
        let arrive = start + tx;
        self.medium_free_ns = arrive;
        self.stats.frames += 1;
        self.stats.bytes += u64::from(payload_bytes);
        self.stats.busy_ns += tx;
        self.in_flight.push_back(Delivery {
            at_ns: arrive,
            frame: Frame {
                from,
                to,
                wire_bytes: payload_bytes + self.header_bytes,
                payload,
            },
        });
        Ok(arrive)
    }

    /// Removes and returns every frame that has arrived by `now_ns`.
    pub fn poll(&mut self, now_ns: u64) -> Vec<Delivery<P>> {
        let mut out = Vec::new();
        while matches!(self.in_flight.front(), Some(d) if d.at_ns <= now_ns) {
            out.push(self.in_flight.pop_front().expect("checked non-empty"));
        }
        out
    }

    /// Arrival time of the next frame, if any is in flight.
    pub fn next_arrival(&self) -> Option<u64> {
        self.in_flight.front().map(|d| d.at_ns)
    }

    /// Whether any frame is in flight.
    pub fn idle(&self) -> bool {
        self.in_flight.is_empty()
    }

    /// Ring statistics.
    pub fn stats(&self) -> RingStats {
        self.stats
    }
}

impl<P> Default for TokenRing<P> {
    fn default() -> TokenRing<P> {
        TokenRing::new(DEFAULT_BIT_RATE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring() -> TokenRing<&'static str> {
        let mut r = TokenRing::default();
        r.attach(RingNodeId(0));
        r.attach(RingNodeId(1));
        r
    }

    #[test]
    fn wire_latency_at_4mbps() {
        let r = ring();
        // 40-byte message + 16-byte header = 56 bytes = 448 bits at 4 Mb/s
        // = 112 microseconds.
        assert_eq!(r.transmission_ns(40), 112_000);
    }

    #[test]
    fn transmit_and_poll() {
        let mut r = ring();
        let arrive = r
            .transmit(1_000, RingNodeId(0), RingNodeId(1), 40, "send")
            .unwrap();
        assert_eq!(arrive, 1_000 + 112_000);
        assert!(r.poll(arrive - 1).is_empty());
        let got = r.poll(arrive);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].frame.payload, "send");
        assert_eq!(got[0].frame.to, RingNodeId(1));
        assert!(r.idle());
    }

    #[test]
    fn medium_serializes_back_to_back_frames() {
        let mut r = ring();
        let a = r
            .transmit(0, RingNodeId(0), RingNodeId(1), 40, "a")
            .unwrap();
        let b = r
            .transmit(0, RingNodeId(1), RingNodeId(0), 40, "b")
            .unwrap();
        assert_eq!(b, a + 112_000, "second frame waits for the medium");
        assert_eq!(r.stats().frames, 2);
        assert_eq!(r.stats().busy_ns, 224_000);
    }

    #[test]
    fn in_order_delivery() {
        let mut r = ring();
        r.transmit(0, RingNodeId(0), RingNodeId(1), 40, "first")
            .unwrap();
        r.transmit(0, RingNodeId(0), RingNodeId(1), 40, "second")
            .unwrap();
        let got = r.poll(u64::MAX);
        assert_eq!(
            got.iter().map(|d| d.frame.payload).collect::<Vec<_>>(),
            ["first", "second"]
        );
    }

    #[test]
    fn unknown_node_rejected() {
        let mut r = ring();
        let err = r
            .transmit(0, RingNodeId(0), RingNodeId(9), 40, "x")
            .unwrap_err();
        assert_eq!(err, RingError::UnknownNode(RingNodeId(9)));
    }

    #[test]
    fn next_arrival_tracks_head() {
        let mut r = ring();
        assert_eq!(r.next_arrival(), None);
        let a = r
            .transmit(0, RingNodeId(0), RingNodeId(1), 10, "x")
            .unwrap();
        assert_eq!(r.next_arrival(), Some(a));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bit_rate_rejected() {
        TokenRing::<()>::new(0);
    }
}
