//! A live, thread-backed stand-in for the token ring.
//!
//! [`TokenRing`](crate::TokenRing) models wire time inside the discrete-event
//! simulator; the live runtime instead needs a medium that real OS threads
//! can transmit on and poll concurrently. [`LiveRing`] keeps the same §4.6
//! assumptions — reliable, in-order per sender–receiver pair, one frame per
//! IPC call — but moves frames over `std::sync::mpsc` channels, one inbound
//! channel per attached node. The 4 Mb/s medium serialization is optional:
//! when a bit rate is configured, each transmit holds a medium lock for the
//! frame's wire time, so concurrent senders contend for the ring exactly as
//! they would for the token.

use crate::{Frame, RingNodeId, RingStats};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// A per-node arrival callback: invoked on the *sender's* thread after a
/// frame is enqueued for that node.
type ArrivalNotifier = Box<dyn Fn() + Send + Sync>;

/// Shared transmit side of a [`LiveRing`]: clone one per thread.
pub struct LiveRing<P> {
    senders: Vec<Sender<Frame<P>>>,
    /// One optional arrival notifier per node, settable once before
    /// traffic starts (the receive-side interrupt line: a runtime hangs
    /// its doorbell ring here so a node blocked waiting for work wakes on
    /// a remote arrival instead of polling).
    notifiers: Arc<Vec<OnceLock<ArrivalNotifier>>>,
    /// `Some` when the medium serializes at a bit rate; the lock *is* the
    /// token — holding it for the frame's wire time makes concurrent
    /// senders queue behind each other.
    medium: Option<Arc<Mutex<()>>>,
    header_bytes: u32,
    bit_rate_bps: u64,
    frames: Arc<AtomicU64>,
    bytes: Arc<AtomicU64>,
    busy_ns: Arc<AtomicU64>,
    /// Frames currently enqueued per inbound channel (incremented on
    /// transmit, decremented when the port receives).
    depths: Arc<Vec<AtomicU64>>,
    /// High-water mark of any single node's inbound queue — the overload
    /// signature of a buffer-shortage cascade (work arriving faster than
    /// the node drains it).
    peak_queued: Arc<AtomicU64>,
}

impl<P> std::fmt::Debug for LiveRing<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiveRing")
            .field("nodes", &self.senders.len())
            .field("bit_rate_bps", &self.bit_rate_bps)
            .finish_non_exhaustive()
    }
}

impl<P> Clone for LiveRing<P> {
    fn clone(&self) -> LiveRing<P> {
        LiveRing {
            senders: self.senders.clone(),
            notifiers: Arc::clone(&self.notifiers),
            medium: self.medium.clone(),
            header_bytes: self.header_bytes,
            bit_rate_bps: self.bit_rate_bps,
            frames: Arc::clone(&self.frames),
            bytes: Arc::clone(&self.bytes),
            busy_ns: Arc::clone(&self.busy_ns),
            depths: Arc::clone(&self.depths),
            peak_queued: Arc::clone(&self.peak_queued),
        }
    }
}

/// One node's receive side: the port owns the node's inbound channel.
#[derive(Debug)]
pub struct Port<P> {
    node: RingNodeId,
    rx: Receiver<Frame<P>>,
    depths: Arc<Vec<AtomicU64>>,
}

/// Builds a live ring for nodes `0..nodes`, returning the shared transmit
/// handle and one [`Port`] per node (index = node id).
///
/// `bit_rate_bps = 0` disables medium serialization (infinite-speed wire);
/// [`crate::DEFAULT_BIT_RATE`] reproduces the paper's 4 Mb/s ring.
pub fn live_ring<P>(nodes: u32, bit_rate_bps: u64) -> (LiveRing<P>, Vec<Port<P>>) {
    let depths: Arc<Vec<AtomicU64>> = Arc::new((0..nodes).map(|_| AtomicU64::new(0)).collect());
    let mut senders = Vec::with_capacity(nodes as usize);
    let mut ports = Vec::with_capacity(nodes as usize);
    for n in 0..nodes {
        let (tx, rx) = std::sync::mpsc::channel();
        senders.push(tx);
        ports.push(Port {
            node: RingNodeId(n),
            rx,
            depths: Arc::clone(&depths),
        });
    }
    let ring = LiveRing {
        notifiers: Arc::new((0..nodes).map(|_| OnceLock::new()).collect()),
        senders,
        medium: (bit_rate_bps > 0).then(|| Arc::new(Mutex::new(()))),
        header_bytes: crate::HEADER_BYTES,
        bit_rate_bps,
        frames: Arc::new(AtomicU64::new(0)),
        bytes: Arc::new(AtomicU64::new(0)),
        busy_ns: Arc::new(AtomicU64::new(0)),
        depths,
        peak_queued: Arc::new(AtomicU64::new(0)),
    };
    (ring, ports)
}

impl<P> LiveRing<P> {
    /// Installs `node`'s arrival notifier: called on the sender's thread
    /// after each frame destined for `node` is enqueued. Set once, before
    /// traffic starts; a second call for the same node is ignored.
    ///
    /// # Panics
    ///
    /// If `node` is not attached to the ring.
    pub fn set_arrival_notifier(
        &self,
        node: RingNodeId,
        notify: impl Fn() + Send + Sync + 'static,
    ) {
        let slot = self
            .notifiers
            .get(node.0 as usize)
            .expect("notifier target attached to the ring");
        let _ = slot.set(Box::new(notify));
    }

    /// Transmits a frame, blocking the calling thread for the frame's wire
    /// time while holding the medium (when serialization is enabled).
    ///
    /// # Errors
    ///
    /// [`crate::RingError::UnknownNode`] if `to` is not attached.
    pub fn transmit(
        &self,
        from: RingNodeId,
        to: RingNodeId,
        payload_bytes: u32,
        payload: P,
    ) -> Result<(), crate::RingError> {
        let tx = self
            .senders
            .get(to.0 as usize)
            .ok_or(crate::RingError::UnknownNode(to))?;
        if let Some(medium) = &self.medium {
            let bits = u64::from(payload_bytes + self.header_bytes) * 8;
            let wire_ns = bits * 1_000_000_000 / self.bit_rate_bps;
            let guard = medium.lock().expect("ring medium poisoned");
            let deadline = Instant::now() + Duration::from_nanos(wire_ns);
            while Instant::now() < deadline {
                std::hint::spin_loop();
            }
            drop(guard);
            self.busy_ns.fetch_add(wire_ns, Ordering::Relaxed);
        }
        self.frames.fetch_add(1, Ordering::Relaxed);
        self.bytes
            .fetch_add(u64::from(payload_bytes), Ordering::Relaxed);
        // A receiver gone at shutdown is not an error: the ring is reliable
        // while both ends live (§4.6), and teardown drops ports first.
        let _ = tx.send(Frame {
            from,
            to,
            wire_bytes: payload_bytes + self.header_bytes,
            payload,
        });
        let depth = self.depths[to.0 as usize].fetch_add(1, Ordering::Relaxed) + 1;
        self.peak_queued.fetch_max(depth, Ordering::Relaxed);
        if let Some(notify) = self.notifiers[to.0 as usize].get() {
            notify();
        }
        Ok(())
    }

    /// Cumulative traffic statistics across all senders.
    pub fn stats(&self) -> RingStats {
        RingStats {
            frames: self.frames.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            busy_ns: self.busy_ns.load(Ordering::Relaxed),
        }
    }

    /// High-water mark of any single node's inbound frame queue since the
    /// ring was built — how far the slowest receiver fell behind its
    /// senders at the worst moment (0 on an idle or perfectly drained
    /// ring). Saturation shows up here before it shows up in latency.
    pub fn peak_queued(&self) -> u64 {
        self.peak_queued.load(Ordering::Relaxed)
    }
}

impl<P> Port<P> {
    /// The node this port belongs to.
    pub fn node(&self) -> RingNodeId {
        self.node
    }

    /// Non-blocking receive: the network-interface poll the MP performs on
    /// each scheduling pass.
    pub fn try_recv(&self) -> Option<Frame<P>> {
        let frame = self.rx.try_recv().ok()?;
        self.depths[self.node.0 as usize].fetch_sub(1, Ordering::Relaxed);
        Some(frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_arrive_in_order_per_sender() {
        let (ring, mut ports) = live_ring::<u32>(2, 0);
        let p1 = ports.remove(1);
        for i in 0..10 {
            ring.transmit(RingNodeId(0), RingNodeId(1), 40, i).unwrap();
        }
        let got: Vec<u32> = std::iter::from_fn(|| p1.try_recv().map(|f| f.payload)).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
        assert_eq!(ring.stats().frames, 10);
        assert_eq!(ring.stats().bytes, 400);
    }

    #[test]
    fn arrival_notifier_fires_per_frame_to_its_node() {
        let (ring, _ports) = live_ring::<u8>(2, 0);
        let hits = Arc::new(AtomicU64::new(0));
        {
            let hits = Arc::clone(&hits);
            ring.set_arrival_notifier(RingNodeId(1), move || {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        }
        ring.transmit(RingNodeId(0), RingNodeId(1), 4, 1).unwrap();
        ring.transmit(RingNodeId(0), RingNodeId(1), 4, 2).unwrap();
        ring.transmit(RingNodeId(1), RingNodeId(0), 4, 3).unwrap(); // node 0: no notifier
        assert_eq!(hits.load(Ordering::Relaxed), 2);
        // A second install for the same node is ignored, not a panic.
        ring.set_arrival_notifier(RingNodeId(1), || {});
    }

    #[test]
    fn peak_queue_depth_tracks_the_deepest_backlog() {
        let (ring, mut ports) = live_ring::<u32>(2, 0);
        let p1 = ports.remove(1);
        assert_eq!(ring.peak_queued(), 0);
        for i in 0..5 {
            ring.transmit(RingNodeId(0), RingNodeId(1), 4, i).unwrap();
        }
        assert_eq!(ring.peak_queued(), 5);
        // Draining does not lower the high-water mark…
        while p1.try_recv().is_some() {}
        assert_eq!(ring.peak_queued(), 5);
        // …and a shallower second burst does not raise it.
        for i in 0..3 {
            ring.transmit(RingNodeId(0), RingNodeId(1), 4, i).unwrap();
        }
        assert_eq!(ring.peak_queued(), 5);
    }

    #[test]
    fn unknown_destination_rejected() {
        let (ring, _ports) = live_ring::<()>(2, 0);
        assert_eq!(
            ring.transmit(RingNodeId(0), RingNodeId(7), 1, ()),
            Err(crate::RingError::UnknownNode(RingNodeId(7)))
        );
    }

    #[test]
    fn serialized_medium_accounts_wire_time() {
        // 40 + 16 bytes at 4 Mb/s = 112 us per frame, matching TokenRing.
        let (ring, mut ports) = live_ring::<u8>(2, crate::DEFAULT_BIT_RATE);
        let p1 = ports.remove(1);
        let t0 = Instant::now();
        ring.transmit(RingNodeId(0), RingNodeId(1), 40, 7).unwrap();
        assert!(t0.elapsed() >= Duration::from_micros(112));
        assert_eq!(p1.try_recv().map(|f| f.payload), Some(7));
        assert_eq!(ring.stats().busy_ns, 112_000);
    }

    #[test]
    fn concurrent_senders_all_delivered() {
        let (ring, mut ports) = live_ring::<u32>(3, 0);
        let p2 = ports.remove(2);
        let handles: Vec<_> = (0..2u32)
            .map(|s| {
                let ring = ring.clone();
                std::thread::spawn(move || {
                    for i in 0..100 {
                        ring.transmit(RingNodeId(s), RingNodeId(2), 40, s * 1000 + i)
                            .unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut got: Vec<u32> = std::iter::from_fn(|| p2.try_recv().map(|f| f.payload)).collect();
        got.sort_unstable();
        let mut want: Vec<u32> = (0..100).chain(1000..1100).collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }
}
