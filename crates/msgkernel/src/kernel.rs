//! The IPC kernel: syscalls, rendezvous, the computation/communication
//! lists, and network packets mirroring IPC calls.

use crate::buffer::{BufferId, BufferPool, BufferQueue};
use crate::error::KernelError;
use crate::message::Message;
use crate::sched::{PriorityList, SchedQueue};
use crate::service::{QueuedMessage, ReplyTo, Service, ServiceAddr, ServiceId};
use crate::task::{NodeId, Task, TaskId, TaskState};
use std::collections::{HashMap, VecDeque};

/// Direction of a [`Syscall::MemoryMove`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MoveDirection {
    /// From the client's referenced segment into the server's space.
    FromClient,
    /// From the server's space into the client's referenced segment.
    ToClient,
}

/// The flavors of `send` that 925 offers (§3.2.4, §4.2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendMode {
    /// Fire-and-forget: no reply expected; the client continues as soon as
    /// the message is queued.
    NoWait,
    /// Remote invocation: the server will reply. `blocking` stops the
    /// client until the reply arrives; a non-blocking client continues and
    /// eventually issues [`Syscall::Wait`] for the response.
    RemoteInvocation {
        /// Whether the client stops until the reply arrives.
        blocking: bool,
    },
}

impl SendMode {
    /// The workload's usual flavor: blocking remote invocation.
    pub fn invocation() -> SendMode {
        SendMode::RemoteInvocation { blocking: true }
    }

    /// Whether a reply is expected at all.
    pub fn awaits_reply(self) -> bool {
        matches!(self, SendMode::RemoteInvocation { .. })
    }
}

/// A communication request, issued by a task on the host and processed by
/// the message coprocessor.
#[derive(Debug, Clone)]
pub enum Syscall {
    /// Send a message to a service.
    Send {
        /// Destination service (local or remote).
        to: ServiceAddr,
        /// The 40-byte message.
        message: Message,
        /// No-wait vs (blocking / non-blocking) remote invocation.
        mode: SendMode,
    },
    /// Block until the response to an outstanding non-blocking
    /// remote-invocation send arrives (returns immediately if it already
    /// has).
    Wait,
    /// Block until a message arrives on any offered service.
    Receive,
    /// Complete the current rendezvous with a reply message.
    Reply {
        /// The reply payload.
        message: Message,
    },
    /// Advertise intent to receive on a service.
    Offer {
        /// The service to serve.
        service: ServiceId,
    },
    /// Non-blocking poll: is a message waiting on any offered service?
    Inquire,
    /// Move a block between the server's space and the client's referenced
    /// segment (the paper's `memory move`, §4.2.1).
    MemoryMove {
        /// Transfer direction.
        direction: MoveDirection,
        /// Offset in the *server's* address space.
        local_offset: u32,
        /// Bytes to move (must fit the granted segment).
        length: u32,
    },
}

/// A network packet; non-local IPC exchanges packets that mirror the kernel
/// calls — exactly one `Send` and one `Reply` packet per round trip (§4.6).
#[derive(Debug, Clone)]
pub struct Packet {
    /// Originating node.
    pub from: NodeId,
    /// Destination node.
    pub to: NodeId,
    /// Payload.
    pub body: PacketBody,
}

/// Packet payloads.
#[derive(Debug, Clone)]
pub enum PacketBody {
    /// A `send` crossing the network.
    SendMsg {
        /// Destination service on the receiving node.
        service: ServiceId,
        /// Client task on the sending node (for the reply).
        client: TaskId,
        /// The message.
        message: Message,
        /// Whether the client awaits a reply.
        await_reply: bool,
    },
    /// A `reply` crossing the network back to the client.
    ReplyMsg {
        /// The client task on the destination node.
        client: TaskId,
        /// The reply message.
        message: Message,
    },
}

/// Observable kernel events, consumed by the architecture simulator.
#[derive(Debug, Clone)]
pub enum KernelEvent {
    /// The task joined the computation list (ready to run on the host).
    Runnable(TaskId),
    /// The task stopped (waiting for a message, reply, or resource).
    Stopped(TaskId),
    /// A receive completed: the message is in the server's control block.
    Delivered {
        /// The receiving server.
        server: TaskId,
    },
    /// A reply reached its client.
    ReplyDelivered {
        /// The client task.
        client: TaskId,
    },
    /// A packet must be transmitted by the network interface.
    PacketOut(Packet),
    /// The send blocked on kernel-buffer shortage (§3.2.3) and will retry.
    BufferShortage(TaskId),
    /// A message was delivered on a service created with a handler
    /// (§4.2.1): the kernel invokes the handler in the receiving task's
    /// context; control returns to the task when the handler replies.
    HandlerInvoked {
        /// The receiving task whose handler runs.
        server: TaskId,
        /// The handler tag given at service creation.
        handler: u32,
    },
    /// A reply addressed a task that no longer exists; it was dropped.
    ReplyDropped {
        /// The dead client's id.
        client: TaskId,
    },
    /// A [`Syscall::Wait`] completed (the awaited response had arrived).
    WaitComplete {
        /// The waiting client.
        client: TaskId,
    },
    /// Result of an [`Syscall::Inquire`].
    InquireResult {
        /// The polling task.
        task: TaskId,
        /// Whether any offered service has a message waiting.
        ready: bool,
    },
}

#[derive(Debug, Clone)]
struct RendezvousInfo {
    reply_to: ReplyTo,
    memory_ref: Option<crate::message::MemoryRef>,
    /// Client task when local (for memory moves).
    local_client: Option<TaskId>,
}

/// Cumulative kernel statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Messages sent (local + remote).
    pub sends: u64,
    /// Completed receives.
    pub deliveries: u64,
    /// Replies completed.
    pub replies: u64,
    /// Packets emitted.
    pub packets_out: u64,
    /// Packets consumed.
    pub packets_in: u64,
    /// Times a send blocked on buffer shortage.
    pub buffer_stalls: u64,
}

/// The per-node message kernel.
#[derive(Debug)]
pub struct Kernel {
    node: NodeId,
    tasks: Vec<Option<Task>>,
    services: Vec<Option<Service>>,
    buffers: Box<dyn BufferQueue>,
    /// Buffer held by each queued message (accounting).
    held_buffers: HashMap<(ServiceId, u64), BufferId>,
    queue_seq: u64,
    queue_ids: HashMap<ServiceId, VecDeque<u64>>,
    computation_list: Box<dyn SchedQueue>,
    communication_list: Box<dyn SchedQueue>,
    requests: HashMap<TaskId, Syscall>,
    rendezvous: HashMap<TaskId, RendezvousInfo>,
    /// Sends blocked on buffer shortage, retried as buffers free.
    resource_waiters: VecDeque<TaskId>,
    /// Incoming packets parked during buffer shortage.
    pending_packets: VecDeque<Packet>,
    /// Interrupt-handler activations parked during buffer shortage.
    pending_activations: VecDeque<(ServiceId, Message)>,
    /// Outstanding non-blocking remote invocations: true once the reply
    /// has arrived.
    completions: HashMap<TaskId, bool>,
    /// Clients stopped inside a `Wait`.
    waiting_wait: std::collections::HashSet<TaskId>,
    stats: KernelStats,
}

impl Kernel {
    /// Creates a kernel for `node` with `buffer_capacity` kernel buffers.
    pub fn new(node: NodeId, buffer_capacity: usize) -> Kernel {
        Kernel::with_queues(
            node,
            Box::new(BufferPool::new(buffer_capacity)),
            Box::new(PriorityList::default()),
            Box::new(PriorityList::default()),
        )
    }

    /// Creates a kernel whose buffer free list and scheduling lists are
    /// supplied by the caller — the live runtime passes queues backed by
    /// `smartmem`'s shared transactions so host and MP threads synchronize
    /// through real shared memory (Figures 4.4/4.5).
    pub fn with_queues(
        node: NodeId,
        buffers: Box<dyn BufferQueue>,
        computation: Box<dyn SchedQueue>,
        communication: Box<dyn SchedQueue>,
    ) -> Kernel {
        Kernel {
            node,
            tasks: Vec::new(),
            services: Vec::new(),
            buffers,
            held_buffers: HashMap::new(),
            queue_seq: 0,
            queue_ids: HashMap::new(),
            computation_list: computation,
            communication_list: communication,
            requests: HashMap::new(),
            rendezvous: HashMap::new(),
            resource_waiters: VecDeque::new(),
            pending_packets: VecDeque::new(),
            pending_activations: VecDeque::new(),
            completions: HashMap::new(),
            waiting_wait: std::collections::HashSet::new(),
            stats: KernelStats::default(),
        }
    }

    /// This kernel's node id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Statistics so far.
    pub fn stats(&self) -> KernelStats {
        self.stats
    }

    /// Creates a task; it starts on the computation list.
    pub fn create_task(&mut self, name: impl Into<String>, priority: u8, space: usize) -> TaskId {
        self.tasks.push(Some(Task::new(name, priority, space)));
        let id = TaskId(self.tasks.len() as u32 - 1);
        self.computation_list.push_back(id, priority);
        id
    }

    /// Creates a service.
    pub fn create_service(&mut self, name: impl Into<String>) -> ServiceId {
        self.services.push(Some(Service::new(name)));
        ServiceId(self.services.len() as u32 - 1)
    }

    /// Creates a service with a handler tag (§4.2.1): every delivery on it
    /// additionally raises [`KernelEvent::HandlerInvoked`], modeling the
    /// kernel invoking the task's handler with the message.
    pub fn create_service_with_handler(
        &mut self,
        name: impl Into<String>,
        handler: u32,
    ) -> ServiceId {
        let id = self.create_service(name);
        self.services[id.0 as usize]
            .as_mut()
            .expect("just created")
            .handler = Some(handler);
        id
    }

    /// Name of a service.
    ///
    /// # Errors
    ///
    /// [`KernelError::UnknownService`] for dead or never-created ids.
    pub fn service_name(&self, id: ServiceId) -> Result<&str, KernelError> {
        self.services
            .get(id.0 as usize)
            .and_then(Option::as_ref)
            .map(|s| s.name.as_str())
            .ok_or(KernelError::UnknownService(id))
    }

    /// Number of messages currently queued on a service.
    ///
    /// # Errors
    ///
    /// [`KernelError::UnknownService`] for dead or never-created ids.
    pub fn service_queue_len(&self, id: ServiceId) -> Result<usize, KernelError> {
        self.services
            .get(id.0 as usize)
            .and_then(Option::as_ref)
            .map(|s| s.messages.len())
            .ok_or(KernelError::UnknownService(id))
    }

    /// Immutable task lookup.
    ///
    /// # Errors
    ///
    /// [`KernelError::UnknownTask`] for dead or never-created ids.
    pub fn task(&self, id: TaskId) -> Result<&Task, KernelError> {
        self.tasks
            .get(id.0 as usize)
            .and_then(Option::as_ref)
            .ok_or(KernelError::UnknownTask(id))
    }

    fn task_mut(&mut self, id: TaskId) -> Result<&mut Task, KernelError> {
        self.tasks
            .get_mut(id.0 as usize)
            .and_then(Option::as_mut)
            .ok_or(KernelError::UnknownTask(id))
    }

    fn service_mut(&mut self, id: ServiceId) -> Result<&mut Service, KernelError> {
        self.services
            .get_mut(id.0 as usize)
            .and_then(Option::as_mut)
            .ok_or(KernelError::UnknownService(id))
    }

    /// Priority of a task (0 for a dead task, which only arises for entries
    /// being purged).
    fn priority_of(&self, task: TaskId) -> u8 {
        self.task(task).map(|t| t.priority).unwrap_or(0)
    }

    /// Host side: the task issues a communication request and moves to the
    /// communication list (Figure 4.4).
    ///
    /// # Errors
    ///
    /// [`KernelError::UnknownTask`] or [`KernelError::RequestOutstanding`].
    pub fn submit(&mut self, task: TaskId, request: Syscall) -> Result<(), KernelError> {
        self.place_request(task, request)?;
        let p = self.priority_of(task);
        self.communication_list.insert_by_priority(task, p);
        Ok(())
    }

    /// Records a task's pending request and marks it communicating
    /// *without* touching the communication list. The live runtime's host
    /// threads enqueue the TCB on the shared communication queue themselves
    /// (the §4.4 host side of Figure 4.4); the MP pops the queue and calls
    /// this before [`Kernel::process`].
    ///
    /// # Errors
    ///
    /// [`KernelError::UnknownTask`] or [`KernelError::RequestOutstanding`].
    pub fn place_request(&mut self, task: TaskId, request: Syscall) -> Result<(), KernelError> {
        if self.requests.contains_key(&task) {
            return Err(KernelError::RequestOutstanding(task));
        }
        let t = self.task_mut(task)?;
        t.state = TaskState::Communicating;
        self.requests.insert(task, request);
        Ok(())
    }

    /// MP side: first task of the communication list, if any (Figure 4.5).
    pub fn next_communication(&mut self) -> Option<TaskId> {
        self.communication_list.pop_front()
    }

    /// The request a task has pending (for cost attribution by simulators).
    pub fn pending_request(&self, task: TaskId) -> Option<&Syscall> {
        self.requests.get(&task)
    }

    /// Whether `task` is a server currently inside a rendezvous (received a
    /// remote-invocation message it has not yet replied to).
    pub fn in_rendezvous(&self, task: TaskId) -> bool {
        self.rendezvous.contains_key(&task)
    }

    /// Whether the rendezvous partner of server `task` is local to this
    /// node; `None` when the task is not in a rendezvous.
    pub fn rendezvous_is_local(&self, task: TaskId) -> Option<bool> {
        self.rendezvous
            .get(&task)
            .map(|info| matches!(info.reply_to, ReplyTo::Local(_)))
    }

    /// Whether communication work is pending.
    pub fn communication_pending(&self) -> bool {
        !self.communication_list.is_empty()
    }

    /// Host side: first task of the computation list, if any.
    pub fn next_computation(&mut self) -> Option<TaskId> {
        self.computation_list.pop_front()
    }

    /// Whether computation work is pending.
    pub fn computation_pending(&self) -> bool {
        !self.computation_list.is_empty()
    }

    /// Host side: put a still-runnable task back on the computation list.
    ///
    /// # Errors
    ///
    /// [`KernelError::UnknownTask`] for a dead task.
    pub fn push_computation(&mut self, task: TaskId) -> Result<(), KernelError> {
        self.task(task)?;
        let p = self.priority_of(task);
        self.computation_list.push_back(task, p);
        Ok(())
    }

    fn make_runnable(&mut self, task: TaskId, events: &mut Vec<KernelEvent>) {
        if let Ok(t) = self.task_mut(task) {
            t.state = TaskState::Computing;
        }
        let p = self.priority_of(task);
        self.computation_list.insert_by_priority(task, p);
        events.push(KernelEvent::Runnable(task));
    }

    fn stop(&mut self, task: TaskId, events: &mut Vec<KernelEvent>) {
        if let Ok(t) = self.task_mut(task) {
            t.state = TaskState::Stopped;
        }
        events.push(KernelEvent::Stopped(task));
    }

    /// MP side: execute `task`'s pending communication request. Returns the
    /// events produced (scheduling changes, packets to transmit).
    ///
    /// # Errors
    ///
    /// Validity-check failures per [`KernelError`]; the request is consumed
    /// either way (the paper's kernels reflect errors to the caller).
    pub fn process(&mut self, task: TaskId) -> Result<Vec<KernelEvent>, KernelError> {
        let request = self
            .requests
            .remove(&task)
            .ok_or(KernelError::UnknownTask(task))?;
        let mut events = Vec::new();
        match request {
            Syscall::Send { to, message, mode } => {
                self.do_send(task, to, message, mode, &mut events)?;
            }
            Syscall::Wait => self.do_wait(task, &mut events)?,
            Syscall::Receive => self.do_receive(task, &mut events)?,
            Syscall::Reply { message } => self.do_reply(task, message, &mut events)?,
            Syscall::Offer { service } => {
                self.service_mut(service)?;
                let t = self.task_mut(task)?;
                if t.offers.contains(&service) {
                    return Err(KernelError::DuplicateOffer { task, service });
                }
                t.offers.push(service);
                self.make_runnable(task, &mut events);
            }
            Syscall::Inquire => {
                let offers = self.task(task)?.offers.clone();
                if offers.is_empty() {
                    return Err(KernelError::NoOffers(task));
                }
                let ready = offers.iter().any(|&s| {
                    self.services
                        .get(s.0 as usize)
                        .and_then(Option::as_ref)
                        .is_some_and(|svc| !svc.messages.is_empty())
                });
                events.push(KernelEvent::InquireResult { task, ready });
                self.make_runnable(task, &mut events);
            }
            Syscall::MemoryMove {
                direction,
                local_offset,
                length,
            } => {
                self.do_memory_move(task, direction, local_offset, length)?;
                self.make_runnable(task, &mut events);
            }
        }
        Ok(events)
    }

    /// Post-send scheduling: a blocking invocation stops the client; a
    /// non-blocking one registers an outstanding completion; no-wait just
    /// continues.
    fn after_send(&mut self, client: TaskId, mode: SendMode, events: &mut Vec<KernelEvent>) {
        match mode {
            SendMode::RemoteInvocation { blocking: true } => self.stop(client, events),
            SendMode::RemoteInvocation { blocking: false } => {
                self.completions.insert(client, false);
                self.make_runnable(client, events);
            }
            SendMode::NoWait => self.make_runnable(client, events),
        }
    }

    fn do_send(
        &mut self,
        client: TaskId,
        to: ServiceAddr,
        message: Message,
        mode: SendMode,
        events: &mut Vec<KernelEvent>,
    ) -> Result<(), KernelError> {
        self.task(client)?;
        let await_reply = mode.awaits_reply();
        if to.node != self.node {
            // Non-local: one packet mirroring the send call.
            self.stats.sends += 1;
            self.stats.packets_out += 1;
            events.push(KernelEvent::PacketOut(Packet {
                from: self.node,
                to: to.node,
                body: PacketBody::SendMsg {
                    service: to.service,
                    client,
                    message,
                    await_reply,
                },
            }));
            self.after_send(client, mode, events);
            return Ok(());
        }

        let reply_to = await_reply.then_some(ReplyTo::Local(client));
        match self.deliver_to_service(to.service, message, reply_to, events)? {
            Delivery::Direct | Delivery::Queued => {
                self.stats.sends += 1;
                self.after_send(client, mode, events);
            }
            Delivery::NoBuffer => {
                // Block the client on the resource; retry when a buffer
                // frees (§3.2.3).
                self.stats.buffer_stalls += 1;
                self.requests
                    .insert(client, Syscall::Send { to, message, mode });
                self.resource_waiters.push_back(client);
                events.push(KernelEvent::BufferShortage(client));
                self.stop(client, events);
            }
        }
        Ok(())
    }

    /// `Wait` (§4.2.1): returns immediately when the awaited response has
    /// already arrived; otherwise the client stops until it does.
    fn do_wait(
        &mut self,
        client: TaskId,
        events: &mut Vec<KernelEvent>,
    ) -> Result<(), KernelError> {
        match self.completions.get(&client).copied() {
            Some(true) => {
                self.completions.remove(&client);
                events.push(KernelEvent::WaitComplete { client });
                self.make_runnable(client, events);
            }
            Some(false) => {
                self.waiting_wait.insert(client);
                self.stop(client, events);
            }
            None => return Err(KernelError::NoRendezvous(client)),
        }
        Ok(())
    }

    fn do_receive(
        &mut self,
        server: TaskId,
        events: &mut Vec<KernelEvent>,
    ) -> Result<(), KernelError> {
        let offers = self.task(server)?.offers.clone();
        if offers.is_empty() {
            return Err(KernelError::NoOffers(server));
        }
        // First waiting message across the offered services, in offer order.
        for &sid in &offers {
            let has = self
                .services
                .get(sid.0 as usize)
                .and_then(Option::as_ref)
                .is_some_and(|s| !s.messages.is_empty());
            if has {
                self.deliver_first(sid, server, events)?;
                return Ok(());
            }
        }
        // Nothing waiting: park on every offered service.
        for &sid in &offers {
            let svc = self.service_mut(sid)?;
            if !svc.waiting_servers.contains(&server) {
                svc.waiting_servers.push_back(server);
            }
        }
        self.stop(server, events);
        Ok(())
    }

    fn deliver_first(
        &mut self,
        sid: ServiceId,
        server: TaskId,
        events: &mut Vec<KernelEvent>,
    ) -> Result<(), KernelError> {
        let qm = {
            let svc = self.service_mut(sid)?;
            svc.messages.pop_front().expect("caller checked non-empty")
        };
        // Release the buffer the queued message held.
        if let Some(seq) = self.queue_ids.get_mut(&sid).and_then(|q| q.pop_front()) {
            if let Some(buf) = self.held_buffers.remove(&(sid, seq)) {
                self.buffers.release(buf);
            }
        }
        // The server leaves every waiting list it is on.
        for svc in self.services.iter_mut().flatten() {
            svc.waiting_servers.retain(|&t| t != server);
        }
        let local_client = match qm.reply_to {
            Some(ReplyTo::Local(c)) => Some(c),
            _ => None,
        };
        if let Some(rt) = qm.reply_to {
            self.rendezvous.insert(
                server,
                RendezvousInfo {
                    reply_to: rt,
                    memory_ref: qm.message.memory_ref,
                    local_client,
                },
            );
        }
        self.task_mut(server)?.delivered = Some(qm.message);
        self.stats.deliveries += 1;
        events.push(KernelEvent::Delivered { server });
        if let Some(h) = self
            .services
            .get(sid.0 as usize)
            .and_then(Option::as_ref)
            .and_then(|s| s.handler)
        {
            events.push(KernelEvent::HandlerInvoked { server, handler: h });
        }
        self.make_runnable(server, events);
        // A freed buffer may unblock a stalled send.
        self.retry_stalled(events)?;
        Ok(())
    }

    fn retry_stalled(&mut self, events: &mut Vec<KernelEvent>) -> Result<(), KernelError> {
        // Park the current waiters; re-submitting puts them at the front of
        // the communication list so they retry before new work.
        while self.buffers.available() > 0 {
            // Prefer parked packets (network data must drain first to avoid
            // overrun), then parked interrupt activations, then blocked
            // sends.
            if let Some(packet) = self.pending_packets.pop_front() {
                let evs = self.handle_packet(packet)?;
                events.extend(evs);
                continue;
            }
            if let Some((service, message)) = self.pending_activations.pop_front() {
                let evs = self.activate(service, message)?;
                events.extend(evs);
                continue;
            }
            let Some(task) = self.resource_waiters.pop_front() else {
                break;
            };
            let p = self.priority_of(task);
            self.communication_list.push_front(task, p);
            if let Ok(t) = self.task_mut(task) {
                t.state = TaskState::Communicating;
            }
            break;
        }
        Ok(())
    }

    fn do_reply(
        &mut self,
        server: TaskId,
        message: Message,
        events: &mut Vec<KernelEvent>,
    ) -> Result<(), KernelError> {
        let info = self
            .rendezvous
            .remove(&server)
            .ok_or(KernelError::NoRendezvous(server))?;
        self.stats.replies += 1;
        match info.reply_to {
            ReplyTo::Local(client) => {
                self.deliver_reply(client, message, events);
            }
            ReplyTo::Remote { node, task } => {
                self.stats.packets_out += 1;
                events.push(KernelEvent::PacketOut(Packet {
                    from: self.node,
                    to: node,
                    body: PacketBody::ReplyMsg {
                        client: task,
                        message,
                    },
                }));
            }
        }
        // The server continues computing; it has lost all access rights to
        // the enclosed memory reference (§4.2.1).
        self.make_runnable(server, events);
        Ok(())
    }

    fn do_memory_move(
        &mut self,
        server: TaskId,
        direction: MoveDirection,
        local_offset: u32,
        length: u32,
    ) -> Result<(), KernelError> {
        let info = self
            .rendezvous
            .get(&server)
            .ok_or(KernelError::NoRendezvous(server))?
            .clone();
        let mref = info.memory_ref.ok_or(KernelError::AccessViolation {
            task: server,
            reason: "message enclosed no memory reference",
        })?;
        let client = info.local_client.ok_or(KernelError::AccessViolation {
            task: server,
            reason: "memory reference belongs to a remote client",
        })?;
        if length > mref.length {
            return Err(KernelError::AccessViolation {
                task: server,
                reason: "move exceeds granted segment",
            });
        }
        match direction {
            MoveDirection::FromClient if !mref.rights.read => {
                return Err(KernelError::AccessViolation {
                    task: server,
                    reason: "no read right",
                });
            }
            MoveDirection::ToClient if !mref.rights.write => {
                return Err(KernelError::AccessViolation {
                    task: server,
                    reason: "no write right",
                });
            }
            _ => {}
        }
        let (c_off, s_off, len) = (mref.offset as usize, local_offset as usize, length as usize);
        // Bounds checks against both address spaces.
        let c_len = self.task(client)?.address_space.len();
        let s_len = self.task(server)?.address_space.len();
        if c_off + len > c_len || s_off + len > s_len {
            return Err(KernelError::AccessViolation {
                task: server,
                reason: "segment outside address space",
            });
        }
        // Copy via a scratch buffer: the borrows are on two distinct tasks
        // but the checker cannot know that.
        match direction {
            MoveDirection::FromClient => {
                let data = self.task(client)?.address_space[c_off..c_off + len].to_vec();
                self.task_mut(server)?.address_space[s_off..s_off + len].copy_from_slice(&data);
            }
            MoveDirection::ToClient => {
                let data = self.task(server)?.address_space[s_off..s_off + len].to_vec();
                self.task_mut(client)?.address_space[c_off..c_off + len].copy_from_slice(&data);
            }
        }
        Ok(())
    }

    /// Delivers a reply to a client, honoring the non-blocking-send
    /// protocol and tolerating clients that died while waiting.
    fn deliver_reply(&mut self, client: TaskId, message: Message, events: &mut Vec<KernelEvent>) {
        let Ok(task) = self.task_mut(client) else {
            events.push(KernelEvent::ReplyDropped { client });
            return;
        };
        task.delivered = Some(message);
        events.push(KernelEvent::ReplyDelivered { client });
        if let Some(done) = self.completions.get_mut(&client) {
            *done = true;
            if self.waiting_wait.remove(&client) {
                self.completions.remove(&client);
                events.push(KernelEvent::WaitComplete { client });
                self.make_runnable(client, events);
            }
            // A non-waiting, non-blocking client keeps running; nothing to
            // schedule.
        } else {
            self.make_runnable(client, events);
        }
    }

    fn deliver_to_service(
        &mut self,
        sid: ServiceId,
        message: Message,
        reply_to: Option<ReplyTo>,
        events: &mut Vec<KernelEvent>,
    ) -> Result<Delivery, KernelError> {
        let waiting = {
            let svc = self.service_mut(sid)?;
            svc.waiting_servers.pop_front()
        };
        if let Some(server) = waiting {
            // Direct rendezvous: the message passes through a kernel buffer
            // momentarily; account for it without leaving it held.
            let Some(buf) = self.buffers.acquire() else {
                // Put the server back and report shortage.
                self.service_mut(sid)?.waiting_servers.push_front(server);
                return Ok(Delivery::NoBuffer);
            };
            self.buffers.release(buf);
            for svc in self.services.iter_mut().flatten() {
                svc.waiting_servers.retain(|&t| t != server);
            }
            let local_client = match reply_to {
                Some(ReplyTo::Local(c)) => Some(c),
                _ => None,
            };
            if let Some(rt) = reply_to {
                self.rendezvous.insert(
                    server,
                    RendezvousInfo {
                        reply_to: rt,
                        memory_ref: message.memory_ref,
                        local_client,
                    },
                );
            }
            self.task_mut(server)?.delivered = Some(message);
            self.stats.deliveries += 1;
            events.push(KernelEvent::Delivered { server });
            if let Some(h) = self
                .services
                .get(sid.0 as usize)
                .and_then(Option::as_ref)
                .and_then(|s| s.handler)
            {
                events.push(KernelEvent::HandlerInvoked { server, handler: h });
            }
            self.make_runnable(server, events);
            Ok(Delivery::Direct)
        } else {
            let Some(buf) = self.buffers.acquire() else {
                return Ok(Delivery::NoBuffer);
            };
            let seq = self.queue_seq;
            self.queue_seq += 1;
            self.held_buffers.insert((sid, seq), buf);
            self.queue_ids.entry(sid).or_default().push_back(seq);
            let svc = self.service_mut(sid)?;
            svc.messages.push_back(QueuedMessage { message, reply_to });
            Ok(Delivery::Queued)
        }
    }

    /// MP side: handle an arriving network packet (the network interrupt
    /// path of Figure 4.5).
    ///
    /// # Errors
    ///
    /// [`KernelError::BadPacket`] for misrouted packets; service/task
    /// validity errors otherwise.
    pub fn handle_packet(&mut self, packet: Packet) -> Result<Vec<KernelEvent>, KernelError> {
        if packet.to != self.node {
            return Err(KernelError::BadPacket("packet routed to wrong node"));
        }
        let mut events = Vec::new();
        self.stats.packets_in += 1;
        match packet.body {
            PacketBody::SendMsg {
                service,
                client,
                message,
                await_reply,
            } => {
                let reply_to = await_reply.then_some(ReplyTo::Remote {
                    node: packet.from,
                    task: client,
                });
                match self.deliver_to_service(service, message, reply_to, &mut events)? {
                    Delivery::Direct | Delivery::Queued => {}
                    Delivery::NoBuffer => {
                        // Park the packet until a buffer frees: the network
                        // interface's receive buffering absorbs the burst.
                        self.stats.packets_in -= 1;
                        self.pending_packets.push_back(Packet {
                            from: packet.from,
                            to: packet.to,
                            body: PacketBody::SendMsg {
                                service,
                                client,
                                message,
                                await_reply,
                            },
                        });
                    }
                }
            }
            PacketBody::ReplyMsg { client, message } => {
                self.deliver_reply(client, message, &mut events);
            }
        }
        Ok(events)
    }

    /// Kernel buffers currently free.
    pub fn buffers_available(&self) -> usize {
        self.buffers.available()
    }

    /// `activate` (§4.2.2): the one system call permitted inside an
    /// interrupt handler. Sends `message` to an "interrupt service" without
    /// a task context — the device driver task posts a `Receive` on that
    /// service to pick up the non-time-critical part of interrupt handling.
    ///
    /// # Errors
    ///
    /// [`KernelError::UnknownService`] for a dead service.
    pub fn activate(
        &mut self,
        service: ServiceId,
        message: Message,
    ) -> Result<Vec<KernelEvent>, KernelError> {
        let mut events = Vec::new();
        match self.deliver_to_service(service, message, None, &mut events)? {
            Delivery::Direct | Delivery::Queued => {
                self.stats.sends += 1;
            }
            Delivery::NoBuffer => {
                // Interrupt data must not be lost: park the activation
                // until a buffer frees.
                self.stats.buffer_stalls += 1;
                self.pending_activations.push_back((service, message));
            }
        }
        Ok(events)
    }

    /// Destroys a task: removes it from every kernel list and frees its
    /// control block (the paper's §5.1 task-death path: the freed TCB goes
    /// back on the free list, a killed task is dequeued from the
    /// computation list).
    ///
    /// A server killed mid-rendezvous leaves its local client runnable with
    /// no reply (the reply is lost); a reply later addressed to a destroyed
    /// client is dropped with a [`KernelEvent::ReplyDropped`].
    ///
    /// # Errors
    ///
    /// [`KernelError::UnknownTask`] if the task is already dead.
    pub fn destroy_task(&mut self, task: TaskId) -> Result<Vec<KernelEvent>, KernelError> {
        self.task(task)?;
        let mut events = Vec::new();
        // Off both scheduling lists (the Dequeue primitive's job in §5.1).
        self.computation_list.remove(task);
        self.communication_list.remove(task);
        self.resource_waiters.retain(|&t| t != task);
        self.requests.remove(&task);
        self.completions.remove(&task);
        self.waiting_wait.remove(&task);
        // Off every service's waiting-server list.
        for svc in self.services.iter_mut().flatten() {
            svc.waiting_servers.retain(|&t| t != task);
        }
        // A dying server releases its rendezvous: the local client would
        // otherwise hang forever.
        if let Some(info) = self.rendezvous.remove(&task) {
            if let ReplyTo::Local(client) = info.reply_to {
                events.push(KernelEvent::ReplyDropped { client });
                self.make_runnable(client, &mut events);
            }
        }
        self.tasks[task.0 as usize] = None;
        Ok(events)
    }

    /// Loads bytes into a task's address space — the program/data loading a
    /// real kernel performs at task creation.
    ///
    /// # Errors
    ///
    /// [`KernelError::UnknownTask`] for a dead task, or
    /// [`KernelError::AccessViolation`] if the range exceeds the task's
    /// address space.
    pub fn load_address_space(
        &mut self,
        task: TaskId,
        offset: usize,
        data: &[u8],
    ) -> Result<(), KernelError> {
        let t = self.task_mut(task)?;
        let end = offset + data.len();
        if end > t.address_space.len() {
            return Err(KernelError::AccessViolation {
                task,
                reason: "segment outside address space",
            });
        }
        t.address_space[offset..end].copy_from_slice(data);
        Ok(())
    }

    /// Direct mutable access to a task — test-only backdoor for seeding
    /// address spaces.
    #[cfg(test)]
    pub(crate) fn task_mut_for_tests(&mut self, id: TaskId) -> &mut Task {
        self.task_mut(id).expect("live task")
    }
}

/// Internal delivery outcome.
enum Delivery {
    /// Handed straight to a waiting server.
    Direct,
    /// Queued on the service (holds a kernel buffer).
    Queued,
    /// No kernel buffer free.
    NoBuffer,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{AccessRights, MemoryRef};

    fn kernel() -> Kernel {
        Kernel::new(NodeId(0), 8)
    }

    /// Drains the MP side: process every pending communication request and
    /// return all events.
    fn drain(k: &mut Kernel) -> Vec<KernelEvent> {
        let mut events = Vec::new();
        while let Some(t) = k.next_communication() {
            events.extend(k.process(t).unwrap());
        }
        events
    }

    fn addr(k: &Kernel, s: ServiceId) -> ServiceAddr {
        ServiceAddr {
            node: k.node(),
            service: s,
        }
    }

    #[test]
    fn blocking_remote_invocation_rendezvous() {
        // The §4.5 scenario: client send; server receive; match; reply.
        let mut k = kernel();
        let client = k.create_task("client", 1, 64);
        let server = k.create_task("server", 1, 64);
        let svc = k.create_service("echo");
        k.submit(server, Syscall::Offer { service: svc }).unwrap();
        drain(&mut k);
        // Server posts receive first: it stops.
        k.submit(server, Syscall::Receive).unwrap();
        drain(&mut k);
        assert_eq!(k.task(server).unwrap().state, TaskState::Stopped);

        // Client sends: rendezvous, server runnable with the message,
        // client stopped awaiting reply.
        let msg = Message::from_bytes(b"ping");
        k.submit(
            client,
            Syscall::Send {
                to: addr(&k, svc),
                message: msg,
                mode: SendMode::invocation(),
            },
        )
        .unwrap();
        let events = drain(&mut k);
        assert!(events
            .iter()
            .any(|e| matches!(e, KernelEvent::Delivered { server: s } if *s == server)));
        assert_eq!(k.task(client).unwrap().state, TaskState::Stopped);
        assert_eq!(k.task(server).unwrap().state, TaskState::Computing);
        assert_eq!(
            &k.task(server).unwrap().delivered.unwrap().data[..4],
            b"ping"
        );

        // Server replies: client runnable with the reply.
        k.submit(
            server,
            Syscall::Reply {
                message: Message::from_bytes(b"pong"),
            },
        )
        .unwrap();
        let events = drain(&mut k);
        assert!(events
            .iter()
            .any(|e| matches!(e, KernelEvent::ReplyDelivered { client: c } if *c == client)));
        assert_eq!(k.task(client).unwrap().state, TaskState::Computing);
        assert_eq!(
            &k.task(client).unwrap().delivered.unwrap().data[..4],
            b"pong"
        );
    }

    #[test]
    fn send_before_receive_queues_message() {
        let mut k = kernel();
        let client = k.create_task("client", 1, 64);
        let server = k.create_task("server", 1, 64);
        let svc = k.create_service("s");
        k.submit(server, Syscall::Offer { service: svc }).unwrap();
        drain(&mut k);
        k.submit(
            client,
            Syscall::Send {
                to: addr(&k, svc),
                message: Message::from_bytes(b"x"),
                mode: SendMode::invocation(),
            },
        )
        .unwrap();
        drain(&mut k);
        // One buffer held by the queued message.
        assert_eq!(k.buffers_available(), 7);
        k.submit(server, Syscall::Receive).unwrap();
        let events = drain(&mut k);
        assert!(events
            .iter()
            .any(|e| matches!(e, KernelEvent::Delivered { .. })));
        // Buffer released on delivery.
        assert_eq!(k.buffers_available(), 8);
    }

    #[test]
    fn no_wait_send_does_not_block_client() {
        let mut k = kernel();
        let client = k.create_task("client", 1, 64);
        let svc = k.create_service("log");
        k.submit(
            client,
            Syscall::Send {
                to: addr(&k, svc),
                message: Message::empty(),
                mode: SendMode::NoWait,
            },
        )
        .unwrap();
        drain(&mut k);
        assert_eq!(k.task(client).unwrap().state, TaskState::Computing);
    }

    #[test]
    fn buffer_exhaustion_blocks_sender_and_retries() {
        let mut k = Kernel::new(NodeId(0), 1);
        let c1 = k.create_task("c1", 1, 64);
        let c2 = k.create_task("c2", 1, 64);
        let server = k.create_task("server", 1, 64);
        let svc = k.create_service("s");
        k.submit(server, Syscall::Offer { service: svc }).unwrap();
        drain(&mut k);
        // Two queued sends with one buffer: the second stalls.
        k.submit(
            c1,
            Syscall::Send {
                to: addr(&k, svc),
                message: Message::empty(),
                mode: SendMode::invocation(),
            },
        )
        .unwrap();
        k.submit(
            c2,
            Syscall::Send {
                to: addr(&k, svc),
                message: Message::empty(),
                mode: SendMode::invocation(),
            },
        )
        .unwrap();
        let events = drain(&mut k);
        assert!(events
            .iter()
            .any(|e| matches!(e, KernelEvent::BufferShortage(t) if *t == c2)));
        assert_eq!(k.stats().buffer_stalls, 1);
        // Server receives c1's message: buffer frees, c2's send retries.
        k.submit(server, Syscall::Receive).unwrap();
        drain(&mut k);
        // c2's message is now queued on the service.
        assert_eq!(k.buffers_available(), 0);
        k.submit(
            server,
            Syscall::Reply {
                message: Message::empty(),
            },
        )
        .unwrap();
        drain(&mut k);
        k.submit(server, Syscall::Receive).unwrap();
        let events = drain(&mut k);
        assert!(events
            .iter()
            .any(|e| matches!(e, KernelEvent::Delivered { .. })));
    }

    #[test]
    fn remote_send_emits_mirroring_packet() {
        let mut k = kernel();
        let client = k.create_task("client", 1, 64);
        let remote = ServiceAddr {
            node: NodeId(1),
            service: ServiceId(0),
        };
        k.submit(
            client,
            Syscall::Send {
                to: remote,
                message: Message::from_bytes(b"hi"),
                mode: SendMode::invocation(),
            },
        )
        .unwrap();
        let events = drain(&mut k);
        let packet = events.iter().find_map(|e| match e {
            KernelEvent::PacketOut(p) => Some(p.clone()),
            _ => None,
        });
        let p = packet.expect("send packet");
        assert_eq!(p.from, NodeId(0));
        assert_eq!(p.to, NodeId(1));
        assert!(matches!(
            p.body,
            PacketBody::SendMsg {
                await_reply: true,
                ..
            }
        ));
        assert_eq!(k.task(client).unwrap().state, TaskState::Stopped);
    }

    #[test]
    fn full_cross_node_round_trip() {
        // Two kernels joined by hand-carried packets: exactly two packets
        // per round trip (§4.6).
        let mut a = Kernel::new(NodeId(0), 8);
        let mut b = Kernel::new(NodeId(1), 8);
        let client = a.create_task("client", 1, 64);
        let server = b.create_task("server", 1, 64);
        let svc = b.create_service("remote-svc");
        b.submit(server, Syscall::Offer { service: svc }).unwrap();
        drain(&mut b);
        b.submit(server, Syscall::Receive).unwrap();
        drain(&mut b);

        a.submit(
            client,
            Syscall::Send {
                to: ServiceAddr {
                    node: NodeId(1),
                    service: svc,
                },
                message: Message::from_bytes(b"req"),
                mode: SendMode::invocation(),
            },
        )
        .unwrap();
        let events = drain(&mut a);
        let send_packet = events
            .iter()
            .find_map(|e| match e {
                KernelEvent::PacketOut(p) => Some(p.clone()),
                _ => None,
            })
            .unwrap();

        let events = b.handle_packet(send_packet).unwrap();
        assert!(events
            .iter()
            .any(|e| matches!(e, KernelEvent::Delivered { .. })));
        b.submit(
            server,
            Syscall::Reply {
                message: Message::from_bytes(b"rsp"),
            },
        )
        .unwrap();
        let events = drain(&mut b);
        let reply_packet = events
            .iter()
            .find_map(|e| match e {
                KernelEvent::PacketOut(p) => Some(p.clone()),
                _ => None,
            })
            .unwrap();
        assert!(matches!(reply_packet.body, PacketBody::ReplyMsg { .. }));

        let events = a.handle_packet(reply_packet).unwrap();
        assert!(events
            .iter()
            .any(|e| matches!(e, KernelEvent::ReplyDelivered { client: c } if *c == client)));
        assert_eq!(
            &a.task(client).unwrap().delivered.unwrap().data[..3],
            b"rsp"
        );
        assert_eq!(a.stats().packets_out, 1);
        assert_eq!(a.stats().packets_in, 1);
        assert_eq!(b.stats().packets_out, 1);
        assert_eq!(b.stats().packets_in, 1);
    }

    #[test]
    fn memory_move_editor_file_server_scenario() {
        // Figure 4.2: the editor sends a memory reference; the file server
        // writes a page into the editor's buffer and replies.
        let mut k = kernel();
        let editor = k.create_task("editor", 1, 4096);
        let file_server = k.create_task("file-server", 1, 4096);
        let svc = k.create_service("files");
        k.submit(file_server, Syscall::Offer { service: svc })
            .unwrap();
        drain(&mut k);
        k.submit(file_server, Syscall::Receive).unwrap();
        drain(&mut k);

        // Pretend the file server has the page at offset 0.
        k.task_mut_for_tests(file_server).address_space[..4].copy_from_slice(b"page");

        let msg = Message::from_bytes(b"read block 7").with_memory_ref(MemoryRef {
            offset: 100,
            length: 512,
            rights: AccessRights::read_write(),
        });
        k.submit(
            editor,
            Syscall::Send {
                to: addr(&k, svc),
                message: msg,
                mode: SendMode::invocation(),
            },
        )
        .unwrap();
        drain(&mut k);

        k.submit(
            file_server,
            Syscall::MemoryMove {
                direction: MoveDirection::ToClient,
                local_offset: 0,
                length: 512,
            },
        )
        .unwrap();
        drain(&mut k);
        assert_eq!(&k.task(editor).unwrap().address_space[100..104], b"page");

        k.submit(
            file_server,
            Syscall::Reply {
                message: Message::empty(),
            },
        )
        .unwrap();
        drain(&mut k);
        assert_eq!(k.task(editor).unwrap().state, TaskState::Computing);
        // Rights are gone after the reply.
        k.submit(
            file_server,
            Syscall::MemoryMove {
                direction: MoveDirection::ToClient,
                local_offset: 0,
                length: 4,
            },
        )
        .unwrap();
        let t = k.next_communication().unwrap();
        let err = k.process(t).unwrap_err();
        assert!(matches!(err, KernelError::NoRendezvous(_)));
    }

    #[test]
    fn memory_move_rights_enforced() {
        let mut k = kernel();
        let client = k.create_task("client", 1, 256);
        let server = k.create_task("server", 1, 256);
        let svc = k.create_service("s");
        k.submit(server, Syscall::Offer { service: svc }).unwrap();
        drain(&mut k);
        k.submit(server, Syscall::Receive).unwrap();
        drain(&mut k);
        let msg = Message::empty().with_memory_ref(MemoryRef {
            offset: 0,
            length: 16,
            rights: AccessRights::read_only(),
        });
        k.submit(
            client,
            Syscall::Send {
                to: addr(&k, svc),
                message: msg,
                mode: SendMode::invocation(),
            },
        )
        .unwrap();
        drain(&mut k);
        // Write into a read-only segment is refused.
        k.submit(
            server,
            Syscall::MemoryMove {
                direction: MoveDirection::ToClient,
                local_offset: 0,
                length: 8,
            },
        )
        .unwrap();
        let t = k.next_communication().unwrap();
        let err = k.process(t).unwrap_err();
        assert!(matches!(
            err,
            KernelError::AccessViolation {
                reason: "no write right",
                ..
            }
        ));
        // Over-length move is refused.
        k.submit(
            server,
            Syscall::MemoryMove {
                direction: MoveDirection::FromClient,
                local_offset: 0,
                length: 32,
            },
        )
        .unwrap();
        let t = k.next_communication().unwrap();
        let err = k.process(t).unwrap_err();
        assert!(matches!(
            err,
            KernelError::AccessViolation {
                reason: "move exceeds granted segment",
                ..
            }
        ));
    }

    #[test]
    fn inquire_polls_offered_services() {
        let mut k = kernel();
        let client = k.create_task("client", 1, 64);
        let server = k.create_task("server", 1, 64);
        let svc = k.create_service("s");
        k.submit(server, Syscall::Offer { service: svc }).unwrap();
        drain(&mut k);
        k.submit(server, Syscall::Inquire).unwrap();
        let events = drain(&mut k);
        assert!(events
            .iter()
            .any(|e| matches!(e, KernelEvent::InquireResult { ready: false, .. })));
        k.submit(
            client,
            Syscall::Send {
                to: addr(&k, svc),
                message: Message::empty(),
                mode: SendMode::NoWait,
            },
        )
        .unwrap();
        drain(&mut k);
        k.submit(server, Syscall::Inquire).unwrap();
        let events = drain(&mut k);
        assert!(events
            .iter()
            .any(|e| matches!(e, KernelEvent::InquireResult { ready: true, .. })));
    }

    #[test]
    fn receive_without_offers_is_an_error() {
        let mut k = kernel();
        let t = k.create_task("t", 1, 64);
        k.submit(t, Syscall::Receive).unwrap();
        let id = k.next_communication().unwrap();
        assert_eq!(k.process(id).unwrap_err(), KernelError::NoOffers(t));
    }

    #[test]
    fn double_submission_rejected() {
        let mut k = kernel();
        let t = k.create_task("t", 1, 64);
        k.submit(t, Syscall::Inquire).unwrap();
        assert_eq!(
            k.submit(t, Syscall::Inquire).unwrap_err(),
            KernelError::RequestOutstanding(t)
        );
    }

    #[test]
    fn misrouted_packet_rejected() {
        let mut k = kernel();
        let p = Packet {
            from: NodeId(2),
            to: NodeId(9),
            body: PacketBody::ReplyMsg {
                client: TaskId(0),
                message: Message::empty(),
            },
        };
        assert!(matches!(k.handle_packet(p), Err(KernelError::BadPacket(_))));
    }

    #[test]
    fn non_blocking_send_then_wait() {
        // §4.2.1: a non-blocking remote-invocation send lets the client
        // continue; a later Wait picks up the response.
        let mut k = kernel();
        let client = k.create_task("client", 1, 64);
        let server = k.create_task("server", 1, 64);
        let svc = k.create_service("s");
        k.submit(server, Syscall::Offer { service: svc }).unwrap();
        drain(&mut k);
        k.submit(server, Syscall::Receive).unwrap();
        drain(&mut k);
        k.submit(
            client,
            Syscall::Send {
                to: addr(&k, svc),
                message: Message::from_bytes(b"nb"),
                mode: SendMode::RemoteInvocation { blocking: false },
            },
        )
        .unwrap();
        drain(&mut k);
        // The client keeps computing rather than stopping.
        assert_eq!(k.task(client).unwrap().state, TaskState::Computing);

        // Server replies while the client is still "computing".
        k.submit(
            server,
            Syscall::Reply {
                message: Message::from_bytes(b"rsp"),
            },
        )
        .unwrap();
        drain(&mut k);
        assert_eq!(k.task(client).unwrap().state, TaskState::Computing);

        // Wait returns immediately: the response already arrived.
        k.submit(client, Syscall::Wait).unwrap();
        let events = drain(&mut k);
        assert!(events
            .iter()
            .any(|e| matches!(e, KernelEvent::WaitComplete { client: c } if *c == client)));
        assert_eq!(
            &k.task(client).unwrap().delivered.unwrap().data[..3],
            b"rsp"
        );
    }

    #[test]
    fn wait_blocks_until_reply() {
        let mut k = kernel();
        let client = k.create_task("client", 1, 64);
        let server = k.create_task("server", 1, 64);
        let svc = k.create_service("s");
        k.submit(server, Syscall::Offer { service: svc }).unwrap();
        drain(&mut k);
        k.submit(server, Syscall::Receive).unwrap();
        drain(&mut k);
        k.submit(
            client,
            Syscall::Send {
                to: addr(&k, svc),
                message: Message::empty(),
                mode: SendMode::RemoteInvocation { blocking: false },
            },
        )
        .unwrap();
        drain(&mut k);
        // Wait before the reply: the client stops.
        k.submit(client, Syscall::Wait).unwrap();
        drain(&mut k);
        assert_eq!(k.task(client).unwrap().state, TaskState::Stopped);
        // The reply wakes it with a WaitComplete.
        k.submit(
            server,
            Syscall::Reply {
                message: Message::empty(),
            },
        )
        .unwrap();
        let events = drain(&mut k);
        assert!(events
            .iter()
            .any(|e| matches!(e, KernelEvent::WaitComplete { client: c } if *c == client)));
        assert_eq!(k.task(client).unwrap().state, TaskState::Computing);
    }

    #[test]
    fn wait_without_outstanding_send_is_an_error() {
        let mut k = kernel();
        let t = k.create_task("t", 1, 64);
        k.submit(t, Syscall::Wait).unwrap();
        let id = k.next_communication().unwrap();
        assert!(matches!(k.process(id), Err(KernelError::NoRendezvous(_))));
    }

    #[test]
    fn activate_feeds_interrupt_service() {
        // §4.2.2: device interrupts map into the client-server paradigm;
        // the handler's activate sends to the driver task's interrupt
        // service.
        let mut k = kernel();
        let driver = k.create_task("disk-driver", 1, 64);
        let intr_svc = k.create_service("disk-interrupts");
        k.submit(driver, Syscall::Offer { service: intr_svc })
            .unwrap();
        drain(&mut k);
        k.submit(driver, Syscall::Receive).unwrap();
        drain(&mut k);
        assert_eq!(k.task(driver).unwrap().state, TaskState::Stopped);

        // The interrupt handler fires (no task context).
        let events = k
            .activate(intr_svc, Message::from_bytes(b"sector 9 done"))
            .unwrap();
        assert!(events
            .iter()
            .any(|e| matches!(e, KernelEvent::Delivered { server } if *server == driver)));
        assert_eq!(
            &k.task(driver).unwrap().delivered.unwrap().data[..13],
            b"sector 9 done"
        );
        assert_eq!(k.task(driver).unwrap().state, TaskState::Computing);
    }

    #[test]
    fn activate_parks_on_buffer_shortage() {
        let mut k = Kernel::new(NodeId(0), 1);
        let driver = k.create_task("driver", 1, 64);
        let filler = k.create_task("filler", 1, 64);
        let svc = k.create_service("s");
        let intr = k.create_service("intr");
        k.submit(driver, Syscall::Offer { service: intr }).unwrap();
        drain(&mut k);
        // Exhaust the single buffer with a queued message.
        k.submit(
            filler,
            Syscall::Send {
                to: addr(&k, svc),
                message: Message::empty(),
                mode: SendMode::NoWait,
            },
        )
        .unwrap();
        drain(&mut k);
        assert_eq!(k.buffers_available(), 0);
        // The activation is parked, not lost.
        let events = k.activate(intr, Message::from_bytes(b"irq")).unwrap();
        assert!(events.is_empty());
        assert_eq!(k.stats().buffer_stalls, 1);
        // Freeing the buffer (a receive on svc) replays the activation...
        let receiver = k.create_task("receiver", 1, 64);
        k.submit(receiver, Syscall::Offer { service: svc }).unwrap();
        drain(&mut k);
        k.submit(driver, Syscall::Receive).unwrap();
        drain(&mut k);
        k.submit(receiver, Syscall::Receive).unwrap();
        let events = drain(&mut k);
        assert!(
            events
                .iter()
                .any(|e| matches!(e, KernelEvent::Delivered { server } if *server == driver)),
            "parked activation delivered: {events:?}"
        );
    }

    #[test]
    fn destroy_task_cleans_every_list() {
        let mut k = kernel();
        let client = k.create_task("client", 1, 64);
        let server = k.create_task("server", 1, 64);
        let svc = k.create_service("s");
        k.submit(server, Syscall::Offer { service: svc }).unwrap();
        drain(&mut k);
        k.submit(server, Syscall::Receive).unwrap();
        drain(&mut k);
        // Kill the waiting server: it leaves the service's waiting list.
        k.destroy_task(server).unwrap();
        assert!(k.task(server).is_err());
        // A send now queues instead of matching a dead server.
        k.submit(
            client,
            Syscall::Send {
                to: addr(&k, svc),
                message: Message::empty(),
                mode: SendMode::NoWait,
            },
        )
        .unwrap();
        drain(&mut k);
        assert_eq!(k.service_queue_len(svc).unwrap(), 1);
        // Destroying again is an error.
        assert!(matches!(
            k.destroy_task(server),
            Err(KernelError::UnknownTask(_))
        ));
    }

    #[test]
    fn destroy_server_mid_rendezvous_releases_client() {
        let mut k = kernel();
        let client = k.create_task("client", 1, 64);
        let server = k.create_task("server", 1, 64);
        let svc = k.create_service("s");
        k.submit(server, Syscall::Offer { service: svc }).unwrap();
        drain(&mut k);
        k.submit(server, Syscall::Receive).unwrap();
        drain(&mut k);
        k.submit(
            client,
            Syscall::Send {
                to: addr(&k, svc),
                message: Message::empty(),
                mode: SendMode::invocation(),
            },
        )
        .unwrap();
        drain(&mut k);
        assert_eq!(k.task(client).unwrap().state, TaskState::Stopped);
        // The server dies inside the rendezvous: the client is released
        // (with the reply lost) instead of hanging forever.
        let events = k.destroy_task(server).unwrap();
        assert!(events
            .iter()
            .any(|e| matches!(e, KernelEvent::ReplyDropped { client: c } if *c == client)));
        assert_eq!(k.task(client).unwrap().state, TaskState::Computing);
    }

    #[test]
    fn reply_to_destroyed_client_is_dropped() {
        let mut k = kernel();
        let client = k.create_task("client", 1, 64);
        let server = k.create_task("server", 1, 64);
        let svc = k.create_service("s");
        k.submit(server, Syscall::Offer { service: svc }).unwrap();
        drain(&mut k);
        k.submit(server, Syscall::Receive).unwrap();
        drain(&mut k);
        k.submit(
            client,
            Syscall::Send {
                to: addr(&k, svc),
                message: Message::empty(),
                mode: SendMode::invocation(),
            },
        )
        .unwrap();
        drain(&mut k);
        k.destroy_task(client).unwrap();
        // The server's reply does not crash the kernel; it reports a drop.
        k.submit(
            server,
            Syscall::Reply {
                message: Message::empty(),
            },
        )
        .unwrap();
        let events = drain(&mut k);
        assert!(events
            .iter()
            .any(|e| matches!(e, KernelEvent::ReplyDropped { client: c } if *c == client)));
        // The server continues normally.
        assert_eq!(k.task(server).unwrap().state, TaskState::Computing);
    }

    #[test]
    fn handler_service_raises_invocation() {
        // §4.2.1: a service created with a handler gets the handler invoked
        // on each delivery.
        let mut k = kernel();
        let client = k.create_task("client", 1, 64);
        let server = k.create_task("server", 1, 64);
        let svc = k.create_service_with_handler("with-handler", 42);
        k.submit(server, Syscall::Offer { service: svc }).unwrap();
        drain(&mut k);
        k.submit(server, Syscall::Receive).unwrap();
        drain(&mut k);
        k.submit(
            client,
            Syscall::Send {
                to: addr(&k, svc),
                message: Message::empty(),
                mode: SendMode::NoWait,
            },
        )
        .unwrap();
        let events = drain(&mut k);
        assert!(events.iter().any(
            |e| matches!(e, KernelEvent::HandlerInvoked { server: s, handler: 42 } if *s == server)
        ), "{events:?}");
        // A plain service never raises the event.
        let plain = k.create_service("plain");
        k.submit(server, Syscall::Offer { service: plain }).unwrap();
        drain(&mut k);
        k.submit(server, Syscall::Receive).unwrap();
        drain(&mut k);
        k.submit(
            client,
            Syscall::Send {
                to: addr(&k, plain),
                message: Message::empty(),
                mode: SendMode::NoWait,
            },
        )
        .unwrap();
        let events = drain(&mut k);
        assert!(!events
            .iter()
            .any(|e| matches!(e, KernelEvent::HandlerInvoked { .. })));
    }

    #[test]
    fn scheduling_lists_honor_priority() {
        // §4.4: the computation and communication lists are ordered by task
        // scheduling priority (FCFS among equals).
        let mut k = kernel();
        let low1 = k.create_task("low1", 1, 64);
        let low2 = k.create_task("low2", 1, 64);
        let high = k.create_task("high", 5, 64);
        // All three issue a request; the high-priority task jumps the
        // queue despite submitting last.
        for t in [low1, low2, high] {
            let svc = k.create_service("s");
            k.submit(t, Syscall::Offer { service: svc }).unwrap();
        }
        assert_eq!(k.next_communication(), Some(high));
        assert_eq!(k.next_communication(), Some(low1));
        assert_eq!(k.next_communication(), Some(low2));
    }

    #[test]
    fn fcfs_among_waiting_servers() {
        // A message goes to the server that has waited longest (§4.2.1).
        let mut k = kernel();
        let client = k.create_task("client", 1, 64);
        let s1 = k.create_task("s1", 1, 64);
        let s2 = k.create_task("s2", 1, 64);
        let svc = k.create_service("s");
        for s in [s1, s2] {
            k.submit(s, Syscall::Offer { service: svc }).unwrap();
        }
        drain(&mut k);
        k.submit(s1, Syscall::Receive).unwrap();
        drain(&mut k);
        k.submit(s2, Syscall::Receive).unwrap();
        drain(&mut k);
        k.submit(
            client,
            Syscall::Send {
                to: addr(&k, svc),
                message: Message::empty(),
                mode: SendMode::NoWait,
            },
        )
        .unwrap();
        let events = drain(&mut k);
        assert!(events
            .iter()
            .any(|e| matches!(e, KernelEvent::Delivered { server } if *server == s1)));
        assert_eq!(k.task(s2).unwrap().state, TaskState::Stopped);
    }
}
