//! The kernel buffer pool.
//!
//! Fixed-size messages are buffered by the kernel (§3.2.2); buffers live in
//! shared memory and are linked into a singly-linked circular free list
//! maintained by the message coprocessor (§5.1). Here the pool tracks only
//! counts and identities — the byte images live in `smartmem` when the
//! hardware is simulated — but it preserves the crucial behaviour that a
//! send *blocks when the pool is exhausted* (Jasmin and 925 both block the
//! requester on a temporary shortage of kernel resources, §3.2.3).

use std::collections::VecDeque;

/// Identifier of a kernel buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BufferId(pub u32);

/// A kernel-buffer free list.
///
/// The default [`BufferPool`] is an in-process deque; the live runtime
/// substitutes a free list backed by `smartmem`'s shared queue
/// transactions, so buffer acquisition is a real atomic operation on the
/// shared module (§5.1 keeps the free-buffer list in shared memory).
pub trait BufferQueue: Send + std::fmt::Debug {
    /// Total buffers in the pool.
    fn capacity(&self) -> usize;
    /// Currently free buffers.
    fn available(&self) -> usize;
    /// Takes the first free buffer, or `None` when exhausted.
    fn acquire(&mut self) -> Option<BufferId>;
    /// Returns a buffer to the free list.
    fn release(&mut self, buffer: BufferId);
}

impl BufferQueue for BufferPool {
    fn capacity(&self) -> usize {
        BufferPool::capacity(self)
    }

    fn available(&self) -> usize {
        BufferPool::available(self)
    }

    fn acquire(&mut self) -> Option<BufferId> {
        BufferPool::acquire(self)
    }

    fn release(&mut self, buffer: BufferId) {
        BufferPool::release(self, buffer)
    }
}

/// A bounded pool of kernel message buffers with a free list.
#[derive(Debug, Clone)]
pub struct BufferPool {
    free: VecDeque<BufferId>,
    capacity: usize,
}

impl BufferPool {
    /// Creates a pool of `capacity` buffers, all free.
    pub fn new(capacity: usize) -> BufferPool {
        BufferPool {
            free: (0..capacity as u32).map(BufferId).collect(),
            capacity,
        }
    }

    /// Total buffers in the pool.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Currently free buffers.
    pub fn available(&self) -> usize {
        self.free.len()
    }

    /// Takes the first free buffer, or `None` when exhausted (the caller
    /// blocks the requesting task).
    pub fn acquire(&mut self) -> Option<BufferId> {
        self.free.pop_front()
    }

    /// Returns a buffer to the free list.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is already free (double release) — a kernel
    /// invariant violation.
    pub fn release(&mut self, buffer: BufferId) {
        assert!(
            !self.free.contains(&buffer),
            "double release of kernel buffer {buffer:?}"
        );
        assert!(
            (buffer.0 as usize) < self.capacity,
            "foreign buffer {buffer:?}"
        );
        self.free.push_back(buffer);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_release_cycle() {
        let mut pool = BufferPool::new(2);
        assert_eq!(pool.available(), 2);
        let a = pool.acquire().unwrap();
        let b = pool.acquire().unwrap();
        assert_ne!(a, b);
        assert!(pool.acquire().is_none());
        pool.release(a);
        assert_eq!(pool.available(), 1);
        assert_eq!(pool.acquire(), Some(a));
    }

    #[test]
    #[should_panic(expected = "double release")]
    fn double_release_panics() {
        let mut pool = BufferPool::new(1);
        let a = pool.acquire().unwrap();
        pool.release(a);
        pool.release(a);
    }

    #[test]
    #[should_panic(expected = "foreign buffer")]
    fn foreign_buffer_rejected() {
        let mut pool = BufferPool::new(1);
        pool.release(BufferId(5));
    }
}
