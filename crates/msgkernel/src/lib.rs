//! # msgkernel — a 925-style message-based operating system kernel
//!
//! A functional simulation of the IPC kernel of the 925 system (IBM Research
//! San Jose's office-workstation project, later "Quicksilver") as described
//! in Chapter 4 of Ramachandran's *Hardware Support for Interprocess
//! Communication*, partitioned exactly as the thesis implements it:
//!
//! * **Tasks** are units of execution with individual address spaces;
//! * **Services** are queueing points for messages; clients [`Syscall::Send`]
//!   fixed-size 40-byte [`Message`]s to a service, servers
//!   [`Syscall::Offer`] services and [`Syscall::Receive`] from them;
//! * a **rendezvous** forms when a send matches a receive; a *remote
//!   invocation* send keeps the client stopped until the server's
//!   [`Syscall::Reply`];
//! * messages may enclose a [`MemoryRef`] — a pointer into the client's
//!   address space with access rights — which the server exercises with
//!   [`Syscall::MemoryMove`] (the paper's `memory move`, V-kernel style);
//! * the kernel keeps two lists of task control blocks, the **computation
//!   list** (work for the host) and the **communication list** (work for the
//!   message coprocessor); the host enqueues a task on the communication
//!   list when it issues a communication request, and the MP enqueues tasks
//!   back on the computation list when they become runnable (Figures 4.4 /
//!   4.5);
//! * non-local communication exchanges network packets that *mirror the IPC
//!   calls* — exactly one `send` packet and one `reply` packet per
//!   round-trip, no low-level acknowledgements (§4.6).
//!
//! Timing is deliberately absent from this crate: `archsim` drives the same
//! kernel logic under the per-activity processing costs of the four
//! architectures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod buffer;
mod error;
mod kernel;
mod message;
mod sched;
mod service;
mod task;

pub use buffer::{BufferId, BufferPool, BufferQueue};
pub use error::KernelError;
pub use kernel::{
    Kernel, KernelEvent, KernelStats, MoveDirection, Packet, PacketBody, SendMode, Syscall,
};
pub use message::{AccessRights, MemoryRef, Message, MESSAGE_SIZE};
pub use sched::{PriorityList, SchedQueue};
pub use service::{ServiceAddr, ServiceId};
pub use task::{NodeId, Task, TaskId, TaskState};
