//! Services: queueing points for messages (§4.2.1).

use crate::task::{NodeId, TaskId};
use std::collections::VecDeque;
use std::fmt;

/// Identifier of a service within its node's kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ServiceId(pub u32);

impl fmt::Display for ServiceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "svc{}", self.0)
    }
}

/// A network-wide service address: messages are addressed to services
/// (§3.2.1), local or remote.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ServiceAddr {
    /// Node owning the service.
    pub node: NodeId,
    /// Service id on that node.
    pub service: ServiceId,
}

/// A queued message together with who to reply to.
#[derive(Debug, Clone)]
pub(crate) struct QueuedMessage {
    pub message: crate::message::Message,
    /// Reply destination for remote-invocation sends.
    pub reply_to: Option<ReplyTo>,
}

/// Where a server's eventual reply goes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ReplyTo {
    /// A client task on this node.
    Local(TaskId),
    /// A client on another node (the reply travels as a network packet).
    Remote { node: NodeId, task: TaskId },
}

/// A service control block: a FIFO of buffered messages and a FIFO of
/// servers waiting to receive. A message arriving at a service is delivered
/// to the first waiting server, ordered by time (§4.2.1).
#[derive(Debug, Clone, Default)]
pub(crate) struct Service {
    pub name: String,
    pub messages: VecDeque<QueuedMessage>,
    pub waiting_servers: VecDeque<TaskId>,
    /// Handler tag (§4.2.1): when set, the kernel reports a handler
    /// invocation with each delivery on this service.
    pub handler: Option<u32>,
}

impl Service {
    pub fn new(name: impl Into<String>) -> Service {
        Service {
            name: name.into(),
            messages: VecDeque::new(),
            waiting_servers: VecDeque::new(),
            handler: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_addr_equality() {
        let a = ServiceAddr {
            node: NodeId(0),
            service: ServiceId(1),
        };
        let b = ServiceAddr {
            node: NodeId(0),
            service: ServiceId(1),
        };
        let c = ServiceAddr {
            node: NodeId(1),
            service: ServiceId(1),
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn new_service_is_empty() {
        let s = Service::new("files");
        assert!(s.messages.is_empty());
        assert!(s.waiting_servers.is_empty());
        assert_eq!(s.name, "files");
    }
}
