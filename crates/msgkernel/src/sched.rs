//! Pluggable task-scheduling lists.
//!
//! The kernel keeps two lists of task control blocks — the computation list
//! and the communication list (Figures 4.4/4.5). In the functional and
//! discrete-event simulations those are in-process priority lists; in the
//! live runtime they are *real shared-memory queues* raced by the host and
//! MP threads. [`SchedQueue`] abstracts over both: [`crate::Kernel::new`]
//! installs the default [`PriorityList`] (behaviorally identical to the
//! original kernel), [`crate::Kernel::with_queues`] lets a runtime supply
//! queues backed by `smartmem`'s shared transactions.

use crate::task::TaskId;
use std::collections::VecDeque;

/// A task-control-block scheduling list.
///
/// The kernel passes each task's priority alongside its id so that
/// implementations may honor §4.4 ordering ("the lists are ordered by task
/// scheduling priority", FCFS among equals); hardware-backed queues whose
/// `Enqueue` transaction only appends at the tail may ignore it.
pub trait SchedQueue: Send + std::fmt::Debug {
    /// Priority-ordered insert: before the first strictly-lower-priority
    /// entry, after all equals.
    fn insert_by_priority(&mut self, task: TaskId, priority: u8);
    /// Plain tail append.
    fn push_back(&mut self, task: TaskId, priority: u8);
    /// Head insert — the buffer-shortage retry path, which must run before
    /// new work (§3.2.3).
    fn push_front(&mut self, task: TaskId, priority: u8);
    /// Removes and returns the head, if any.
    fn pop_front(&mut self) -> Option<TaskId>;
    /// Removes `task` wherever it sits (task destruction).
    fn remove(&mut self, task: TaskId);
    /// Whether the list is empty.
    fn is_empty(&self) -> bool;
}

/// The default in-process list: a deque of `(task, priority)` pairs.
#[derive(Debug, Default)]
pub struct PriorityList {
    entries: VecDeque<(TaskId, u8)>,
}

impl SchedQueue for PriorityList {
    fn insert_by_priority(&mut self, task: TaskId, priority: u8) {
        let pos = self
            .entries
            .iter()
            .position(|&(_, p)| p < priority)
            .unwrap_or(self.entries.len());
        self.entries.insert(pos, (task, priority));
    }

    fn push_back(&mut self, task: TaskId, priority: u8) {
        self.entries.push_back((task, priority));
    }

    fn push_front(&mut self, task: TaskId, priority: u8) {
        self.entries.push_front((task, priority));
    }

    fn pop_front(&mut self) -> Option<TaskId> {
        self.entries.pop_front().map(|(t, _)| t)
    }

    fn remove(&mut self, task: TaskId) {
        self.entries.retain(|&(t, _)| t != task);
    }

    fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_insert_is_fcfs_among_equals() {
        let mut l = PriorityList::default();
        l.insert_by_priority(TaskId(0), 1);
        l.insert_by_priority(TaskId(1), 1);
        l.insert_by_priority(TaskId(2), 5);
        l.insert_by_priority(TaskId(3), 5);
        l.insert_by_priority(TaskId(4), 3);
        let got: Vec<TaskId> = std::iter::from_fn(|| l.pop_front()).collect();
        assert_eq!(
            got,
            vec![TaskId(2), TaskId(3), TaskId(4), TaskId(0), TaskId(1)]
        );
    }

    #[test]
    fn push_front_jumps_the_queue() {
        let mut l = PriorityList::default();
        l.insert_by_priority(TaskId(0), 9);
        l.push_front(TaskId(1), 1);
        assert_eq!(l.pop_front(), Some(TaskId(1)));
    }

    #[test]
    fn remove_deletes_all_occurrences() {
        let mut l = PriorityList::default();
        l.push_back(TaskId(0), 1);
        l.push_back(TaskId(1), 1);
        l.remove(TaskId(0));
        assert_eq!(l.pop_front(), Some(TaskId(1)));
        assert!(l.is_empty());
    }
}
