//! Tasks and task control blocks.

use std::fmt;

/// Identifier of a node in the distributed system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Identifier of a task within its node's kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task{}", self.0)
    }
}

/// The three task states of §4.4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskState {
    /// Executing or ready to execute on the host (on the computation list).
    Computing,
    /// Executing or ready to execute on the message coprocessor (on the
    /// communication list).
    Communicating,
    /// Waiting for a message or a reply.
    Stopped,
}

/// A task control block.
#[derive(Debug, Clone)]
pub struct Task {
    /// Task name (diagnostics).
    pub name: String,
    /// Scheduling priority; higher runs first, FCFS among equals.
    pub priority: u8,
    /// Current state.
    pub state: TaskState,
    /// The task's private address space.
    pub address_space: Vec<u8>,
    /// Message delivered by the last completed receive/wait.
    pub delivered: Option<crate::message::Message>,
    /// Services this task has offered to serve.
    pub offers: Vec<crate::service::ServiceId>,
}

impl Task {
    /// Creates a task with an address space of `space` bytes.
    pub fn new(name: impl Into<String>, priority: u8, space: usize) -> Task {
        Task {
            name: name.into(),
            priority,
            state: TaskState::Computing,
            address_space: vec![0; space],
            delivered: None,
            offers: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_task_starts_computing() {
        let t = Task::new("editor", 1, 1024);
        assert_eq!(t.state, TaskState::Computing);
        assert_eq!(t.address_space.len(), 1024);
        assert!(t.delivered.is_none());
        assert!(t.offers.is_empty());
    }

    #[test]
    fn ids_display() {
        assert_eq!(NodeId(3).to_string(), "node3");
        assert_eq!(TaskId(7).to_string(), "task7");
    }
}
