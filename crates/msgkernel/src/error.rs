use crate::service::ServiceId;
use crate::task::TaskId;
use std::fmt;

/// Kernel call failures — the validity checks the profiling chapters charge
/// to "checking, addressing, and control block manipulation".
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelError {
    /// The task id does not name a live task.
    UnknownTask(TaskId),
    /// The service id does not name a live service on this node.
    UnknownService(ServiceId),
    /// The task issued a syscall while it already has one outstanding.
    RequestOutstanding(TaskId),
    /// `Receive` without any prior `Offer`.
    NoOffers(TaskId),
    /// `Offer` of a service the task already offers.
    DuplicateOffer {
        /// The offering task.
        task: TaskId,
        /// The service offered twice.
        service: ServiceId,
    },
    /// `Reply` without a rendezvous in progress.
    NoRendezvous(TaskId),
    /// `MemoryMove` outside the granted segment or without the right.
    AccessViolation {
        /// The offending server task.
        task: TaskId,
        /// Description of the violated constraint.
        reason: &'static str,
    },
    /// A packet arrived for a task/service this kernel does not know.
    BadPacket(&'static str),
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::UnknownTask(t) => write!(f, "unknown task {t}"),
            KernelError::UnknownService(s) => write!(f, "unknown service {s}"),
            KernelError::RequestOutstanding(t) => {
                write!(f, "{t} already has an outstanding request")
            }
            KernelError::NoOffers(t) => write!(f, "{t} posted receive without offers"),
            KernelError::DuplicateOffer { task, service } => {
                write!(f, "{task} already offers service {service}")
            }
            KernelError::NoRendezvous(t) => write!(f, "{t} replied outside a rendezvous"),
            KernelError::AccessViolation { task, reason } => {
                write!(f, "{task} memory-move access violation: {reason}")
            }
            KernelError::BadPacket(why) => write!(f, "bad network packet: {why}"),
        }
    }
}

impl std::error::Error for KernelError {}
