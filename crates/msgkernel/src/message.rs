//! Fixed-size messages and memory references (§4.2.1).

use std::fmt;

/// Messages in 925 are fixed at 40 bytes.
pub const MESSAGE_SIZE: usize = 40;

/// Access rights carried by a [`MemoryRef`] (§4.2.1: read, write and/or
/// copy, plus the segment size).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AccessRights {
    /// Server may read from the segment.
    pub read: bool,
    /// Server may write into the segment.
    pub write: bool,
    /// Server may retain a copy beyond the rendezvous.
    pub copy: bool,
}

impl AccessRights {
    /// Read-only access.
    pub fn read_only() -> AccessRights {
        AccessRights {
            read: true,
            write: false,
            copy: false,
        }
    }

    /// Read/write access.
    pub fn read_write() -> AccessRights {
        AccessRights {
            read: true,
            write: true,
            copy: false,
        }
    }
}

/// A memory reference enclosed in a message: a pointer into the *sender's*
/// address space plus rights, letting the server move large blocks without
/// kernel buffering (Figure 4.2's editor / file-server scenario).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryRef {
    /// Offset within the sending task's address space.
    pub offset: u32,
    /// Segment length in bytes.
    pub length: u32,
    /// Access rights granted to the receiving server.
    pub rights: AccessRights,
}

/// A fixed-size 40-byte message, optionally enclosing a memory reference.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Message {
    /// Payload bytes.
    pub data: [u8; MESSAGE_SIZE],
    /// Optional enclosed memory reference.
    pub memory_ref: Option<MemoryRef>,
}

impl Message {
    /// An all-zero message.
    pub fn empty() -> Message {
        Message {
            data: [0; MESSAGE_SIZE],
            memory_ref: None,
        }
    }

    /// Builds a message from up to 40 bytes of payload (zero padded).
    ///
    /// # Panics
    ///
    /// Panics if `payload` exceeds [`MESSAGE_SIZE`] bytes — 925 messages
    /// are fixed-size; larger data travels by memory reference.
    pub fn from_bytes(payload: &[u8]) -> Message {
        assert!(payload.len() <= MESSAGE_SIZE, "925 messages are 40 bytes");
        let mut data = [0u8; MESSAGE_SIZE];
        data[..payload.len()].copy_from_slice(payload);
        Message {
            data,
            memory_ref: None,
        }
    }

    /// Attaches a memory reference.
    pub fn with_memory_ref(mut self, memory_ref: MemoryRef) -> Message {
        self.memory_ref = Some(memory_ref);
        self
    }
}

impl Default for Message {
    fn default() -> Message {
        Message::empty()
    }
}

impl fmt::Debug for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let used = self.data.iter().rposition(|&b| b != 0).map_or(0, |i| i + 1);
        f.debug_struct("Message")
            .field("data", &&self.data[..used])
            .field("memory_ref", &self.memory_ref)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_bytes_pads_with_zeros() {
        let m = Message::from_bytes(b"hello");
        assert_eq!(&m.data[..5], b"hello");
        assert!(m.data[5..].iter().all(|&b| b == 0));
        assert!(m.memory_ref.is_none());
    }

    #[test]
    #[should_panic(expected = "40 bytes")]
    fn oversized_payload_rejected() {
        Message::from_bytes(&[0u8; 41]);
    }

    #[test]
    fn memory_ref_attachment() {
        let r = MemoryRef {
            offset: 128,
            length: 1000,
            rights: AccessRights::read_write(),
        };
        let m = Message::empty().with_memory_ref(r);
        assert_eq!(m.memory_ref, Some(r));
        assert!(r.rights.read && r.rights.write && !r.rights.copy);
    }

    #[test]
    fn debug_is_compact() {
        let m = Message::from_bytes(&[1, 2, 3]);
        let s = format!("{m:?}");
        assert!(s.contains("[1, 2, 3]"), "{s}");
    }
}
