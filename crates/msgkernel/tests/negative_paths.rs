//! Negative-path kernel tests: the validity checks the profiling chapters
//! charge to "checking, addressing, and control block manipulation" must
//! reflect the *specific* error for each misuse.

use msgkernel::{
    AccessRights, Kernel, KernelError, MemoryRef, Message, MoveDirection, NodeId, SendMode,
    ServiceAddr, Syscall, TaskId,
};

fn kernel() -> Kernel {
    Kernel::new(NodeId(0), 8)
}

/// Processes every pending communication request, panicking on error.
fn drain(k: &mut Kernel) {
    while let Some(t) = k.next_communication() {
        k.process(t).unwrap();
    }
}

/// Processes the next request and returns its error.
fn process_err(k: &mut Kernel) -> KernelError {
    let t = k.next_communication().expect("a request is pending");
    k.process(t).unwrap_err()
}

/// Puts `server` into a rendezvous with a client whose message carries
/// `mref`.
fn rendezvous_with(k: &mut Kernel, mref: Option<MemoryRef>) -> (TaskId, TaskId) {
    let client = k.create_task("client", 1, 256);
    let server = k.create_task("server", 1, 256);
    let svc = k.create_service("s");
    k.submit(server, Syscall::Offer { service: svc }).unwrap();
    drain(k);
    k.submit(server, Syscall::Receive).unwrap();
    drain(k);
    let mut msg = Message::from_bytes(b"req");
    if let Some(m) = mref {
        msg = msg.with_memory_ref(m);
    }
    k.submit(
        client,
        Syscall::Send {
            to: ServiceAddr {
                node: k.node(),
                service: svc,
            },
            message: msg,
            mode: SendMode::invocation(),
        },
    )
    .unwrap();
    drain(k);
    (client, server)
}

#[test]
fn memory_move_offset_outside_client_space_is_access_violation() {
    let mut k = kernel();
    // The granted segment starts beyond the 256-byte client space.
    let (_, server) = rendezvous_with(
        &mut k,
        Some(MemoryRef {
            offset: 1_000,
            length: 64,
            rights: AccessRights::read_write(),
        }),
    );
    k.submit(
        server,
        Syscall::MemoryMove {
            direction: MoveDirection::FromClient,
            local_offset: 0,
            length: 64,
        },
    )
    .unwrap();
    assert!(matches!(
        process_err(&mut k),
        KernelError::AccessViolation {
            task,
            reason: "segment outside address space",
        } if task == server
    ));
}

#[test]
fn memory_move_length_beyond_grant_is_access_violation() {
    let mut k = kernel();
    let (_, server) = rendezvous_with(
        &mut k,
        Some(MemoryRef {
            offset: 0,
            length: 16,
            rights: AccessRights::read_write(),
        }),
    );
    k.submit(
        server,
        Syscall::MemoryMove {
            direction: MoveDirection::FromClient,
            local_offset: 0,
            length: 17,
        },
    )
    .unwrap();
    assert!(matches!(
        process_err(&mut k),
        KernelError::AccessViolation {
            reason: "move exceeds granted segment",
            ..
        }
    ));
}

#[test]
fn memory_move_local_offset_outside_server_space_is_access_violation() {
    let mut k = kernel();
    let (_, server) = rendezvous_with(
        &mut k,
        Some(MemoryRef {
            offset: 0,
            length: 64,
            rights: AccessRights::read_write(),
        }),
    );
    // The server's own space is 256 bytes; writing at 250 overruns it.
    k.submit(
        server,
        Syscall::MemoryMove {
            direction: MoveDirection::FromClient,
            local_offset: 250,
            length: 64,
        },
    )
    .unwrap();
    assert!(matches!(
        process_err(&mut k),
        KernelError::AccessViolation {
            reason: "segment outside address space",
            ..
        }
    ));
}

#[test]
fn memory_move_without_read_right_is_access_violation() {
    let mut k = kernel();
    let (_, server) = rendezvous_with(
        &mut k,
        Some(MemoryRef {
            offset: 0,
            length: 16,
            rights: AccessRights {
                read: false,
                write: true,
                copy: false,
            },
        }),
    );
    k.submit(
        server,
        Syscall::MemoryMove {
            direction: MoveDirection::FromClient,
            local_offset: 0,
            length: 8,
        },
    )
    .unwrap();
    assert!(matches!(
        process_err(&mut k),
        KernelError::AccessViolation {
            reason: "no read right",
            ..
        }
    ));
}

#[test]
fn memory_move_without_write_right_is_access_violation() {
    let mut k = kernel();
    let (_, server) = rendezvous_with(
        &mut k,
        Some(MemoryRef {
            offset: 0,
            length: 16,
            rights: AccessRights::read_only(),
        }),
    );
    k.submit(
        server,
        Syscall::MemoryMove {
            direction: MoveDirection::ToClient,
            local_offset: 0,
            length: 8,
        },
    )
    .unwrap();
    assert!(matches!(
        process_err(&mut k),
        KernelError::AccessViolation {
            reason: "no write right",
            ..
        }
    ));
}

#[test]
fn memory_move_without_enclosed_reference_is_access_violation() {
    let mut k = kernel();
    let (_, server) = rendezvous_with(&mut k, None);
    k.submit(
        server,
        Syscall::MemoryMove {
            direction: MoveDirection::FromClient,
            local_offset: 0,
            length: 8,
        },
    )
    .unwrap();
    assert!(matches!(
        process_err(&mut k),
        KernelError::AccessViolation {
            reason: "message enclosed no memory reference",
            ..
        }
    ));
}

#[test]
fn reply_with_no_rendezvous_is_an_error() {
    let mut k = kernel();
    let lone = k.create_task("lone", 1, 64);
    k.submit(
        lone,
        Syscall::Reply {
            message: Message::empty(),
        },
    )
    .unwrap();
    assert_eq!(process_err(&mut k), KernelError::NoRendezvous(lone));
}

#[test]
fn double_offer_of_a_service_is_an_error() {
    let mut k = kernel();
    let server = k.create_task("server", 1, 64);
    let svc = k.create_service("s");
    k.submit(server, Syscall::Offer { service: svc }).unwrap();
    drain(&mut k);
    k.submit(server, Syscall::Offer { service: svc }).unwrap();
    assert_eq!(
        process_err(&mut k),
        KernelError::DuplicateOffer {
            task: server,
            service: svc,
        }
    );
    // A *different* task offering the same service is fine, as is the same
    // task offering a second service.
    let other = k.create_task("other", 1, 64);
    k.submit(other, Syscall::Offer { service: svc }).unwrap();
    drain(&mut k);
    let svc2 = k.create_service("s2");
    k.submit(server, Syscall::Offer { service: svc2 }).unwrap();
    drain(&mut k);
}
