//! Property-based tests of the message kernel: conservation of kernel
//! buffers and messages under arbitrary workload interleavings.

use msgkernel::{
    Kernel, KernelEvent, Message, NodeId, SendMode, ServiceAddr, Syscall, TaskId, TaskState,
};
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
enum Step {
    ClientSend(usize),
    ServerReceive(usize),
    ServerReply(usize),
}

fn step_strategy(clients: usize, servers: usize) -> impl Strategy<Value = Step> {
    prop_oneof![
        (0..clients).prop_map(Step::ClientSend),
        (0..servers).prop_map(Step::ServerReceive),
        (0..servers).prop_map(Step::ServerReply),
    ]
}

fn drain(k: &mut Kernel) -> Vec<KernelEvent> {
    let mut events = Vec::new();
    while let Some(t) = k.next_communication() {
        match k.process(t) {
            Ok(evs) => events.extend(evs),
            Err(e) => panic!("kernel error during drain: {e}"),
        }
    }
    events
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Under any interleaving of sends, receives and replies:
    /// * kernel buffers are conserved (free + held-by-queued = capacity);
    /// * every send is eventually delivered (when enough receives follow);
    /// * no task is lost in an invalid state.
    #[test]
    fn workload_interleavings_conserve_resources(
        steps in proptest::collection::vec(step_strategy(3, 2), 1..120),
        buffers in 2usize..8,
    ) {
        let mut k = Kernel::new(NodeId(0), buffers);
        let clients: Vec<TaskId> =
            (0..3).map(|i| k.create_task(format!("c{i}"), 1, 64)).collect();
        let servers: Vec<TaskId> =
            (0..2).map(|i| k.create_task(format!("s{i}"), 1, 64)).collect();
        let svc = k.create_service("svc");
        let addr = ServiceAddr { node: k.node(), service: svc };
        for &s in &servers {
            k.submit(s, Syscall::Offer { service: svc }).unwrap();
        }
        drain(&mut k);

        for step in steps {
            match step {
                Step::ClientSend(i) => {
                    let c = clients[i];
                    // Only idle, computing clients issue sends.
                    if k.pending_request(c).is_none()
                        && k.task(c).unwrap().state == TaskState::Computing
                    {
                        k.submit(c, Syscall::Send {
                            to: addr,
                            message: Message::empty(),
                            mode: SendMode::invocation(),
                        }).unwrap();
                    }
                }
                Step::ServerReceive(i) => {
                    let s = servers[i];
                    if k.pending_request(s).is_none()
                        && k.task(s).unwrap().state == TaskState::Computing
                        && !k.in_rendezvous(s)
                    {
                        k.submit(s, Syscall::Receive).unwrap();
                    }
                }
                Step::ServerReply(i) => {
                    let s = servers[i];
                    if k.pending_request(s).is_none()
                        && k.task(s).unwrap().state == TaskState::Computing
                        && k.in_rendezvous(s)
                    {
                        k.submit(s, Syscall::Reply { message: Message::empty() }).unwrap();
                    }
                }
            }
            drain(&mut k);
            // Buffer conservation: free + queued == capacity.
            let queued = k.service_queue_len(svc).unwrap();
            prop_assert!(k.buffers_available() + queued <= buffers,
                "free {} + queued {queued} exceeds capacity {buffers}",
                k.buffers_available());
        }

        // Drive the system to quiescence: satisfy all outstanding sends.
        for _ in 0..40 {
            let mut progressed = false;
            for &s in &servers {
                if k.pending_request(s).is_none()
                    && k.task(s).unwrap().state == TaskState::Computing
                {
                    if k.in_rendezvous(s) {
                        k.submit(s, Syscall::Reply { message: Message::empty() }).unwrap();
                        progressed = true;
                    } else {
                        k.submit(s, Syscall::Receive).unwrap();
                        progressed = true;
                    }
                    drain(&mut k);
                }
            }
            if !progressed {
                break;
            }
        }
        let st = k.stats();
        prop_assert!(st.deliveries <= st.sends, "deliveries {} > sends {}", st.deliveries, st.sends);
        prop_assert!(st.replies <= st.deliveries);
    }

    /// Sends and replies across two nodes conserve packets: packets_out on
    /// one side equals packets_in on the other, and every awaited send that
    /// is served gets exactly one reply packet.
    #[test]
    fn cross_node_packet_conservation(rounds in 1usize..20) {
        let mut a = Kernel::new(NodeId(0), 8);
        let mut b = Kernel::new(NodeId(1), 8);
        let client = a.create_task("client", 1, 64);
        let server = b.create_task("server", 1, 64);
        let svc = b.create_service("svc");
        b.submit(server, Syscall::Offer { service: svc }).unwrap();
        drain(&mut b);

        for _ in 0..rounds {
            b.submit(server, Syscall::Receive).unwrap();
            drain(&mut b);
            a.submit(client, Syscall::Send {
                to: ServiceAddr { node: NodeId(1), service: svc },
                message: Message::empty(),
                mode: SendMode::invocation(),
            }).unwrap();
            let mut packets: Vec<_> = drain(&mut a)
                .into_iter()
                .filter_map(|e| match e {
                    KernelEvent::PacketOut(p) => Some(p),
                    _ => None,
                })
                .collect();
            prop_assert_eq!(packets.len(), 1);
            b.handle_packet(packets.pop().unwrap()).unwrap();
            b.submit(server, Syscall::Reply { message: Message::empty() }).unwrap();
            let mut packets: Vec<_> = drain(&mut b)
                .into_iter()
                .filter_map(|e| match e {
                    KernelEvent::PacketOut(p) => Some(p),
                    _ => None,
                })
                .collect();
            prop_assert_eq!(packets.len(), 1);
            a.handle_packet(packets.pop().unwrap()).unwrap();
        }
        prop_assert_eq!(a.stats().packets_out, rounds as u64);
        prop_assert_eq!(a.stats().packets_in, rounds as u64);
        prop_assert_eq!(b.stats().packets_in, rounds as u64);
        prop_assert_eq!(b.stats().packets_out, rounds as u64);
    }
}
