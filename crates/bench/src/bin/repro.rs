//! Regenerates the paper's tables and figures. See `bench` crate docs.
//!
//! Experiments run through the sweep engine: the requested ids are a grid
//! whose points execute on a worker pool, and each swept experiment fans
//! its own points out on the same policy. Output is printed in request
//! order and is byte-identical to a sequential run (`--sequential` or
//! `HSIPC_SWEEP=1` forces one; `HSIPC_SWEEP=<n>` / `RAYON_NUM_THREADS` /
//! `HSIPC_SWEEP_THREADS` set the worker count).
//!
//! `--timing` additionally reports wall-clock and cache statistics on
//! stderr, runs the non-local n=4 solver micro-benchmark at one thread vs
//! the full budget, and writes the machine-readable perf trajectory to
//! `BENCH_solver.json` — stdout stays byte-identical either way.

use std::fmt::Write as _;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;
use sweep::ExecMode;

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut mode = sweep::exec_mode();
    let mut timing = false;
    args.retain(|a| match a.as_str() {
        "--sequential" | "--seq" => {
            mode = ExecMode::Sequential;
            false
        }
        "--timing" => {
            timing = true;
            false
        }
        _ => true,
    });
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        eprintln!("usage: repro [--sequential] [--timing] [list | all | <experiment-id>...]");
        eprintln!("experiment ids: table3.1..table3.7, table5.1, table5.2,");
        eprintln!("  table6.1, table6.2, table6.4..table6.25, fig6.7..fig6.23, fig7.1, fig7.scale");
        return ExitCode::from(2);
    }
    if args[0] == "list" {
        for e in hsipc::experiments::all() {
            println!("{:<10} {}", e.id, e.title);
        }
        return ExitCode::SUCCESS;
    }
    let ids: Vec<String> = if args[0] == "all" {
        hsipc::experiments::all()
            .iter()
            .map(|e| e.id.to_string())
            .collect()
    } else {
        args
    };

    let threads = sweep::threads();
    let started = Instant::now();
    // One grid point per experiment; each result slot comes back in request
    // order no matter which worker produced it. Swept experiments fan out
    // their own points on the same pool policy. Per-experiment wall-clock
    // rides along for the `--timing` report (and is dropped otherwise).
    let grid = sweep::Grid::new(ids);
    let results = grid.eval_with(mode, threads, |id| {
        let t0 = Instant::now();
        let out = hsipc::experiments::run_with(id, mode, threads);
        (out, t0.elapsed().as_secs_f64())
    });
    let total_seconds = started.elapsed().as_secs_f64();

    let mut failed = false;
    let mut timed: Vec<(String, f64)> = Vec::with_capacity(grid.len());
    for (id, (result, seconds)) in grid.points().iter().zip(results) {
        match result {
            Some(output) => {
                println!("{output}");
                timed.push((id.clone(), seconds));
            }
            None => {
                eprintln!("unknown experiment `{id}` (try `repro list`)");
                failed = true;
            }
        }
    }
    if timing {
        eprintln!(
            "repro: {} experiment(s) in {:.2?} ({mode:?}, {threads} thread(s))",
            grid.len(),
            started.elapsed()
        );
        // Cache statistics go to stderr with the timing report; stdout
        // stays byte-identical whether caching is on or off.
        let engine = gtpn::engine::cache_stats();
        eprintln!(
            "engine solution cache: {} hits, {} misses, {} evictions, {} entries",
            engine.hits, engine.misses, engine.evictions, engine.entries
        );
        let reach = gtpn::cache::stats();
        eprintln!(
            "reachability cache: {} hits, {} misses, {} evictions, {} entries",
            reach.hits, reach.misses, reach.evictions, reach.entries
        );
        let json = timing_json(mode, threads, total_seconds, &timed, engine, reach);
        match std::fs::write("BENCH_solver.json", &json) {
            Ok(()) => eprintln!("wrote BENCH_solver.json"),
            Err(e) => eprintln!("could not write BENCH_solver.json: {e}"),
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Times one non-local n=4 fixed-point solve under an isolated engine with
/// a `cores`-wide budget. The process-global reachability cache is cleared
/// first and the engine carries a private solution cache, so neither the
/// experiment run above nor the sibling measurement can feed this one.
fn nonlocal_n4_case(cores: usize) -> (f64, f64) {
    gtpn::cache::clear();
    let engine = models::AnalysisEngine::new(models::EngineConfig {
        backend: models::BackendSel::Exact,
        tolerance: models::TOLERANCE,
        max_sweeps: models::MAX_SWEEPS,
        state_budget: models::STATE_BUDGET,
        des: models::DesOptions::default(),
        par_solve: gtpn::par::par_solve_enabled(),
    })
    .with_cache(256)
    .with_budget(Arc::new(gtpn::ParallelBudget::new(cores)));
    let t0 = Instant::now();
    let s = models::nonlocal::solve_in(&engine, models::Architecture::MessageCoprocessor, 4, 0.0)
        .expect("non-local n=4 solves");
    (t0.elapsed().as_secs_f64(), s.throughput_per_ms)
}

/// The machine-readable `--timing` report: per-experiment wall-clock,
/// cache hit rates, the thread policy, and the non-local n=4 solver
/// micro-benchmark at 1 thread vs the full thread budget.
fn timing_json(
    mode: ExecMode,
    threads: usize,
    total_seconds: f64,
    timed: &[(String, f64)],
    engine: gtpn::cache::CacheStats,
    reach: gtpn::cache::CacheStats,
) -> String {
    // The solver benchmark: same model, same engine config, budgets of 1
    // and `threads.max(8)` cores. The results must agree to the bit —
    // thread budgets change wall-clock only.
    let bench_cores = threads.max(8);
    let (serial_s, serial_tp) = nonlocal_n4_case(1);
    let (par_s, par_tp) = nonlocal_n4_case(bench_cores);
    assert_eq!(
        serial_tp.to_bits(),
        par_tp.to_bits(),
        "thread budget changed the non-local result"
    );
    let physical = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let cache = |s: gtpn::cache::CacheStats| {
        let lookups = s.hits + s.misses;
        let rate = if lookups > 0 {
            s.hits as f64 / lookups as f64
        } else {
            0.0
        };
        format!(
            "{{\"hits\": {}, \"misses\": {}, \"evictions\": {}, \"entries\": {}, \"hit_rate\": {:.4}}}",
            s.hits, s.misses, s.evictions, s.entries, rate
        )
    };
    let mut experiments = String::from("[");
    for (i, (id, seconds)) in timed.iter().enumerate() {
        if i > 0 {
            experiments.push_str(", ");
        }
        let _ = write!(
            experiments,
            "{{\"id\": \"{id}\", \"seconds\": {seconds:.4}}}"
        );
    }
    experiments.push(']');

    format!(
        concat!(
            "{{\n",
            "  \"schema\": \"hsipc-bench-solver/v1\",\n",
            "  \"mode\": \"{mode:?}\",\n",
            "  \"threads\": {threads},\n",
            "  \"physical_cores\": {physical},\n",
            "  \"total_seconds\": {total:.4},\n",
            "  \"engine_cache\": {engine},\n",
            "  \"reachability_cache\": {reach},\n",
            "  \"nonlocal_n4\": {{\n",
            "    \"description\": \"§6.6.3 fixed point, arch II, n=4, x=0: one solve under a 1-core budget vs a {cores}-core budget (uncached; results bit-identical)\",\n",
            "    \"serial_seconds\": {serial:.4},\n",
            "    \"parallel_seconds\": {par:.4},\n",
            "    \"parallel_cores\": {cores},\n",
            "    \"speedup\": {speedup:.3},\n",
            "    \"throughput_per_ms\": {tp}\n",
            "  }},\n",
            "  \"experiments\": {experiments}\n",
            "}}\n",
        ),
        mode = mode,
        threads = threads,
        physical = physical,
        total = total_seconds,
        engine = cache(engine),
        reach = cache(reach),
        cores = bench_cores,
        serial = serial_s,
        par = par_s,
        speedup = serial_s / par_s.max(1e-9),
        tp = serial_tp,
        experiments = experiments,
    )
}
