//! Regenerates the paper's tables and figures. See `bench` crate docs.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        eprintln!("usage: repro [list | all | <experiment-id>...]");
        eprintln!("experiment ids: table3.1..table3.7, table5.1, table5.2,");
        eprintln!("  table6.1, table6.2, table6.4..table6.25, fig6.7..fig6.23");
        return ExitCode::from(2);
    }
    if args[0] == "list" {
        for e in hsipc::experiments::all() {
            println!("{:<10} {}", e.id, e.title);
        }
        return ExitCode::SUCCESS;
    }
    let ids: Vec<String> = if args[0] == "all" {
        hsipc::experiments::all().iter().map(|e| e.id.to_string()).collect()
    } else {
        args
    };
    let mut failed = false;
    for id in ids {
        match hsipc::experiments::run(&id) {
            Some(output) => {
                println!("{output}");
            }
            None => {
                eprintln!("unknown experiment `{id}` (try `repro list`)");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
