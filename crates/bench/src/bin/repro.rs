//! Regenerates the paper's tables and figures. See `bench` crate docs.
//!
//! Experiments run through the sweep engine: the requested ids are a grid
//! whose points execute on a worker pool, and each swept experiment fans
//! its own points out on the same policy. Output is printed in request
//! order and is byte-identical to a sequential run (`--sequential` or
//! `HSIPC_SWEEP=1` forces one; `HSIPC_SWEEP=<n>` / `RAYON_NUM_THREADS` /
//! `HSIPC_SWEEP_THREADS` set the worker count).
//!
//! `--timing` additionally reports wall-clock and cache statistics on
//! stderr, runs the non-local n=4 solver micro-benchmark at one thread vs
//! the full budget, and writes the machine-readable perf trajectory to
//! `BENCH_solver.json` — stdout stays byte-identical either way.

use std::fmt::Write as _;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;
use sweep::ExecMode;

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut mode = sweep::exec_mode();
    let mut timing = false;
    args.retain(|a| match a.as_str() {
        "--sequential" | "--seq" => {
            mode = ExecMode::Sequential;
            false
        }
        "--timing" => {
            timing = true;
            false
        }
        _ => true,
    });
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        eprintln!(
            "usage: repro [--sequential] [--timing] [list | all | live | live-sweep | <experiment-id>...]"
        );
        eprintln!("experiment ids: table3.1..table3.7, table5.1, table5.2,");
        eprintln!("  table6.1, table6.2, table6.4..table6.25, fig6.7..fig6.23, fig7.1, fig7.scale");
        eprintln!("live flags: [--arch I|II|III|IV|all] [--nodes N] [--conversations N]");
        eprintln!("  [--duration-ms N] [--scale F] [--server-compute-us F] [--buffers N]");
        eprintln!("  [--remote] [--no-json]");
        eprintln!("  [--clock real|virtual|both]  (flags also accept --flag=value)");
        eprintln!(
            "live-sweep flags: [--arch ...] [--x-list F,F,...] [--conversations-list N,N,...]"
        );
        eprintln!(
            "  [--buffers-list N,N,...] [--nodes N] [--duration-ms N] [--scale F] [--remote]"
        );
        eprintln!("  [--handoff targeted|broadcast] [--no-json] [--bench-handoff]");
        eprintln!(
            "  [--bench-nodes N] [--bench-conversations N] [--bench-buffers N] [--bench-ms N]"
        );
        return ExitCode::from(2);
    }
    if args[0] == "live" {
        return run_live(&args[1..]);
    }
    if args[0] == "live-sweep" {
        return run_live_sweep(&args[1..], mode);
    }
    if args[0] == "list" {
        for e in hsipc::experiments::all() {
            println!("{:<10} {}", e.id, e.title);
        }
        return ExitCode::SUCCESS;
    }
    let ids: Vec<String> = if args[0] == "all" {
        hsipc::experiments::all()
            .iter()
            .map(|e| e.id.to_string())
            .collect()
    } else {
        args
    };

    let threads = sweep::threads();
    let started = Instant::now();
    // One grid point per experiment; each result slot comes back in request
    // order no matter which worker produced it. Swept experiments fan out
    // their own points on the same pool policy. Per-experiment wall-clock
    // rides along for the `--timing` report (and is dropped otherwise).
    let grid = sweep::Grid::new(ids);
    let results = grid.eval_with(mode, threads, |id| {
        let t0 = Instant::now();
        let out = hsipc::experiments::run_with(id, mode, threads);
        (out, t0.elapsed().as_secs_f64())
    });
    let total_seconds = started.elapsed().as_secs_f64();

    let mut failed = false;
    let mut timed: Vec<(String, f64)> = Vec::with_capacity(grid.len());
    for (id, (result, seconds)) in grid.points().iter().zip(results) {
        match result {
            Some(output) => {
                println!("{output}");
                timed.push((id.clone(), seconds));
            }
            None => {
                eprintln!("unknown experiment `{id}` (try `repro list`)");
                failed = true;
            }
        }
    }
    if timing {
        eprintln!(
            "repro: {} experiment(s) in {:.2?} ({mode:?}, {threads} thread(s))",
            grid.len(),
            started.elapsed()
        );
        // Cache statistics go to stderr with the timing report; stdout
        // stays byte-identical whether caching is on or off.
        let engine = gtpn::engine::cache_stats();
        eprintln!(
            "engine solution cache: {} hits, {} misses, {} evictions, {} dedup drops, {} entries, {:.1} MiB",
            engine.hits,
            engine.misses,
            engine.evictions,
            engine.dedup_drops,
            engine.entries,
            engine.bytes as f64 / (1024.0 * 1024.0)
        );
        let reach = gtpn::cache::stats();
        eprintln!(
            "reachability cache: {} hits, {} misses, {} evictions, {} dedup drops, {} entries, {:.1} MiB",
            reach.hits,
            reach.misses,
            reach.evictions,
            reach.dedup_drops,
            reach.entries,
            reach.bytes as f64 / (1024.0 * 1024.0)
        );
        let json = timing_json(mode, threads, total_seconds, &timed, engine, reach);
        match std::fs::write("BENCH_solver.json", &json) {
            Ok(()) => eprintln!("wrote BENCH_solver.json"),
            Err(e) => eprintln!("could not write BENCH_solver.json: {e}"),
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// `repro live`: executes the requested architectures under load and
/// prints the measured throughput and latency. Not part of `repro all` —
/// real-clock live output is wall-clock-dependent, and `repro all`'s
/// stdout is kept byte-identical for the golden-output check. (Virtual
/// runs *are* deterministic; CI diffs their stdout directly.)
fn run_live(args: &[String]) -> ExitCode {
    // Accept both `--flag value` and `--flag=value`.
    let args: Vec<String> = args
        .iter()
        .flat_map(
            |a| match a.strip_prefix("--").and_then(|r| r.split_once('=')) {
                Some((flag, value)) => vec![format!("--{flag}"), value.to_string()],
                None => vec![a.clone()],
            },
        )
        .collect();
    // Environment first (validated: typos and malformed values are hard
    // errors), CLI flags override.
    let env = match runtime::LiveEnv::from_env() {
        Ok(env) => env,
        Err(e) => {
            eprintln!("repro live: {e}");
            return ExitCode::from(2);
        }
    };
    let mut archs = env.archs.clone();
    let mut base = runtime::Config::new(runtime::Architecture::Uniprocessor);
    env.apply(&mut base);
    let mut modes = vec![base.clock];
    let mut json = true;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} needs a value"))
                .cloned()
        };
        let result: Result<(), String> = (|| {
            match flag.as_str() {
                "--arch" => archs = Some(runtime::env::parse_archs(&value("--arch")?)?),
                "--nodes" => base.nodes = parse(&value("--nodes")?, "--nodes")?,
                "--conversations" => {
                    base.conversations = parse(&value("--conversations")?, "--conversations")?;
                }
                "--duration-ms" => {
                    base.duration = std::time::Duration::from_millis(parse(
                        &value("--duration-ms")?,
                        "--duration-ms",
                    )?);
                }
                "--scale" => base.scale = parse(&value("--scale")?, "--scale")?,
                "--server-compute-us" => {
                    let x: f64 = parse(&value("--server-compute-us")?, "--server-compute-us")?;
                    if !(x >= 0.0 && x.is_finite()) {
                        return Err(format!(
                            "--server-compute-us: must be a non-negative finite number, got `{x}`"
                        ));
                    }
                    base.server_compute_us = x;
                }
                "--buffers" => base.buffers = parse(&value("--buffers")?, "--buffers")?,
                "--clock" => {
                    let v = value("--clock")?;
                    modes = match v.as_str() {
                        "both" => vec![runtime::ClockMode::Real, runtime::ClockMode::Virtual],
                        other => vec![other.parse::<runtime::ClockMode>()?],
                    };
                }
                "--remote" => base.locality = runtime::Locality::NonLocal,
                "--no-json" => json = false,
                other => return Err(format!("unknown flag `{other}` (try `repro --help`)")),
            }
            Ok(())
        })();
        if let Err(e) = result {
            eprintln!("repro live: {e}");
            return ExitCode::from(2);
        }
    }
    let archs = archs.unwrap_or_else(|| runtime::Architecture::ALL.to_vec());
    if base.locality == runtime::Locality::NonLocal && base.nodes < 2 {
        base.nodes = 2;
    }

    let mut reports = Vec::with_capacity(modes.len() * archs.len());
    let mut failed = false;
    for (i, &mode) in modes.iter().enumerate() {
        if i > 0 {
            println!();
        }
        base.clock = mode;
        println!(
            "live runtime: {} conversation(s)/node x {} node(s), {} traffic, X = {:.0} us, scale {}, {} ms load, {} clock",
            base.conversations,
            base.nodes,
            match base.locality {
                runtime::Locality::Local => "local",
                runtime::Locality::NonLocal => "non-local",
            },
            base.server_compute_us,
            base.scale,
            base.duration.as_millis(),
            mode,
        );
        println!(
            "{:<5} {:>11} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>7} {:>7}  shutdown",
            "arch",
            "roundtrips",
            "thru/ms",
            "mean_us",
            "p50_us",
            "p95_us",
            "p99_us",
            "max_us",
            "stalls",
            "frames"
        );
        for &arch in &archs {
            let mut config = base.clone();
            config.architecture = arch;
            let report = runtime::run(&config);
            println!(
                "{:<5} {:>11} {:>9.2} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>7} {:>7}  {}",
                arch.label(),
                report.round_trips,
                report.throughput_per_ms,
                report.latency.mean_us,
                report.latency.p50_us,
                report.latency.p95_us,
                report.latency.p99_us,
                report.latency.max_us,
                report.buffer_stalls,
                report.ring_frames,
                if report.clean_shutdown {
                    "clean"
                } else {
                    "UNCLEAN"
                }
            );
            if mode == runtime::ClockMode::Virtual {
                // Wall-clock speedup goes to stderr: virtual stdout stays
                // byte-deterministic for the CI diff legs.
                eprintln!(
                    "virtual {}: {:.3} s simulated in {:.3} s wall ({:.0}x)",
                    arch.label(),
                    report.elapsed.as_secs_f64(),
                    report.wall.as_secs_f64(),
                    report.elapsed.as_secs_f64() / report.wall.as_secs_f64().max(1e-9),
                );
            }
            if report.round_trips == 0 || !report.clean_shutdown {
                failed = true;
            }
            reports.push(report);
        }
        // The real clock's error bars: how far OS sleeps overshot each
        // activity class's requested occupancy.
        if mode == runtime::ClockMode::Real {
            println!("sleep overshoot (real clock; requested vs actual occupancy):");
            println!(
                "{:<5} {:<24} {:>9} {:>13} {:>13} {:>13}",
                "arch", "class", "calls", "requested_us", "actual_us", "mean_over_us"
            );
            for report in reports.iter().filter(|r| r.clock == mode) {
                for row in &report.overshoot {
                    println!(
                        "{:<5} {:<24} {:>9} {:>13.1} {:>13.1} {:>13.2}",
                        report.architecture.label(),
                        row.class,
                        row.count,
                        row.requested_us,
                        row.actual_us,
                        row.mean_overshoot_us(),
                    );
                }
            }
        }
    }
    if json {
        let out = live_json(&base, &modes, &reports);
        match std::fs::write("BENCH_runtime.json", &out) {
            Ok(()) => eprintln!("wrote BENCH_runtime.json"),
            Err(e) => eprintln!("could not write BENCH_runtime.json: {e}"),
        }
    }
    if failed {
        eprintln!("repro live: an architecture made no progress or shut down unclean");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn parse<T: std::str::FromStr>(s: &str, flag: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("{flag}: bad value `{s}`"))
}

fn parse_csv<T: std::str::FromStr>(s: &str, flag: &str) -> Result<Vec<T>, String> {
    let items: Result<Vec<T>, String> = s
        .split(',')
        .map(|item| {
            let item = item.trim();
            if item.is_empty() {
                return Err(format!("{flag}: empty item in `{s}`"));
            }
            parse(item, flag)
        })
        .collect();
    let items = items?;
    if items.is_empty() {
        return Err(format!("{flag}: needs at least one value"));
    }
    Ok(items)
}

/// `repro live-sweep`: the tentpole grid — one virtual-clock live run per
/// (conversations × buffers × arch × X) point, fanned out on the sweep
/// worker pool, rendered in paper order next to the matching GTPN model
/// points. Stdout is byte-deterministic (virtual clock everywhere, no
/// wall-clock content); wall-clock totals and the optional
/// targeted-vs-broadcast coordinator benchmark go to stderr and
/// `BENCH_runtime.json`.
fn run_live_sweep(args: &[String], mode: ExecMode) -> ExitCode {
    let args: Vec<String> = args
        .iter()
        .flat_map(
            |a| match a.strip_prefix("--").and_then(|r| r.split_once('=')) {
                Some((flag, value)) => vec![format!("--{flag}"), value.to_string()],
                None => vec![a.clone()],
            },
        )
        .collect();
    let env = match runtime::LiveEnv::from_env() {
        Ok(env) => env,
        Err(e) => {
            eprintln!("repro live-sweep: {e}");
            return ExitCode::from(2);
        }
    };
    // Environment first, CLI flags override. The list knobs
    // (HSIPC_LIVE_SWEEP_*) define axes; the single-run scalars
    // (HSIPC_LIVE_CONVERSATIONS etc.) degrade to one-point axes when no
    // list is given. HSIPC_LIVE_CLOCK is ignored: the sweep is
    // virtual-clock by construction.
    let mut spec = hsipc::livesweep::SweepSpec::default_curve();
    if let Some(archs) = env.archs.clone() {
        spec.archs = archs;
    }
    if let Some(nodes) = env.nodes {
        spec.nodes = nodes;
    }
    if let Some(ms) = env.duration_ms {
        spec.duration = std::time::Duration::from_millis(ms);
    }
    if let Some(scale) = env.scale {
        spec.scale = scale;
    }
    if let Some(handoff) = env.handoff {
        spec.handoff = handoff;
    }
    if let Some(x) = env.sweep_x_us.clone() {
        spec.x_us = x;
    } else if let Some(x) = env.server_compute_us {
        spec.x_us = vec![x];
    }
    if let Some(conversations) = env.sweep_conversations.clone() {
        spec.conversations = conversations;
    } else if let Some(c) = env.conversations {
        spec.conversations = vec![c];
    }
    if let Some(buffers) = env.sweep_buffers.clone() {
        spec.buffers = buffers;
    } else if let Some(b) = env.buffers {
        spec.buffers = vec![b];
    }
    let mut json = true;
    let mut bench_handoff = false;
    // The deep coordinator benchmark: 64 nodes x 1563 conversations each
    // (100k conversations fleet-wide) of remote traffic — far past what a
    // broadcast wakeup handles gracefully, which is the point.
    let mut bench_nodes: u32 = 64;
    let mut bench_conversations: u32 = 1_563;
    let mut bench_buffers: u16 = 64;
    let mut bench_ms: u64 = 150;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} needs a value"))
                .cloned()
        };
        let result: Result<(), String> = (|| {
            match flag.as_str() {
                "--arch" => spec.archs = runtime::env::parse_archs(&value("--arch")?)?,
                "--x-list" => {
                    let xs: Vec<f64> = parse_csv(&value("--x-list")?, "--x-list")?;
                    if let Some(bad) = xs.iter().find(|x| !(**x >= 0.0 && x.is_finite())) {
                        return Err(format!(
                            "--x-list: must be non-negative finite numbers, got `{bad}`"
                        ));
                    }
                    spec.x_us = xs;
                }
                "--conversations-list" => {
                    let convs: Vec<u32> =
                        parse_csv(&value("--conversations-list")?, "--conversations-list")?;
                    if convs.contains(&0) {
                        return Err("--conversations-list: conversations must be >= 1".into());
                    }
                    spec.conversations = convs;
                }
                "--buffers-list" => {
                    let buffers: Vec<u16> = parse_csv(&value("--buffers-list")?, "--buffers-list")?;
                    if buffers.contains(&0) {
                        return Err("--buffers-list: buffers must be >= 1".into());
                    }
                    spec.buffers = buffers;
                }
                "--nodes" => spec.nodes = parse(&value("--nodes")?, "--nodes")?,
                "--duration-ms" => {
                    spec.duration = std::time::Duration::from_millis(parse(
                        &value("--duration-ms")?,
                        "--duration-ms",
                    )?);
                }
                "--scale" => spec.scale = parse(&value("--scale")?, "--scale")?,
                "--remote" => spec.locality = runtime::Locality::NonLocal,
                "--handoff" => spec.handoff = parse(&value("--handoff")?, "--handoff")?,
                "--no-json" => json = false,
                "--bench-handoff" => bench_handoff = true,
                "--bench-nodes" => bench_nodes = parse(&value("--bench-nodes")?, "--bench-nodes")?,
                "--bench-conversations" => {
                    bench_conversations =
                        parse(&value("--bench-conversations")?, "--bench-conversations")?;
                }
                "--bench-buffers" => {
                    bench_buffers = parse(&value("--bench-buffers")?, "--bench-buffers")?;
                }
                "--bench-ms" => bench_ms = parse(&value("--bench-ms")?, "--bench-ms")?,
                other => return Err(format!("unknown flag `{other}` (try `repro --help`)")),
            }
            Ok(())
        })();
        if let Err(e) = result {
            eprintln!("repro live-sweep: {e}");
            return ExitCode::from(2);
        }
    }
    if spec.locality == runtime::Locality::NonLocal && spec.nodes < 2 {
        spec.nodes = 2;
    }

    let threads = sweep::threads();
    let started = Instant::now();
    let outcome = hsipc::livesweep::run_with(&spec, mode, threads);
    let total_seconds = started.elapsed().as_secs_f64();
    print!("{}", outcome.rendered);
    // Wall-clock lives on stderr only: the rendered stdout is the
    // byte-identity surface CI diffs across runs and thread counts.
    eprintln!(
        "live-sweep: {} point(s) in {:.2} s wall ({:?}, {} thread(s)); {:.2} s virtual simulated in {:.2} s of run wall ({:.0}x aggregate)",
        outcome.outcomes.len(),
        total_seconds,
        mode,
        threads,
        outcome.virtual_seconds,
        outcome.run_wall_seconds,
        outcome.virtual_seconds / outcome.run_wall_seconds.max(1e-9),
    );
    let bench = if bench_handoff {
        Some(handoff_bench(
            bench_nodes,
            bench_conversations,
            bench_buffers,
            bench_ms,
        ))
    } else {
        None
    };
    if json {
        let out = live_sweep_json(
            &spec,
            mode,
            threads,
            total_seconds,
            &outcome,
            bench.as_ref(),
        );
        match std::fs::write("BENCH_runtime.json", &out) {
            Ok(()) => eprintln!("wrote BENCH_runtime.json"),
            Err(e) => eprintln!("could not write BENCH_runtime.json: {e}"),
        }
    }
    if !outcome.all_clean || !outcome.all_progressed {
        eprintln!("repro live-sweep: a grid point made no progress or shut down unclean");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// One measured targeted-vs-broadcast coordinator comparison.
struct HandoffBench {
    nodes: u32,
    conversations: u32,
    buffers: u16,
    duration_ms: u64,
    round_trips: u64,
    handoffs: u64,
    targeted_wall: f64,
    broadcast_wall: f64,
}

impl HandoffBench {
    fn speedup(&self) -> f64 {
        self.broadcast_wall / self.targeted_wall.max(1e-9)
    }
}

/// Runs one deep virtual fleet twice — targeted handoff, then broadcast —
/// and measures the wall-clock ratio. Both runs make identical scheduling
/// decisions (the handoff mode only chooses *how* the next actor wakes),
/// so every virtual measurement is asserted bit-equal before the timing
/// comparison is reported.
fn handoff_bench(nodes: u32, conversations: u32, buffers: u16, duration_ms: u64) -> HandoffBench {
    let mut config = runtime::Config::new(runtime::Architecture::SmartBus);
    config.nodes = nodes;
    config.conversations = conversations;
    config.buffers = buffers;
    config.duration = std::time::Duration::from_millis(duration_ms);
    config.server_compute_us = 0.0;
    if nodes >= 2 {
        config.locality = runtime::Locality::NonLocal;
    }
    config.clock = runtime::ClockMode::Virtual;
    eprintln!(
        "handoff bench: {nodes} node(s) x {conversations} conversation(s) ({} fleet-wide), {duration_ms} ms virtual",
        u64::from(nodes) * u64::from(conversations),
    );
    config.handoff = runtime::Handoff::Targeted;
    let targeted = runtime::run(&config);
    config.handoff = runtime::Handoff::Broadcast;
    let broadcast = runtime::run(&config);
    assert_eq!(
        targeted.round_trips, broadcast.round_trips,
        "handoff mode changed the schedule"
    );
    assert_eq!(
        targeted.handoffs, broadcast.handoffs,
        "handoff mode changed the handoff count"
    );
    assert_eq!(
        targeted.latency.max_us.to_bits(),
        broadcast.latency.max_us.to_bits(),
        "handoff mode changed the measured latency"
    );
    let bench = HandoffBench {
        nodes,
        conversations,
        buffers,
        duration_ms,
        round_trips: targeted.round_trips,
        handoffs: targeted.handoffs,
        targeted_wall: targeted.wall.as_secs_f64(),
        broadcast_wall: broadcast.wall.as_secs_f64(),
    };
    eprintln!(
        "handoff bench: {} round trip(s), {} handoff(s); targeted {:.3} s vs broadcast {:.3} s wall ({:.2}x)",
        bench.round_trips,
        bench.handoffs,
        bench.targeted_wall,
        bench.broadcast_wall,
        bench.speedup(),
    );
    bench
}

/// The machine-readable `repro live-sweep` report: schema v3 with the
/// per-point rows under `runs` and the sweep/coordinator summary under
/// `live_sweep`.
fn live_sweep_json(
    spec: &hsipc::livesweep::SweepSpec,
    mode: ExecMode,
    threads: usize,
    total_seconds: f64,
    outcome: &hsipc::livesweep::SweepOutcome,
    bench: Option<&HandoffBench>,
) -> String {
    let mut rows = String::from("[");
    for (i, o) in outcome.outcomes.iter().enumerate() {
        if i > 0 {
            rows.push_str(", ");
        }
        let model = o
            .model_per_ms
            .map_or_else(|| "null".to_string(), |m| format!("{m:.4}"));
        let err = o
            .rel_err_pct(spec.nodes)
            .map_or_else(|| "null".to_string(), |e| format!("{e:.2}"));
        let _ = write!(
            rows,
            concat!(
                "{{\"architecture\": \"{arch}\", \"x_us\": {x}, ",
                "\"conversations_per_node\": {convs}, \"buffers\": {buffers}, ",
                "\"round_trips\": {rts}, ",
                "\"live_per_node_ms\": {live:.4}, \"model_per_ms\": {model}, ",
                "\"rel_err_pct\": {err}, ",
                "\"latency_us\": {{\"p50\": {p50:.2}, \"p99\": {p99:.2}, \"max\": {max:.2}}}, ",
                "\"buffer_stalls\": {stalls}, \"peak_ring_queue\": {peak}, ",
                "\"clean_shutdown\": {clean}}}"
            ),
            arch = o.point.architecture.label(),
            x = o.point.x_us,
            convs = o.point.conversations,
            buffers = o.point.buffers,
            rts = o.report.round_trips,
            live = o.live_per_node_ms(spec.nodes),
            model = model,
            err = err,
            p50 = o.report.latency.p50_us,
            p99 = o.report.latency.p99_us,
            max = o.report.latency.max_us,
            stalls = o.report.buffer_stalls,
            peak = o.report.peak_ring_queue,
            clean = o.report.clean_shutdown,
        );
    }
    rows.push(']');
    let handoff_bench = bench.map_or_else(
        || "null".to_string(),
        |b| {
            format!(
                concat!(
                    "{{\n",
                    "      \"description\": \"arch III virtual fleet, targeted park/unpark vs shared-condvar broadcast grant; identical schedules, wall-clock only\",\n",
                    "      \"nodes\": {nodes},\n",
                    "      \"conversations_per_node\": {convs},\n",
                    "      \"buffers\": {buffers},\n",
                    "      \"duration_ms\": {ms},\n",
                    "      \"round_trips\": {rts},\n",
                    "      \"handoffs\": {handoffs},\n",
                    "      \"targeted_wall_seconds\": {t:.4},\n",
                    "      \"broadcast_wall_seconds\": {b:.4},\n",
                    "      \"speedup\": {s:.3}\n",
                    "    }}"
                ),
                nodes = b.nodes,
                convs = b.conversations,
                buffers = b.buffers,
                ms = b.duration_ms,
                rts = b.round_trips,
                handoffs = b.handoffs,
                t = b.targeted_wall,
                b = b.broadcast_wall,
                s = b.speedup(),
            )
        },
    );
    let list = |items: &[String]| {
        let mut s = String::from("[");
        for (i, item) in items.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(item);
        }
        s.push(']');
        s
    };
    let archs = list(
        &spec
            .archs
            .iter()
            .map(|a| format!("\"{}\"", a.label()))
            .collect::<Vec<_>>(),
    );
    let x_us = list(&spec.x_us.iter().map(|x| format!("{x}")).collect::<Vec<_>>());
    let conversations = list(
        &spec
            .conversations
            .iter()
            .map(|c| format!("{c}"))
            .collect::<Vec<_>>(),
    );
    let buffers = list(
        &spec
            .buffers
            .iter()
            .map(|b| format!("{b}"))
            .collect::<Vec<_>>(),
    );
    format!(
        concat!(
            "{{\n",
            "  \"schema\": \"hsipc-bench-runtime/v3\",\n",
            "  \"workload\": {{\n",
            "    \"nodes\": {nodes},\n",
            "    \"archs\": {archs},\n",
            "    \"x_us\": {x_us},\n",
            "    \"conversations_per_node\": {convs},\n",
            "    \"buffers\": {buffers},\n",
            "    \"locality\": \"{locality}\",\n",
            "    \"scale\": {scale},\n",
            "    \"duration_ms\": {dur},\n",
            "    \"clock_modes\": [\"virtual\"],\n",
            "    \"handoff\": \"{handoff}\"\n",
            "  }},\n",
            "  \"runs\": {rows},\n",
            "  \"live_sweep\": {{\n",
            "    \"mode\": \"{mode:?}\",\n",
            "    \"threads\": {threads},\n",
            "    \"grid_points\": {points},\n",
            "    \"total_wall_seconds\": {total:.4},\n",
            "    \"virtual_seconds\": {virt:.4},\n",
            "    \"run_wall_seconds\": {run_wall:.4},\n",
            "    \"aggregate_virtual_speedup\": {agg:.1},\n",
            "    \"handoff_bench\": {bench}\n",
            "  }}\n",
            "}}\n",
        ),
        nodes = spec.nodes,
        archs = archs,
        x_us = x_us,
        convs = conversations,
        buffers = buffers,
        locality = match spec.locality {
            runtime::Locality::Local => "local",
            runtime::Locality::NonLocal => "non-local",
        },
        scale = spec.scale,
        dur = spec.duration.as_millis(),
        handoff = spec.handoff,
        rows = rows,
        mode = mode,
        threads = threads,
        points = outcome.outcomes.len(),
        total = total_seconds,
        virt = outcome.virtual_seconds,
        run_wall = outcome.run_wall_seconds,
        agg = outcome.virtual_seconds / outcome.run_wall_seconds.max(1e-9),
        bench = handoff_bench,
    )
}

/// The machine-readable `repro live` report.
fn live_json(
    base: &runtime::Config,
    modes: &[runtime::ClockMode],
    reports: &[runtime::RunReport],
) -> String {
    let mut rows = String::from("[");
    for (i, r) in reports.iter().enumerate() {
        if i > 0 {
            rows.push_str(", ");
        }
        let _ = write!(
            rows,
            concat!(
                "{{\"architecture\": \"{arch}\", \"clock\": \"{clock}\", ",
                "\"round_trips\": {rts}, ",
                "\"elapsed_seconds\": {elapsed:.4}, ",
                "\"wall_seconds\": {wall:.4}, ",
                "\"throughput_per_ms\": {tp:.4}, ",
                "\"latency_us\": {{\"mean\": {mean:.2}, \"p50\": {p50:.2}, ",
                "\"p95\": {p95:.2}, \"p99\": {p99:.2}, \"max\": {max:.2}}}, ",
                "\"buffer_stalls\": {stalls}, \"ring_frames\": {frames}, ",
                "\"clean_shutdown\": {clean}}}"
            ),
            arch = r.architecture.label(),
            clock = r.clock,
            rts = r.round_trips,
            elapsed = r.elapsed.as_secs_f64(),
            wall = r.wall.as_secs_f64(),
            tp = r.throughput_per_ms,
            mean = r.latency.mean_us,
            p50 = r.latency.p50_us,
            p95 = r.latency.p95_us,
            p99 = r.latency.p99_us,
            max = r.latency.max_us,
            stalls = r.buffer_stalls,
            frames = r.ring_frames,
            clean = r.clean_shutdown,
        );
    }
    rows.push(']');
    let mut clock_modes = String::from("[");
    for (i, mode) in modes.iter().enumerate() {
        if i > 0 {
            clock_modes.push_str(", ");
        }
        let _ = write!(clock_modes, "\"{mode}\"");
    }
    clock_modes.push(']');
    format!(
        concat!(
            "{{\n",
            "  \"schema\": \"hsipc-bench-runtime/v3\",\n",
            "  \"workload\": {{\n",
            "    \"nodes\": {nodes},\n",
            "    \"conversations_per_node\": {convs},\n",
            "    \"locality\": \"{locality}\",\n",
            "    \"server_compute_us\": {x},\n",
            "    \"scale\": {scale},\n",
            "    \"buffers\": {buffers},\n",
            "    \"duration_ms\": {dur},\n",
            "    \"clock_modes\": {clocks}\n",
            "  }},\n",
            "  \"runs\": {rows},\n",
            "  \"live_sweep\": null\n",
            "}}\n",
        ),
        nodes = base.nodes,
        convs = base.conversations,
        locality = match base.locality {
            runtime::Locality::Local => "local",
            runtime::Locality::NonLocal => "non-local",
        },
        x = base.server_compute_us,
        scale = base.scale,
        buffers = base.buffers,
        dur = base.duration.as_millis(),
        clocks = clock_modes,
        rows = rows,
    )
}

/// Times one non-local n=4 fixed-point solve under an isolated engine with
/// a `cores`-wide budget. The process-global reachability cache is cleared
/// first and the engine carries a private solution cache, so neither the
/// experiment run above nor the sibling measurement can feed this one.
fn nonlocal_n4_case(cores: usize) -> (f64, f64) {
    gtpn::cache::clear();
    let engine = models::AnalysisEngine::new(models::EngineConfig {
        backend: models::BackendSel::Exact,
        tolerance: models::TOLERANCE,
        max_sweeps: models::MAX_SWEEPS,
        state_budget: models::STATE_BUDGET,
        des: models::DesOptions::default(),
        par_solve: gtpn::par::par_solve_enabled(),
        warm_start: gtpn::engine::warm_start_enabled(),
        // Raw-solver micro-benchmark: lumping off keeps the timed work (full
        // reachability + Gauss–Seidel on the unreduced chain) stable across
        // environments so the BENCH trajectory stays comparable.
        lump: gtpn::LumpSel::Off,
    })
    .with_cache(256)
    .with_budget(Arc::new(gtpn::ParallelBudget::new(cores)));
    let t0 = Instant::now();
    let s = models::nonlocal::solve_in(&engine, models::Architecture::MessageCoprocessor, 4, 0.0)
        .expect("non-local n=4 solves");
    (t0.elapsed().as_secs_f64(), s.throughput_per_ms)
}

/// Times the fig7.scale n=8 point both ways — the lumped exact quotient
/// chain vs the DES estimator — under fresh engines with private caches,
/// and reports the JSON fragment. Neither path touches the process-global
/// reachability cache (lumped runs build their own quotient; DES builds no
/// graph), so the measurement is isolated from the experiment run above.
fn fig7_scale_case() -> String {
    let x = 5_700.0;
    let mk = |backend: models::BackendSel, lump: gtpn::LumpSel| {
        models::AnalysisEngine::new(models::EngineConfig {
            backend,
            tolerance: models::TOLERANCE,
            max_sweeps: models::MAX_SWEEPS,
            state_budget: models::STATE_BUDGET,
            des: models::DesOptions::default(),
            par_solve: gtpn::par::par_solve_enabled(),
            warm_start: gtpn::engine::warm_start_enabled(),
            lump,
        })
        // A private cache: without one the engine shares the process-global
        // solution cache and the exact point would time as a cache hit on
        // the experiment run above.
        .with_cache(16)
    };
    let t0 = Instant::now();
    let exact = models::local::solve_in(
        &mk(models::BackendSel::Exact, gtpn::LumpSel::On),
        models::Architecture::MessageCoprocessor,
        8,
        x,
    )
    .expect("lumped exact n=8 solves");
    let exact_s = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let des = models::local::solve_in(
        &mk(models::BackendSel::Des, gtpn::LumpSel::Off),
        models::Architecture::MessageCoprocessor,
        8,
        x,
    )
    .expect("DES n=8 estimates");
    let des_s = t0.elapsed().as_secs_f64();
    format!(
        concat!(
            "{{\n",
            "    \"description\": \"fig7.scale arch II local, n=8, x=5700: lumped exact quotient chain vs DES estimate (uncached)\",\n",
            "    \"exact_seconds\": {exact_s:.4},\n",
            "    \"exact_states\": {states},\n",
            "    \"exact_throughput_per_ms\": {exact_tp},\n",
            "    \"des_seconds\": {des_s:.4},\n",
            "    \"des_throughput_per_ms\": {des_tp},\n",
            "    \"des_half_width_per_ms\": {hw},\n",
            "    \"gap_per_ms\": {gap:.6}\n",
            "  }}"
        ),
        exact_s = exact_s,
        states = exact.states,
        exact_tp = exact.throughput_per_ms,
        des_s = des_s,
        des_tp = des.throughput_per_ms,
        hw = des.half_width_per_ms.unwrap_or(0.0),
        gap = (exact.throughput_per_ms - des.throughput_per_ms).abs(),
    )
}

/// The machine-readable `--timing` report: per-experiment wall-clock,
/// cache hit rates, the thread policy, the non-local n=4 solver
/// micro-benchmark at 1 thread vs the full thread budget, and the
/// fig7.scale lumped-exact vs DES comparison.
fn timing_json(
    mode: ExecMode,
    threads: usize,
    total_seconds: f64,
    timed: &[(String, f64)],
    engine: gtpn::cache::CacheStats,
    reach: gtpn::cache::CacheStats,
) -> String {
    // The solver benchmark: same model, same engine config, budgets of 1
    // and `threads.max(8)` cores. The results must agree to the bit —
    // thread budgets change wall-clock only.
    let bench_cores = threads.max(8);
    let (serial_s, serial_tp) = nonlocal_n4_case(1);
    let (par_s, par_tp) = nonlocal_n4_case(bench_cores);
    assert_eq!(
        serial_tp.to_bits(),
        par_tp.to_bits(),
        "thread budget changed the non-local result"
    );
    let physical = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let cache = |s: gtpn::cache::CacheStats| {
        let lookups = s.hits + s.misses;
        let rate = if lookups > 0 {
            s.hits as f64 / lookups as f64
        } else {
            0.0
        };
        format!(
            concat!(
                "{{\"hits\": {}, \"misses\": {}, \"evictions\": {}, ",
                "\"dedup_drops\": {}, \"entries\": {}, \"bytes\": {}, ",
                "\"hit_rate\": {:.4}}}"
            ),
            s.hits, s.misses, s.evictions, s.dedup_drops, s.entries, s.bytes, rate
        )
    };
    let mut experiments = String::from("[");
    for (i, (id, seconds)) in timed.iter().enumerate() {
        if i > 0 {
            experiments.push_str(", ");
        }
        let _ = write!(
            experiments,
            "{{\"id\": \"{id}\", \"seconds\": {seconds:.4}}}"
        );
    }
    experiments.push(']');

    format!(
        concat!(
            "{{\n",
            "  \"schema\": \"hsipc-bench-solver/v2\",\n",
            "  \"mode\": \"{mode:?}\",\n",
            "  \"threads\": {threads},\n",
            "  \"physical_cores\": {physical},\n",
            "  \"total_seconds\": {total:.4},\n",
            "  \"engine_cache\": {engine},\n",
            "  \"reachability_cache\": {reach},\n",
            "  \"nonlocal_n4\": {{\n",
            "    \"description\": \"§6.6.3 fixed point, arch II, n=4, x=0: one solve under a 1-core budget vs a {cores}-core budget (uncached; results bit-identical)\",\n",
            "    \"serial_seconds\": {serial:.4},\n",
            "    \"parallel_seconds\": {par:.4},\n",
            "    \"parallel_cores\": {cores},\n",
            "    \"speedup\": {speedup:.3},\n",
            "    \"throughput_per_ms\": {tp}\n",
            "  }},\n",
            "  \"fig7_scale_n8\": {scale},\n",
            "  \"experiments\": {experiments}\n",
            "}}\n",
        ),
        mode = mode,
        threads = threads,
        physical = physical,
        total = total_seconds,
        engine = cache(engine),
        reach = cache(reach),
        cores = bench_cores,
        serial = serial_s,
        par = par_s,
        speedup = serial_s / par_s.max(1e-9),
        tp = serial_tp,
        scale = fig7_scale_case(),
        experiments = experiments,
    )
}
