//! Regenerates the paper's tables and figures. See `bench` crate docs.
//!
//! Experiments run through the sweep engine: the requested ids are a grid
//! whose points execute on a worker pool, and each swept experiment fans
//! its own points out on the same policy. Output is printed in request
//! order and is byte-identical to a sequential run (`--sequential` or
//! `HSIPC_SWEEP=seq` forces one; `RAYON_NUM_THREADS` / `HSIPC_SWEEP_THREADS`
//! set the worker count).

use std::process::ExitCode;
use std::time::Instant;
use sweep::ExecMode;

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut mode = sweep::exec_mode();
    let mut timing = false;
    args.retain(|a| match a.as_str() {
        "--sequential" | "--seq" => {
            mode = ExecMode::Sequential;
            false
        }
        "--timing" => {
            timing = true;
            false
        }
        _ => true,
    });
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        eprintln!("usage: repro [--sequential] [--timing] [list | all | <experiment-id>...]");
        eprintln!("experiment ids: table3.1..table3.7, table5.1, table5.2,");
        eprintln!("  table6.1, table6.2, table6.4..table6.25, fig6.7..fig6.23, fig7.1, fig7.scale");
        return ExitCode::from(2);
    }
    if args[0] == "list" {
        for e in hsipc::experiments::all() {
            println!("{:<10} {}", e.id, e.title);
        }
        return ExitCode::SUCCESS;
    }
    let ids: Vec<String> = if args[0] == "all" {
        hsipc::experiments::all()
            .iter()
            .map(|e| e.id.to_string())
            .collect()
    } else {
        args
    };

    let threads = sweep::thread_count();
    let started = Instant::now();
    // One grid point per experiment; each result slot comes back in request
    // order no matter which worker produced it. Swept experiments fan out
    // their own points on the same pool policy.
    let grid = sweep::Grid::new(ids);
    let results = grid.eval_with(mode, threads, |id| {
        hsipc::experiments::run_with(id, mode, threads)
    });

    let mut failed = false;
    for (id, result) in grid.points().iter().zip(results) {
        match result {
            Some(output) => println!("{output}"),
            None => {
                eprintln!("unknown experiment `{id}` (try `repro list`)");
                failed = true;
            }
        }
    }
    if timing {
        eprintln!(
            "repro: {} experiment(s) in {:.2?} ({mode:?}, {threads} thread(s))",
            grid.len(),
            started.elapsed()
        );
        // Cache statistics go to stderr with the timing report; stdout
        // stays byte-identical whether caching is on or off.
        let engine = gtpn::engine::cache_stats();
        eprintln!(
            "engine solution cache: {} hits, {} misses, {} evictions, {} entries",
            engine.hits, engine.misses, engine.evictions, engine.entries
        );
        let reach = gtpn::cache::stats();
        eprintln!(
            "reachability cache: {} hits, {} misses, {} evictions, {} entries",
            reach.hits, reach.misses, reach.evictions, reach.entries
        );
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
