//! # bench — benchmark harness and table/figure regeneration
//!
//! * `cargo run -p bench --release --bin repro -- list` — enumerate
//!   experiments.
//! * `cargo run -p bench --release --bin repro -- table6.1 fig6.17` —
//!   regenerate specific tables/figures.
//! * `cargo run -p bench --release --bin repro -- all` — regenerate
//!   everything (the non-local figure sweeps take a few minutes).
//! * `cargo bench -p bench` — Criterion micro-benchmarks of the bus
//!   primitives, the GTPN solver, the kernel round trip and the
//!   architecture simulations.

#![forbid(unsafe_code)]

pub use hsipc::experiments;
