//! Criterion micro-benchmarks of the smart bus / smart memory primitives —
//! the operations behind Table 6.1. These measure *simulator* throughput;
//! the simulated bus-time equivalences (1 µs queue ops, 11 µs 40-byte
//! blocks) are asserted in the test suites.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use smartbus::{BlockDirection, BusEngine, RequestNumber, Transaction, UnitId};
use smartmem::SmartMemory;

fn engine() -> (BusEngine<SmartMemory>, UnitId) {
    let mut bus = BusEngine::new(SmartMemory::new(64 * 1024), RequestNumber::new(7));
    let mp = bus
        .add_unit("mp", RequestNumber::new(2))
        .expect("fresh engine");
    (bus, mp)
}

fn bench_queue_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("table6.1/queue");
    group.bench_function("enqueue_first_cycle", |b| {
        b.iter_batched(
            engine,
            |(mut bus, mp)| {
                for i in 0..32u16 {
                    bus.submit(
                        mp,
                        Transaction::Enqueue {
                            list: 0x10,
                            element: 0x100 + i * 2,
                        },
                    )
                    .expect("idle");
                    bus.run_until_idle().expect("runs");
                }
                for _ in 0..32 {
                    bus.submit(mp, Transaction::First { list: 0x10 })
                        .expect("idle");
                    bus.run_until_idle().expect("runs");
                }
                bus.time_ns()
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("dequeue_middle_of_64", |b| {
        b.iter_batched(
            || {
                let (mut bus, mp) = engine();
                for i in 0..64u16 {
                    bus.submit(
                        mp,
                        Transaction::Enqueue {
                            list: 0x10,
                            element: 0x100 + i * 2,
                        },
                    )
                    .expect("idle");
                    bus.run_until_idle().expect("runs");
                }
                (bus, mp)
            },
            |(mut bus, mp)| {
                bus.submit(
                    mp,
                    Transaction::Dequeue {
                        list: 0x10,
                        element: 0x100 + 32 * 2,
                    },
                )
                .expect("idle");
                bus.run_until_idle().expect("runs");
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_block_transfers(c: &mut Criterion) {
    let mut group = c.benchmark_group("table6.1/block");
    for &bytes in &[40u16, 256, 1024] {
        group.bench_function(format!("write_{bytes}B"), |b| {
            let data: Vec<u16> = (0..bytes / 2).collect();
            b.iter_batched(
                engine,
                |(mut bus, mp)| {
                    bus.submit(
                        mp,
                        Transaction::BlockTransfer {
                            addr: 0,
                            count: bytes,
                            direction: BlockDirection::Write,
                            data: data.clone(),
                        },
                    )
                    .expect("idle");
                    bus.run_until_idle().expect("runs");
                    bus.time_ns()
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_queue_ops, bench_block_transfers);
criterion_main!(benches);
