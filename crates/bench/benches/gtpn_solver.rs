//! Criterion benchmarks of the GTPN engine: reachability construction and
//! steady-state solution of the chapter-6 architecture models.

use criterion::{criterion_group, criterion_main, Criterion};
use models::{local, Architecture};

fn bench_local_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("gtpn/local");
    group.sample_size(20);
    for &(arch, label) in &[
        (Architecture::Uniprocessor, "archI"),
        (Architecture::MessageCoprocessor, "archII"),
        (Architecture::SmartBus, "archIII"),
    ] {
        for &n in &[1u32, 3] {
            group.bench_function(format!("{label}_{n}conv"), |b| {
                b.iter(|| local::solve(arch, n, 1_140.0).expect("model solves"))
            });
        }
    }
    group.finish();
}

fn bench_reachability(c: &mut Criterion) {
    let mut group = c.benchmark_group("gtpn/reachability");
    group.sample_size(20);
    group.bench_function("archII_local_4conv_graph", |b| {
        let net = local::build(Architecture::MessageCoprocessor, 4, 0.0).expect("builds");
        b.iter(|| {
            net.reachability(2_000_000)
                .expect("fits budget")
                .state_count()
        })
    });
    group.finish();
}

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("gtpn/monte-carlo");
    group.sample_size(10);
    group.bench_function("archII_local_2conv_sim_1s", |b| {
        use gtpn::sim::{simulate, SimOptions};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let net = local::build(Architecture::MessageCoprocessor, 2, 0.0).expect("builds");
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            simulate(
                &net,
                &SimOptions {
                    horizon: 1_000_000,
                    warmup: 100_000,
                },
                &mut rng,
            )
            .expect("simulates")
            .measured_time
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_local_models,
    bench_reachability,
    bench_simulation
);
criterion_main!(benches);
