//! Criterion benchmarks of the GTPN engine: reachability construction and
//! steady-state solution of the chapter-6 architecture models.

use criterion::{criterion_group, criterion_main, Criterion};
use models::{local, Architecture};

fn bench_local_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("gtpn/local");
    group.sample_size(20);
    for &(arch, label) in &[
        (Architecture::Uniprocessor, "archI"),
        (Architecture::MessageCoprocessor, "archII"),
        (Architecture::SmartBus, "archIII"),
    ] {
        for &n in &[1u32, 3] {
            group.bench_function(format!("{label}_{n}conv"), |b| {
                b.iter(|| local::solve(arch, n, 1_140.0).expect("model solves"))
            });
        }
    }
    group.finish();
}

fn bench_engine(c: &mut Criterion) {
    use models::{AnalysisEngine, BackendSel, EngineConfig};
    let engine = AnalysisEngine::new(EngineConfig {
        backend: BackendSel::Exact,
        ..EngineConfig::default()
    });
    let net = local::build(Architecture::MessageCoprocessor, 4, 0.0).expect("builds");
    let mut group = c.benchmark_group("gtpn/engine");
    group.sample_size(20);
    // Cold path: canonicalize + reachability + solve, caches cleared each
    // iteration.
    group.bench_function("archII_local_4conv_cold", |b| {
        b.iter(|| {
            gtpn::engine::clear_cache();
            gtpn::cache::clear();
            engine.analyze(&net).expect("fits budget").states()
        })
    });
    // Hot path: the canonical-fingerprint cache hit every call site pays
    // after the first solve of a structurally-identical net.
    group.bench_function("archII_local_4conv_cache_hit", |b| {
        engine.analyze(&net).expect("fits budget");
        b.iter(|| engine.analyze(&net).expect("cached").states())
    });
    group.finish();
}

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("gtpn/monte-carlo");
    group.sample_size(10);
    group.bench_function("archII_local_2conv_sim_1s", |b| {
        use gtpn::sim::{simulate, SimOptions};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let net = local::build(Architecture::MessageCoprocessor, 2, 0.0).expect("builds");
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            simulate(
                &net,
                &SimOptions {
                    horizon: 1_000_000,
                    warmup: 100_000,
                },
                &mut rng,
            )
            .expect("simulates")
            .measured_time
        })
    });
    group.finish();
}

criterion_group!(benches, bench_local_models, bench_engine, bench_simulation);
criterion_main!(benches);
