//! Criterion benchmarks of the message kernel: local rendezvous and
//! cross-node round trips (functional cost of the kernel data-structure
//! manipulation, independent of the simulated-time model).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use msgkernel::{Kernel, KernelEvent, Message, NodeId, SendMode, ServiceAddr, Syscall};

fn drain(k: &mut Kernel) -> Vec<KernelEvent> {
    let mut events = Vec::new();
    while let Some(t) = k.next_communication() {
        events.extend(k.process(t).expect("valid request"));
    }
    events
}

fn local_pair() -> (Kernel, msgkernel::TaskId, msgkernel::TaskId, ServiceAddr) {
    let mut k = Kernel::new(NodeId(0), 16);
    let client = k.create_task("client", 1, 64);
    let server = k.create_task("server", 1, 64);
    let svc = k.create_service("bench");
    let addr = ServiceAddr {
        node: k.node(),
        service: svc,
    };
    k.submit(server, Syscall::Offer { service: svc })
        .expect("fresh");
    drain(&mut k);
    (k, client, server, addr)
}

fn bench_local_round_trip(c: &mut Criterion) {
    c.bench_function("kernel/local_round_trip", |b| {
        b.iter_batched(
            local_pair,
            |(mut k, client, server, addr)| {
                for _ in 0..100 {
                    k.submit(server, Syscall::Receive).expect("idle");
                    drain(&mut k);
                    k.submit(
                        client,
                        Syscall::Send {
                            to: addr,
                            message: Message::empty(),
                            mode: SendMode::invocation(),
                        },
                    )
                    .expect("idle");
                    drain(&mut k);
                    k.submit(
                        server,
                        Syscall::Reply {
                            message: Message::empty(),
                        },
                    )
                    .expect("idle");
                    drain(&mut k);
                }
                k.stats().replies
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_cross_node_round_trip(c: &mut Criterion) {
    c.bench_function("kernel/cross_node_round_trip", |b| {
        b.iter_batched(
            || {
                let mut a = Kernel::new(NodeId(0), 16);
                let mut bk = Kernel::new(NodeId(1), 16);
                let client = a.create_task("client", 1, 64);
                let server = bk.create_task("server", 1, 64);
                let svc = bk.create_service("bench");
                bk.submit(server, Syscall::Offer { service: svc })
                    .expect("fresh");
                drain(&mut bk);
                (a, bk, client, server, svc)
            },
            |(mut a, mut bk, client, server, svc)| {
                for _ in 0..50 {
                    bk.submit(server, Syscall::Receive).expect("idle");
                    drain(&mut bk);
                    a.submit(
                        client,
                        Syscall::Send {
                            to: ServiceAddr {
                                node: NodeId(1),
                                service: svc,
                            },
                            message: Message::empty(),
                            mode: SendMode::invocation(),
                        },
                    )
                    .expect("idle");
                    let events = drain(&mut a);
                    let packet = events
                        .into_iter()
                        .find_map(|e| match e {
                            KernelEvent::PacketOut(p) => Some(p),
                            _ => None,
                        })
                        .expect("send packet");
                    bk.handle_packet(packet).expect("routable");
                    bk.submit(
                        server,
                        Syscall::Reply {
                            message: Message::empty(),
                        },
                    )
                    .expect("idle");
                    let events = drain(&mut bk);
                    let packet = events
                        .into_iter()
                        .find_map(|e| match e {
                            KernelEvent::PacketOut(p) => Some(p),
                            _ => None,
                        })
                        .expect("reply packet");
                    a.handle_packet(packet).expect("routable");
                }
                a.stats().packets_in
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_local_round_trip, bench_cross_node_round_trip);
criterion_main!(benches);
