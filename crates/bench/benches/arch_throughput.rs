//! Criterion benchmarks of the discrete-event architecture simulator — one
//! per compared architecture, plus the contention and validation paths that
//! feed the figures.

use archsim::{Architecture, Locality, Simulation, WorkloadSpec};
use criterion::{criterion_group, criterion_main, Criterion};

fn spec(locality: Locality) -> WorkloadSpec {
    WorkloadSpec {
        conversations: 3,
        server_compute_us: 1_140.0,
        locality,
        horizon_us: 500_000.0,
        warmup_us: 50_000.0,
        seed: 5,
    }
}

fn bench_architectures(c: &mut Criterion) {
    let mut group = c.benchmark_group("des/local");
    group.sample_size(20);
    for arch in Architecture::ALL {
        group.bench_function(format!("arch{}", arch.label()), |b| {
            b.iter(|| {
                Simulation::new(arch, &spec(Locality::Local))
                    .run()
                    .completed
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("des/nonlocal");
    group.sample_size(20);
    for arch in [Architecture::Uniprocessor, Architecture::SmartBus] {
        group.bench_function(format!("arch{}", arch.label()), |b| {
            b.iter(|| {
                Simulation::new(arch, &spec(Locality::NonLocal))
                    .run()
                    .completed
            })
        });
    }
    group.finish();
}

fn bench_contention_model(c: &mut Criterion) {
    c.bench_function("models/contention_table6.2", |b| {
        b.iter(|| {
            models::contention::completion_times(models::contention::TABLE_6_2).expect("mix solves")
        })
    });
}

criterion_group!(benches, bench_architectures, bench_contention_model);
criterion_main!(benches);
