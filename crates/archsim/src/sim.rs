//! The discrete-event simulator.
//!
//! Runs the real [`msgkernel::Kernel`] under the per-activity costs of
//! [`crate::timings`], with:
//!
//! * one host (and, for Architectures II–IV, one message coprocessor) per
//!   node, FCFS run-to-completion dispatch, network-interrupt work served
//!   with priority over task work (the tables' `NetIntr` gating);
//! * separate DMA engines for outgoing and incoming packets (the models'
//!   `IoOut` / `IoIn` places);
//! * endogenous shared-memory contention: an activity's shared-access time
//!   is inflated by the memory-cycle demand of concurrently running
//!   activities on the same bus — Architecture IV's partitioned bus
//!   interferes only within a partition, which is exactly the effect the
//!   paper's low-level contention model (Table 6.2) captures;
//! * the [`netsim::TokenRing`] carrying one `send` and one `reply` packet
//!   per conversation.

use crate::timings::{activity, Activity, ActivityKind, Architecture, Locality};
use crate::WorkloadSpec;
use msgkernel::{
    Kernel, KernelEvent, Message, NodeId, Packet, PacketBody, SendMode, ServiceAddr, Syscall,
    TaskId,
};
use netsim::{RingNodeId, TokenRing};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

/// One processor-occupancy segment recorded by a traced run — the raw
/// material of the paper's Figure 4.6 timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSegment {
    /// Node index (0 = client node).
    pub node: usize,
    /// Processor name ("Host", "MP", "IoOut", "IoIn").
    pub processor: &'static str,
    /// What ran.
    pub label: String,
    /// Start, microseconds.
    pub start_us: f64,
    /// End, microseconds.
    pub end_us: f64,
}

/// Simulation output.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Metrics {
    /// Completed conversations per millisecond (the paper's Λ).
    pub throughput_per_ms: f64,
    /// Mean client round-trip time, microseconds.
    pub mean_round_trip_us: f64,
    /// Host utilization on the (server-side) node.
    pub host_utilization: f64,
    /// MP utilization on the (server-side) node (0 for Architecture I).
    pub mp_utilization: f64,
    /// Conversations completed after warm-up.
    pub completed: u64,
    /// Measured interval, microseconds.
    pub measured_us: f64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum ProcKind {
    Host,
    Mp,
    IoOut,
    IoIn,
}

#[derive(Debug, Clone)]
enum Job {
    /// Timed activity followed by a kernel submission.
    Syscall {
        task: TaskId,
        kind: ActivityKind,
        call: Syscall,
    },
    /// MP (or Architecture-I host) processing of a pending request.
    Process { task: TaskId, kind: ActivityKind },
    /// Matching client and server after a local rendezvous forms.
    Match { server: TaskId },
    /// Host restart of a task, continuing its behavior.
    Restart { task: TaskId, kind: ActivityKind },
    /// Server busy-loop computation.
    Compute { server: TaskId, duration_us: f64 },
    /// DMA of an outgoing packet.
    DmaOut { packet: Packet },
    /// DMA of an arrived packet.
    DmaIn { packet: Packet },
    /// Interrupt-level processing of an arrived packet (includes the match
    /// or client-cleanup work), then `handle_packet`.
    Interrupt { packet: Packet, kind: ActivityKind },
}

/// A (possibly multi-server) processor: `capacity` identical units share
/// the FCFS queues — capacity > 1 models the Chapter 7 organization of
/// several hosts served by one MP (and the 925 test-bed's two hosts).
#[derive(Debug)]
struct Proc {
    capacity: usize,
    busy: usize,
    interrupt_queue: VecDeque<Job>,
    task_queue: VecDeque<Job>,
    busy_ns: u64,
}

impl Proc {
    fn new(capacity: usize) -> Proc {
        Proc {
            capacity,
            busy: 0,
            interrupt_queue: VecDeque::new(),
            task_queue: VecDeque::new(),
            busy_ns: 0,
        }
    }

    fn pop(&mut self) -> Option<Job> {
        self.interrupt_queue
            .pop_front()
            .or_else(|| self.task_queue.pop_front())
    }
}

/// Bus demand of a running activity for the interference model.
#[derive(Debug, Clone, Copy)]
struct BusShare {
    kb_rho: f64,
    tcb_rho: f64,
}

#[derive(Debug)]
struct Node {
    procs: HashMap<ProcKind, Proc>,
    running: HashMap<u64, BusShare>,
}

impl Node {
    fn new(has_mp: bool, hosts: usize) -> Node {
        let mut procs = HashMap::new();
        procs.insert(ProcKind::Host, Proc::new(hosts));
        if has_mp {
            procs.insert(ProcKind::Mp, Proc::new(1));
        }
        procs.insert(ProcKind::IoOut, Proc::new(1));
        procs.insert(ProcKind::IoIn, Proc::new(1));
        Node {
            procs,
            running: HashMap::new(),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LastCall {
    Offer,
    Receive,
    Reply,
    Send,
}

#[derive(Debug, Clone, Copy)]
enum Event {
    WorkDone {
        node: usize,
        proc: ProcKind,
        job_id: u64,
    },
    Arrival,
}

/// The architecture simulator. See the crate docs for an example.
#[derive(Debug)]
pub struct Simulation {
    arch: Architecture,
    spec: WorkloadSpec,
    kernels: Vec<Kernel>,
    nodes: Vec<Node>,
    ring: TokenRing<Packet>,
    queue: BinaryHeap<Reverse<(u64, u64, usize)>>,
    events: HashMap<u64, Event>,
    jobs: HashMap<u64, (usize, ProcKind, Job)>,
    job_starts: HashMap<u64, u64>,
    trace: Option<Vec<TraceSegment>>,
    seq: u64,
    now_ns: u64,
    rng: StdRng,
    last_call: HashMap<(usize, TaskId), LastCall>,
    send_start_ns: HashMap<(usize, TaskId), u64>,
    client_node: usize,
    server_node: usize,
    service: ServiceAddr,
    completed: u64,
    round_trip_sum_ns: u64,
}

const US: f64 = 1_000.0; // nanoseconds per microsecond

fn us_to_ns(us: f64) -> u64 {
    (us * US).round() as u64
}

impl Simulation {
    /// Builds a simulation of `arch` under `spec` with one host per node.
    pub fn new(arch: Architecture, spec: &WorkloadSpec) -> Simulation {
        Simulation::with_hosts(arch, spec, 1)
    }

    /// Builds a simulation with `hosts` host processors per node — the
    /// thesis's Chapter 7 organization (one MP serving a collection of
    /// hosts; its 925 test-bed ran two hosts per node).
    ///
    /// # Panics
    ///
    /// Panics when `hosts` is zero.
    pub fn with_hosts(arch: Architecture, spec: &WorkloadSpec, hosts: usize) -> Simulation {
        assert!(hosts >= 1, "a node needs at least one host");
        let two_nodes = spec.locality == Locality::NonLocal;
        let node_count = if two_nodes { 2 } else { 1 };
        let mut kernels: Vec<Kernel> = (0..node_count)
            .map(|i| Kernel::new(NodeId(i as u32), 64))
            .collect();
        let nodes: Vec<Node> = (0..node_count)
            .map(|_| Node::new(arch.has_mp(), hosts))
            .collect();
        let mut ring = TokenRing::default();
        for i in 0..node_count {
            ring.attach(RingNodeId(i as u32));
        }
        let client_node = 0;
        let server_node = node_count - 1;
        let svc = kernels[server_node].create_service("workload");
        let service = ServiceAddr {
            node: NodeId(server_node as u32),
            service: svc,
        };

        let mut sim = Simulation {
            arch,
            spec: *spec,
            kernels,
            nodes,
            ring,
            queue: BinaryHeap::new(),
            events: HashMap::new(),
            jobs: HashMap::new(),
            job_starts: HashMap::new(),
            trace: None,
            seq: 0,
            now_ns: 0,
            rng: StdRng::seed_from_u64(spec.seed),
            last_call: HashMap::new(),
            send_start_ns: HashMap::new(),
            client_node,
            server_node,
            service,
            completed: 0,
            round_trip_sum_ns: 0,
        };
        sim.setup_tasks();
        sim
    }

    /// Enables recording of processor-occupancy segments (Figure 4.6).
    pub fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// The recorded trace (empty unless [`Simulation::enable_trace`]).
    pub fn trace(&self) -> &[TraceSegment] {
        self.trace.as_deref().unwrap_or(&[])
    }

    fn setup_tasks(&mut self) {
        for _ in 0..self.spec.conversations {
            let server = self.kernels[self.server_node].create_task("server", 1, 64);
            // Offers are issued once at startup; their cost is not part of
            // the steady-state conversation loop.
            self.kernels[self.server_node]
                .submit(
                    server,
                    Syscall::Offer {
                        service: self.service.service,
                    },
                )
                .expect("fresh task");
            let t = self.kernels[self.server_node]
                .next_communication()
                .expect("offer pending");
            self.last_call
                .insert((self.server_node, server), LastCall::Offer);
            let events = self.kernels[self.server_node]
                .process(t)
                .expect("offer valid");
            self.apply_events(self.server_node, events, false);
        }
        for _ in 0..self.spec.conversations {
            let client = self.kernels[self.client_node].create_task("client", 1, 64);
            self.start_client_send(client);
        }
    }

    fn act(&self, kind: ActivityKind) -> Option<&'static Activity> {
        activity(self.arch, self.spec.locality, kind)
    }

    /// Schedules `job` on the given processor; interrupt-initiated work goes
    /// to the priority queue.
    fn enqueue(&mut self, node: usize, proc: ProcKind, job: Job, interrupt: bool) {
        let p = self.nodes[node]
            .procs
            .get_mut(&proc)
            .expect("processor exists");
        if interrupt {
            p.interrupt_queue.push_back(job);
        } else {
            p.task_queue.push_back(job);
        }
        self.dispatch(node, proc);
    }

    /// Bus interference: the shared-access demand fraction of concurrently
    /// running activities.
    fn interference(&self, node: usize) -> (f64, f64) {
        let mut kb = 0.0;
        let mut tcb = 0.0;
        for share in self.nodes[node].running.values() {
            kb += share.kb_rho;
            tcb += share.tcb_rho;
        }
        (kb, tcb)
    }

    fn job_duration_and_share(&mut self, node: usize, job: &Job) -> (f64, BusShare) {
        let act = match job {
            Job::Syscall { kind, .. }
            | Job::Process { task: _, kind }
            | Job::Restart { kind, .. }
            | Job::Interrupt { kind, .. } => self.act(*kind),
            Job::Match { .. } => {
                // A local match always uses the *local* table even in a
                // non-local workload run (it only arises for local
                // rendezvous).
                activity(self.arch, Locality::Local, ActivityKind::Match)
            }
            Job::Compute { duration_us, .. } => {
                return (
                    *duration_us,
                    BusShare {
                        kb_rho: 0.0,
                        tcb_rho: 0.0,
                    },
                );
            }
            Job::DmaOut { .. } => self.act(ActivityKind::DmaOut),
            Job::DmaIn { .. } => self.act(ActivityKind::DmaIn),
        };
        let Some(act) = act else {
            return (
                0.0,
                BusShare {
                    kb_rho: 0.0,
                    tcb_rho: 0.0,
                },
            );
        };
        let (kb_i, tcb_i) = self.interference(node);
        let duration = if self.arch.partitioned() {
            act.processing_us + act.kb_us * (1.0 + kb_i) + act.tcb_us * (1.0 + tcb_i)
        } else {
            act.processing_us + act.shared_us() * (1.0 + kb_i + tcb_i)
        };
        let best = act.best_us().max(1e-9);
        // The KB/TCB split is tracked either way; for I-III the duration
        // formula above sums both against the single bus.
        let share = BusShare {
            kb_rho: act.kb_us / best,
            tcb_rho: act.tcb_us / best,
        };
        (duration, share)
    }

    fn dispatch(&mut self, node: usize, proc: ProcKind) {
        loop {
            let p = self.nodes[node]
                .procs
                .get_mut(&proc)
                .expect("processor exists");
            if p.busy >= p.capacity {
                return;
            }
            let Some(job) = p.pop() else { return };
            p.busy += 1;
            let (duration_us, share) = self.job_duration_and_share(node, &job);
            let job_id = self.seq;
            self.seq += 1;
            self.nodes[node].running.insert(job_id, share);
            self.jobs.insert(job_id, (node, proc, job));
            let at = self.now_ns + us_to_ns(duration_us);
            self.job_starts.insert(job_id, self.now_ns);
            let ev = self.seq;
            self.seq += 1;
            self.events
                .insert(ev, Event::WorkDone { node, proc, job_id });
            self.queue.push(Reverse((at, ev, 0)));
        }
    }

    fn start_client_send(&mut self, client: TaskId) {
        self.send_start_ns
            .insert((self.client_node, client), self.now_ns);
        let call = Syscall::Send {
            to: self.service,
            message: Message::empty(),
            mode: SendMode::invocation(),
        };
        self.enqueue(
            self.client_node,
            ProcKind::Host,
            Job::Syscall {
                task: client,
                kind: ActivityKind::SyscallSend,
                call,
            },
            false,
        );
    }

    /// Pumps the communication list: on Architectures II–IV the MP picks up
    /// requests; on I the host processes them inline (their cost is folded
    /// into the syscall activities, so processing takes zero extra time).
    fn pump_mp(&mut self, node: usize) {
        if self.arch.has_mp() {
            // The MP's dispatcher: one Process job per pending request.
            while let Some(task) = self.kernels[node].next_communication() {
                let kind = match self.kernels[node].pending_request(task) {
                    Some(Syscall::Send { .. }) => ActivityKind::ProcessSend,
                    Some(Syscall::Receive) => ActivityKind::ProcessReceive,
                    Some(Syscall::Reply { .. }) => ActivityKind::ProcessReply,
                    _ => ActivityKind::ProcessReceive,
                };
                self.enqueue(node, ProcKind::Mp, Job::Process { task, kind }, false);
            }
        } else {
            // Architecture I: execute the kernel effects immediately; the
            // host time was already charged in the syscall activity.
            while let Some(task) = self.kernels[node].next_communication() {
                let events = self.kernels[node]
                    .process(task)
                    .expect("valid workload request");
                self.apply_events(node, events, false);
            }
        }
    }

    fn apply_events(&mut self, node: usize, events: Vec<KernelEvent>, from_packet: bool) {
        use KernelEvent as E;
        let mut handled: Vec<TaskId> = Vec::new();
        for e in &events {
            match e {
                E::Delivered { server } => {
                    handled.push(*server);
                    if from_packet {
                        // The interrupt job already charged the match work.
                        self.enqueue(
                            node,
                            ProcKind::Host,
                            Job::Restart {
                                task: *server,
                                kind: ActivityKind::RestartServer,
                            },
                            false,
                        );
                    } else {
                        let proc = if self.arch.has_mp() {
                            ProcKind::Mp
                        } else {
                            ProcKind::Host
                        };
                        self.enqueue(node, proc, Job::Match { server: *server }, false);
                    }
                }
                E::ReplyDelivered { client } => {
                    handled.push(*client);
                    self.enqueue(
                        node,
                        ProcKind::Host,
                        Job::Restart {
                            task: *client,
                            kind: ActivityKind::RestartClient,
                        },
                        false,
                    );
                }
                E::PacketOut(p) => {
                    self.enqueue(
                        node,
                        ProcKind::IoOut,
                        Job::DmaOut { packet: p.clone() },
                        false,
                    );
                }
                _ => {}
            }
        }
        for e in &events {
            if let E::Runnable(task) = e {
                if handled.contains(task) {
                    continue;
                }
                match self.last_call.get(&(node, *task)) {
                    Some(LastCall::Offer) => {
                        // Server is ready: post the first receive.
                        self.enqueue(
                            node,
                            ProcKind::Host,
                            Job::Syscall {
                                task: *task,
                                kind: ActivityKind::SyscallReceive,
                                call: Syscall::Receive,
                            },
                            false,
                        );
                    }
                    Some(LastCall::Reply) => {
                        self.enqueue(
                            node,
                            ProcKind::Host,
                            Job::Restart {
                                task: *task,
                                kind: ActivityKind::RestartServerAfterReply,
                            },
                            false,
                        );
                    }
                    _ => {}
                }
            }
        }
    }

    fn complete_job(&mut self, node: usize, proc: ProcKind, job_id: u64) {
        let (_, _, job) = self.jobs.remove(&job_id).expect("job registered");
        self.nodes[node].running.remove(&job_id);
        let started = self.job_starts.remove(&job_id).expect("start recorded");
        {
            let p = self.nodes[node]
                .procs
                .get_mut(&proc)
                .expect("processor exists");
            p.busy -= 1;
            p.busy_ns += self.now_ns - started;
        }
        if let Some(trace) = &mut self.trace {
            let label = match &job {
                Job::Syscall { kind, task, .. } => format!("{kind:?} {task}"),
                Job::Process { task, kind } => format!("{kind:?} {task}"),
                Job::Match { server } => format!("Match {server}"),
                Job::Restart { task, kind } => format!("{kind:?} {task}"),
                Job::Compute { server, .. } => format!("Compute {server}"),
                Job::DmaOut { .. } => "DMA out".to_string(),
                Job::DmaIn { .. } => "DMA in".to_string(),
                Job::Interrupt { kind, .. } => format!("Interrupt: {kind:?}"),
            };
            let processor = match proc {
                ProcKind::Host => "Host",
                ProcKind::Mp => "MP",
                ProcKind::IoOut => "IoOut",
                ProcKind::IoIn => "IoIn",
            };
            trace.push(TraceSegment {
                node,
                processor,
                label,
                start_us: started as f64 / US,
                end_us: self.now_ns as f64 / US,
            });
        }

        match job {
            Job::Syscall {
                task,
                kind: _,
                call,
            } => {
                let last = match &call {
                    Syscall::Send { .. } => LastCall::Send,
                    Syscall::Receive => LastCall::Receive,
                    Syscall::Reply { .. } => LastCall::Reply,
                    _ => LastCall::Offer,
                };
                self.last_call.insert((node, task), last);
                self.kernels[node].submit(task, call).expect("task idle");
                self.pump_mp(node);
            }
            Job::Process { task, .. } => {
                let events = self.kernels[node].process(task).expect("valid request");
                self.apply_events(node, events, false);
            }
            Job::Match { server } => {
                self.enqueue(
                    node,
                    ProcKind::Host,
                    Job::Restart {
                        task: server,
                        kind: ActivityKind::RestartServer,
                    },
                    false,
                );
            }
            Job::Restart { task, kind } => match kind {
                ActivityKind::RestartServer => {
                    let x = self.spec.server_compute_us;
                    let duration_us = if x <= 0.0 {
                        0.0
                    } else {
                        self.rng.gen_range(0.5 * x..=1.5 * x)
                    };
                    self.enqueue(
                        node,
                        ProcKind::Host,
                        Job::Compute {
                            server: task,
                            duration_us,
                        },
                        false,
                    );
                }
                ActivityKind::RestartServerAfterReply => {
                    self.enqueue(
                        node,
                        ProcKind::Host,
                        Job::Syscall {
                            task,
                            kind: ActivityKind::SyscallReceive,
                            call: Syscall::Receive,
                        },
                        false,
                    );
                }
                ActivityKind::RestartClient => {
                    // Round trip complete.
                    if let Some(start) = self.send_start_ns.remove(&(node, task)) {
                        if start >= us_to_ns(self.spec.warmup_us) {
                            self.completed += 1;
                            self.round_trip_sum_ns += self.now_ns - start;
                        }
                    }
                    self.start_client_send(task);
                }
                _ => unreachable!("not a restart kind"),
            },
            Job::Compute { server, .. } => {
                self.enqueue(
                    node,
                    ProcKind::Host,
                    Job::Syscall {
                        task: server,
                        kind: ActivityKind::SyscallReply,
                        call: Syscall::Reply {
                            message: Message::empty(),
                        },
                    },
                    false,
                );
            }
            Job::DmaOut { packet } => {
                let from = RingNodeId(packet.from.0);
                let to = RingNodeId(packet.to.0);
                let arrive = self
                    .ring
                    .transmit(self.now_ns, from, to, 40, packet)
                    .expect("nodes attached");
                let ev = self.seq;
                self.seq += 1;
                self.events.insert(ev, Event::Arrival);
                self.queue.push(Reverse((arrive, ev, 0)));
            }
            Job::DmaIn { packet } => {
                let kind = match packet.body {
                    PacketBody::SendMsg { .. } => ActivityKind::Match,
                    PacketBody::ReplyMsg { .. } => ActivityKind::CleanupClient,
                };
                let proc = if self.arch.has_mp() {
                    ProcKind::Mp
                } else {
                    ProcKind::Host
                };
                self.enqueue(node, proc, Job::Interrupt { packet, kind }, true);
            }
            Job::Interrupt { packet, .. } => {
                let events = self.kernels[node]
                    .handle_packet(packet)
                    .expect("routable packet");
                self.apply_events(node, events, true);
            }
        }
        self.dispatch(node, proc);
    }

    /// Runs to the horizon and reports metrics plus the recorded trace.
    pub fn run_traced(mut self) -> (Metrics, Vec<TraceSegment>) {
        self.enable_trace();
        let metrics = self.run_inner();
        let trace = self.trace.take().unwrap_or_default();
        (metrics, trace)
    }

    /// Runs to the horizon and reports metrics.
    pub fn run(mut self) -> Metrics {
        self.run_inner()
    }

    fn run_inner(&mut self) -> Metrics {
        let horizon = us_to_ns(self.spec.horizon_us);
        let warmup = us_to_ns(self.spec.warmup_us);
        let mut warm_host_busy = 0u64;
        let mut warm_mp_busy = 0u64;
        let mut warmed = false;
        while let Some(Reverse((at, ev, _))) = self.queue.pop() {
            if at > horizon {
                break;
            }
            self.now_ns = at;
            if !warmed && at >= warmup {
                warmed = true;
                // Snapshot busy time consumed before the measured window.
                let n = &self.nodes[self.server_node];
                warm_host_busy = n.procs[&ProcKind::Host].busy_ns;
                warm_mp_busy = n.procs.get(&ProcKind::Mp).map_or(0, |p| p.busy_ns);
            }
            match self.events.remove(&ev).expect("event registered") {
                Event::WorkDone { node, proc, job_id } => self.complete_job(node, proc, job_id),
                Event::Arrival => {
                    let deliveries = self.ring.poll(self.now_ns);
                    for d in deliveries {
                        let node = d.frame.to.0 as usize;
                        self.enqueue(
                            node,
                            ProcKind::IoIn,
                            Job::DmaIn {
                                packet: d.frame.payload,
                            },
                            true,
                        );
                    }
                }
            }
        }

        let measured_ns = horizon.saturating_sub(warmup);
        let measured_us = measured_ns as f64 / US;
        let n = &self.nodes[self.server_node];
        let host_capacity = n.procs[&ProcKind::Host].capacity as u64;
        let host_busy = n.procs[&ProcKind::Host]
            .busy_ns
            .saturating_sub(warm_host_busy)
            / host_capacity;
        let mp_busy = n
            .procs
            .get(&ProcKind::Mp)
            .map_or(0, |p| p.busy_ns.saturating_sub(warm_mp_busy));
        Metrics {
            throughput_per_ms: self.completed as f64 / (measured_us / 1_000.0),
            mean_round_trip_us: if self.completed == 0 {
                0.0
            } else {
                self.round_trip_sum_ns as f64 / self.completed as f64 / US
            },
            host_utilization: host_busy as f64 / measured_ns as f64,
            mp_utilization: mp_busy as f64 / measured_ns as f64,
            completed: self.completed,
            measured_us,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timings::round_trip_us;

    fn spec(n: usize, x: f64, locality: Locality) -> WorkloadSpec {
        WorkloadSpec {
            conversations: n,
            server_compute_us: x,
            locality,
            horizon_us: 2_000_000.0,
            warmup_us: 200_000.0,
            seed: 7,
        }
    }

    #[test]
    fn arch1_local_single_conversation_matches_analysis() {
        // One conversation, X = 0: throughput = 1 / C with C = 4.97 ms.
        let m = Simulation::new(Architecture::Uniprocessor, &spec(1, 0.0, Locality::Local)).run();
        let c = round_trip_us(Architecture::Uniprocessor, Locality::Local, false);
        let expect = 1_000.0 / c;
        assert!(
            (m.throughput_per_ms - expect).abs() / expect < 0.02,
            "throughput {} vs {}",
            m.throughput_per_ms,
            expect
        );
        assert!(
            (m.mean_round_trip_us - c).abs() / c < 0.02,
            "rt {}",
            m.mean_round_trip_us
        );
    }

    #[test]
    fn arch2_single_conversation_slightly_slower_than_arch1() {
        // §6.9.1: for one conversation the partition *loses* a little
        // (~10%) to host-MP information transfer.
        let m1 = Simulation::new(Architecture::Uniprocessor, &spec(1, 0.0, Locality::Local)).run();
        let m2 = Simulation::new(
            Architecture::MessageCoprocessor,
            &spec(1, 0.0, Locality::Local),
        )
        .run();
        assert!(m2.throughput_per_ms < m1.throughput_per_ms);
        let loss = 1.0 - m2.throughput_per_ms / m1.throughput_per_ms;
        assert!(loss < 0.25, "loss {loss}");
    }

    #[test]
    fn arch2_scales_with_conversations_under_realistic_load() {
        // With computation in the mix, the MP offloads the host and
        // multiple conversations outperform Architecture I.
        let x = 2_850.0;
        let m1 = Simulation::new(Architecture::Uniprocessor, &spec(4, x, Locality::Local)).run();
        let m2 = Simulation::new(
            Architecture::MessageCoprocessor,
            &spec(4, x, Locality::Local),
        )
        .run();
        assert!(
            m2.throughput_per_ms > m1.throughput_per_ms * 1.1,
            "arch2 {} vs arch1 {}",
            m2.throughput_per_ms,
            m1.throughput_per_ms
        );
    }

    #[test]
    fn arch3_beats_arch2() {
        let m2 = Simulation::new(
            Architecture::MessageCoprocessor,
            &spec(3, 1_140.0, Locality::Local),
        )
        .run();
        let m3 = Simulation::new(Architecture::SmartBus, &spec(3, 1_140.0, Locality::Local)).run();
        assert!(
            m3.throughput_per_ms > m2.throughput_per_ms,
            "arch3 {} vs arch2 {}",
            m3.throughput_per_ms,
            m2.throughput_per_ms
        );
    }

    #[test]
    fn arch4_close_to_arch3() {
        // §6.9.3: the partitioned bus does not help significantly — shared
        // memory access is not the bottleneck.
        let m3 = Simulation::new(Architecture::SmartBus, &spec(3, 0.0, Locality::Local)).run();
        let m4 = Simulation::new(
            Architecture::PartitionedSmartBus,
            &spec(3, 0.0, Locality::Local),
        )
        .run();
        let gain = m4.throughput_per_ms / m3.throughput_per_ms - 1.0;
        assert!(gain.abs() < 0.10, "gain {gain}");
        assert!(m4.throughput_per_ms >= m3.throughput_per_ms * 0.97);
    }

    #[test]
    fn nonlocal_round_trip_includes_network() {
        let m = Simulation::new(
            Architecture::MessageCoprocessor,
            &spec(1, 0.0, Locality::NonLocal),
        )
        .run();
        // Round trip = the serial critical path (the server's next receive
        // posting overlaps the reply's flight) + two 112 µs wire transits.
        let expect =
            crate::timings::critical_path_us(Architecture::MessageCoprocessor, Locality::NonLocal)
                + 2.0 * 112.0;
        assert!(
            (m.mean_round_trip_us - expect).abs() / expect < 0.05,
            "rt {} vs {}",
            m.mean_round_trip_us,
            expect
        );
    }

    #[test]
    fn throughput_grows_with_conversations_nonlocal() {
        let one = Simulation::new(
            Architecture::MessageCoprocessor,
            &spec(1, 0.0, Locality::NonLocal),
        )
        .run();
        let four = Simulation::new(
            Architecture::MessageCoprocessor,
            &spec(4, 0.0, Locality::NonLocal),
        )
        .run();
        assert!(
            four.throughput_per_ms > one.throughput_per_ms * 1.3,
            "1: {} 4: {}",
            one.throughput_per_ms,
            four.throughput_per_ms
        );
    }

    #[test]
    fn second_host_helps_compute_bound_load() {
        // Chapter 7: with heavy server computation the host is the
        // bottleneck, so a second host on the node raises throughput; at
        // max communication load the MP caps it.
        let heavy = spec(4, 5_700.0, Locality::Local);
        let one = Simulation::with_hosts(Architecture::MessageCoprocessor, &heavy, 1).run();
        let two = Simulation::with_hosts(Architecture::MessageCoprocessor, &heavy, 2).run();
        assert!(
            two.throughput_per_ms > one.throughput_per_ms * 1.3,
            "1 host {} vs 2 hosts {}",
            one.throughput_per_ms,
            two.throughput_per_ms
        );
        let max = spec(4, 0.0, Locality::Local);
        let one = Simulation::with_hosts(Architecture::MessageCoprocessor, &max, 1).run();
        let two = Simulation::with_hosts(Architecture::MessageCoprocessor, &max, 2).run();
        let gain = two.throughput_per_ms / one.throughput_per_ms - 1.0;
        assert!(gain < 0.35, "gain {gain}");
    }

    #[test]
    fn trace_reconstructs_figure_4_6_sequence() {
        // One non-local conversation: the recorded segments must follow the
        // blocking-remote-invocation-send timeline of Figure 4.6.
        let mut s = spec(1, 500.0, Locality::NonLocal);
        s.horizon_us = 20_000.0;
        s.warmup_us = 0.0;
        let (_, trace) = Simulation::new(Architecture::MessageCoprocessor, &s).run_traced();
        let labels: Vec<&str> = trace.iter().map(|t| t.label.as_str()).collect();
        let idx = |needle: &str| {
            labels
                .iter()
                .position(|l| l.contains(needle))
                .unwrap_or_else(|| panic!("{needle} not in {labels:?}"))
        };
        // Client side: syscall, MP processing, DMA out — in order.
        assert!(idx("SyscallSend") < idx("ProcessSend"));
        assert!(idx("ProcessSend") < idx("DMA out"));
        // Server side: the arriving packet is matched, the server restarts,
        // computes, replies.
        assert!(idx("Interrupt: Match") < idx("RestartServer"));
        assert!(idx("RestartServer") < idx("Compute"));
        assert!(idx("Compute") < idx("SyscallReply"));
        assert!(idx("SyscallReply") < idx("ProcessReply"));
        // And the client eventually restarts.
        assert!(idx("Interrupt: CleanupClient") < idx("RestartClient"));
        // Segments are well-formed.
        for t in &trace {
            assert!(t.end_us >= t.start_us, "{t:?}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = Simulation::new(Architecture::SmartBus, &spec(2, 1_000.0, Locality::Local)).run();
        let b = Simulation::new(Architecture::SmartBus, &spec(2, 1_000.0, Locality::Local)).run();
        assert_eq!(a, b);
    }

    #[test]
    fn utilizations_sane() {
        let m = Simulation::new(
            Architecture::MessageCoprocessor,
            &spec(4, 0.0, Locality::Local),
        )
        .run();
        // Utilizations may exceed 1.0 by a hair: the job in flight at the
        // warm-up boundary is credited wholly to the measured window.
        assert!(m.host_utilization > 0.0 && m.host_utilization <= 1.01);
        assert!(
            m.mp_utilization > 0.5,
            "MP should be the bottleneck at max load"
        );
        assert!(m.mp_utilization <= 1.01, "mp {}", m.mp_utilization);
    }
}
