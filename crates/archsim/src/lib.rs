//! # archsim — discrete-event simulation of the four node architectures
//!
//! The thesis evaluates its software partition and smart-bus proposals by
//! modeling four architectures (Chapter 6):
//!
//! | # | Architecture | Figure |
//! |---|--------------|--------|
//! | I   | Uniprocessor: the host runs everything          | 6.1 |
//! | II  | Host + message coprocessor, conventional memory | 6.2 |
//! | III | Host + MP + smart bus + smart shared memory     | 6.3 |
//! | IV  | Like III with the bus/memory partitioned (TCBs between host and MP, kernel buffers between MP and the network interfaces) | 6.4 |
//!
//! This crate is the repository's stand-in for the paper's *experimental
//! implementation* on the 925 multiprocessor: a discrete-event simulation
//! that runs the real [`msgkernel`] logic under the per-activity processing
//! times measured on the 925 (Tables 6.4–6.23, transcribed in [`timings`]),
//! over the [`netsim`] token ring for non-local conversations.
//!
//! The workload is the paper's §6.3 client–server conversation benchmark:
//! clients loop issuing blocking remote-invocation sends; servers loop
//! receive → compute (uniformly distributed busy-loop) → reply; FCFS
//! scheduling among equal priorities. Offered load is
//! `C / (C + S)` where `C` is the round-trip communication time and `S` the
//! server compute time.
//!
//! ```
//! use archsim::{Architecture, Locality, WorkloadSpec, Simulation};
//!
//! let spec = WorkloadSpec {
//!     conversations: 2,
//!     server_compute_us: 1_140.0,
//!     locality: Locality::Local,
//!     horizon_us: 2_000_000.0,
//!     warmup_us: 200_000.0,
//!     seed: 42,
//! };
//! let metrics = Simulation::new(Architecture::MessageCoprocessor, &spec).run();
//! assert!(metrics.throughput_per_ms > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod sim;

pub mod timings;

pub use sim::{Metrics, Simulation, TraceSegment};
pub use timings::{Activity, ActivityKind, Architecture, Initiator, Locality, Processor};

/// Workload parameters (§6.3 / §4.8).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSpec {
    /// Number of simultaneous conversations (client/server pairs).
    pub conversations: usize,
    /// Mean server computation per conversation, microseconds (the paper's
    /// workload parameter X). Sampled uniformly in `[0.5X, 1.5X]`.
    pub server_compute_us: f64,
    /// Local (same node) or non-local (clients and servers on different
    /// nodes) conversations.
    pub locality: Locality,
    /// Simulated time horizon, microseconds.
    pub horizon_us: f64,
    /// Statistics warm-up discard, microseconds.
    pub warmup_us: f64,
    /// RNG seed (compute-time sampling).
    pub seed: u64,
}

impl WorkloadSpec {
    /// A maximum-communication-load workload (X = 0) for `n` conversations.
    pub fn max_load(n: usize, locality: Locality) -> WorkloadSpec {
        WorkloadSpec {
            conversations: n,
            server_compute_us: 0.0,
            locality,
            horizon_us: 3_000_000.0,
            warmup_us: 300_000.0,
            seed: 1,
        }
    }
}

/// A batch of independent replications: mean throughput with a 95%
/// confidence half-width, the same batch-means estimate the GTPN engine's
/// DES backend reports — so model estimates and "experimental" measurements
/// carry comparable error bars.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Replicated {
    /// Mean throughput across replications, conversations per millisecond.
    pub throughput_per_ms: f64,
    /// 95% confidence half-width on the mean, conversations per millisecond.
    pub half_width_per_ms: f64,
    /// Number of replications run.
    pub replications: usize,
}

impl Replicated {
    /// Whether `value` lies inside the confidence interval.
    pub fn contains(&self, value: f64) -> bool {
        (value - self.throughput_per_ms).abs() <= self.half_width_per_ms
    }
}

/// Runs `replications` independent simulations of `spec` (seeds derived
/// from `spec.seed` by a SplitMix64 scramble, so replication *r* is the
/// same run no matter the batch size) and aggregates their throughputs.
pub fn replicate(
    arch: Architecture,
    spec: &WorkloadSpec,
    hosts: usize,
    replications: usize,
) -> Replicated {
    let replications = replications.max(2);
    let scramble = |z: u64| {
        let mut z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let samples: Vec<f64> = (0..replications)
        .map(|r| {
            let rep = WorkloadSpec {
                seed: scramble(spec.seed ^ scramble(r as u64 + 1)),
                ..*spec
            };
            Simulation::with_hosts(arch, &rep, hosts)
                .run()
                .throughput_per_ms
        })
        .collect();
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / (n - 1.0);
    Replicated {
        throughput_per_ms: mean,
        // t ≈ 2.1 for small batch counts — the same constant the GTPN
        // engine's batch-means interval uses.
        half_width_per_ms: 2.1 * (var / n).sqrt(),
        replications,
    }
}
